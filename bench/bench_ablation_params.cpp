// Ablations over the design choices DESIGN.md calls out.
//
// The paper (5) names Block size, amplitude and smoothing cycle as the
// tradeoff dimensions and leaves "a more effective scheme" as future work.
// Each table below switches one design element off (or swaps it) and
// measures the consequence on the channel or on the viewer.

#include "baseline/naive.hpp"
#include "bench_common.hpp"
#include "core/link_runner.hpp"

#include <cstdio>

namespace {

using namespace inframe;

constexpr int width = 480;
constexpr int height = 270;

core::Link_experiment_config base_link(double duration)
{
    core::Link_experiment_config config;
    config.video = video::make_sunrise_video(width, height);
    config.inframe = core::paper_config(width, height);
    config.inframe.geometry = coding::fitted_geometry(width, height, 2);
    config.inframe.tau = 12;
    config.camera.sensor_width = width;
    config.camera.sensor_height = height;
    config.duration_s = duration;
    return config;
}

} // namespace

int main(int argc, char** argv)
{
    const auto args = bench::parse_args(argc, argv);
    telemetry::Session telemetry_session(args.telemetry);
    const double duration = bench::scale_duration(args.scale, 1.0, 2.0, 4.0);

    // ------------------------------------------------------------------
    bench::print_header("Ablation A: transition envelope (SRRC vs linear vs stair)",
                        "the paper picked half square-root raised-cosine after comparing "
                        "with linear and stair forms (3.2)");
    {
        util::Table table({"envelope", "flicker score (panel mean)", "stddev"});
        for (const auto shape : {dsp::Transition_shape::srrc, dsp::Transition_shape::linear,
                                 dsp::Transition_shape::stair}) {
            core::Flicker_experiment_config config;
            config.video = video::make_dark_gray_video(width, height);
            config.inframe = core::paper_config(width, height);
            config.inframe.delta = 30.0f;
            config.inframe.tau = 10;
            config.inframe.transition = shape;
            config.duration_s = duration;
            config.observers = 8;
            config.options.max_sites = 512;
            const auto result = core::run_flicker_experiment(config);
            table.add_row({std::string(dsp::to_string(shape)), result.mean_score,
                           result.stddev_score});
        }
        bench::emit_table(args, "ablation_envelope", table);
    }

    // ------------------------------------------------------------------
    bench::print_header("Ablation B: detector (paper's noise-level vs matched filter)",
                        "5 asks for 'a more effective scheme'; the matched filter is one — "
                        "it exploits the known chessboard geometry on textured video");
    {
        util::Table table({"detector", "goodput kbps", "available GOBs", "block errors",
                           "trusted-bit errors"});
        for (const auto detector : {core::Detector::noise_level, core::Detector::matched}) {
            auto config = base_link(duration);
            config.detector = detector;
            const auto result = core::run_link_experiment(config);
            table.add_row({std::string(core::to_string(detector)), result.goodput_kbps,
                           result.available_gob_ratio, result.block_error_rate,
                           result.trusted_bit_error_rate});
        }
        bench::emit_table(args, "ablation_detector", table);
    }

    // ------------------------------------------------------------------
    bench::print_header("Ablation C: texture compensation (de-meaning) in the decoder",
                        "3.3: 'to work around high-texture areas ... we further remove the "
                        "mean absolute difference'");
    {
        util::Table table({"texture compensation", "goodput kbps", "available GOBs",
                           "block errors"});
        for (const bool on : {true, false}) {
            auto config = base_link(duration);
            config.texture_compensation = on;
            const auto result = core::run_link_experiment(config);
            table.add_row({std::string(on ? "on" : "off"), result.goodput_kbps,
                           result.available_gob_ratio, result.block_error_rate});
        }
        bench::emit_table(args, "ablation_texture_comp", table);
    }

    // ------------------------------------------------------------------
    bench::print_header("Ablation D: local amplitude capping near saturation",
                        "3.3: near-white/black blocks must cap delta in both complementary "
                        "frames or clamping breaks the cancellation and the viewer sees it");
    {
        util::Table table({"local cap", "flicker on bright video (score)", "stddev"});
        for (const bool on : {true, false}) {
            core::Flicker_experiment_config config;
            config.video = std::make_shared<video::Solid_video>(width, height, 247.0f);
            config.inframe = core::paper_config(width, height);
            config.inframe.local_amplitude_cap = on;
            config.duration_s = duration;
            config.observers = 8;
            config.options.max_sites = 512;
            const auto result = core::run_flicker_experiment(config);
            table.add_row({std::string(on ? "on" : "off"), result.mean_score,
                           result.stddev_score});
        }
        bench::emit_table(args, "ablation_local_cap", table);
    }

    // ------------------------------------------------------------------
    bench::print_header("Ablation E: Pixel size p (spatial capacity vs channel robustness)",
                        "3.3: p approximating the eye resolution minimizes phantom-array "
                        "visibility; smaller p raises capacity but nears the camera's Nyquist");
    {
        util::Table table({"pixel size p", "raw kbps", "goodput kbps", "available GOBs",
                           "phantom-array score (drifting gaze)"});
        for (const int p : {1, 2, 3, 4}) {
            auto config = base_link(duration);
            config.video = video::make_dark_gray_video(width, height);
            config.inframe.geometry = coding::fitted_geometry(width, height, p);
            const auto link = core::run_link_experiment(config);

            core::Flicker_experiment_config flicker;
            flicker.video = video::make_dark_gray_video(width, height);
            flicker.inframe = config.inframe;
            flicker.duration_s = duration;
            flicker.observers = 4;
            flicker.options.max_sites = 384;
            // Saccade-like gaze drift beats against the pattern (phantom
            // array, 2): fixed drift speed, and a pooling aperture wide
            // enough that Pixels at/below the eye's resolution fuse away.
            flicker.options.gaze_velocity_x = 3.0;
            flicker.options.pooling_sigma_540 = 4.0;
            const auto phantom = core::run_flicker_experiment(flicker);

            table.add_row({static_cast<long long>(p), link.raw_rate_kbps, link.goodput_kbps,
                           link.available_gob_ratio, phantom.mean_score});
        }
        bench::emit_table(args, "ablation_pixel_size", table);
    }

    // ------------------------------------------------------------------
    bench::print_header("Ablation F: decision hysteresis (unknown band width)",
                        "wider deadband trades availability for fewer confident mistakes");
    {
        util::Table table({"hysteresis", "available GOBs", "GOB errors", "block errors",
                           "goodput kbps"});
        for (const double h : {0.0, 0.1, 0.2, 0.4}) {
            auto config = base_link(duration);
            config.hysteresis = h;
            const auto result = core::run_link_experiment(config);
            table.add_row({h, result.available_gob_ratio, result.gob_error_rate,
                           result.block_error_rate, result.goodput_kbps});
        }
        bench::emit_table(args, "ablation_hysteresis", table);
    }

    // ------------------------------------------------------------------
    bench::print_header("Ablation G: content survey (beyond the paper's three videos)",
                        "how the channel behaves across content classes, both detectors");
    {
        util::Table table({"content", "detector", "goodput kbps", "available GOBs",
                           "block errors"});
        const std::vector<std::pair<std::string, std::shared_ptr<const video::Video_source>>>
            sources = {
                {"dark gray (paper)", video::make_dark_gray_video(width, height)},
                {"sunrise (paper-like)", video::make_sunrise_video(width, height)},
                {"slideshow (hard cuts)",
                 std::make_shared<video::Slideshow_video>(width, height, 30)},
                {"news ticker (text)",
                 std::make_shared<video::Ticker_video>(width, height,
                                                       "BREAKING: DUAL-MODE DISPLAYS", 3.0f)},
                {"moving bars (motion)",
                 std::make_shared<video::Moving_bars_video>(width, height, 40, 3.0f)},
                {"white noise (worst case)",
                 std::make_shared<video::Noise_video>(width, height, 127.0f, 30.0f)},
            };
        for (const auto& [label, source] : sources) {
            for (const auto detector : {core::Detector::noise_level, core::Detector::matched}) {
                auto config = base_link(duration);
                config.video = source;
                config.detector = detector;
                const auto result = core::run_link_experiment(config);
                table.add_row({label, std::string(core::to_string(detector)),
                               result.goodput_kbps, result.available_gob_ratio,
                               result.block_error_rate});
            }
        }
        bench::emit_table(args, "ablation_content_survey", table);
    }

    std::printf("done.\n");
    return 0;
}
