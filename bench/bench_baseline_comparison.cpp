// Dual-mode vs conventional approaches (1, 6).
//
// Three contenders for putting data on a screen:
//   - conventional exclusive barcode (PixNet/COBRA style): high raw rate,
//     but the human gets a strobing code instead of video;
//   - LSB steganography/watermarking: invisible, but does not survive the
//     camera channel at all;
//   - InFrame: full-frame video for the human AND kbps-class data for the
//     device, simultaneously.

#include "baseline/barcode.hpp"
#include "baseline/naive.hpp"
#include "baseline/steganography.hpp"
#include "bench_common.hpp"
#include "core/link_runner.hpp"

#include <cstdio>

int main(int argc, char** argv)
{
    using namespace inframe;
    const auto args = bench::parse_args(argc, argv);
    telemetry::Session telemetry_session(args.telemetry);
    const double duration = bench::scale_duration(args.scale, 1.0, 2.0, 4.0);

    bench::print_header("Baseline comparison: exclusive barcode vs LSB stego vs InFrame",
                        "InFrame trades some of the barcode's capacity for an unimpaired "
                        "full-frame viewing experience; steganography delivers neither");

    constexpr int width = 480;
    constexpr int height = 270;
    const auto geometry = coding::fitted_geometry(width, height, 2);

    channel::Display_params display;
    channel::Camera_params camera;
    camera.sensor_width = width;
    camera.sensor_height = height;

    util::Table table({"system", "camera goodput kbps", "viewing score (0-4, lower better)",
                       "video shown to humans"});

    // --- Conventional exclusive barcode ----------------------------------
    {
        baseline::Barcode_config config;
        config.geometry = geometry;
        const auto metered =
            channel::auto_expose(camera, (config.black_level + config.white_level) / 2.0);
        const auto result =
            baseline::run_barcode_experiment(config, display, metered, duration);

        // What the viewer experiences: the strobing barcode itself.
        core::Flicker_experiment_config flicker;
        flicker.video = video::make_dark_gray_video(width, height);
        flicker.inframe = core::paper_config(width, height);
        flicker.duration_s = std::min(duration, 1.5);
        flicker.observers = 8;
        flicker.options.max_sites = 512;
        util::Prng barcode_prng(1);
        flicker.frame_producer = [&, config](const img::Imagef&, std::int64_t j) {
            util::Prng prng(static_cast<std::uint64_t>(j / config.hold_refreshes));
            return baseline::render_barcode(
                config, prng.next_bits(static_cast<std::size_t>(geometry.block_count())));
        };
        const auto score = core::run_flicker_experiment(flicker);
        table.add_row({std::string("exclusive barcode"),
                       result.goodput_kbps * (1.0 - result.block_error_rate),
                       score.mean_score, std::string("no (screen occupied)")});
    }

    // --- LSB steganography -----------------------------------------------
    {
        // Embed into the video and try to read back through the camera.
        util::Prng prng(2);
        const auto video = video::make_sunrise_video(width, height);
        const auto frame = video->frame(0);
        const auto bits = prng.next_bits(frame.pixel_count() / 4);
        const auto stego = baseline::lsb_embed(frame, bits);
        const std::vector<img::Imagef> frames(8, img::to_float(stego));
        const auto captures = channel::run_link(display, camera, frames);
        double ber = 0.5;
        if (!captures.empty()) {
            ber = baseline::bit_error_rate(
                bits, baseline::lsb_extract(captures[0].image, bits.size()));
        }
        // Goodput of a channel at ~50% BER is effectively zero.
        table.add_row({std::string("LSB steganography"),
                       0.0, 0.0,
                       std::string("yes (BER " + util::format_fixed(ber, 2) + " -> no data)")});
    }

    // --- InFrame -----------------------------------------------------------
    {
        core::Link_experiment_config config;
        config.video = video::make_sunrise_video(width, height);
        config.inframe = core::paper_config(width, height);
        config.inframe.geometry = geometry;
        config.camera = camera;
        config.detector = core::Detector::matched;
        config.duration_s = duration;
        const auto link = core::run_link_experiment(config);

        core::Flicker_experiment_config flicker;
        flicker.video = video::make_sunrise_video(width, height);
        flicker.inframe = config.inframe;
        flicker.duration_s = std::min(duration, 1.5);
        flicker.observers = 8;
        flicker.options.max_sites = 512;
        const auto score = core::run_flicker_experiment(flicker);
        table.add_row({std::string("InFrame (dual-mode)"), link.goodput_kbps,
                       score.mean_score, std::string("yes (full frame)")});
    }

    bench::emit_table(args, "baseline_comparison", table);
    std::printf("note: rates at this reduced 480x270 demo scale; Fig. 7's bench runs the\n"
                "paper's full 1920x1080 rig where InFrame reaches ~11-13 kbps.\n");
    return 0;
}
