// Channel robustness sweeps.
//
// 3.3 names the screen-camera impairments the decoder must survive:
// frame-rate mismatch, rolling shutter, poor capture quality. Each sweep
// below dials one impairment while holding the rest at defaults.

#include "bench_common.hpp"
#include "core/link_runner.hpp"

#include <array>
#include <cstdio>

namespace {

using namespace inframe;

constexpr int width = 480;
constexpr int height = 270;

core::Link_experiment_config base(double duration)
{
    core::Link_experiment_config config;
    config.video = video::make_dark_gray_video(width, height);
    config.inframe = core::paper_config(width, height);
    config.inframe.geometry = coding::fitted_geometry(width, height, 2);
    config.inframe.tau = 12;
    config.camera.sensor_width = width;
    config.camera.sensor_height = height;
    config.auto_exposure = false; // sweeps set exposure explicitly
    config.duration_s = duration;
    return config;
}

void report(util::Table& table, const std::string& label,
            const core::Link_experiment_result& result)
{
    table.add_row({label, result.goodput_kbps, result.available_gob_ratio,
                   result.block_error_rate, result.trusted_bit_error_rate});
}

} // namespace

int main(int argc, char** argv)
{
    const auto args = bench::parse_args(argc, argv);
    telemetry::Session telemetry_session(args.telemetry);
    const double duration = bench::scale_duration(args.scale, 1.0, 2.0, 4.0);

    bench::print_header("Robustness 1: exposure time vs the complementary pair",
                        "exposure near one display period integrates +D and -D together and "
                        "cancels the data — the bright-screen/short-exposure requirement");
    {
        util::Table table({"exposure", "goodput kbps", "available GOBs", "block errors",
                           "trusted-bit errors"});
        for (const double denominator : {480.0, 360.0, 240.0, 180.0, 120.0}) {
            auto config = base(duration);
            config.camera.exposure_s = 1.0 / denominator;
            report(table, "1/" + util::format_fixed(denominator, 0) + " s",
                   core::run_link_experiment(config));
        }
        bench::emit_table(args, "robustness_exposure", table);
    }

    bench::print_header("Robustness 2: rolling-shutter readout skew",
                        "longer readout widens the cancelled band of rows; GOB availability "
                        "falls but decoded bits stay correct");
    {
        util::Table table({"readout skew", "goodput kbps", "available GOBs", "block errors",
                           "trusted-bit errors"});
        for (const double readout_ms : {0.0, 2.0, 4.0, 6.0, 10.0}) {
            auto config = base(duration);
            config.camera.readout_s = readout_ms / 1000.0;
            report(table, util::format_fixed(readout_ms, 1) + " ms",
                   core::run_link_experiment(config));
        }
        bench::emit_table(args, "robustness_readout", table);
    }

    bench::print_header("Robustness 3: sensor noise (capture quality)",
                        "noise raises the bit-0 residual floor toward the pattern level");
    {
        util::Table table({"shot-noise scale", "goodput kbps", "available GOBs", "block errors",
                           "trusted-bit errors"});
        for (const double shot : {0.0, 0.12, 0.25, 0.5, 0.8}) {
            auto config = base(duration);
            config.camera.shot_noise_scale = shot;
            report(table, util::format_fixed(shot, 2), core::run_link_experiment(config));
        }
        bench::emit_table(args, "robustness_noise", table);
    }

    bench::print_header("Robustness 4: camera/display frame-rate mismatch",
                        "an unlocked camera clock drifts through the display phase; the "
                        "decoder's time-based grouping must keep up");
    {
        util::Table table({"camera fps", "goodput kbps", "available GOBs", "block errors",
                           "trusted-bit errors"});
        for (const double fps : {30.0, 29.97, 29.5, 28.0, 25.0}) {
            auto config = base(duration);
            config.camera.fps = fps;
            report(table, util::format_fixed(fps, 2), core::run_link_experiment(config));
        }
        bench::emit_table(args, "robustness_fps_mismatch", table);
    }

    bench::print_header("Robustness 5: optical blur",
                        "defocus attenuates the chessboard (it lives near the camera's "
                        "resolution limit) long before it hurts ordinary video");
    {
        util::Table table({"blur sigma (sensor px)", "goodput kbps", "available GOBs",
                           "block errors", "trusted-bit errors"});
        for (const double sigma : {0.0, 0.5, 1.0, 1.5, 2.5}) {
            auto config = base(duration);
            config.camera.optical_blur_sigma = sigma;
            report(table, util::format_fixed(sigma, 1), core::run_link_experiment(config));
        }
        bench::emit_table(args, "robustness_blur", table);
    }

    bench::print_header("Robustness 6: perspective viewing angle (extension)",
                        "a calibrated homography shared by camera and matched-filter decoder "
                        "keeps the channel alive at increasing keystone severity");
    {
        util::Table table({"keystone inset (px of 480)", "goodput kbps", "available GOBs",
                           "block errors", "trusted-bit errors"});
        for (const double inset : {0.0, 10.0, 25.0, 45.0}) {
            auto config = base(duration);
            config.detector = core::Detector::matched;
            // Screen quad on the sensor: top corners pulled inward.
            const std::array<double, 8> quad = {inset,          inset * 0.4,
                                                width - inset,  inset * 0.5,
                                                width - 2.0,    height - 2.0,
                                                2.0,            height - 3.0};
            const auto sensor_to_screen =
                img::Homography::rect_to_quad(width, height, quad).inverse();
            config.camera.sensor_to_screen = sensor_to_screen;
            config.decoder_capture_to_screen = sensor_to_screen;
            report(table, util::format_fixed(inset, 0), core::run_link_experiment(config));
        }
        bench::emit_table(args, "robustness_perspective", table);
    }

    std::printf("done.\n");
    return 0;
}
