// Shared helpers for the figure-reproduction benches.
#pragma once

#include "util/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

namespace inframe::bench {

// Scale of an experiment run, selectable from the command line:
//   --smoke : CI bitrot check — shortest run that still exercises the
//             whole pipeline (registered as a ctest with the `bench`
//             label)
//   --quick : fastest sanity pass a human would read numbers from
//   (none)  : default, balances fidelity and runtime
//   --full  : longest runs (closest statistics)
enum class Run_scale { smoke, quick, normal, full };

inline Run_scale parse_scale(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) return Run_scale::smoke;
        if (std::strcmp(argv[i], "--quick") == 0) return Run_scale::quick;
        if (std::strcmp(argv[i], "--full") == 0) return Run_scale::full;
    }
    return Run_scale::normal;
}

inline double scale_duration(Run_scale scale, double quick, double normal, double full)
{
    switch (scale) {
    // A smoke run shrinks the quick duration but never below ~3 data
    // frames (0.3 s at the default 120 Hz / tau 12), so every stage of
    // the pipeline still runs end to end.
    case Run_scale::smoke: return std::min(quick, 0.3);
    case Run_scale::quick: return quick;
    case Run_scale::normal: return normal;
    case Run_scale::full: return full;
    }
    return normal;
}

inline void print_header(const char* figure, const char* paper_statement)
{
    std::printf("================================================================\n");
    std::printf("%s\n", figure);
    std::printf("paper: %s\n", paper_statement);
    std::printf("================================================================\n\n");
}

inline void print_table(const util::Table& table)
{
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace inframe::bench
