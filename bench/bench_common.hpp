// Shared helpers for the figure-reproduction benches.
#pragma once

#include "util/csv.hpp"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

namespace inframe::bench {

// Scale of an experiment run, selectable from the command line:
//   --quick : fastest sanity pass
//   (none)  : default, balances fidelity and runtime
//   --full  : longest runs (closest statistics)
enum class Run_scale { quick, normal, full };

inline Run_scale parse_scale(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) return Run_scale::quick;
        if (std::strcmp(argv[i], "--full") == 0) return Run_scale::full;
    }
    return Run_scale::normal;
}

inline double scale_duration(Run_scale scale, double quick, double normal, double full)
{
    switch (scale) {
    case Run_scale::quick: return quick;
    case Run_scale::normal: return normal;
    case Run_scale::full: return full;
    }
    return normal;
}

inline void print_header(const char* figure, const char* paper_statement)
{
    std::printf("================================================================\n");
    std::printf("%s\n", figure);
    std::printf("paper: %s\n", paper_statement);
    std::printf("================================================================\n\n");
}

inline void print_table(const util::Table& table)
{
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace inframe::bench
