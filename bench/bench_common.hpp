// Shared helpers for the figure-reproduction benches.
#pragma once

#include "telemetry/telemetry.hpp"
#include "util/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

namespace inframe::bench {

// Scale of an experiment run, selectable from the command line:
//   --smoke : CI bitrot check — shortest run that still exercises the
//             whole pipeline (registered as a ctest with the `bench`
//             label)
//   --quick : fastest sanity pass a human would read numbers from
//   (none)  : default, balances fidelity and runtime
//   --full  : longest runs (closest statistics)
enum class Run_scale { smoke, quick, normal, full };

inline Run_scale parse_scale(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) return Run_scale::smoke;
        if (std::strcmp(argv[i], "--quick") == 0) return Run_scale::quick;
        if (std::strcmp(argv[i], "--full") == 0) return Run_scale::full;
    }
    return Run_scale::normal;
}

inline double scale_duration(Run_scale scale, double quick, double normal, double full)
{
    switch (scale) {
    // A smoke run shrinks the quick duration but never below ~3 data
    // frames (0.3 s at the default 120 Hz / tau 12), so every stage of
    // the pipeline still runs end to end.
    case Run_scale::smoke: return std::min(quick, 0.3);
    case Run_scale::quick: return quick;
    case Run_scale::normal: return normal;
    case Run_scale::full: return full;
    }
    return normal;
}

// Full command line of a scale-driven bench:
//   --smoke|--quick|--full   run scale (see Run_scale)
//   --csv <dir>              also write every table as <dir>/<slug>.csv
//   --trace <dir>            telemetry export (trace.json, frames.jsonl,
//                            metrics.json) for the whole bench run
struct Args {
    Run_scale scale = Run_scale::normal;
    std::string csv_dir;
    telemetry::Config telemetry;
};

inline Args parse_args(int argc, char** argv)
{
    Args args;
    args.scale = parse_scale(argc, argv);
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0) args.csv_dir = argv[i + 1];
    }
    args.telemetry = telemetry::config_from_args(argc, argv);
    return args;
}

inline void print_header(const char* figure, const char* paper_statement)
{
    std::printf("================================================================\n");
    std::printf("%s\n", figure);
    std::printf("paper: %s\n", paper_statement);
    std::printf("================================================================\n\n");
}

inline void print_table(const util::Table& table)
{
    table.print(std::cout);
    std::cout << "\n";
}

// Prints the table and, under --csv, also writes it as <csv_dir>/<slug>.csv
// (consistent column names: whatever the stdout table shows is what the
// CSV carries). Every bench table goes through here so each bench_* run
// leaves a machine-readable artifact next to its stdout output.
inline void emit_table(const Args& args, const char* slug, const util::Table& table)
{
    print_table(table);
    if (args.csv_dir.empty()) return;
    std::filesystem::create_directories(args.csv_dir);
    const auto path = (std::filesystem::path(args.csv_dir) / (std::string(slug) + ".csv")).string();
    table.write_csv_file(path);
    std::printf("[csv] %s\n\n", path.c_str());
}

} // namespace inframe::bench
