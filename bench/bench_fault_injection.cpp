// Fault-injection sweeps: BER/throughput under channel impairments, and
// the erasure-aware vs hard-decision decoder comparison.
//
// The paper's rig is a clean lab link; DeepLight and Revelio both report
// that deployment kills screen-camera links with frame drops, shake and
// occlusion long before additive noise does. Each sweep below dials one
// impairment from channel::Impairment_config while holding the rest at
// zero, and decodes the same channel twice: hard-decision (the paper's
// strawman) and erasure-aware (ambiguous/occluded blocks become erasures;
// GOB parity fills single-erasure GOBs; RS consumes the trusted mask).
//
// The run fails (non-zero exit) when the determinism contract breaks —
// any impaired run must be bit-identical at threads=1 and threads=4 —
// or, at --quick scale and above, when erasure-aware decoding does not
// beat hard-decision BER at two or more swept impairment levels.

#include "bench_common.hpp"
#include "core/link_runner.hpp"

#include <cstdio>
#include <string>
#include <vector>

namespace {

using namespace inframe;

constexpr int width = 480;
constexpr int height = 270;

core::Link_experiment_config base(double duration)
{
    core::Link_experiment_config config;
    config.video = video::make_dark_gray_video(width, height);
    config.inframe = core::paper_config(width, height);
    config.inframe.geometry = coding::fitted_geometry(width, height, 2);
    config.inframe.tau = 12;
    config.camera.sensor_width = width;
    config.camera.sensor_height = height;
    config.auto_exposure = false;
    config.duration_s = duration;
    return config;
}

struct Mode_pair {
    core::Link_experiment_result hard;
    core::Link_experiment_result erasure;
};

Mode_pair run_both(core::Link_experiment_config config)
{
    Mode_pair pair;
    config.erasure_aware = false;
    pair.hard = core::run_link_experiment(config);
    config.erasure_aware = true;
    pair.erasure = core::run_link_experiment(config);
    return pair;
}

int improved = 0; // swept levels where erasure BER < hard BER strictly
int impaired_levels = 0;

void report(util::Table& table, const std::string& label, const Mode_pair& pair,
            bool impairment_active)
{
    table.add_row({label, pair.hard.payload_bit_error_rate,
                   pair.erasure.payload_bit_error_rate, pair.erasure.recovered_gob_ratio,
                   pair.hard.goodput_kbps, pair.erasure.goodput_kbps,
                   static_cast<double>(pair.erasure.captures_dropped)});
    if (impairment_active) {
        ++impaired_levels;
        if (pair.erasure.payload_bit_error_rate < pair.hard.payload_bit_error_rate) ++improved;
    }
}

std::vector<std::string> table_header()
{
    return {"level",         "hard BER",     "erasure BER", "recovered GOBs",
            "hard goodput",  "eras goodput", "drops"};
}

// Exact-equality comparison of two experiment results: the determinism
// contract is bit-identical output, not approximately-equal output.
bool identical(const core::Link_experiment_result& a, const core::Link_experiment_result& b)
{
    return a.data_frames == b.data_frames && a.captures == b.captures
           && a.available_gob_ratio == b.available_gob_ratio
           && a.gob_error_rate == b.gob_error_rate && a.goodput_kbps == b.goodput_kbps
           && a.block_error_rate == b.block_error_rate
           && a.unknown_block_ratio == b.unknown_block_ratio
           && a.trusted_bit_error_rate == b.trusted_bit_error_rate
           && a.payload_bit_error_rate == b.payload_bit_error_rate
           && a.recovered_gob_ratio == b.recovered_gob_ratio
           && a.occluded_block_ratio == b.occluded_block_ratio
           && a.captures_dropped == b.captures_dropped;
}

} // namespace

int main(int argc, char** argv)
{
    const auto args = bench::parse_args(argc, argv);
    telemetry::Session telemetry_session(args.telemetry);
    const double duration = bench::scale_duration(args.scale, 1.0, 2.0, 4.0);

    bench::print_header("Fault injection 1: capture frame drops + stale duplication",
                        "capture-pipeline losses thin the vote per data frame; erasure "
                        "handling must not make a lossy link worse");
    {
        util::Table table(table_header());
        for (const double drop : {0.0, 0.05, 0.15, 0.30}) {
            auto config = base(duration);
            config.impairments.drop_probability = drop;
            config.impairments.duplicate_probability = drop > 0.0 ? 0.05 : 0.0;
            report(table, "drop " + util::format_fixed(drop, 2), run_both(config), drop > 0.0);
        }
        bench::emit_table(args, "fault_drop", table);
    }

    bench::print_header("Fault injection 2: translational camera shake",
                        "per-capture jitter the decoder's calibration does not know about "
                        "smears the chessboard across block boundaries");
    {
        util::Table table(table_header());
        for (const double sigma : {0.0, 0.3, 0.8, 1.6}) {
            auto config = base(duration);
            config.impairments.shake_sigma_px = sigma;
            report(table, "sigma " + util::format_fixed(sigma, 1) + " px", run_both(config),
                   sigma > 0.0);
        }
        bench::emit_table(args, "fault_shake", table);
    }

    bench::print_header("Fault injection 3: partial occlusion",
                        "an occluder kills the residual metric; hard decisions read covered "
                        "blocks as confident zeros, erasure-aware decoding flags and fills");
    {
        util::Table table(table_header());
        for (const double fraction : {0.0, 0.03, 0.08, 0.15}) {
            auto config = base(duration);
            config.impairments.occlusion_fraction = fraction;
            config.impairments.occlusion_count = 2;
            report(table, "area " + util::format_fixed(fraction, 2), run_both(config),
                   fraction > 0.0);
        }
        bench::emit_table(args, "fault_occlusion", table);
    }

    bench::print_header("Fault injection 4: exposure/gain drift",
                        "auto-exposure hunting modulates the whole frame at a few hertz; "
                        "the per-row threshold split must track it");
    {
        util::Table table(table_header());
        for (const double amplitude : {0.0, 0.1, 0.25, 0.45}) {
            auto config = base(duration);
            config.impairments.gain_drift_amplitude = amplitude;
            config.impairments.offset_drift_dn = amplitude * 20.0;
            report(table, "gain +-" + util::format_fixed(amplitude, 2), run_both(config),
                   amplitude > 0.0);
        }
        bench::emit_table(args, "fault_exposure_drift", table);
    }

    bench::print_header("Fault injection 5: rolling-shutter tear",
                        "a mid-scanout buffer swap shears the lower band off the block "
                        "grid; torn rows should become erasures, not bit errors");
    {
        util::Table table(table_header());
        for (const double probability : {0.0, 0.25, 0.6, 1.0}) {
            auto config = base(duration);
            config.impairments.tear_probability = probability;
            config.impairments.tear_shift_px = 10.0;
            report(table, "p " + util::format_fixed(probability, 2), run_both(config),
                   probability > 0.0);
        }
        bench::emit_table(args, "fault_tear", table);
    }

    bench::print_header("Determinism: combined impairments, threads 1 vs 4",
                        "every impairment draw is a pure function of (seed, stage, capture); "
                        "the impaired run must be bit-identical at any thread count");
    bool deterministic = true;
    {
        auto config = base(std::min(duration, 1.0));
        config.impairments.drop_probability = 0.1;
        config.impairments.duplicate_probability = 0.05;
        config.impairments.gain_drift_amplitude = 0.15;
        config.impairments.shake_sigma_px = 0.5;
        config.impairments.occlusion_fraction = 0.08;
        config.impairments.tear_probability = 0.3;
        config.erasure_aware = true;
        config.threads = 1;
        const auto serial = core::run_link_experiment(config);
        config.threads = 4;
        const auto parallel = core::run_link_experiment(config);
        deterministic = identical(serial, parallel);
        std::printf("threads=1 vs threads=4: %s (BER %.6f vs %.6f, drops %lld vs %lld)\n\n",
                    deterministic ? "IDENTICAL" : "MISMATCH",
                    serial.payload_bit_error_rate, parallel.payload_bit_error_rate,
                    static_cast<long long>(serial.captures_dropped),
                    static_cast<long long>(parallel.captures_dropped));
    }

    std::printf("erasure-aware beat hard-decision BER at %d of %d impaired levels\n", improved,
                impaired_levels);
    if (!deterministic) {
        std::printf("FAIL: impaired runs are not bit-identical across thread counts\n");
        return 1;
    }
    // At smoke scale the runs are too short for the BER comparison to be
    // meaningful; the smoke ctest only guards build/run bitrot and the
    // determinism contract.
    if (args.scale != bench::Run_scale::smoke && improved < 2) {
        std::printf("FAIL: erasure-aware decoding should win at >= 2 impaired levels\n");
        return 1;
    }
    std::printf("done.\n");
    return 0;
}
