// Figure 3 — naive designs flicker, InFrame does not.
//
// The paper inserted data frames between video frames at several V:D
// ratios; every such scheme showed "severe flickers" / "obvious artifacts
// and color distortions" in the user study, while normal playback and the
// complementary-frame design do not. This bench scores each scheme with
// the simulated observer panel on the same video content.

#include "baseline/naive.hpp"
#include "bench_common.hpp"
#include "core/link_runner.hpp"

#include <cstdio>

int main(int argc, char** argv)
{
    using namespace inframe;
    const auto args = bench::parse_args(argc, argv);
    telemetry::Session telemetry_session(args.telemetry);
    const double duration = bench::scale_duration(args.scale, 1.0, 2.0, 4.0);

    bench::print_header(
        "Figure 3: naive frame-insertion designs vs InFrame (flicker 0-4)",
        "naive insertion at any V:D ratio flickers (scores ~3-4); normal playback and "
        "InFrame's complementary frames do not (satisfactory = 0-1)");

    constexpr int width = 480;
    constexpr int height = 270;
    const auto geometry = coding::paper_geometry(width, height);

    util::Table table({"scheme", "gray video score", "sunrise score", "verdict"});

    auto run_scheme = [&](const char* name,
                          std::function<img::Imagef(const img::Imagef&, std::int64_t)> producer) {
        double scores[2];
        int slot = 0;
        for (const auto& video :
             {video::make_dark_gray_video(width, height), video::make_sunrise_video(width, height)}) {
            core::Flicker_experiment_config config;
            config.video = video;
            config.inframe = core::paper_config(width, height);
            config.inframe.tau = 12;
            config.duration_s = duration;
            config.observers = 8;
            config.options.max_sites = 512;
            config.frame_producer = producer;
            scores[slot++] = core::run_flicker_experiment(config).mean_score;
        }
        const double worst = std::max(scores[0], scores[1]);
        table.add_row({std::string(name), scores[0], scores[1],
                       std::string(worst <= 1.0   ? "satisfactory"
                                   : worst <= 2.0 ? "noticeable"
                                                  : "severe flicker")});
    };

    // (b) normal playback and the naive insertions of Fig. 3.
    for (const auto scheme :
         {baseline::Naive_scheme::normal, baseline::Naive_scheme::v_ddd,
          baseline::Naive_scheme::alternate_vd, baseline::Naive_scheme::vvdd,
          baseline::Naive_scheme::vvvd}) {
        baseline::Naive_multiplexer mux(scheme, geometry, 40.0f);
        run_scheme(baseline::to_string(scheme), mux.producer());
    }
    // InFrame itself (empty producer = the real encoder).
    run_scheme("InFrame (V +- D)", nullptr);

    bench::emit_table(args, "fig3_naive_designs", table);
    std::printf("note: data amplitude for naive schemes is 40 (semi-transparent barcodes);\n"
                "InFrame runs at its default delta = 20, tau = 12.\n");
    return 0;
}
