// Figure 4 — complementary frame pairs.
//
// The paper shows V+D and V-D for a pure gray frame and a normal video
// frame: each multiplexed frame has "obvious artifacts", but the pair
// averages back to the original. This bench regenerates those images at
// the paper's full 1920x1080 geometry and quantifies both properties
// (single-frame PSNR low, averaged-pair PSNR ~lossless).

#include "bench_common.hpp"
#include "core/encoder.hpp"
#include "imgproc/image_ops.hpp"
#include "imgproc/io.hpp"
#include "imgproc/metrics.hpp"
#include "util/prng.hpp"
#include "video/playback.hpp"

#include <cstdio>
#include <filesystem>

int main(int argc, char** argv)
{
    using namespace inframe;
    const auto args = bench::parse_args(argc, argv);
    telemetry::Session telemetry_session(args.telemetry);

    bench::print_header("Figure 4: complementary frame pairs V +- D",
                        "individual multiplexed frames show the chessboard; the pair average "
                        "is indistinguishable from the original video frame");

    constexpr int width = 1920;
    constexpr int height = 1080;
    const auto config = core::paper_config(width, height);
    util::Prng prng(util::Prng::default_seed);
    const auto bits = prng.next_bits(static_cast<std::size_t>(config.geometry.block_count()));

    const std::filesystem::path out_dir = "fig4_out";
    std::filesystem::create_directories(out_dir);

    util::Table table({"content", "V+D PSNR (dB)", "V-D PSNR (dB)", "pair-average PSNR (dB)",
                       "pair-average max |err|"});

    const auto gray = video::make_gray_video(width, height)->frame(0);
    const auto sunrise = video::make_sunrise_video(width, height)->frame(450);
    for (const auto& [name, frame] :
         {std::pair{"pure gray (a)(b)", gray}, {"normal video (c)(d)", sunrise}}) {
        const auto pair = core::make_complementary_pair(config, frame, bits);
        img::Imagef average = img::add(pair.plus, pair.minus);
        average = img::affine(average, 0.5f, 0.0f);
        const auto err = img::abs_diff(average, frame);
        const auto tag = std::string(name).substr(0, std::string(name).find(' '));
        img::write_pnm(pair.plus, (out_dir / (tag + "_plus.pgm")).string());
        img::write_pnm(pair.minus, (out_dir / (tag + "_minus.pgm")).string());
        img::write_pnm(average, (out_dir / (tag + "_average.pgm")).string());
        const double avg_psnr = img::psnr(average, frame);
        table.add_row({std::string(name), img::psnr(pair.plus, frame),
                       img::psnr(pair.minus, frame),
                       std::isinf(avg_psnr) ? 120.0 : avg_psnr,
                       static_cast<double>(img::min_max(err).second)});
    }

    bench::emit_table(args, "fig4_complementary", table);
    std::printf("images written to %s/ (PSNR 120 printed for exactly lossless).\n",
                out_dir.string().c_str());
    return 0;
}
