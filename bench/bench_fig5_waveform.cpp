// Figure 5 — the temporal smoothing waveform and its low-pass response.
//
// The paper plots the amplitude waveform of one Pixel across a bit
// sequence (red solid curve) and the output of an electronic low-pass
// filter (blue dotted curve), arguing that the SRRC-smoothed transition
// leaves no visible low-frequency residue. This bench prints both series
// and quantifies the spectral claim for all three transition shapes, plus
// the perceptual-model verdict (3.2's verification experiment).

#include "bench_common.hpp"
#include "dsp/envelope.hpp"
#include "dsp/filter.hpp"
#include "dsp/spectrum.hpp"
#include "hvs/temporal_model.hpp"

#include <cstdio>

int main(int argc, char** argv)
{
    using namespace inframe;
    const auto args = bench::parse_args(argc, argv);
    telemetry::Session telemetry_session(args.telemetry);

    bench::print_header("Figure 5: temporal smoothing waveform + low-pass verification",
                        "the SRRC envelope transitions between data frames without exciting "
                        "the visible band; an electronic low-pass of the waveform stays flat");

    constexpr int tau = 12;
    constexpr double fps = 120.0;
    const std::uint8_t bits[] = {1, 1, 0, 1, 0, 0, 1, 1, 0, 1};

    // --- The Fig. 5 curves (SRRC) ---------------------------------------
    const auto waveform = dsp::pixel_waveform(bits, tau, dsp::Transition_shape::srrc);
    // "Electronic low-pass filter": 2nd-order Butterworth at 20 Hz.
    dsp::Butterworth_lowpass electronic(20.0, fps);
    std::vector<double> luminance(waveform.size());
    for (std::size_t i = 0; i < waveform.size(); ++i) luminance[i] = 127.0 + 20.0 * waveform[i];
    const auto filtered = electronic.filter(luminance);

    std::printf("series (CSV): frame,time_s,amplitude_waveform,lowpass_output\n");
    for (std::size_t i = 0; i < waveform.size(); ++i) {
        std::printf("%zu,%.5f,%.4f,%.3f\n", i, static_cast<double>(i) / fps, waveform[i],
                    filtered[i]);
    }
    std::printf("\n");

    // --- Quantified claims per transition shape --------------------------
    util::Table table({"transition", "max lowpass deviation", "2-40 Hz band energy",
                       "perceived amplitude (px)", "vs threshold"});
    const hvs::Vision_model_params vision;
    const hvs::Observer observer;
    const double threshold = hvs::amplitude_threshold(vision, observer, 127.0);
    for (const auto shape : {dsp::Transition_shape::srrc, dsp::Transition_shape::linear,
                             dsp::Transition_shape::stair}) {
        auto wave = dsp::pixel_waveform(bits, tau, shape);
        std::vector<double> lum(wave.size());
        for (std::size_t i = 0; i < wave.size(); ++i) lum[i] = 127.0 + 20.0 * wave[i];
        dsp::Butterworth_lowpass lp(20.0, fps);
        const auto out = lp.filter(lum);
        double max_dev = 0.0;
        for (std::size_t i = wave.size() / 4; i < out.size(); ++i) {
            max_dev = std::max(max_dev, std::fabs(out[i] - 127.0));
        }
        const double band = dsp::band_energy(wave, fps, 2.0, 40.0) * 20.0;
        const double perceived =
            hvs::perceived_peak_amplitude(vision, observer, lum, fps, 127.0);
        table.add_row({std::string(dsp::to_string(shape)), max_dev, band, perceived,
                       std::string(perceived < threshold ? "below (imperceptible)"
                                                         : "ABOVE (visible)")});
    }
    bench::emit_table(args, "fig5_waveform", table);

    // --- The 60 Hz carrier claim -----------------------------------------
    const std::uint8_t steady[] = {1, 1, 1, 1, 1, 1, 1, 1};
    const auto carrier = dsp::pixel_waveform(steady, tau);
    std::printf("steady-state carrier: dominant frequency %.1f Hz (CFF is 40-50 Hz; the\n"
                "+-D alternation lives above it and fuses away)\n",
                dsp::dominant_frequency(carrier, fps));
    return 0;
}
