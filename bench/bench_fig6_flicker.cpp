// Figure 6 — subjective flicker perception (simulated panel).
//
// Left: flicker score vs the solid video's brightness (60-200) at
// delta = 20 and delta = 50. The paper finds scores below 1 on average,
// rising with brightness.
// Right: flicker score vs amplitude delta (20/30/50) for smoothing cycles
// tau = 10/12/14. Longer cycles reduce perceived flicker; larger
// amplitudes need longer cycles.
//
// The 8-person user study is replaced by the calibrated observer panel of
// src/hvs (see DESIGN.md for the substitution argument).

#include "bench_common.hpp"
#include "core/link_runner.hpp"

#include <cstdio>
#include <memory>

namespace {

using namespace inframe;

hvs::Panel_result run_panel(float brightness, float delta, int tau, double duration)
{
    constexpr int width = 480;
    constexpr int height = 270;
    core::Flicker_experiment_config config;
    config.video = std::make_shared<video::Solid_video>(width, height, brightness);
    config.inframe = core::paper_config(width, height);
    config.inframe.delta = delta;
    config.inframe.tau = tau;
    config.duration_s = duration;
    config.observers = 8;
    config.options.max_sites = 512;
    return core::run_flicker_experiment(config);
}

} // namespace

int main(int argc, char** argv)
{
    using namespace inframe;
    const auto args = bench::parse_args(argc, argv);
    telemetry::Session telemetry_session(args.telemetry);
    const double duration = bench::scale_duration(args.scale, 1.0, 2.0, 3.0);

    bench::print_header("Figure 6 (left): flicker perception vs color brightness",
                        "scores stay mostly at 0-1 ('satisfactory'); flicker strengthens as "
                        "the video turns brighter, and delta = 50 sits above delta = 20");

    {
        util::Table table({"brightness", "delta=20 mean", "delta=20 std", "delta=50 mean",
                           "delta=50 std"});
        for (const float brightness : {60.0f, 80.0f, 100.0f, 120.0f, 140.0f, 160.0f, 180.0f,
                                       200.0f}) {
            const auto low = run_panel(brightness, 20.0f, 12, duration);
            const auto high = run_panel(brightness, 50.0f, 12, duration);
            table.add_row({static_cast<double>(brightness), low.mean_score, low.stddev_score,
                           high.mean_score, high.stddev_score});
        }
        bench::emit_table(args, "fig6_brightness", table);
    }

    bench::print_header("Figure 6 (right): flicker perception vs waveform amplitude",
                        "larger tau reduces perceived flicker; delta <= 20 with tau >= 10 keeps "
                        "viewing clean");
    {
        util::Table table({"delta", "tau=10 mean", "tau=10 std", "tau=12 mean", "tau=12 std",
                           "tau=14 mean", "tau=14 std"});
        for (const float delta : {20.0f, 30.0f, 50.0f}) {
            std::vector<util::Table::Cell> row{static_cast<double>(delta)};
            for (const int tau : {10, 12, 14}) {
                const auto result = run_panel(127.0f, delta, tau, duration);
                row.emplace_back(result.mean_score);
                row.emplace_back(result.stddev_score);
            }
            table.add_row(std::move(row));
        }
        bench::emit_table(args, "fig6_amplitude", table);
    }

    std::printf("scale: 0 = no difference, 1 = almost unnoticeable, 2 = merely noticeable,\n"
                "3 = evident flicker, 4 = strong flicker (paper 4). 0-1 are satisfactory.\n");
    return 0;
}
