// Figure 7 — screen-camera data communication throughput.
//
// The paper's headline evaluation: throughput, available-GOB ratio and GOB
// error rate for three inputs (pure light gray, pure dark gray, a natural
// sunrise clip) at (delta=20, tau=10/12/14) and (delta=30, tau=12), on a
// 1920x1080 @ 120 Hz display captured at 1280x720 @ ~30 FPS.
//
// Paper numbers for reference: gray 12.6-12.8 kbps at tau=10 falling to
// ~9.2 kbps at tau=14 with ~95-98% available GOBs and 0.7-1.5% errors;
// real video 5.6-7.0 kbps with 62-68% availability.

#include "bench_common.hpp"
#include "core/link_runner.hpp"

#include <cstdio>

int main(int argc, char** argv)
{
    using namespace inframe;
    const auto args = bench::parse_args(argc, argv);
    telemetry::Session telemetry_session(args.telemetry);
    const double duration = bench::scale_duration(args.scale, 1.0, 2.0, 4.0);

    bench::print_header(
        "Figure 7: throughput / available GOBs / GOB errors (full-scale rig)",
        "gray ~12.8 kbps @ tau=10 > dark gray > natural video (5.6-7.0 kbps, 62-68% "
        "available); throughput scales ~1/tau");

    constexpr int width = 1920;
    constexpr int height = 1080;

    struct Setting {
        float delta;
        int tau;
    };
    const Setting settings[] = {{20.0f, 10}, {20.0f, 12}, {20.0f, 14}, {30.0f, 12}};

    util::Table table({"video", "delta", "tau", "raw kbps", "goodput kbps", "available GOBs",
                       "GOB error rate", "trusted-bit errors"});

    for (const char* which : {"gray", "dark-gray", "sunrise"}) {
        for (const auto& setting : settings) {
            core::Link_experiment_config config;
            if (std::string(which) == "gray") {
                config.video = video::make_gray_video(width, height);
            } else if (std::string(which) == "dark-gray") {
                config.video = video::make_dark_gray_video(width, height);
            } else {
                config.video = video::make_sunrise_video(width, height);
            }
            config.inframe = core::paper_config(width, height);
            config.inframe.delta = setting.delta;
            config.inframe.tau = setting.tau;
            config.duration_s = duration;
            const auto result = core::run_link_experiment(config);
            table.add_row({std::string(which), static_cast<double>(setting.delta),
                           static_cast<long long>(setting.tau), result.raw_rate_kbps,
                           result.goodput_kbps, result.available_gob_ratio,
                           result.gob_error_rate, result.trusted_bit_error_rate});
            std::printf("  done: %s delta=%.0f tau=%d -> %.2f kbps\n", which, setting.delta,
                        setting.tau, result.goodput_kbps);
        }
    }
    std::printf("\n");
    bench::emit_table(args, "fig7_throughput", table);
    std::printf("run with --full for longer (more stable) runs, --quick for a sanity pass.\n");
    return 0;
}
