// Microbenchmarks (google-benchmark) for the hot kernels.
//
// The paper's 5 asks about computational cost: these measure the
// per-frame cost of each pipeline stage so a real-time port (the encoder
// must keep up with 120 Hz, the decoder with 30 FPS captures) can budget
// against them. The per-stage benches drive the actual core::Stage
// objects (pool-backed tokens through push()), so what is measured is
// what the stage-graph runtime executes; the pure image/coding kernels
// below them have no stage wrapper.

#include "bench_common.hpp"

#include "coding/reed_solomon.hpp"
#include "core/decoder.hpp"
#include "core/pipeline.hpp"
#include "core/session.hpp"
#include "core/stages.hpp"
#include "channel/link.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/pool.hpp"
#include "imgproc/resize.hpp"
#include "simd/simd.hpp"
#include "util/csv.hpp"
#include "util/prng.hpp"
#include "video/playback.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <vector>

namespace {

using namespace inframe;

// Acquire a pool-backed token the way Video_stage manufactures them.
core::Frame_token make_token(std::int64_t index, int width, int height, float value)
{
    core::Frame_token token;
    token.index = index;
    token.time_s = static_cast<double>(index) / 120.0;
    token.image = img::Frame_pool::instance().acquire(width, height, 1);
    for (auto& v : token.image.values()) v = value;
    return token;
}

void recycle_all(std::vector<core::Frame_token>& tokens)
{
    for (auto& t : tokens) {
        img::Frame_pool::instance().recycle(std::move(t.image));
        img::Frame_pool::instance().recycle(std::move(t.reference));
    }
    tokens.clear();
}

void bm_encode_stage(benchmark::State& state)
{
    const int width = static_cast<int>(state.range(0));
    const int height = width * 9 / 16;
    auto config = core::paper_config(width, height);
    core::Encode_stage::Options options;
    options.payloads = core::make_random_payload_source(
        1, config.geometry.payload_bits_per_frame());
    core::Encode_stage encode(config, std::move(options));
    std::int64_t index = 0;
    for (auto _ : state) {
        auto out = encode.push(make_token(index++, width, height, 127.0f));
        benchmark::DoNotOptimize(out.data());
        recycle_all(out);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["fps_budget_120"] = benchmark::Counter(
        120.0, benchmark::Counter::kDefaults); // must beat this to run live
}
BENCHMARK(bm_encode_stage)->Arg(480)->Arg(960)->Arg(1920)->Unit(benchmark::kMillisecond);

void bm_decoder_block_metrics(benchmark::State& state)
{
    const int width = static_cast<int>(state.range(0));
    const int height = width * 9 / 16;
    auto config = core::paper_config(width, height);
    auto params = core::make_decoder_params(config, width * 2 / 3, height * 2 / 3);
    params.detector = state.range(1) ? core::Detector::matched : core::Detector::noise_level;
    core::Inframe_decoder decoder(params);
    util::Prng prng(2);
    img::Imagef capture(width * 2 / 3, height * 2 / 3, 1);
    for (auto& v : capture.values()) v = static_cast<float>(prng.next_double(0, 255));
    for (auto _ : state) {
        benchmark::DoNotOptimize(decoder.block_metrics(capture));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_decoder_block_metrics)
    ->Args({960, 0})
    ->Args({960, 1})
    ->Args({1920, 0})
    ->Args({1920, 1})
    ->Unit(benchmark::kMillisecond);

void bm_link_stage(benchmark::State& state)
{
    const int width = static_cast<int>(state.range(0));
    const int height = width * 9 / 16;
    channel::Display_params display;
    channel::Camera_params camera;
    camera.sensor_width = width * 2 / 3;
    camera.sensor_height = height * 2 / 3;
    core::Link_stage link(display, camera, width, height);
    std::int64_t index = 0;
    for (auto _ : state) {
        auto out = link.push(make_token(index++, width, height, 127.0f));
        benchmark::DoNotOptimize(out.data());
        recycle_all(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_link_stage)->Arg(960)->Arg(1920)->Unit(benchmark::kMillisecond);

// The whole graph — video synthesis, encode, link, decode — per display
// frame, through the serial Pipeline executor. One iteration advances one
// data frame (tau display frames) so the decoder really runs.
void bm_pipeline_display_frame(benchmark::State& state)
{
    const int width = static_cast<int>(state.range(0));
    const int height = width * 9 / 16;
    auto config = core::paper_config(width, height);
    core::Encode_stage::Options options;
    options.payloads = core::make_random_payload_source(
        7, config.geometry.payload_bits_per_frame());
    channel::Display_params display;
    channel::Camera_params camera;
    camera.sensor_width = width * 2 / 3;
    camera.sensor_height = height * 2 / 3;
    auto decoder_params =
        core::make_decoder_params(config, camera.sensor_width, camera.sensor_height);
    auto decoder = std::make_shared<core::Inframe_decoder>(decoder_params);

    core::Pipeline pipeline;
    pipeline.emplace_stage<core::Video_stage>(
        std::make_shared<video::Solid_video>(width, height, 127.0f),
        video::Playback_schedule{});
    pipeline.emplace_stage<core::Encode_stage>(config, std::move(options));
    pipeline.emplace_stage<core::Link_stage>(display, camera, width, height);
    pipeline.emplace_stage<core::Function_stage>(
        "decode", [decoder](core::Frame_token token) {
            benchmark::DoNotOptimize(decoder->push_capture(token.image, token.time_s));
            std::vector<core::Frame_token> out;
            out.push_back(std::move(token)); // runtime recycles sink frames
            return out;
        });
    for (auto _ : state) {
        pipeline.run(config.tau);
    }
    state.SetItemsProcessed(state.iterations() * config.tau);
    state.SetLabel("items = display frames");
}
BENCHMARK(bm_pipeline_display_frame)->Arg(480)->Arg(960)->Unit(benchmark::kMillisecond);

void bm_box_blur(benchmark::State& state)
{
    util::Prng prng(3);
    img::Imagef image(1280, 720, 1);
    for (auto& v : image.values()) v = static_cast<float>(prng.next_double(0, 255));
    for (auto _ : state) {
        benchmark::DoNotOptimize(img::box_blur(image, static_cast<int>(state.range(0))));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(image.value_count()) * 4);
}
BENCHMARK(bm_box_blur)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);

void bm_resize_area(benchmark::State& state)
{
    util::Prng prng(4);
    img::Imagef image(1920, 1080, 1);
    for (auto& v : image.values()) v = static_cast<float>(prng.next_double(0, 255));
    for (auto _ : state) {
        benchmark::DoNotOptimize(img::resize_area(image, 1280, 720));
    }
}
BENCHMARK(bm_resize_area)->Unit(benchmark::kMillisecond);

void bm_reed_solomon_decode(benchmark::State& state)
{
    const coding::Reed_solomon rs(140, 63);
    util::Prng prng(5);
    std::vector<std::uint8_t> data(63);
    prng.fill_bytes(data);
    auto codeword = rs.encode(data);
    // Stride 11 is coprime to n = 140, so the positions stay distinct
    // after the wrap (and inside the codeword — 11 * 29 + 3 = 322 would
    // write past the 140-byte buffer).
    for (int e = 0; e < static_cast<int>(state.range(0)); ++e) {
        codeword[static_cast<std::size_t>(11 * e + 3) % codeword.size()] ^= 0xa5;
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(rs.decode(codeword));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_reed_solomon_decode)->Arg(0)->Arg(8)->Arg(30);

void bm_sunrise_frame(benchmark::State& state)
{
    const video::Sunrise_video video(960, 540);
    std::int64_t index = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(video.frame(index++ % 900));
    }
}
BENCHMARK(bm_sunrise_frame)->Unit(benchmark::kMillisecond);

// --- scalar-vs-SIMD speedup table -------------------------------------------
// Times each dispatched kernel at every level the host supports, against
// the honest scalar reference (kernels_scalar.cpp is built with the
// compiler's auto-vectorizer off). Buffers are sized to stay cache
// resident so this measures ALU throughput, not memory bandwidth.

double seconds_per_call(const std::function<void()>& call)
{
    using Clock = std::chrono::steady_clock;
    call();
    call(); // warm caches and the branch predictor
    constexpr int batch = 64;
    double best = 1.0e300;
    for (int rep = 0; rep < 7; ++rep) {
        const auto t0 = Clock::now();
        for (int i = 0; i < batch; ++i) call();
        const double per_call =
            std::chrono::duration<double>(Clock::now() - t0).count() / batch;
        best = std::min(best, per_call);
    }
    return best;
}

void run_simd_speedup_table(const bench::Args& args)
{
    using simd::Kernels;
    using simd::Level;

    constexpr int n = 1 << 14; // 16k elements: 64 KiB of floats, L2-resident
    util::Prng prng(17);
    std::vector<float> fa(n);
    std::vector<float> fb(n);
    std::vector<float> fout(n);
    std::vector<double> dacc(n);
    std::vector<std::uint8_t> ua(n);
    std::vector<std::uint8_t> ub(n);
    std::vector<std::uint8_t> uout(n);
    std::vector<std::uint32_t> mask(n);
    for (int i = 0; i < n; ++i) {
        fa[static_cast<std::size_t>(i)] = static_cast<float>(prng.next_double(0, 255));
        fb[static_cast<std::size_t>(i)] = static_cast<float>(prng.next_double(0, 255));
        dacc[static_cast<std::size_t>(i)] = prng.next_double(0, 1.0e6);
        ua[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(prng.next_int(0, 255));
        ub[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(prng.next_int(0, 255));
        mask[static_cast<std::size_t>(i)] = (i & 1) ? ~std::uint32_t{0} : 0u;
    }

    // box_blur_h: 8 interleaved-style streams over a 1-channel row.
    constexpr int blur_width = 1920;
    constexpr int blur_lanes = 8;
    std::vector<std::vector<float>> blur_src(blur_lanes, std::vector<float>(blur_width));
    std::vector<std::vector<float>> blur_dst(blur_lanes, std::vector<float>(blur_width));
    std::vector<const float*> blur_in(blur_lanes);
    std::vector<float*> blur_out(blur_lanes);
    for (int lane = 0; lane < blur_lanes; ++lane) {
        const auto s = static_cast<std::size_t>(lane);
        for (auto& v : blur_src[s]) v = static_cast<float>(prng.next_double(0, 255));
        blur_in[s] = blur_src[s].data();
        blur_out[s] = blur_dst[s].data();
    }

    // bilinear_row: downscale-style sampling plan over a 1920-wide row.
    std::vector<std::int32_t> idx0(n);
    std::vector<std::int32_t> idx1(n);
    std::vector<float> tx(n);
    for (int i = 0; i < n; ++i) {
        const auto s = static_cast<std::size_t>(i);
        idx0[s] = static_cast<std::int32_t>(prng.next_int(0, blur_width - 2));
        idx1[s] = idx0[s] + 1;
        tx[s] = static_cast<float>(prng.next_double(0.0, 1.0));
    }

    struct Kernel_case {
        const char* name;
        std::function<void(const Kernels&)> call;
    };
    const std::vector<Kernel_case> cases = {
        {"masked_add_f32", [&](const Kernels& k) {
             k.masked_add_f32(fout.data(), mask.data(), n, 1.5f);
         }},
        {"add_f32", [&](const Kernels& k) { k.add_f32(fa.data(), fb.data(), fout.data(), n); }},
        {"absdiff_f32",
         [&](const Kernels& k) { k.absdiff_f32(fa.data(), fb.data(), fout.data(), n); }},
        {"quantize_u8", [&](const Kernels& k) { k.quantize_u8(fa.data(), uout.data(), n); }},
        {"add_sat_u8",
         [&](const Kernels& k) { k.add_sat_u8(ua.data(), ub.data(), uout.data(), n); }},
        {"residual_energy_u8",
         [&](const Kernels& k) {
             benchmark::DoNotOptimize(k.residual_energy_u8(ua.data(), ub.data(), n));
         }},
        {"row_sum_f64",
         [&](const Kernels& k) { benchmark::DoNotOptimize(k.row_sum_f64(fa.data(), n)); }},
        {"vblur_update",
         [&](const Kernels& k) { k.vblur_update(dacc.data(), fa.data(), fb.data(), n); }},
        {"box_blur_h", [&](const Kernels& k) {
             k.box_blur_h(blur_in.data(), blur_out.data(), blur_lanes, blur_width, 1, 3);
         }},
        {"bilinear_row", [&](const Kernels& k) {
             k.bilinear_row(blur_src[0].data(), blur_src[1].data(), idx0.data(), idx1.data(),
                            tx.data(), 0.375f, fout.data(), n);
         }},
    };

    // Record the auto-detected level as a gauge so a --trace run's
    // telemetry_report shows what the numbers below were produced with.
    static const int simd_gauge =
        telemetry::intern_metric("simd.dispatch_level", telemetry::Metric_kind::gauge);
    telemetry::gauge_set(simd_gauge, static_cast<double>(simd::active_level()));

    bench::print_header(
        "micro: scalar-vs-SIMD kernel speedups",
        "runtime-dispatched kernels must be bit-identical at every level, so "
        "the only difference a level makes is the time below");
    std::printf("dispatch: best_supported=%s active=%s\n\n",
                simd::to_string(simd::best_supported()),
                simd::to_string(simd::active_level()));

    util::Table table({"kernel", "level", "ns_per_call", "speedup_vs_scalar"});
    const Kernels& scalar = simd::kernels_for(Level::scalar);
    for (const auto& kernel_case : cases) {
        const double scalar_s = seconds_per_call([&] { kernel_case.call(scalar); });
        for (const Level level : simd::available_levels()) {
            const Kernels& k = simd::kernels_for(level);
            const double level_s = level == Level::scalar
                                       ? scalar_s
                                       : seconds_per_call([&] { kernel_case.call(k); });
            table.add_row({kernel_case.name, simd::to_string(level),
                           util::format_fixed(level_s * 1.0e9, 1),
                           util::format_fixed(scalar_s / level_s, 2)});
        }
    }
    bench::emit_table(args, "micro_simd_speedup", table);
}

} // namespace

// Custom main instead of BENCHMARK_MAIN(): the shared bench flags
// (--csv/--smoke/--quick/--full/--trace) are stripped before
// benchmark::Initialize sees the command line (google-benchmark aborts on
// flags it does not know), the google-benchmark suites run as before, and
// the scalar-vs-SIMD speedup table is appended to every run.
int main(int argc, char** argv)
{
    const inframe::bench::Args args = inframe::bench::parse_args(argc, argv);

    std::vector<char*> bench_argv;
    for (int i = 0; i < argc; ++i) {
        const bool flag_only = std::strcmp(argv[i], "--smoke") == 0
                               || std::strcmp(argv[i], "--quick") == 0
                               || std::strcmp(argv[i], "--full") == 0;
        const bool flag_value = std::strcmp(argv[i], "--csv") == 0
                                || std::strcmp(argv[i], "--trace") == 0;
        if (flag_only) continue;
        if (flag_value) {
            ++i; // skip the value too
            continue;
        }
        bench_argv.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(bench_argv.size());
    bench_argv.push_back(nullptr);

    benchmark::Initialize(&bench_argc, bench_argv.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    run_simd_speedup_table(args);
    return 0;
}
