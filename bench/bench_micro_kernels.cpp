// Microbenchmarks (google-benchmark) for the hot kernels.
//
// The paper's 5 asks about computational cost: these measure the
// per-frame cost of each pipeline stage so a real-time port (the encoder
// must keep up with 120 Hz, the decoder with 30 FPS captures) can budget
// against them.

#include "coding/reed_solomon.hpp"
#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/session.hpp"
#include "channel/link.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/resize.hpp"
#include "util/prng.hpp"
#include "video/playback.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace inframe;

void bm_encoder_next_display_frame(benchmark::State& state)
{
    const int width = static_cast<int>(state.range(0));
    const int height = width * 9 / 16;
    auto config = core::paper_config(width, height);
    core::Inframe_encoder encoder(config);
    util::Prng prng(1);
    for (int i = 0; i < 64; ++i) {
        encoder.queue_payload(
            prng.next_bits(static_cast<std::size_t>(config.geometry.payload_bits_per_frame())));
    }
    const img::Imagef video(width, height, 1, 127.0f);
    for (auto _ : state) {
        benchmark::DoNotOptimize(encoder.next_display_frame(video));
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["fps_budget_120"] = benchmark::Counter(
        120.0, benchmark::Counter::kDefaults); // must beat this to run live
}
BENCHMARK(bm_encoder_next_display_frame)->Arg(480)->Arg(960)->Arg(1920)->Unit(benchmark::kMillisecond);

void bm_decoder_block_metrics(benchmark::State& state)
{
    const int width = static_cast<int>(state.range(0));
    const int height = width * 9 / 16;
    auto config = core::paper_config(width, height);
    auto params = core::make_decoder_params(config, width * 2 / 3, height * 2 / 3);
    params.detector = state.range(1) ? core::Detector::matched : core::Detector::noise_level;
    core::Inframe_decoder decoder(params);
    util::Prng prng(2);
    img::Imagef capture(width * 2 / 3, height * 2 / 3, 1);
    for (auto& v : capture.values()) v = static_cast<float>(prng.next_double(0, 255));
    for (auto _ : state) {
        benchmark::DoNotOptimize(decoder.block_metrics(capture));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_decoder_block_metrics)
    ->Args({960, 0})
    ->Args({960, 1})
    ->Args({1920, 0})
    ->Args({1920, 1})
    ->Unit(benchmark::kMillisecond);

void bm_camera_capture_path(benchmark::State& state)
{
    const int width = static_cast<int>(state.range(0));
    const int height = width * 9 / 16;
    channel::Display_params display;
    channel::Camera_params camera;
    camera.sensor_width = width * 2 / 3;
    camera.sensor_height = height * 2 / 3;
    channel::Screen_camera_link link(display, camera, width, height);
    const img::Imagef frame(width, height, 1, 127.0f);
    for (auto _ : state) {
        benchmark::DoNotOptimize(link.push_display_frame(frame));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_camera_capture_path)->Arg(960)->Arg(1920)->Unit(benchmark::kMillisecond);

void bm_box_blur(benchmark::State& state)
{
    util::Prng prng(3);
    img::Imagef image(1280, 720, 1);
    for (auto& v : image.values()) v = static_cast<float>(prng.next_double(0, 255));
    for (auto _ : state) {
        benchmark::DoNotOptimize(img::box_blur(image, static_cast<int>(state.range(0))));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(image.value_count()) * 4);
}
BENCHMARK(bm_box_blur)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);

void bm_resize_area(benchmark::State& state)
{
    util::Prng prng(4);
    img::Imagef image(1920, 1080, 1);
    for (auto& v : image.values()) v = static_cast<float>(prng.next_double(0, 255));
    for (auto _ : state) {
        benchmark::DoNotOptimize(img::resize_area(image, 1280, 720));
    }
}
BENCHMARK(bm_resize_area)->Unit(benchmark::kMillisecond);

void bm_reed_solomon_decode(benchmark::State& state)
{
    const coding::Reed_solomon rs(140, 63);
    util::Prng prng(5);
    std::vector<std::uint8_t> data(63);
    prng.fill_bytes(data);
    auto codeword = rs.encode(data);
    // Stride 11 is coprime to n = 140, so the positions stay distinct
    // after the wrap (and inside the codeword — 11 * 29 + 3 = 322 would
    // write past the 140-byte buffer).
    for (int e = 0; e < static_cast<int>(state.range(0)); ++e) {
        codeword[static_cast<std::size_t>(11 * e + 3) % codeword.size()] ^= 0xa5;
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(rs.decode(codeword));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_reed_solomon_decode)->Arg(0)->Arg(8)->Arg(30);

void bm_sunrise_frame(benchmark::State& state)
{
    const video::Sunrise_video video(960, 540);
    std::int64_t index = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(video.frame(index++ % 900));
    }
}
BENCHMARK(bm_sunrise_frame)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
