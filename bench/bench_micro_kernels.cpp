// Microbenchmarks (google-benchmark) for the hot kernels.
//
// The paper's 5 asks about computational cost: these measure the
// per-frame cost of each pipeline stage so a real-time port (the encoder
// must keep up with 120 Hz, the decoder with 30 FPS captures) can budget
// against them. The per-stage benches drive the actual core::Stage
// objects (pool-backed tokens through push()), so what is measured is
// what the stage-graph runtime executes; the pure image/coding kernels
// below them have no stage wrapper.

#include "coding/reed_solomon.hpp"
#include "core/decoder.hpp"
#include "core/pipeline.hpp"
#include "core/session.hpp"
#include "core/stages.hpp"
#include "channel/link.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/pool.hpp"
#include "imgproc/resize.hpp"
#include "util/prng.hpp"
#include "video/playback.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace inframe;

// Acquire a pool-backed token the way Video_stage manufactures them.
core::Frame_token make_token(std::int64_t index, int width, int height, float value)
{
    core::Frame_token token;
    token.index = index;
    token.time_s = static_cast<double>(index) / 120.0;
    token.image = img::Frame_pool::instance().acquire(width, height, 1);
    for (auto& v : token.image.values()) v = value;
    return token;
}

void recycle_all(std::vector<core::Frame_token>& tokens)
{
    for (auto& t : tokens) {
        img::Frame_pool::instance().recycle(std::move(t.image));
        img::Frame_pool::instance().recycle(std::move(t.reference));
    }
    tokens.clear();
}

void bm_encode_stage(benchmark::State& state)
{
    const int width = static_cast<int>(state.range(0));
    const int height = width * 9 / 16;
    auto config = core::paper_config(width, height);
    core::Encode_stage::Options options;
    options.payloads = core::make_random_payload_source(
        1, config.geometry.payload_bits_per_frame());
    core::Encode_stage encode(config, std::move(options));
    std::int64_t index = 0;
    for (auto _ : state) {
        auto out = encode.push(make_token(index++, width, height, 127.0f));
        benchmark::DoNotOptimize(out.data());
        recycle_all(out);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["fps_budget_120"] = benchmark::Counter(
        120.0, benchmark::Counter::kDefaults); // must beat this to run live
}
BENCHMARK(bm_encode_stage)->Arg(480)->Arg(960)->Arg(1920)->Unit(benchmark::kMillisecond);

void bm_decoder_block_metrics(benchmark::State& state)
{
    const int width = static_cast<int>(state.range(0));
    const int height = width * 9 / 16;
    auto config = core::paper_config(width, height);
    auto params = core::make_decoder_params(config, width * 2 / 3, height * 2 / 3);
    params.detector = state.range(1) ? core::Detector::matched : core::Detector::noise_level;
    core::Inframe_decoder decoder(params);
    util::Prng prng(2);
    img::Imagef capture(width * 2 / 3, height * 2 / 3, 1);
    for (auto& v : capture.values()) v = static_cast<float>(prng.next_double(0, 255));
    for (auto _ : state) {
        benchmark::DoNotOptimize(decoder.block_metrics(capture));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_decoder_block_metrics)
    ->Args({960, 0})
    ->Args({960, 1})
    ->Args({1920, 0})
    ->Args({1920, 1})
    ->Unit(benchmark::kMillisecond);

void bm_link_stage(benchmark::State& state)
{
    const int width = static_cast<int>(state.range(0));
    const int height = width * 9 / 16;
    channel::Display_params display;
    channel::Camera_params camera;
    camera.sensor_width = width * 2 / 3;
    camera.sensor_height = height * 2 / 3;
    core::Link_stage link(display, camera, width, height);
    std::int64_t index = 0;
    for (auto _ : state) {
        auto out = link.push(make_token(index++, width, height, 127.0f));
        benchmark::DoNotOptimize(out.data());
        recycle_all(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_link_stage)->Arg(960)->Arg(1920)->Unit(benchmark::kMillisecond);

// The whole graph — video synthesis, encode, link, decode — per display
// frame, through the serial Pipeline executor. One iteration advances one
// data frame (tau display frames) so the decoder really runs.
void bm_pipeline_display_frame(benchmark::State& state)
{
    const int width = static_cast<int>(state.range(0));
    const int height = width * 9 / 16;
    auto config = core::paper_config(width, height);
    core::Encode_stage::Options options;
    options.payloads = core::make_random_payload_source(
        7, config.geometry.payload_bits_per_frame());
    channel::Display_params display;
    channel::Camera_params camera;
    camera.sensor_width = width * 2 / 3;
    camera.sensor_height = height * 2 / 3;
    auto decoder_params =
        core::make_decoder_params(config, camera.sensor_width, camera.sensor_height);
    auto decoder = std::make_shared<core::Inframe_decoder>(decoder_params);

    core::Pipeline pipeline;
    pipeline.emplace_stage<core::Video_stage>(
        std::make_shared<video::Solid_video>(width, height, 127.0f),
        video::Playback_schedule{});
    pipeline.emplace_stage<core::Encode_stage>(config, std::move(options));
    pipeline.emplace_stage<core::Link_stage>(display, camera, width, height);
    pipeline.emplace_stage<core::Function_stage>(
        "decode", [decoder](core::Frame_token token) {
            benchmark::DoNotOptimize(decoder->push_capture(token.image, token.time_s));
            std::vector<core::Frame_token> out;
            out.push_back(std::move(token)); // runtime recycles sink frames
            return out;
        });
    for (auto _ : state) {
        pipeline.run(config.tau);
    }
    state.SetItemsProcessed(state.iterations() * config.tau);
    state.SetLabel("items = display frames");
}
BENCHMARK(bm_pipeline_display_frame)->Arg(480)->Arg(960)->Unit(benchmark::kMillisecond);

void bm_box_blur(benchmark::State& state)
{
    util::Prng prng(3);
    img::Imagef image(1280, 720, 1);
    for (auto& v : image.values()) v = static_cast<float>(prng.next_double(0, 255));
    for (auto _ : state) {
        benchmark::DoNotOptimize(img::box_blur(image, static_cast<int>(state.range(0))));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(image.value_count()) * 4);
}
BENCHMARK(bm_box_blur)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);

void bm_resize_area(benchmark::State& state)
{
    util::Prng prng(4);
    img::Imagef image(1920, 1080, 1);
    for (auto& v : image.values()) v = static_cast<float>(prng.next_double(0, 255));
    for (auto _ : state) {
        benchmark::DoNotOptimize(img::resize_area(image, 1280, 720));
    }
}
BENCHMARK(bm_resize_area)->Unit(benchmark::kMillisecond);

void bm_reed_solomon_decode(benchmark::State& state)
{
    const coding::Reed_solomon rs(140, 63);
    util::Prng prng(5);
    std::vector<std::uint8_t> data(63);
    prng.fill_bytes(data);
    auto codeword = rs.encode(data);
    // Stride 11 is coprime to n = 140, so the positions stay distinct
    // after the wrap (and inside the codeword — 11 * 29 + 3 = 322 would
    // write past the 140-byte buffer).
    for (int e = 0; e < static_cast<int>(state.range(0)); ++e) {
        codeword[static_cast<std::size_t>(11 * e + 3) % codeword.size()] ^= 0xa5;
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(rs.decode(codeword));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_reed_solomon_decode)->Arg(0)->Arg(8)->Arg(30);

void bm_sunrise_frame(benchmark::State& state)
{
    const video::Sunrise_video video(960, 540);
    std::int64_t index = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(video.frame(index++ % 900));
    }
}
BENCHMARK(bm_sunrise_frame)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
