// Parallel scaling — end-to-end simulation throughput vs thread count.
//
// Runs the same link experiment (encoder -> display -> rolling-shutter
// camera -> decoder) at 1, 2, 4 and hardware_concurrency threads and
// reports wall-clock time, simulated-seconds-per-second and speedup over
// the serial run. Because the execution layer is deterministic by
// construction, the decoded results are also cross-checked: every thread
// count must reproduce the serial goodput bit for bit, so the table proves
// both the speedup and that it cost nothing in fidelity.
//
// On a single-core builder the speedup column will sit near 1.0x — the
// interesting output there is that oversubscription does not corrupt or
// meaningfully slow the pipeline.

#include "bench_common.hpp"
#include "core/link_runner.hpp"
#include "util/thread_pool.hpp"

#include <chrono>
#include <cstdio>
#include <set>
#include <vector>

int main(int argc, char** argv)
{
    using namespace inframe;
    const auto scale = bench::parse_scale(argc, argv);
    const double duration = bench::scale_duration(scale, 0.5, 2.0, 6.0);

    bench::print_header(
        "Parallel scaling: link-experiment throughput vs thread count",
        "deterministic row-parallel pipeline; identical decoded output at every "
        "thread count");

    constexpr int width = 960;
    constexpr int height = 540;

    auto make_config = [&](int threads) {
        core::Link_experiment_config config;
        config.video = video::make_sunrise_video(width, height);
        config.inframe = core::paper_config(width, height);
        config.inframe.tau = 12;
        config.camera.shot_noise_scale = 0.2;
        config.camera.read_noise_sigma = 1.5;
        config.camera.quantize = true;
        config.duration_s = duration;
        config.threads = threads;
        return config;
    };

    const int hw = util::Thread_pool::hardware_threads();
    std::printf("hardware concurrency: %d\n\n", hw);
    std::set<int> counts = {1, 2, 4, hw};

    util::Table table({"threads", "wall s", "sim s / wall s", "speedup vs serial",
                       "goodput kbps", "matches serial"});

    double serial_wall = 0.0;
    double serial_goodput = 0.0;
    for (const int threads : counts) {
        const auto config = make_config(threads);
        const auto start = std::chrono::steady_clock::now();
        const auto result = core::run_link_experiment(config);
        const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
        if (threads == 1) {
            serial_wall = wall.count();
            serial_goodput = result.goodput_kbps;
        }
        const bool matches = result.goodput_kbps == serial_goodput;
        table.add_row({static_cast<long long>(threads), wall.count(),
                       duration / wall.count(),
                       serial_wall > 0.0 ? serial_wall / wall.count() : 1.0,
                       result.goodput_kbps, std::string(matches ? "yes" : "NO")});
        std::printf("  done: threads=%d in %.2f s (goodput %.2f kbps%s)\n", threads,
                    wall.count(), result.goodput_kbps,
                    matches ? "" : " — MISMATCH vs serial");
    }

    std::printf("\n");
    bench::print_table(table);
    std::printf("run with --full for longer (more stable) runs, --quick for a sanity pass.\n");
    return 0;
}
