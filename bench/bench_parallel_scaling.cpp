// Parallel scaling — end-to-end simulation throughput along both axes of
// the execution layer:
//
//   1. data parallelism: row-parallel kernels at 1, 2, 4 and
//      hardware_concurrency threads (frames_in_flight = 1), and
//   2. task parallelism: the stage-graph executor overlapping stages
//      across display frames at frames_in_flight 1, 2, 4, 8 (threads = 1).
//
// Because both layers are deterministic by construction, the decoded
// results are also cross-checked: every configuration must reproduce the
// serial goodput and payload bit error rate bit for bit, so the tables
// prove both the speedup and that it cost nothing in fidelity.
//
// On a single-core builder the speedup columns will sit near 1.0x — the
// interesting output there is that oversubscription does not corrupt or
// meaningfully slow the pipeline. The final section prints the pipeline
// observability counters (per-stage wall time, queue occupancy, frame-pool
// hits/misses) for the frames_in_flight = 4 run.

#include "bench_common.hpp"
#include "core/link_runner.hpp"
#include "util/thread_pool.hpp"

#include <chrono>
#include <cstdio>
#include <set>
#include <vector>

namespace {

using namespace inframe;

constexpr int width = 960;
constexpr int height = 540;

core::Link_experiment_config make_config(double duration, int threads, int frames_in_flight)
{
    core::Link_experiment_config config;
    config.video = video::make_sunrise_video(width, height);
    config.inframe = core::paper_config(width, height);
    config.inframe.tau = 12;
    config.camera.shot_noise_scale = 0.2;
    config.camera.read_noise_sigma = 1.5;
    config.camera.quantize = true;
    config.duration_s = duration;
    config.threads = threads;
    config.frames_in_flight = frames_in_flight;
    return config;
}

void print_pipeline_metrics(const bench::Args& args, const core::Pipeline_metrics& metrics)
{
    std::printf("pipeline observability (frames_in_flight=%d, wall %.2f s, %lld head tokens):\n",
                metrics.frames_in_flight, metrics.wall_s,
                static_cast<long long>(metrics.head_tokens));
    util::Table stages({"stage", "busy s", "share", "tokens in", "tokens out",
                        "mean queue depth", "input waits", "output waits"});
    // Queue fields are -1 when the stage has no queue on that side
    // (serial mode, head input, sink output); show those as "-".
    const auto count_cell = [](std::int64_t v) -> util::Table::Cell {
        if (v < 0) return std::string("-");
        return static_cast<long long>(v);
    };
    for (const auto& s : metrics.stages) {
        stages.add_row({s.name, s.wall_s,
                        metrics.wall_s > 0.0 ? s.wall_s / metrics.wall_s : 0.0,
                        static_cast<long long>(s.tokens_in),
                        static_cast<long long>(s.tokens_out),
                        s.mean_input_queue_depth < 0.0 ? util::Table::Cell(std::string("-"))
                                                       : util::Table::Cell(s.mean_input_queue_depth),
                        count_cell(s.input_waits), count_cell(s.output_waits)});
    }
    bench::emit_table(args, "scaling_stage_metrics", stages);
    std::printf("frame pool: %lld hits, %lld misses\n",
                static_cast<long long>(metrics.pool_hits),
                static_cast<long long>(metrics.pool_misses));
}

} // namespace

int main(int argc, char** argv)
{
    const auto args = bench::parse_args(argc, argv);
    telemetry::Session telemetry_session(args.telemetry);
    const double duration = bench::scale_duration(args.scale, 0.5, 2.0, 6.0);

    bench::print_header(
        "Parallel scaling: link-experiment throughput vs threads and frames in flight",
        "deterministic row-parallel kernels + stage-graph overlap; identical decoded "
        "output in every configuration");

    const int hw = util::Thread_pool::hardware_threads();
    std::printf("hardware concurrency: %d\n\n", hw);

    double serial_wall = 0.0;
    double serial_goodput = 0.0;
    double serial_payload_ber = 0.0;

    // --- axis 1: kernel threads (frames_in_flight = 1) -------------------
    {
        std::set<int> counts = {1, 2, 4, hw};
        util::Table table({"threads", "wall s", "sim s / wall s", "speedup vs serial",
                           "goodput kbps", "matches serial"});
        for (const int threads : counts) {
            const auto config = make_config(duration, threads, 1);
            const auto start = std::chrono::steady_clock::now();
            const auto result = core::run_link_experiment(config);
            const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
            if (threads == 1) {
                serial_wall = wall.count();
                serial_goodput = result.goodput_kbps;
                serial_payload_ber = result.payload_bit_error_rate;
            }
            const bool matches = result.goodput_kbps == serial_goodput
                                 && result.payload_bit_error_rate == serial_payload_ber;
            table.add_row({static_cast<long long>(threads), wall.count(),
                           duration / wall.count(),
                           serial_wall > 0.0 ? serial_wall / wall.count() : 1.0,
                           result.goodput_kbps, std::string(matches ? "yes" : "NO")});
            std::printf("  done: threads=%d in %.2f s (goodput %.2f kbps%s)\n", threads,
                        wall.count(), result.goodput_kbps,
                        matches ? "" : " — MISMATCH vs serial");
        }
        std::printf("\n");
        bench::emit_table(args, "scaling_threads", table);
    }

    // --- axis 2: frames in flight (threads = 1) --------------------------
    {
        util::Table table({"frames in flight", "wall s", "sim s / wall s",
                           "speedup vs fif=1", "goodput kbps", "matches serial"});
        double fif1_wall = 0.0;
        core::Pipeline_metrics overlap_metrics;
        for (const int fif : {1, 2, 4, 8}) {
            const auto config = make_config(duration, 1, fif);
            const auto start = std::chrono::steady_clock::now();
            const auto result = core::run_link_experiment(config);
            const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
            if (fif == 1) fif1_wall = wall.count();
            if (fif == 4) overlap_metrics = result.pipeline;
            const bool matches = result.goodput_kbps == serial_goodput
                                 && result.payload_bit_error_rate == serial_payload_ber;
            table.add_row({static_cast<long long>(fif), wall.count(),
                           duration / wall.count(),
                           fif1_wall > 0.0 ? fif1_wall / wall.count() : 1.0,
                           result.goodput_kbps, std::string(matches ? "yes" : "NO")});
            std::printf("  done: frames_in_flight=%d in %.2f s (goodput %.2f kbps%s)\n", fif,
                        wall.count(), result.goodput_kbps,
                        matches ? "" : " — MISMATCH vs serial");
        }
        std::printf("\n");
        bench::emit_table(args, "scaling_frames_in_flight", table);
        std::printf("\n");
        print_pipeline_metrics(args, overlap_metrics);
    }

    std::printf("\nrun with --full for longer (more stable) runs, --quick for a sanity pass.\n");
    return 0;
}
