// The throughput / visibility tradeoff (5).
//
// "Each of [Block size, amplitude, smoothing cycle] introduces a dimension
// for tradeoff ... How to better balance the tradeoff ... is of great
// interest." This bench answers quantitatively: sweep (delta, tau, s) over
// the simulated rig, measure both the panel flicker score and the channel
// goodput for each setting, and report the Pareto-efficient frontier under
// the paper's own acceptability bar (mean score <= 1, "satisfactory").

#include "bench_common.hpp"
#include "core/link_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace {

using namespace inframe;

constexpr int width = 480;
constexpr int height = 270;

struct Point {
    float delta;
    int tau;
    int block_pixels;
    double flicker;
    double goodput;
};

} // namespace

int main(int argc, char** argv)
{
    const auto args = bench::parse_args(argc, argv);
    telemetry::Session telemetry_session(args.telemetry);
    const double duration = bench::scale_duration(args.scale, 1.0, 1.5, 3.0);

    bench::print_header("Pareto frontier: goodput vs perceived flicker (5's open question)",
                        "larger delta/smaller tau raise throughput and flicker together; the "
                        "frontier shows what the channel buys per unit of visibility");

    std::vector<Point> points;
    for (const float delta : {12.0f, 20.0f, 30.0f, 45.0f}) {
        for (const int tau : {8, 12, 16}) {
            for (const int block_pixels : {7, 9}) {
                auto geometry = coding::fitted_geometry(width, height, 2, block_pixels);

                core::Flicker_experiment_config flicker;
                flicker.video = video::make_dark_gray_video(width, height);
                flicker.inframe = core::paper_config(width, height);
                flicker.inframe.geometry = geometry;
                flicker.inframe.delta = delta;
                flicker.inframe.tau = tau;
                flicker.duration_s = duration;
                flicker.observers = 4;
                flicker.options.max_sites = 384;
                const double score = core::run_flicker_experiment(flicker).mean_score;

                core::Link_experiment_config link;
                link.video = video::make_dark_gray_video(width, height);
                link.inframe = flicker.inframe;
                link.camera.sensor_width = width;
                link.camera.sensor_height = height;
                link.detector = core::Detector::matched;
                link.duration_s = duration;
                const double goodput = core::run_link_experiment(link).goodput_kbps;

                points.push_back({delta, tau, block_pixels, score, goodput});
            }
        }
    }

    util::Table table({"delta", "tau", "block s", "flicker score", "goodput kbps",
                       "acceptable", "Pareto-efficient"});
    std::size_t efficient = 0;
    for (const auto& p : points) {
        const bool dominated = std::any_of(points.begin(), points.end(), [&](const Point& q) {
            return (q.flicker < p.flicker && q.goodput >= p.goodput)
                   || (q.flicker <= p.flicker && q.goodput > p.goodput);
        });
        efficient += !dominated;
        table.add_row({static_cast<double>(p.delta), static_cast<long long>(p.tau),
                       static_cast<long long>(p.block_pixels), p.flicker, p.goodput,
                       std::string(p.flicker <= 1.0 ? "yes" : "no"),
                       std::string(dominated ? "" : "<-- frontier")});
    }
    bench::emit_table(args, "pareto_tradeoff", table);

    // The answer to 5's question: best acceptable operating point.
    const Point* best = nullptr;
    for (const auto& p : points) {
        if (p.flicker <= 1.0 && (best == nullptr || p.goodput > best->goodput)) best = &p;
    }
    if (best != nullptr) {
        std::printf("best satisfactory operating point: delta=%.0f tau=%d s=%d -> %.2f kbps "
                    "at flicker %.2f\n",
                    best->delta, best->tau, best->block_pixels, best->goodput, best->flicker);
    }
    std::printf("(%zu of %zu settings are Pareto-efficient)\n", efficient, points.size());
    return 0;
}
