// Synchronization acquisition (extension beyond the paper's strawman).
//
// The paper assumes the receiver knows where data frames start; the
// Phase_estimator recovers that alignment from captures alone. This bench
// measures time-to-lock and post-lock decode quality across start offsets
// and capture conditions.

#include "bench_common.hpp"
#include "channel/link.hpp"
#include "core/sync.hpp"
#include "core/encoder.hpp"
#include "core/session.hpp"
#include "util/prng.hpp"
#include "video/playback.hpp"

#include <cstdio>

namespace {

using namespace inframe;
using namespace inframe::core;

constexpr int width = 480;
constexpr int height = 270;

struct Lock_result {
    bool locked = false;
    double lock_time_s = 0.0;
    int frames_decoded = 0;
    int confident_blocks = 0;
    int wrong_blocks = 0;
};

Lock_result run_acquisition(int offset_display_frames, double shot_noise, double duration_s)
{
    auto config = paper_config(width, height);
    config.geometry = coding::fitted_geometry(width, height, 2);
    config.tau = 12;

    Inframe_encoder encoder(config);
    util::Prng prng(41 + static_cast<std::uint64_t>(offset_display_frames));
    const auto frames_needed = static_cast<int>(duration_s * 120.0) / config.tau + 4;
    for (int i = 0; i < frames_needed; ++i) {
        encoder.queue_payload(prng.next_bits(
            static_cast<std::size_t>(config.geometry.payload_bits_per_frame())));
    }

    channel::Display_params display;
    channel::Camera_params camera;
    camera.sensor_width = width;
    camera.sensor_height = height;
    camera.shot_noise_scale = shot_noise;
    channel::Screen_camera_link link(display, camera, width, height);

    auto decoder_params = make_decoder_params(config, width, height);
    decoder_params.detector = Detector::matched;
    Synced_decoder decoder(decoder_params);

    const img::Imagef video(width, height, 1, 140.0f);
    // Transmitter ran for `offset` display frames before the receiver's
    // clock started.
    for (int j = 0; j < offset_display_frames; ++j) encoder.next_display_frame(video);

    Lock_result result;
    const auto total = static_cast<int>(duration_s * 120.0);
    const double offset_s = offset_display_frames / 120.0;
    for (int j = 0; j < total; ++j) {
        const auto shown = encoder.next_display_frame(video);
        for (const auto& capture : link.push_display_frame(shown)) {
            const bool was_locked = decoder.locked();
            const auto decoded = decoder.push_capture(capture.image, capture.start_time);
            if (!was_locked && decoder.locked()) {
                result.locked = true;
                result.lock_time_s = capture.start_time;
            }
            for (const auto& frame : decoded) {
                if (frame.captures_used == 0) continue;
                ++result.frames_decoded;
                // The estimator's offset is exact only up to the capture
                // assignment equivalence class; compare against the
                // best-matching transmitted frame near the nominal index.
                const double tx_time = frame.data_frame_index * (config.tau / 120.0)
                                       + *decoder.offset() + offset_s;
                const auto nominal =
                    static_cast<std::int64_t>(std::lround(tx_time * 120.0)) / config.tau;
                int best_wrong = -1;
                int best_confident = 0;
                for (std::int64_t tx = nominal - 1; tx <= nominal + 1; ++tx) {
                    const auto* truth = encoder.transmitted_block_bits(tx);
                    if (truth == nullptr) continue;
                    int wrong = 0;
                    int confident = 0;
                    for (std::size_t b = 0; b < frame.decisions.size(); ++b) {
                        if (frame.decisions[b] == coding::Block_decision::unknown) continue;
                        ++confident;
                        const std::uint8_t bit =
                            frame.decisions[b] == coding::Block_decision::one ? 1 : 0;
                        wrong += bit != (*truth)[b];
                    }
                    if (best_wrong < 0 || wrong < best_wrong) {
                        best_wrong = wrong;
                        best_confident = confident;
                    }
                }
                if (best_wrong >= 0) {
                    result.confident_blocks += best_confident;
                    result.wrong_blocks += best_wrong;
                }
            }
        }
    }
    return result;
}

} // namespace

int main(int argc, char** argv)
{
    const auto scale = bench::parse_scale(argc, argv);
    const double duration = bench::scale_duration(scale, 2.0, 3.0, 5.0);

    bench::print_header("Sync acquisition: locking onto an unsynchronized broadcast",
                        "extension: the paper assumes a synchronized start; the phase "
                        "estimator recovers the data-frame alignment from captures alone");

    util::Table table({"start offset (display frames)", "shot noise", "locked", "lock time s",
                       "frames decoded", "block error rate"});
    for (const int offset : {0, 3, 7, 11}) {
        for (const double noise : {0.12, 0.3}) {
            const auto r = run_acquisition(offset, noise, duration);
            table.add_row({static_cast<long long>(offset), noise,
                           std::string(r.locked ? "yes" : "NO"), r.lock_time_s,
                           static_cast<long long>(r.frames_decoded),
                           r.confident_blocks > 0
                               ? static_cast<double>(r.wrong_blocks) / r.confident_blocks
                               : 0.0});
        }
    }
    bench::print_table(table);
    std::printf("lock time includes the %d-capture observation window the estimator needs.\n",
                Sync_params{}.min_captures);
    return 0;
}
