// Synchronization acquisition (extension beyond the paper's strawman).
//
// The paper assumes the receiver knows where data frames start; the
// Phase_estimator recovers that alignment from captures alone. This bench
// measures time-to-lock and post-lock decode quality across start offsets
// and capture conditions. The broadcast side is the standard stage graph;
// the unsynchronized receiver is a sink stage around Synced_decoder. The
// transmitter pre-rolls `offset` display frames through the encode stage
// before the link exists — exactly the situation a late-joining receiver
// faces.

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "core/stages.hpp"
#include "core/sync.hpp"
#include "imgproc/pool.hpp"
#include "video/playback.hpp"

#include <cstdio>

namespace {

using namespace inframe;
using namespace inframe::core;

constexpr int width = 480;
constexpr int height = 270;

struct Lock_result {
    bool locked = false;
    double lock_time_s = 0.0;
    int frames_decoded = 0;
    int confident_blocks = 0;
    int wrong_blocks = 0;
};

Lock_result run_acquisition(int offset_display_frames, double shot_noise, double duration_s)
{
    auto config = paper_config(width, height);
    config.geometry = coding::fitted_geometry(width, height, 2);
    config.tau = 12;

    channel::Display_params display;
    channel::Camera_params camera;
    camera.sensor_width = width;
    camera.sensor_height = height;
    camera.shot_noise_scale = shot_noise;

    auto decoder_params = make_decoder_params(config, width, height);
    decoder_params.detector = Detector::matched;
    Synced_decoder decoder(decoder_params);

    Encode_stage::Options encode_options;
    encode_options.payloads = make_random_payload_source(
        41 + static_cast<std::uint64_t>(offset_display_frames),
        config.geometry.payload_bits_per_frame());

    Pipeline pipeline;
    pipeline.emplace_stage<Video_stage>(
        std::make_shared<video::Solid_video>(width, height, 140.0f),
        video::Playback_schedule{});
    auto& encode = pipeline.emplace_stage<Encode_stage>(config, std::move(encode_options));
    pipeline.emplace_stage<Link_stage>(display, camera, width, height);

    Lock_result result;
    const double offset_s = offset_display_frames / 120.0;
    const Inframe_encoder& encoder = encode.encoder();
    pipeline.emplace_stage<Function_stage>("sync", [&](Frame_token token) {
        const bool was_locked = decoder.locked();
        const auto decoded = decoder.push_capture(token.image, token.time_s);
        if (!was_locked && decoder.locked()) {
            result.locked = true;
            result.lock_time_s = token.time_s;
        }
        for (const auto& frame : decoded) {
            if (frame.captures_used == 0) continue;
            ++result.frames_decoded;
            // The estimator's offset is exact only up to the capture
            // assignment equivalence class; compare against the
            // best-matching transmitted frame near the nominal index.
            const double tx_time =
                frame.data_frame_index * (config.tau / 120.0) + *decoder.offset() + offset_s;
            const auto nominal =
                static_cast<std::int64_t>(std::lround(tx_time * 120.0)) / config.tau;
            int best_wrong = -1;
            int best_confident = 0;
            for (std::int64_t tx = nominal - 1; tx <= nominal + 1; ++tx) {
                const auto* truth = encoder.transmitted_block_bits(tx);
                if (truth == nullptr) continue;
                int wrong = 0;
                int confident = 0;
                for (std::size_t b = 0; b < frame.decisions.size(); ++b) {
                    if (frame.decisions[b] == coding::Block_decision::unknown) continue;
                    ++confident;
                    const std::uint8_t bit =
                        frame.decisions[b] == coding::Block_decision::one ? 1 : 0;
                    wrong += bit != (*truth)[b];
                }
                if (best_wrong < 0 || wrong < best_wrong) {
                    best_wrong = wrong;
                    best_confident = confident;
                }
            }
            if (best_wrong >= 0) {
                result.confident_blocks += best_confident;
                result.wrong_blocks += best_wrong;
            }
        }
        std::vector<Frame_token> out;
        out.push_back(std::move(token)); // runtime recycles sink frames
        return out;
    });

    // Transmitter ran for `offset` display frames before the receiver's
    // clock started: pre-roll the encode stage directly and discard the
    // emitted frames.
    const img::Imagef video(width, height, 1, 140.0f);
    for (int j = 0; j < offset_display_frames; ++j) {
        img::Frame_pool::instance().recycle(encode.encode(video));
    }

    // The sync sink reads encoder truth while the encode stage runs, so
    // this graph must stay serial (frames_in_flight = 1, the default).
    const auto total = static_cast<std::int64_t>(duration_s * 120.0);
    pipeline.run(total);
    return result;
}

} // namespace

int main(int argc, char** argv)
{
    const auto args = bench::parse_args(argc, argv);
    telemetry::Session telemetry_session(args.telemetry);
    const double duration = bench::scale_duration(args.scale, 2.0, 3.0, 5.0);

    bench::print_header("Sync acquisition: locking onto an unsynchronized broadcast",
                        "extension: the paper assumes a synchronized start; the phase "
                        "estimator recovers the data-frame alignment from captures alone");

    util::Table table({"start offset (display frames)", "shot noise", "locked", "lock time s",
                       "frames decoded", "block error rate"});
    for (const int offset : {0, 3, 7, 11}) {
        for (const double noise : {0.12, 0.3}) {
            const auto r = run_acquisition(offset, noise, duration);
            table.add_row({static_cast<long long>(offset), noise,
                           std::string(r.locked ? "yes" : "NO"), r.lock_time_s,
                           static_cast<long long>(r.frames_decoded),
                           r.confident_blocks > 0
                               ? static_cast<double>(r.wrong_blocks) / r.confident_blocks
                               : 0.0});
        }
    }
    bench::emit_table(args, "sync_acquisition", table);
    std::printf("lock time includes the %d-capture observation window the estimator needs.\n",
                Sync_params{}.min_captures);
    return 0;
}
