file(REMOVE_RECURSE
  "CMakeFiles/bench_channel_robustness.dir/bench_channel_robustness.cpp.o"
  "CMakeFiles/bench_channel_robustness.dir/bench_channel_robustness.cpp.o.d"
  "bench_channel_robustness"
  "bench_channel_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_channel_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
