# Empty compiler generated dependencies file for bench_channel_robustness.
# This may be replaced when dependencies are built.
