file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_naive_designs.dir/bench_fig3_naive_designs.cpp.o"
  "CMakeFiles/bench_fig3_naive_designs.dir/bench_fig3_naive_designs.cpp.o.d"
  "bench_fig3_naive_designs"
  "bench_fig3_naive_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_naive_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
