# Empty compiler generated dependencies file for bench_fig3_naive_designs.
# This may be replaced when dependencies are built.
