file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_complementary.dir/bench_fig4_complementary.cpp.o"
  "CMakeFiles/bench_fig4_complementary.dir/bench_fig4_complementary.cpp.o.d"
  "bench_fig4_complementary"
  "bench_fig4_complementary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_complementary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
