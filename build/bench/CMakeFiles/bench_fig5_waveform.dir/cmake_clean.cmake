file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_waveform.dir/bench_fig5_waveform.cpp.o"
  "CMakeFiles/bench_fig5_waveform.dir/bench_fig5_waveform.cpp.o.d"
  "bench_fig5_waveform"
  "bench_fig5_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
