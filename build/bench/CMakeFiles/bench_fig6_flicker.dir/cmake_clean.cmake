file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_flicker.dir/bench_fig6_flicker.cpp.o"
  "CMakeFiles/bench_fig6_flicker.dir/bench_fig6_flicker.cpp.o.d"
  "bench_fig6_flicker"
  "bench_fig6_flicker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_flicker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
