
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_pareto_tradeoff.cpp" "bench/CMakeFiles/bench_pareto_tradeoff.dir/bench_pareto_tradeoff.cpp.o" "gcc" "bench/CMakeFiles/bench_pareto_tradeoff.dir/bench_pareto_tradeoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/inframe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/inframe_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/hvs/CMakeFiles/inframe_hvs.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/inframe_video.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/inframe_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/inframe_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/inframe_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/inframe_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/inframe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
