file(REMOVE_RECURSE
  "CMakeFiles/bench_pareto_tradeoff.dir/bench_pareto_tradeoff.cpp.o"
  "CMakeFiles/bench_pareto_tradeoff.dir/bench_pareto_tradeoff.cpp.o.d"
  "bench_pareto_tradeoff"
  "bench_pareto_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pareto_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
