file(REMOVE_RECURSE
  "CMakeFiles/bench_sync_acquisition.dir/bench_sync_acquisition.cpp.o"
  "CMakeFiles/bench_sync_acquisition.dir/bench_sync_acquisition.cpp.o.d"
  "bench_sync_acquisition"
  "bench_sync_acquisition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sync_acquisition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
