# Empty dependencies file for bench_sync_acquisition.
# This may be replaced when dependencies are built.
