file(REMOVE_RECURSE
  "CMakeFiles/coupon_broadcast.dir/coupon_broadcast.cpp.o"
  "CMakeFiles/coupon_broadcast.dir/coupon_broadcast.cpp.o.d"
  "coupon_broadcast"
  "coupon_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupon_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
