# Empty compiler generated dependencies file for coupon_broadcast.
# This may be replaced when dependencies are built.
