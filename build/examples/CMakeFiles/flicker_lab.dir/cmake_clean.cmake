file(REMOVE_RECURSE
  "CMakeFiles/flicker_lab.dir/flicker_lab.cpp.o"
  "CMakeFiles/flicker_lab.dir/flicker_lab.cpp.o.d"
  "flicker_lab"
  "flicker_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flicker_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
