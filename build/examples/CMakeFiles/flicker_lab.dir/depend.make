# Empty dependencies file for flicker_lab.
# This may be replaced when dependencies are built.
