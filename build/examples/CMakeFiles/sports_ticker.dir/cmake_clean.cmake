file(REMOVE_RECURSE
  "CMakeFiles/sports_ticker.dir/sports_ticker.cpp.o"
  "CMakeFiles/sports_ticker.dir/sports_ticker.cpp.o.d"
  "sports_ticker"
  "sports_ticker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sports_ticker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
