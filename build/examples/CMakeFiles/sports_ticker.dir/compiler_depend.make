# Empty compiler generated dependencies file for sports_ticker.
# This may be replaced when dependencies are built.
