file(REMOVE_RECURSE
  "CMakeFiles/inframe_baseline.dir/barcode.cpp.o"
  "CMakeFiles/inframe_baseline.dir/barcode.cpp.o.d"
  "CMakeFiles/inframe_baseline.dir/naive.cpp.o"
  "CMakeFiles/inframe_baseline.dir/naive.cpp.o.d"
  "CMakeFiles/inframe_baseline.dir/steganography.cpp.o"
  "CMakeFiles/inframe_baseline.dir/steganography.cpp.o.d"
  "libinframe_baseline.a"
  "libinframe_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inframe_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
