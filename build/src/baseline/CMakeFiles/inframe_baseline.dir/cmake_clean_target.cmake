file(REMOVE_RECURSE
  "libinframe_baseline.a"
)
