# Empty compiler generated dependencies file for inframe_baseline.
# This may be replaced when dependencies are built.
