
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/camera.cpp" "src/channel/CMakeFiles/inframe_channel.dir/camera.cpp.o" "gcc" "src/channel/CMakeFiles/inframe_channel.dir/camera.cpp.o.d"
  "/root/repo/src/channel/display.cpp" "src/channel/CMakeFiles/inframe_channel.dir/display.cpp.o" "gcc" "src/channel/CMakeFiles/inframe_channel.dir/display.cpp.o.d"
  "/root/repo/src/channel/link.cpp" "src/channel/CMakeFiles/inframe_channel.dir/link.cpp.o" "gcc" "src/channel/CMakeFiles/inframe_channel.dir/link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/imgproc/CMakeFiles/inframe_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/inframe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
