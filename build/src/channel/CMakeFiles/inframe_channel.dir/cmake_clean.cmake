file(REMOVE_RECURSE
  "CMakeFiles/inframe_channel.dir/camera.cpp.o"
  "CMakeFiles/inframe_channel.dir/camera.cpp.o.d"
  "CMakeFiles/inframe_channel.dir/display.cpp.o"
  "CMakeFiles/inframe_channel.dir/display.cpp.o.d"
  "CMakeFiles/inframe_channel.dir/link.cpp.o"
  "CMakeFiles/inframe_channel.dir/link.cpp.o.d"
  "libinframe_channel.a"
  "libinframe_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inframe_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
