file(REMOVE_RECURSE
  "libinframe_channel.a"
)
