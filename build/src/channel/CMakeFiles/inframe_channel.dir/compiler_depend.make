# Empty compiler generated dependencies file for inframe_channel.
# This may be replaced when dependencies are built.
