
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coding/chessboard.cpp" "src/coding/CMakeFiles/inframe_coding.dir/chessboard.cpp.o" "gcc" "src/coding/CMakeFiles/inframe_coding.dir/chessboard.cpp.o.d"
  "/root/repo/src/coding/framing.cpp" "src/coding/CMakeFiles/inframe_coding.dir/framing.cpp.o" "gcc" "src/coding/CMakeFiles/inframe_coding.dir/framing.cpp.o.d"
  "/root/repo/src/coding/geometry.cpp" "src/coding/CMakeFiles/inframe_coding.dir/geometry.cpp.o" "gcc" "src/coding/CMakeFiles/inframe_coding.dir/geometry.cpp.o.d"
  "/root/repo/src/coding/interleaver.cpp" "src/coding/CMakeFiles/inframe_coding.dir/interleaver.cpp.o" "gcc" "src/coding/CMakeFiles/inframe_coding.dir/interleaver.cpp.o.d"
  "/root/repo/src/coding/parity.cpp" "src/coding/CMakeFiles/inframe_coding.dir/parity.cpp.o" "gcc" "src/coding/CMakeFiles/inframe_coding.dir/parity.cpp.o.d"
  "/root/repo/src/coding/reed_solomon.cpp" "src/coding/CMakeFiles/inframe_coding.dir/reed_solomon.cpp.o" "gcc" "src/coding/CMakeFiles/inframe_coding.dir/reed_solomon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/imgproc/CMakeFiles/inframe_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/inframe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
