file(REMOVE_RECURSE
  "CMakeFiles/inframe_coding.dir/chessboard.cpp.o"
  "CMakeFiles/inframe_coding.dir/chessboard.cpp.o.d"
  "CMakeFiles/inframe_coding.dir/framing.cpp.o"
  "CMakeFiles/inframe_coding.dir/framing.cpp.o.d"
  "CMakeFiles/inframe_coding.dir/geometry.cpp.o"
  "CMakeFiles/inframe_coding.dir/geometry.cpp.o.d"
  "CMakeFiles/inframe_coding.dir/interleaver.cpp.o"
  "CMakeFiles/inframe_coding.dir/interleaver.cpp.o.d"
  "CMakeFiles/inframe_coding.dir/parity.cpp.o"
  "CMakeFiles/inframe_coding.dir/parity.cpp.o.d"
  "CMakeFiles/inframe_coding.dir/reed_solomon.cpp.o"
  "CMakeFiles/inframe_coding.dir/reed_solomon.cpp.o.d"
  "libinframe_coding.a"
  "libinframe_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inframe_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
