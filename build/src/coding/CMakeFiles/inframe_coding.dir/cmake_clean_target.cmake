file(REMOVE_RECURSE
  "libinframe_coding.a"
)
