# Empty compiler generated dependencies file for inframe_coding.
# This may be replaced when dependencies are built.
