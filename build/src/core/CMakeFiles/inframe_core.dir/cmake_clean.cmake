file(REMOVE_RECURSE
  "CMakeFiles/inframe_core.dir/calibration.cpp.o"
  "CMakeFiles/inframe_core.dir/calibration.cpp.o.d"
  "CMakeFiles/inframe_core.dir/config.cpp.o"
  "CMakeFiles/inframe_core.dir/config.cpp.o.d"
  "CMakeFiles/inframe_core.dir/decoder.cpp.o"
  "CMakeFiles/inframe_core.dir/decoder.cpp.o.d"
  "CMakeFiles/inframe_core.dir/encoder.cpp.o"
  "CMakeFiles/inframe_core.dir/encoder.cpp.o.d"
  "CMakeFiles/inframe_core.dir/link_runner.cpp.o"
  "CMakeFiles/inframe_core.dir/link_runner.cpp.o.d"
  "CMakeFiles/inframe_core.dir/session.cpp.o"
  "CMakeFiles/inframe_core.dir/session.cpp.o.d"
  "CMakeFiles/inframe_core.dir/sync.cpp.o"
  "CMakeFiles/inframe_core.dir/sync.cpp.o.d"
  "libinframe_core.a"
  "libinframe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inframe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
