file(REMOVE_RECURSE
  "libinframe_core.a"
)
