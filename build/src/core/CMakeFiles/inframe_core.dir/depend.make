# Empty dependencies file for inframe_core.
# This may be replaced when dependencies are built.
