
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/envelope.cpp" "src/dsp/CMakeFiles/inframe_dsp.dir/envelope.cpp.o" "gcc" "src/dsp/CMakeFiles/inframe_dsp.dir/envelope.cpp.o.d"
  "/root/repo/src/dsp/filter.cpp" "src/dsp/CMakeFiles/inframe_dsp.dir/filter.cpp.o" "gcc" "src/dsp/CMakeFiles/inframe_dsp.dir/filter.cpp.o.d"
  "/root/repo/src/dsp/spectrum.cpp" "src/dsp/CMakeFiles/inframe_dsp.dir/spectrum.cpp.o" "gcc" "src/dsp/CMakeFiles/inframe_dsp.dir/spectrum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/inframe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
