file(REMOVE_RECURSE
  "CMakeFiles/inframe_dsp.dir/envelope.cpp.o"
  "CMakeFiles/inframe_dsp.dir/envelope.cpp.o.d"
  "CMakeFiles/inframe_dsp.dir/filter.cpp.o"
  "CMakeFiles/inframe_dsp.dir/filter.cpp.o.d"
  "CMakeFiles/inframe_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/inframe_dsp.dir/spectrum.cpp.o.d"
  "libinframe_dsp.a"
  "libinframe_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inframe_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
