file(REMOVE_RECURSE
  "libinframe_dsp.a"
)
