# Empty dependencies file for inframe_dsp.
# This may be replaced when dependencies are built.
