
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hvs/flicker.cpp" "src/hvs/CMakeFiles/inframe_hvs.dir/flicker.cpp.o" "gcc" "src/hvs/CMakeFiles/inframe_hvs.dir/flicker.cpp.o.d"
  "/root/repo/src/hvs/observer.cpp" "src/hvs/CMakeFiles/inframe_hvs.dir/observer.cpp.o" "gcc" "src/hvs/CMakeFiles/inframe_hvs.dir/observer.cpp.o.d"
  "/root/repo/src/hvs/temporal_model.cpp" "src/hvs/CMakeFiles/inframe_hvs.dir/temporal_model.cpp.o" "gcc" "src/hvs/CMakeFiles/inframe_hvs.dir/temporal_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/inframe_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/inframe_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/inframe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
