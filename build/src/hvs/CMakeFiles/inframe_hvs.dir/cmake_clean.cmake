file(REMOVE_RECURSE
  "CMakeFiles/inframe_hvs.dir/flicker.cpp.o"
  "CMakeFiles/inframe_hvs.dir/flicker.cpp.o.d"
  "CMakeFiles/inframe_hvs.dir/observer.cpp.o"
  "CMakeFiles/inframe_hvs.dir/observer.cpp.o.d"
  "CMakeFiles/inframe_hvs.dir/temporal_model.cpp.o"
  "CMakeFiles/inframe_hvs.dir/temporal_model.cpp.o.d"
  "libinframe_hvs.a"
  "libinframe_hvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inframe_hvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
