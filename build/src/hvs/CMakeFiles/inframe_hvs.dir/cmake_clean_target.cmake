file(REMOVE_RECURSE
  "libinframe_hvs.a"
)
