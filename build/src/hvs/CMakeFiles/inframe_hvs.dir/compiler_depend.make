# Empty compiler generated dependencies file for inframe_hvs.
# This may be replaced when dependencies are built.
