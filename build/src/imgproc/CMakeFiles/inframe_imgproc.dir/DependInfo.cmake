
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imgproc/draw.cpp" "src/imgproc/CMakeFiles/inframe_imgproc.dir/draw.cpp.o" "gcc" "src/imgproc/CMakeFiles/inframe_imgproc.dir/draw.cpp.o.d"
  "/root/repo/src/imgproc/filter.cpp" "src/imgproc/CMakeFiles/inframe_imgproc.dir/filter.cpp.o" "gcc" "src/imgproc/CMakeFiles/inframe_imgproc.dir/filter.cpp.o.d"
  "/root/repo/src/imgproc/image_ops.cpp" "src/imgproc/CMakeFiles/inframe_imgproc.dir/image_ops.cpp.o" "gcc" "src/imgproc/CMakeFiles/inframe_imgproc.dir/image_ops.cpp.o.d"
  "/root/repo/src/imgproc/io.cpp" "src/imgproc/CMakeFiles/inframe_imgproc.dir/io.cpp.o" "gcc" "src/imgproc/CMakeFiles/inframe_imgproc.dir/io.cpp.o.d"
  "/root/repo/src/imgproc/metrics.cpp" "src/imgproc/CMakeFiles/inframe_imgproc.dir/metrics.cpp.o" "gcc" "src/imgproc/CMakeFiles/inframe_imgproc.dir/metrics.cpp.o.d"
  "/root/repo/src/imgproc/resize.cpp" "src/imgproc/CMakeFiles/inframe_imgproc.dir/resize.cpp.o" "gcc" "src/imgproc/CMakeFiles/inframe_imgproc.dir/resize.cpp.o.d"
  "/root/repo/src/imgproc/warp.cpp" "src/imgproc/CMakeFiles/inframe_imgproc.dir/warp.cpp.o" "gcc" "src/imgproc/CMakeFiles/inframe_imgproc.dir/warp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/inframe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
