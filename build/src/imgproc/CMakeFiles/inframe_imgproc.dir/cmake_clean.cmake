file(REMOVE_RECURSE
  "CMakeFiles/inframe_imgproc.dir/draw.cpp.o"
  "CMakeFiles/inframe_imgproc.dir/draw.cpp.o.d"
  "CMakeFiles/inframe_imgproc.dir/filter.cpp.o"
  "CMakeFiles/inframe_imgproc.dir/filter.cpp.o.d"
  "CMakeFiles/inframe_imgproc.dir/image_ops.cpp.o"
  "CMakeFiles/inframe_imgproc.dir/image_ops.cpp.o.d"
  "CMakeFiles/inframe_imgproc.dir/io.cpp.o"
  "CMakeFiles/inframe_imgproc.dir/io.cpp.o.d"
  "CMakeFiles/inframe_imgproc.dir/metrics.cpp.o"
  "CMakeFiles/inframe_imgproc.dir/metrics.cpp.o.d"
  "CMakeFiles/inframe_imgproc.dir/resize.cpp.o"
  "CMakeFiles/inframe_imgproc.dir/resize.cpp.o.d"
  "CMakeFiles/inframe_imgproc.dir/warp.cpp.o"
  "CMakeFiles/inframe_imgproc.dir/warp.cpp.o.d"
  "libinframe_imgproc.a"
  "libinframe_imgproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inframe_imgproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
