file(REMOVE_RECURSE
  "libinframe_imgproc.a"
)
