# Empty compiler generated dependencies file for inframe_imgproc.
# This may be replaced when dependencies are built.
