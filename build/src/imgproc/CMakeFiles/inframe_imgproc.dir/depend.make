# Empty dependencies file for inframe_imgproc.
# This may be replaced when dependencies are built.
