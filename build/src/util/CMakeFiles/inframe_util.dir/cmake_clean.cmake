file(REMOVE_RECURSE
  "CMakeFiles/inframe_util.dir/bitstream.cpp.o"
  "CMakeFiles/inframe_util.dir/bitstream.cpp.o.d"
  "CMakeFiles/inframe_util.dir/crc32.cpp.o"
  "CMakeFiles/inframe_util.dir/crc32.cpp.o.d"
  "CMakeFiles/inframe_util.dir/csv.cpp.o"
  "CMakeFiles/inframe_util.dir/csv.cpp.o.d"
  "CMakeFiles/inframe_util.dir/prng.cpp.o"
  "CMakeFiles/inframe_util.dir/prng.cpp.o.d"
  "CMakeFiles/inframe_util.dir/stats.cpp.o"
  "CMakeFiles/inframe_util.dir/stats.cpp.o.d"
  "libinframe_util.a"
  "libinframe_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inframe_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
