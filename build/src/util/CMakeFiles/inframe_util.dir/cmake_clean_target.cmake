file(REMOVE_RECURSE
  "libinframe_util.a"
)
