# Empty dependencies file for inframe_util.
# This may be replaced when dependencies are built.
