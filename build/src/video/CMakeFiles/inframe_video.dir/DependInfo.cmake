
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/playback.cpp" "src/video/CMakeFiles/inframe_video.dir/playback.cpp.o" "gcc" "src/video/CMakeFiles/inframe_video.dir/playback.cpp.o.d"
  "/root/repo/src/video/source.cpp" "src/video/CMakeFiles/inframe_video.dir/source.cpp.o" "gcc" "src/video/CMakeFiles/inframe_video.dir/source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/imgproc/CMakeFiles/inframe_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/inframe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
