file(REMOVE_RECURSE
  "CMakeFiles/inframe_video.dir/playback.cpp.o"
  "CMakeFiles/inframe_video.dir/playback.cpp.o.d"
  "CMakeFiles/inframe_video.dir/source.cpp.o"
  "CMakeFiles/inframe_video.dir/source.cpp.o.d"
  "libinframe_video.a"
  "libinframe_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inframe_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
