file(REMOVE_RECURSE
  "libinframe_video.a"
)
