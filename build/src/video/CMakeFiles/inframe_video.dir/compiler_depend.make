# Empty compiler generated dependencies file for inframe_video.
# This may be replaced when dependencies are built.
