file(REMOVE_RECURSE
  "CMakeFiles/test_baseline.dir/baseline/test_barcode.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/test_barcode.cpp.o.d"
  "CMakeFiles/test_baseline.dir/baseline/test_naive.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/test_naive.cpp.o.d"
  "CMakeFiles/test_baseline.dir/baseline/test_steganography.cpp.o"
  "CMakeFiles/test_baseline.dir/baseline/test_steganography.cpp.o.d"
  "test_baseline"
  "test_baseline.pdb"
  "test_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
