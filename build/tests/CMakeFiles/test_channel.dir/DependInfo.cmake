
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/channel/test_camera.cpp" "tests/CMakeFiles/test_channel.dir/channel/test_camera.cpp.o" "gcc" "tests/CMakeFiles/test_channel.dir/channel/test_camera.cpp.o.d"
  "/root/repo/tests/channel/test_display.cpp" "tests/CMakeFiles/test_channel.dir/channel/test_display.cpp.o" "gcc" "tests/CMakeFiles/test_channel.dir/channel/test_display.cpp.o.d"
  "/root/repo/tests/channel/test_link.cpp" "tests/CMakeFiles/test_channel.dir/channel/test_link.cpp.o" "gcc" "tests/CMakeFiles/test_channel.dir/channel/test_link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/channel/CMakeFiles/inframe_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/inframe_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/inframe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
