
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/coding/test_chessboard.cpp" "tests/CMakeFiles/test_coding.dir/coding/test_chessboard.cpp.o" "gcc" "tests/CMakeFiles/test_coding.dir/coding/test_chessboard.cpp.o.d"
  "/root/repo/tests/coding/test_framing.cpp" "tests/CMakeFiles/test_coding.dir/coding/test_framing.cpp.o" "gcc" "tests/CMakeFiles/test_coding.dir/coding/test_framing.cpp.o.d"
  "/root/repo/tests/coding/test_geometry.cpp" "tests/CMakeFiles/test_coding.dir/coding/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/test_coding.dir/coding/test_geometry.cpp.o.d"
  "/root/repo/tests/coding/test_interleaver.cpp" "tests/CMakeFiles/test_coding.dir/coding/test_interleaver.cpp.o" "gcc" "tests/CMakeFiles/test_coding.dir/coding/test_interleaver.cpp.o.d"
  "/root/repo/tests/coding/test_parity.cpp" "tests/CMakeFiles/test_coding.dir/coding/test_parity.cpp.o" "gcc" "tests/CMakeFiles/test_coding.dir/coding/test_parity.cpp.o.d"
  "/root/repo/tests/coding/test_reed_solomon.cpp" "tests/CMakeFiles/test_coding.dir/coding/test_reed_solomon.cpp.o" "gcc" "tests/CMakeFiles/test_coding.dir/coding/test_reed_solomon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coding/CMakeFiles/inframe_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/inframe_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/inframe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
