file(REMOVE_RECURSE
  "CMakeFiles/test_coding.dir/coding/test_chessboard.cpp.o"
  "CMakeFiles/test_coding.dir/coding/test_chessboard.cpp.o.d"
  "CMakeFiles/test_coding.dir/coding/test_framing.cpp.o"
  "CMakeFiles/test_coding.dir/coding/test_framing.cpp.o.d"
  "CMakeFiles/test_coding.dir/coding/test_geometry.cpp.o"
  "CMakeFiles/test_coding.dir/coding/test_geometry.cpp.o.d"
  "CMakeFiles/test_coding.dir/coding/test_interleaver.cpp.o"
  "CMakeFiles/test_coding.dir/coding/test_interleaver.cpp.o.d"
  "CMakeFiles/test_coding.dir/coding/test_parity.cpp.o"
  "CMakeFiles/test_coding.dir/coding/test_parity.cpp.o.d"
  "CMakeFiles/test_coding.dir/coding/test_reed_solomon.cpp.o"
  "CMakeFiles/test_coding.dir/coding/test_reed_solomon.cpp.o.d"
  "test_coding"
  "test_coding.pdb"
  "test_coding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
