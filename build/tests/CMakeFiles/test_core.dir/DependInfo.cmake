
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_calibration.cpp" "tests/CMakeFiles/test_core.dir/core/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_calibration.cpp.o.d"
  "/root/repo/tests/core/test_color.cpp" "tests/CMakeFiles/test_core.dir/core/test_color.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_color.cpp.o.d"
  "/root/repo/tests/core/test_config.cpp" "tests/CMakeFiles/test_core.dir/core/test_config.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_config.cpp.o.d"
  "/root/repo/tests/core/test_decoder.cpp" "tests/CMakeFiles/test_core.dir/core/test_decoder.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_decoder.cpp.o.d"
  "/root/repo/tests/core/test_encoder.cpp" "tests/CMakeFiles/test_core.dir/core/test_encoder.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_encoder.cpp.o.d"
  "/root/repo/tests/core/test_link_runner.cpp" "tests/CMakeFiles/test_core.dir/core/test_link_runner.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_link_runner.cpp.o.d"
  "/root/repo/tests/core/test_perspective.cpp" "tests/CMakeFiles/test_core.dir/core/test_perspective.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_perspective.cpp.o.d"
  "/root/repo/tests/core/test_properties.cpp" "tests/CMakeFiles/test_core.dir/core/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_properties.cpp.o.d"
  "/root/repo/tests/core/test_session.cpp" "tests/CMakeFiles/test_core.dir/core/test_session.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_session.cpp.o.d"
  "/root/repo/tests/core/test_sync.cpp" "tests/CMakeFiles/test_core.dir/core/test_sync.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/inframe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/inframe_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/inframe_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/hvs/CMakeFiles/inframe_hvs.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/inframe_video.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/inframe_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/inframe_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/inframe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
