file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_calibration.cpp.o"
  "CMakeFiles/test_core.dir/core/test_calibration.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_color.cpp.o"
  "CMakeFiles/test_core.dir/core/test_color.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_config.cpp.o"
  "CMakeFiles/test_core.dir/core/test_config.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_decoder.cpp.o"
  "CMakeFiles/test_core.dir/core/test_decoder.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_encoder.cpp.o"
  "CMakeFiles/test_core.dir/core/test_encoder.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_link_runner.cpp.o"
  "CMakeFiles/test_core.dir/core/test_link_runner.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_perspective.cpp.o"
  "CMakeFiles/test_core.dir/core/test_perspective.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_session.cpp.o"
  "CMakeFiles/test_core.dir/core/test_session.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_sync.cpp.o"
  "CMakeFiles/test_core.dir/core/test_sync.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
