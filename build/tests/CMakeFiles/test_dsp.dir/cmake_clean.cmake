file(REMOVE_RECURSE
  "CMakeFiles/test_dsp.dir/dsp/test_envelope.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_envelope.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_filter.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_filter.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_spectrum.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_spectrum.cpp.o.d"
  "test_dsp"
  "test_dsp.pdb"
  "test_dsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
