file(REMOVE_RECURSE
  "CMakeFiles/test_hvs.dir/hvs/test_flicker.cpp.o"
  "CMakeFiles/test_hvs.dir/hvs/test_flicker.cpp.o.d"
  "CMakeFiles/test_hvs.dir/hvs/test_observer.cpp.o"
  "CMakeFiles/test_hvs.dir/hvs/test_observer.cpp.o.d"
  "CMakeFiles/test_hvs.dir/hvs/test_temporal_model.cpp.o"
  "CMakeFiles/test_hvs.dir/hvs/test_temporal_model.cpp.o.d"
  "test_hvs"
  "test_hvs.pdb"
  "test_hvs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
