# Empty compiler generated dependencies file for test_hvs.
# This may be replaced when dependencies are built.
