
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/imgproc/test_draw.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_draw.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_draw.cpp.o.d"
  "/root/repo/tests/imgproc/test_filter.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_filter.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_filter.cpp.o.d"
  "/root/repo/tests/imgproc/test_image.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_image.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_image.cpp.o.d"
  "/root/repo/tests/imgproc/test_image_ops.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_image_ops.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_image_ops.cpp.o.d"
  "/root/repo/tests/imgproc/test_io.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_io.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_io.cpp.o.d"
  "/root/repo/tests/imgproc/test_metrics.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_metrics.cpp.o.d"
  "/root/repo/tests/imgproc/test_resize.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_resize.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_resize.cpp.o.d"
  "/root/repo/tests/imgproc/test_warp.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_warp.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/test_warp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/imgproc/CMakeFiles/inframe_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/inframe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
