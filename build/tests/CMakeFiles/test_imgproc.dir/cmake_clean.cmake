file(REMOVE_RECURSE
  "CMakeFiles/test_imgproc.dir/imgproc/test_draw.cpp.o"
  "CMakeFiles/test_imgproc.dir/imgproc/test_draw.cpp.o.d"
  "CMakeFiles/test_imgproc.dir/imgproc/test_filter.cpp.o"
  "CMakeFiles/test_imgproc.dir/imgproc/test_filter.cpp.o.d"
  "CMakeFiles/test_imgproc.dir/imgproc/test_image.cpp.o"
  "CMakeFiles/test_imgproc.dir/imgproc/test_image.cpp.o.d"
  "CMakeFiles/test_imgproc.dir/imgproc/test_image_ops.cpp.o"
  "CMakeFiles/test_imgproc.dir/imgproc/test_image_ops.cpp.o.d"
  "CMakeFiles/test_imgproc.dir/imgproc/test_io.cpp.o"
  "CMakeFiles/test_imgproc.dir/imgproc/test_io.cpp.o.d"
  "CMakeFiles/test_imgproc.dir/imgproc/test_metrics.cpp.o"
  "CMakeFiles/test_imgproc.dir/imgproc/test_metrics.cpp.o.d"
  "CMakeFiles/test_imgproc.dir/imgproc/test_resize.cpp.o"
  "CMakeFiles/test_imgproc.dir/imgproc/test_resize.cpp.o.d"
  "CMakeFiles/test_imgproc.dir/imgproc/test_warp.cpp.o"
  "CMakeFiles/test_imgproc.dir/imgproc/test_warp.cpp.o.d"
  "test_imgproc"
  "test_imgproc.pdb"
  "test_imgproc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_imgproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
