# Empty dependencies file for test_imgproc.
# This may be replaced when dependencies are built.
