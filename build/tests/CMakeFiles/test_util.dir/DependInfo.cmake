
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_bitstream.cpp" "tests/CMakeFiles/test_util.dir/util/test_bitstream.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_bitstream.cpp.o.d"
  "/root/repo/tests/util/test_crc32.cpp" "tests/CMakeFiles/test_util.dir/util/test_crc32.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_crc32.cpp.o.d"
  "/root/repo/tests/util/test_csv.cpp" "tests/CMakeFiles/test_util.dir/util/test_csv.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_csv.cpp.o.d"
  "/root/repo/tests/util/test_prng.cpp" "tests/CMakeFiles/test_util.dir/util/test_prng.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_prng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/inframe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
