# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_imgproc[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_video[1]_include.cmake")
include("/root/repo/build/tests/test_hvs[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_coding[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
