#!/usr/bin/env bash
# Build-and-test matrix: the release build at every SIMD dispatch level the
# host supports, plus the sanitizer configurations from README.md. Each leg
# is an independent build tree under build-matrix/ so legs can be re-run
# individually:
#
#   ci/matrix.sh                 # all legs
#   ci/matrix.sh release tsan    # just these legs
#
# Legs:
#   release       Release build, full ctest suite at the auto-detected
#                 SIMD level, then the tier-1 suites again with
#                 INFRAME_SIMD=scalar — the scalar dispatch path must stay
#                 green, not just parity-tested (a kernel whose vector
#                 path works but whose scalar path rotted would otherwise
#                 only fail on non-SIMD hosts).
#   tsan          -DINFRAME_SANITIZE=thread,    unit+pipeline+simd labels
#   asan          -DINFRAME_SANITIZE=address,   unit+pipeline+simd labels
#   ubsan         -DINFRAME_SANITIZE=undefined, unit+pipeline+simd labels
#
# Every sanitizer leg also re-runs the simd label under INFRAME_SIMD=scalar:
# the scalar reference kernels are exactly what the differential harness
# trusts, so they get sanitizer coverage at both dispatch extremes.

set -euo pipefail
cd "$(dirname "$0")/.."

legs=("$@")
if [ ${#legs[@]} -eq 0 ]; then
    legs=(release tsan asan ubsan)
fi

jobs="$(nproc 2>/dev/null || echo 2)"

run_leg() {
    local name="$1"
    local sanitize="$2"
    local build="build-matrix/${name}"
    echo "=== leg: ${name} (sanitize='${sanitize}') ==="
    cmake -B "${build}" -S . -DCMAKE_BUILD_TYPE=Release \
          -DINFRAME_SANITIZE="${sanitize}" >/dev/null
    cmake --build "${build}" -j "${jobs}"
    if [ "${name}" = release ]; then
        ctest --test-dir "${build}" --output-on-failure -j "${jobs}"
        echo "--- ${name}: tier-1 suites again with INFRAME_SIMD=scalar ---"
        INFRAME_SIMD=scalar ctest --test-dir "${build}" --output-on-failure \
            -j "${jobs}" -L 'unit|pipeline|simd|property|fault|telemetry'
    else
        ctest --test-dir "${build}" --output-on-failure -j "${jobs}" \
            -L 'unit|pipeline|simd'
        echo "--- ${name}: simd suite again with INFRAME_SIMD=scalar ---"
        INFRAME_SIMD=scalar ctest --test-dir "${build}" --output-on-failure \
            -j "${jobs}" -L simd
    fi
}

for leg in "${legs[@]}"; do
    case "${leg}" in
    release) run_leg release "" ;;
    tsan) run_leg tsan thread ;;
    asan) run_leg asan address ;;
    ubsan) run_leg ubsan undefined ;;
    *)
        echo "unknown leg '${leg}' (expected: release tsan asan ubsan)" >&2
        exit 2
        ;;
    esac
done

echo "=== matrix green: ${legs[*]} ==="
