// Coupon broadcast: the paper's motivating application (5) — an ad video
// carries coupon links as side-information. Viewers watch the ad; phones
// pointed at the screen pick up the coupons.
//
// This example stresses the carousel property: a receiver that joins
// mid-broadcast and suffers capture dropouts still assembles the message
// from later carousel passes. The phone's imperfections live in their own
// pipeline stage between the link and the receiver: captures before the
// join time or during hand-shake bursts never reach the decoder.

#include "core/pipeline.hpp"
#include "core/stages.hpp"
#include "imgproc/pool.hpp"
#include "telemetry/telemetry.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "video/playback.hpp"

#include <cstdio>
#include <string>

int main(int argc, char** argv)
{
    using namespace inframe;

    // `--trace <dir>` exports trace.json / frames.jsonl / metrics.json.
    telemetry::Session telemetry_session(telemetry::config_from_args(argc, argv));

    constexpr int width = 480;
    constexpr int height = 270;

    core::Inframe_config config = core::paper_config(width, height);
    // At this small demo resolution the camera cannot resolve the paper
    // geometry's 1-px Pixels; use 2-px Pixels instead (fewer, larger blocks).
    config.geometry = coding::fitted_geometry(width, height, /*pixel_size=*/2);
    config.tau = 10; // the paper's highest-throughput setting
    config.threads = 0; // all cores; output is thread-count invariant
    const util::Parallel_scope parallel_scope(config.threads);

    const std::string coupon =
        "COUPON:SUNRISE-COFFEE-20-OFF|https://example.com/r/8f31|valid-until:2014-10-28|"
        "terms:one-per-customer,participating-stores-only|signature:6dc1a39b";

    channel::Display_params display;
    channel::Camera_params camera;
    camera.sensor_width = width;
    camera.sensor_height = height;

    auto decoder_params = core::make_decoder_params(config, width, height);
    decoder_params.detector = core::Detector::matched; // texture-robust detector

    // The viewer's phone joins 1.5 seconds into the ad and loses captures
    // whenever the hand shakes (a dropout burst every ~0.8 s).
    const double join_time = 1.5;

    core::Pipeline pipeline;
    pipeline.emplace_stage<core::Video_stage>(video::make_sunrise_video(width, height),
                                              video::Playback_schedule{});
    auto& send = pipeline.emplace_stage<core::Send_stage>(
        config, std::vector<std::uint8_t>{coupon.begin(), coupon.end()});
    pipeline.emplace_stage<core::Link_stage>(display, camera, width, height);
    pipeline.emplace_stage<core::Function_stage>(
        "phone", [shake = util::Prng(99), join_time](core::Frame_token token) mutable {
            std::vector<core::Frame_token> out;
            const bool watching = token.time_s >= join_time;
            if (watching && !shake.next_bernoulli(0.15)) {
                out.push_back(std::move(token));
            } else {
                // Not watching yet, or blurred capture discarded.
                img::Frame_pool::instance().recycle(std::move(token.image));
            }
            return out;
        });
    auto& receive =
        pipeline.emplace_stage<core::Receive_stage>(decoder_params, send.sender().total_chunks());

    std::printf("Ad running; coupon payload is %zu bytes over %zu data frames per pass.\n",
                coupon.size(), send.sender().total_chunks());

    core::Pipeline_options options;
    options.frames_in_flight = 4;
    options.stop_when = [&receive] { return receive.receiver().message_complete(); };
    pipeline.run(120 * 30, options);

    const auto& receiver = receive.receiver();
    if (!receiver.message_complete()) {
        std::printf("coupon not assembled within the ad. :(\n");
        return 1;
    }
    const auto bytes = receiver.message();
    std::printf("joined at %.1f s, coupon complete at %.2f s (%.2f s of viewing)\n", join_time,
                receive.completed_at(), receive.completed_at() - join_time);
    std::printf("decoded %zu data frames (%zu rejected during dropouts)\n",
                receiver.frames_decoded(), receiver.frames_rejected());
    std::printf("coupon: %s\n", std::string(bytes.begin(), bytes.end()).c_str());
    return 0;
}
