// Coupon broadcast: the paper's motivating application (5) — an ad video
// carries coupon links as side-information. Viewers watch the ad; phones
// pointed at the screen pick up the coupons.
//
// This example stresses the carousel property: a receiver that joins
// mid-broadcast and suffers capture dropouts still assembles the message
// from later carousel passes.

#include "channel/link.hpp"
#include "core/session.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "video/playback.hpp"

#include <cstdio>
#include <string>

int main()
{
    using namespace inframe;

    constexpr int width = 480;
    constexpr int height = 270;

    core::Inframe_config config = core::paper_config(width, height);
    // At this small demo resolution the camera cannot resolve the paper
    // geometry's 1-px Pixels; use 2-px Pixels instead (fewer, larger blocks).
    config.geometry = coding::fitted_geometry(width, height, /*pixel_size=*/2);
    config.tau = 10; // the paper's highest-throughput setting
    config.threads = 0; // all cores; output is thread-count invariant
    const util::Parallel_scope parallel_scope(config.threads);

    const std::string coupon =
        "COUPON:SUNRISE-COFFEE-20-OFF|https://example.com/r/8f31|valid-until:2014-10-28|"
        "terms:one-per-customer,participating-stores-only|signature:6dc1a39b";
    core::Inframe_sender sender(config, {coupon.begin(), coupon.end()});

    const auto video = video::make_sunrise_video(width, height);
    const video::Playback_schedule schedule;

    channel::Display_params display;
    channel::Camera_params camera;
    camera.sensor_width = width;
    camera.sensor_height = height;
    channel::Screen_camera_link link(display, camera, width, height);

    auto decoder_params = core::make_decoder_params(config, width, height);
    decoder_params.detector = core::Detector::matched; // texture-robust detector
    core::Inframe_receiver receiver(decoder_params, sender.total_chunks());

    std::printf("Ad running; coupon payload is %zu bytes over %zu data frames per pass.\n",
                coupon.size(), sender.total_chunks());

    // The viewer's phone joins 1.5 seconds into the ad and loses captures
    // whenever the hand shakes (a dropout burst every ~0.8 s).
    const double join_time = 1.5;
    util::Prng shake(99);
    std::int64_t display_frame = 0;
    double complete_at = -1.0;
    while (complete_at < 0.0 && display_frame < 120 * 30) {
        const auto video_frame = video->frame(schedule.video_frame_for_display(display_frame));
        const auto multiplexed = sender.next_display_frame(video_frame);
        for (const auto& capture : link.push_display_frame(multiplexed)) {
            if (capture.start_time < join_time) continue; // not watching yet
            const bool shaking = shake.next_bernoulli(0.15);
            if (shaking) continue; // blurred capture discarded
            receiver.push_capture(capture.image, capture.start_time);
            if (receiver.message_complete()) complete_at = capture.start_time;
        }
        ++display_frame;
    }
    receiver.finish();

    if (!receiver.message_complete()) {
        std::printf("coupon not assembled within the ad. :(\n");
        return 1;
    }
    const auto bytes = receiver.message();
    std::printf("joined at %.1f s, coupon complete at %.2f s (%.2f s of viewing)\n", join_time,
                complete_at, complete_at - join_time);
    std::printf("decoded %zu data frames (%zu rejected during dropouts)\n",
                receiver.frames_decoded(), receiver.frames_rejected());
    std::printf("coupon: %s\n", std::string(bytes.begin(), bytes.end()).c_str());
    return 0;
}
