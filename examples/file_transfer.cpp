// File transfer over the screen-camera channel.
//
// Broadcasts a binary file (generated here; any bytes work) over a colour
// video carousel, receives it through the simulated camera, and verifies
// the result byte-for-byte with a CRC — the "device-favorable content
// without sacrificing the screen" scenario end to end, including the
// phase-synchronized receiver that does not know when the broadcast
// started.

#include "inframe.hpp"

#include <cstdio>

int main()
{
    using namespace inframe;

    constexpr int width = 480;
    constexpr int height = 270;

    core::Inframe_config config = core::paper_config(width, height);
    config.geometry = coding::fitted_geometry(width, height, 2);
    config.tau = 10;
    config.threads = 0; // all cores; decoded bytes are identical at any count
    const util::Parallel_scope parallel_scope(config.threads);

    // The channel here is clean enough that a third of the codeword in
    // parity suffices; this nearly triples the per-frame payload over the
    // default 55%.
    core::Session_options protection;
    protection.rs_parity_fraction = 0.35;

    // The "file": 1 KiB of deterministic binary data.
    util::Prng file_prng(0xf11e);
    std::vector<std::uint8_t> file(1024);
    file_prng.fill_bytes(file);
    const std::uint32_t checksum = util::crc32(file);

    core::Inframe_sender sender(config, file, /*loop=*/true, protection);
    std::printf("broadcasting %zu bytes (crc32 %08x) in %zu chunks at %.2f kbps raw\n",
                file.size(), checksum, sender.total_chunks(),
                config.raw_payload_rate() / 1000.0);

    // A warm-tinted colour video carries the broadcast.
    const auto video = std::make_shared<video::Tinted_video>(
        video::make_sunrise_video(width, height),
        video::Tinted_video::Tint{8.0f, 4.0f, 24.0f},
        video::Tinted_video::Tint{255.0f, 225.0f, 185.0f});
    const video::Playback_schedule schedule;

    channel::Display_params display;
    channel::Camera_params camera;
    camera.sensor_width = width;
    camera.sensor_height = height;
    channel::Screen_camera_link link(display, camera, width, height);

    auto decoder_params = core::make_decoder_params(config, width, height);
    decoder_params.detector = core::Detector::matched;
    core::Inframe_receiver receiver(decoder_params, sender.total_chunks(), protection);

    std::int64_t display_frame = 0;
    std::size_t last_report = 0;
    while (!receiver.message_complete() && display_frame < 120 * 120) {
        const auto video_frame = video->frame(schedule.video_frame_for_display(display_frame));
        const auto shown = sender.next_display_frame(video_frame);
        for (const auto& capture : link.push_display_frame(shown)) {
            receiver.push_capture(capture.image, capture.start_time);
        }
        if (receiver.chunks_received() >= last_report + 20) {
            last_report = receiver.chunks_received();
            std::printf("  %5.1f s: %zu/%zu chunks\n",
                        static_cast<double>(display_frame) / 120.0,
                        receiver.chunks_received(), sender.total_chunks());
        }
        ++display_frame;
    }
    receiver.finish();

    const auto received = receiver.message();
    const double seconds = static_cast<double>(display_frame) / 120.0;
    std::printf("\nreceived %zu bytes in %.1f s of video (%.2f kbps effective)\n",
                received.size(), seconds,
                received.size() * 8.0 / seconds / 1000.0);
    if (received == file) {
        std::printf("crc32 %08x verified: file intact.\n", util::crc32(received));
        return 0;
    }
    std::printf("TRANSFER FAILED (got %zu/%zu chunks)\n", receiver.chunks_received(),
                sender.total_chunks());
    return 1;
}
