// File transfer over the screen-camera channel.
//
// Broadcasts a binary file (generated here; any bytes work) over a colour
// video carousel, receives it through the simulated camera, and verifies
// the result byte-for-byte with a CRC — the "device-favorable content
// without sacrificing the screen" scenario end to end, including the
// phase-synchronized receiver that does not know when the broadcast
// started. The transfer is a core::Pipeline stage graph with overlapped
// stages; progress is reported from the early-stop probe, which runs on
// the receiving end of the graph.

#include "inframe.hpp"

#include <cstdio>

int main(int argc, char** argv)
{
    using namespace inframe;

    // `--trace <dir>` exports trace.json / frames.jsonl / metrics.json.
    telemetry::Session telemetry_session(telemetry::config_from_args(argc, argv));

    constexpr int width = 480;
    constexpr int height = 270;

    core::Inframe_config config = core::paper_config(width, height);
    config.geometry = coding::fitted_geometry(width, height, 2);
    config.tau = 10;
    config.threads = 0; // all cores; decoded bytes are identical at any count
    const util::Parallel_scope parallel_scope(config.threads);

    // The channel here is clean enough that a third of the codeword in
    // parity suffices; this nearly triples the per-frame payload over the
    // default 55%.
    core::Session_options protection;
    protection.rs_parity_fraction = 0.35;

    // The "file": 1 KiB of deterministic binary data.
    util::Prng file_prng(0xf11e);
    std::vector<std::uint8_t> file(1024);
    file_prng.fill_bytes(file);
    const std::uint32_t checksum = util::crc32(file);

    // A warm-tinted colour video carries the broadcast.
    const auto video = std::make_shared<video::Tinted_video>(
        video::make_sunrise_video(width, height),
        video::Tinted_video::Tint{8.0f, 4.0f, 24.0f},
        video::Tinted_video::Tint{255.0f, 225.0f, 185.0f});

    channel::Display_params display;
    channel::Camera_params camera;
    camera.sensor_width = width;
    camera.sensor_height = height;

    auto decoder_params = core::make_decoder_params(config, width, height);
    decoder_params.detector = core::Detector::matched;

    core::Pipeline pipeline;
    pipeline.emplace_stage<core::Video_stage>(video, video::Playback_schedule{});
    auto& send =
        pipeline.emplace_stage<core::Send_stage>(config, file, /*loop=*/true, protection);
    pipeline.emplace_stage<core::Link_stage>(display, camera, width, height);
    auto& receive = pipeline.emplace_stage<core::Receive_stage>(
        decoder_params, send.sender().total_chunks(), protection);

    std::printf("broadcasting %zu bytes (crc32 %08x) in %zu chunks at %.2f kbps raw\n",
                file.size(), checksum, send.sender().total_chunks(),
                config.raw_payload_rate() / 1000.0);

    // Drive until the receiver has every chunk (2 min budget). The stop
    // probe runs after each capture lands, so it doubles as the progress
    // reporter.
    core::Pipeline_options options;
    options.frames_in_flight = 4;
    std::size_t last_report = 0;
    options.stop_when = [&] {
        const auto& receiver = receive.receiver();
        if (receiver.chunks_received() >= last_report + 20) {
            last_report = receiver.chunks_received();
            std::printf("  %5zu/%zu chunks\n", receiver.chunks_received(),
                        send.sender().total_chunks());
        }
        return receiver.message_complete();
    };
    const core::Pipeline_metrics metrics = pipeline.run(120 * 120, options);

    const auto& receiver = receive.receiver();
    const auto received = receiver.message();
    const double seconds = receive.completed_at() >= 0.0
                               ? receive.completed_at()
                               : static_cast<double>(metrics.head_tokens) / 120.0;
    std::printf("\nreceived %zu bytes in %.1f s of video (%.2f kbps effective)\n",
                received.size(), seconds,
                received.size() * 8.0 / seconds / 1000.0);
    if (received == file) {
        std::printf("crc32 %08x verified: file intact.\n", util::crc32(received));
        return 0;
    }
    std::printf("TRANSFER FAILED (got %zu/%zu chunks)\n", receiver.chunks_received(),
                send.sender().total_chunks());
    return 1;
}
