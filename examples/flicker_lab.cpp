// Flicker lab: explore the viewing-experience side of InFrame.
//
// Writes Fig. 4-style images (the complementary pair V+D / V-D and their
// average) to ./flicker_lab_out/ and prints the simulated observer panel's
// flicker scores for a small delta x tau sweep — a fast, reduced version
// of the Fig. 6 study (bench/bench_fig6_flicker runs the full one).

#include "core/encoder.hpp"
#include "core/link_runner.hpp"
#include "imgproc/image_ops.hpp"
#include "imgproc/io.hpp"
#include "imgproc/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "util/csv.hpp"
#include "util/prng.hpp"
#include "video/playback.hpp"

#include <cstdio>
#include <filesystem>
#include <iostream>

int main(int argc, char** argv)
{
    using namespace inframe;

    // `--trace <dir>` exports trace.json / frames.jsonl / metrics.json.
    telemetry::Session telemetry_session(telemetry::config_from_args(argc, argv));

    constexpr int width = 480;
    constexpr int height = 270;
    const std::filesystem::path out_dir = "flicker_lab_out";
    std::filesystem::create_directories(out_dir);

    // --- Part 1: Fig. 4 style frame pairs -------------------------------
    core::Inframe_config config = core::paper_config(width, height);
    util::Prng prng(util::Prng::default_seed);
    const auto bits =
        prng.next_bits(static_cast<std::size_t>(config.geometry.block_count()));

    const auto gray = video::make_gray_video(width, height)->frame(0);
    const auto sunrise = video::make_sunrise_video(width, height)->frame(450);

    for (const auto& [name, frame] : {std::pair{"gray", gray}, {"sunrise", sunrise}}) {
        const auto pair = core::make_complementary_pair(config, frame, bits);
        img::Imagef average = img::add(pair.plus, pair.minus);
        average = img::affine(average, 0.5f, 0.0f);
        img::write_pnm(pair.plus, (out_dir / (std::string(name) + "_plus.pgm")).string());
        img::write_pnm(pair.minus, (out_dir / (std::string(name) + "_minus.pgm")).string());
        img::write_pnm(average, (out_dir / (std::string(name) + "_average.pgm")).string());
        std::printf("%s: single multiplexed frame PSNR %.1f dB, averaged pair PSNR %.1f dB\n",
                    name, img::psnr(pair.plus, frame), img::psnr(average, frame));
    }
    std::printf("frame pair images written to %s/\n\n", out_dir.string().c_str());

    // --- Part 2: mini delta x tau perception sweep ----------------------
    util::Table table({"delta", "tau", "panel score (0-4)", "stddev"});
    for (const float delta : {10.0f, 20.0f, 40.0f}) {
        for (const int tau : {8, 12, 16}) {
            core::Flicker_experiment_config experiment;
            experiment.video = video::make_dark_gray_video(width, height);
            experiment.inframe = core::paper_config(width, height);
            experiment.inframe.delta = delta;
            experiment.inframe.tau = tau;
            experiment.duration_s = 1.5;
            experiment.observers = 8;
            experiment.options.max_sites = 384;
            const auto result = core::run_flicker_experiment(experiment);
            table.add_row({static_cast<double>(delta), static_cast<long long>(tau),
                           result.mean_score, result.stddev_score});
        }
    }
    std::printf("score scale: 0 no difference ... 4 strong flicker (paper 4)\n");
    table.print(std::cout);
    return 0;
}
