// Quickstart: send a message over InFrame's dual-mode channel.
//
// A video plays on the (simulated) display; a short message rides on top
// of it, invisible to the viewer; the (simulated) camera demodulates it.
// The whole dataflow is one core::Pipeline stage graph — video, sender,
// screen-camera link, receiver — driven with a few display frames in
// flight so the stages overlap. Everything runs at a reduced resolution
// so this finishes in seconds — bench/bench_fig7_throughput runs the
// paper's full-scale rig.

#include "core/pipeline.hpp"
#include "core/stages.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"
#include "video/playback.hpp"

#include <cstdio>
#include <string>

int main(int argc, char** argv)
{
    using namespace inframe;

    // `--trace <dir>` writes trace.json (open in Perfetto / about:tracing),
    // frames.jsonl and metrics.json there; summarize with telemetry_report.
    telemetry::Session telemetry_session(telemetry::config_from_args(argc, argv));

    constexpr int width = 480;
    constexpr int height = 270;

    // 1. Configure InFrame: the paper's layout scaled to this screen.
    core::Inframe_config config = core::paper_config(width, height);
    // At this small demo resolution the camera cannot resolve the paper
    // geometry's 1-px Pixels; use 2-px Pixels instead (fewer, larger blocks).
    config.geometry = coding::fitted_geometry(width, height, /*pixel_size=*/2);
    config.delta = 20.0f; // chessboard amplitude: invisible at tau >= 10
    config.tau = 12;      // display frames per data frame
    config.threads = 0;   // fan kernels out over all cores (0 = hardware)
    const util::Parallel_scope parallel_scope(config.threads);

    std::printf("InFrame quickstart\n");
    std::printf("  screen      : %dx%d @ %.0f Hz\n", width, height, config.display_fps);
    std::printf("  data frame  : %d blocks -> %d payload bits\n",
                config.geometry.block_count(), config.geometry.payload_bits_per_frame());
    std::printf("  raw rate    : %.2f kbps\n\n", config.raw_payload_rate() / 1000.0);

    // 2. The message to broadcast (loops as a carousel until received).
    const std::string text =
        "Hello from InFrame! This message is riding on ordinary video, "
        "invisible to anyone watching the screen.";

    // 3. Assemble the stage graph: video -> sender -> display/camera link
    //    -> receiver. The camera captures close up, so its sensor resolves
    //    the screen 1:1.
    channel::Display_params display;
    channel::Camera_params camera;
    camera.sensor_width = width;
    camera.sensor_height = height;

    auto decoder_params = core::make_decoder_params(config, width, height);
    decoder_params.detector = core::Detector::matched; // texture-robust detector

    core::Pipeline pipeline;
    pipeline.emplace_stage<core::Video_stage>(video::make_sunrise_video(width, height),
                                              video::Playback_schedule{});
    auto& send = pipeline.emplace_stage<core::Send_stage>(
        config, std::vector<std::uint8_t>{text.begin(), text.end()});
    pipeline.emplace_stage<core::Link_stage>(display, camera, width, height);
    auto& receive =
        pipeline.emplace_stage<core::Receive_stage>(decoder_params, send.sender().total_chunks());

    std::printf("sending %zu bytes in %zu data-frame chunks\n\n", text.size(),
                send.sender().total_chunks());

    // 4. Run the link until the whole message has been reassembled (or a
    //    20 s budget runs out). frames_in_flight > 1 runs each stage on
    //    its own thread with a bounded queue between neighbours.
    core::Pipeline_options options;
    options.frames_in_flight = 4;
    options.stop_when = [&receive] { return receive.receiver().message_complete(); };
    const core::Pipeline_metrics metrics = pipeline.run(120 * 20, options);

    const auto& receiver = receive.receiver();
    const auto received = receiver.message();
    std::printf("after %.2f s of video:\n",
                static_cast<double>(metrics.head_tokens) / config.display_fps);
    std::printf("  chunks      : %zu/%zu\n", receiver.chunks_received(),
                send.sender().total_chunks());
    std::printf("  frames used : %zu decoded, %zu rejected\n", receiver.frames_decoded(),
                receiver.frames_rejected());
    if (receive.completed_at() >= 0.0) {
        std::printf("  complete at : %.2f s\n", receive.completed_at());
    }
    std::printf("  message     : \"%s\"\n",
                std::string(received.begin(), received.end()).c_str());
    std::printf("  status      : %s\n", receiver.message_complete() ? "complete" : "INCOMPLETE");

    // 5. The pipeline's observability taps: where the time went.
    std::printf("\npipeline (%d frames in flight, %.2f s wall):\n", metrics.frames_in_flight,
                metrics.wall_s);
    for (const auto& stage : metrics.stages) {
        // Wait counters are -1 where the stage has no queue on that side
        // (the head has no input queue, the sink no output queue).
        const auto waits = [](std::int64_t w) {
            return w < 0 ? std::string("-") : std::to_string(w);
        };
        std::printf("  %-8s %6.2f s busy  %6lld in %6lld out  waits in/out %s/%s\n",
                    stage.name.c_str(), stage.wall_s, static_cast<long long>(stage.tokens_in),
                    static_cast<long long>(stage.tokens_out),
                    waits(stage.input_waits).c_str(), waits(stage.output_waits).c_str());
    }
    std::printf("  frame pool: %lld hits / %lld misses\n",
                static_cast<long long>(metrics.pool_hits),
                static_cast<long long>(metrics.pool_misses));
    return receiver.message_complete() ? 0 : 1;
}
