// Quickstart: send a message over InFrame's dual-mode channel.
//
// A video plays on the (simulated) display; a short message rides on top
// of it, invisible to the viewer; the (simulated) camera demodulates it.
// Everything runs at a reduced resolution so this finishes in seconds —
// bench/bench_fig7_throughput runs the paper's full-scale rig.

#include "channel/link.hpp"
#include "core/session.hpp"
#include "util/thread_pool.hpp"
#include "video/playback.hpp"

#include <cstdio>
#include <string>

int main()
{
    using namespace inframe;

    constexpr int width = 480;
    constexpr int height = 270;

    // 1. Configure InFrame: the paper's layout scaled to this screen.
    core::Inframe_config config = core::paper_config(width, height);
    // At this small demo resolution the camera cannot resolve the paper
    // geometry's 1-px Pixels; use 2-px Pixels instead (fewer, larger blocks).
    config.geometry = coding::fitted_geometry(width, height, /*pixel_size=*/2);
    config.delta = 20.0f; // chessboard amplitude: invisible at tau >= 10
    config.tau = 12;      // display frames per data frame
    config.threads = 0;   // fan kernels out over all cores (0 = hardware)
    const util::Parallel_scope parallel_scope(config.threads);

    std::printf("InFrame quickstart\n");
    std::printf("  screen      : %dx%d @ %.0f Hz\n", width, height, config.display_fps);
    std::printf("  data frame  : %d blocks -> %d payload bits\n",
                config.geometry.block_count(), config.geometry.payload_bits_per_frame());
    std::printf("  raw rate    : %.2f kbps\n\n", config.raw_payload_rate() / 1000.0);

    // 2. The message to broadcast (loops as a carousel until received).
    const std::string text =
        "Hello from InFrame! This message is riding on ordinary video, "
        "invisible to anyone watching the screen.";
    core::Inframe_sender sender(config, {text.begin(), text.end()});
    std::printf("sending %zu bytes in %zu data-frame chunks\n\n", text.size(),
                sender.total_chunks());

    // 3. The video the human watches.
    const auto video = video::make_sunrise_video(width, height);
    const video::Playback_schedule schedule;

    // 4. The device watching the screen: display + camera simulation.
    channel::Display_params display;
    channel::Camera_params camera;
    camera.sensor_width = width; // close-up capture: sensor resolves the screen
    camera.sensor_height = height;
    channel::Screen_camera_link link(display, camera, width, height);

    auto decoder_params = core::make_decoder_params(config, width, height);
    decoder_params.detector = core::Detector::matched; // texture-robust detector
    core::Inframe_receiver receiver(decoder_params, sender.total_chunks());

    // 5. Run the link until the whole message has been reassembled.
    std::int64_t display_frame = 0;
    while (!receiver.message_complete() && display_frame < 120 * 20) {
        const auto video_frame = video->frame(schedule.video_frame_for_display(display_frame));
        const auto multiplexed = sender.next_display_frame(video_frame);
        for (const auto& capture : link.push_display_frame(multiplexed)) {
            receiver.push_capture(capture.image, capture.start_time);
        }
        ++display_frame;
    }
    receiver.finish();

    const auto received = receiver.message();
    std::printf("after %.2f s of video:\n", static_cast<double>(display_frame) / 120.0);
    std::printf("  chunks      : %zu/%zu\n", receiver.chunks_received(), sender.total_chunks());
    std::printf("  frames used : %zu decoded, %zu rejected\n", receiver.frames_decoded(),
                receiver.frames_rejected());
    std::printf("  message     : \"%s\"\n",
                std::string(received.begin(), received.end()).c_str());
    std::printf("  status      : %s\n",
                receiver.message_complete() ? "complete" : "INCOMPLETE");
    return receiver.message_complete() ? 0 : 1;
}
