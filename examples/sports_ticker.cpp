// Live-sports side channel: the paper's second application sketch —
// "comments and highlights in live sports streaming". Short, frequent
// updates (score changes, events) are pushed over the video; each update
// must arrive quickly, so this example measures per-update latency rather
// than bulk throughput, and runs over fast-moving video content.
//
// Updates exceed one data frame's payload, so each is split into parts
// with a tiny [update id | part | total] header and reassembled on the
// receiving side — the kind of application protocol a real deployment
// would layer on the InFrame frame service. The application protocol
// plugs into the stage graph at both ends: a Payload_source feeds the
// Encode_stage the current update's parts just-in-time, and a sink stage
// reassembles and timestamps them.

#include "core/pipeline.hpp"
#include "core/session.hpp"
#include "core/stages.hpp"
#include "imgproc/pool.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "video/playback.hpp"

#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace {

const std::vector<std::string>& updates()
{
    static const std::vector<std::string> list = {
        "12:03 GOAL home 1-0 (Nakamura, header)",
        "12:41 yellow card away #6",
        "15:22 sub away: #9 off, #17 on",
        "18:05 GOAL away 1-1 (Costa, penalty)",
        "21:47 corner home; shot saved",
        "24:10 GOAL home 2-1 (Nakamura again!)",
    };
    return list;
}

// Reassembles [id | part | total | bytes...] payloads into updates.
class Update_collector {
public:
    // Returns the update id if this payload completed one.
    std::optional<std::size_t> add(std::span<const std::uint8_t> payload)
    {
        if (payload.size() < 3) return std::nullopt;
        const std::size_t id = payload[0];
        const std::size_t part = payload[1];
        const std::size_t total = payload[2];
        if (total == 0 || part >= total) return std::nullopt;
        auto& slots = parts_[id];
        slots.resize(total);
        if (!slots[part].has_value()) {
            slots[part].emplace(payload.begin() + 3, payload.end());
        }
        for (const auto& slot : slots) {
            if (!slot.has_value()) return std::nullopt;
        }
        if (complete_.contains(id)) return std::nullopt;
        complete_.insert(id);
        return id;
    }

    std::string text(std::size_t id) const
    {
        std::string out;
        for (const auto& slot : parts_.at(id)) out.append(slot->begin(), slot->end());
        return out;
    }

private:
    std::map<std::size_t, std::vector<std::optional<std::vector<std::uint8_t>>>> parts_;
    std::set<std::size_t> complete_;
};

} // namespace

int main(int argc, char** argv)
{
    using namespace inframe;

    // `--trace <dir>` exports trace.json / frames.jsonl / metrics.json.
    telemetry::Session telemetry_session(telemetry::config_from_args(argc, argv));

    constexpr int width = 480;
    constexpr int height = 270;

    core::Inframe_config config = core::paper_config(width, height);
    // At this small demo resolution the camera cannot resolve the paper
    // geometry's 1-px Pixels; use 2-px Pixels instead (fewer, larger blocks).
    config.geometry = coding::fitted_geometry(width, height, /*pixel_size=*/2);
    config.tau = 10;
    config.threads = 0; // all cores; output is thread-count invariant
    const util::Parallel_scope parallel_scope(config.threads);

    // Latency favours payload over protection: the default 55% RS parity
    // leaves 1-byte parts at this frame size, so a ~38-byte update cannot
    // finish its carousel inside the 2 s it stays current. A third of the
    // codeword in parity is plenty on this clean link and fits an update
    // in a handful of parts.
    core::Session_options protection;
    protection.rs_parity_fraction = 0.35;
    const core::Frame_codec codec(config.geometry.payload_bits_per_frame(), protection);
    const auto part_bytes = static_cast<std::size_t>(codec.max_payload_bytes()) - 3;

    channel::Display_params display;
    channel::Camera_params camera;
    camera.sensor_width = width;
    camera.sensor_height = height;
    auto decoder_params = core::make_decoder_params(config, width, height);
    decoder_params.detector = core::Detector::matched; // texture-robust detector
    decoder_params.erasure_aware = true; // busy content: let RS consume erasures

    Update_collector collector;
    util::Running_stats latency_stats;
    std::vector<bool> received(updates().size(), false);
    std::size_t delivered = 0;

    // Just-in-time feed: when the encoder asks for data frame i, carousel
    // the parts of whichever update is current at i's air time.
    core::Encode_stage::Options encode_options;
    encode_options.payloads = [&codec, part_bytes, tau = config.tau,
                               next_sequence = std::uint32_t{0}](std::int64_t data_index) mutable {
        const double air_time = static_cast<double>(data_index * tau) / 120.0;
        const auto current =
            std::min(static_cast<std::size_t>(air_time / 2.0), updates().size() - 1);
        const auto& text = updates()[current];
        const auto total = (text.size() + part_bytes - 1) / part_bytes;
        // Stagger the carousel by one slot per pass: frame losses on this
        // channel are near-periodic, and a plain seq % total carousel can
        // phase-lock against them so the same part is always the one lost.
        const auto part = (next_sequence + next_sequence / total) % total;
        std::vector<std::uint8_t> payload = {static_cast<std::uint8_t>(current),
                                             static_cast<std::uint8_t>(part),
                                             static_cast<std::uint8_t>(total)};
        const auto begin = part * part_bytes;
        const auto end = std::min(begin + part_bytes, text.size());
        payload.insert(payload.end(), text.begin() + static_cast<std::ptrdiff_t>(begin),
                       text.begin() + static_cast<std::ptrdiff_t>(end));
        return codec.build(next_sequence++, payload);
    };

    // Receiving end: decode captures, parse frames, reassemble updates,
    // clock each completed update against its injection time.
    auto decoder = std::make_shared<core::Inframe_decoder>(decoder_params);
    auto ingest = [&, decoder](const core::Data_frame_result& result, double capture_time) {
        const auto parsed = codec.parse(result.gob.payload_bits, result.gob.payload_bit_trusted);
        if (!parsed) return;
        if (const auto id = collector.add(parsed->payload)) {
            if (received[*id]) return;
            received[*id] = true;
            ++delivered;
            const double injected = 2.0 * static_cast<double>(*id);
            const double latency = capture_time - injected;
            latency_stats.add(latency);
            std::printf("  [%6.2f s] update %zu (latency %4.0f ms): %s\n", capture_time, *id,
                        latency * 1000.0, collector.text(*id).c_str());
        }
    };

    // Fast-panning stadium content is the hard case for the decoder.
    core::Pipeline pipeline;
    pipeline.emplace_stage<core::Video_stage>(
        std::make_shared<video::Moving_bars_video>(width, height, 40, 3.0f),
        video::Playback_schedule{});
    pipeline.emplace_stage<core::Encode_stage>(config, std::move(encode_options));
    pipeline.emplace_stage<core::Link_stage>(display, camera, width, height);
    pipeline.emplace_stage<core::Function_stage>(
        "ticker",
        [decoder, ingest](core::Frame_token token) {
            for (const auto& result : decoder->push_capture(token.image, token.time_s)) {
                ingest(result, token.time_s);
            }
            std::vector<core::Frame_token> out;
            out.push_back(std::move(token)); // runtime recycles sink frames
            return out;
        },
        [decoder]() { // end of stream: the partially accumulated frame is stale
            (void)decoder->flush();
            return std::vector<core::Frame_token>{};
        });

    std::printf("Streaming %zu live updates (%zu-byte parts) over fast-moving video...\n\n",
                updates().size(), part_bytes);

    core::Pipeline_options options;
    options.frames_in_flight = 4;
    options.stop_when = [&] { return delivered == updates().size(); };
    pipeline.run(120 * 16, options);

    std::printf("\ndelivered %zu/%zu updates; latency mean %.0f ms, worst %.0f ms\n", delivered,
                updates().size(), latency_stats.mean() * 1000.0, latency_stats.max() * 1000.0);
    return delivered == updates().size() ? 0 : 1;
}
