// telemetry_report — fold a --trace directory back into human-readable
// tables.
//
//   telemetry_report <trace-dir>
//
// Reads the three artifacts a telemetry::Session writes (trace.json,
// frames.jsonl, metrics.json) through the same telemetry::json reader the
// smoke tests use and prints: span totals by name, counter and gauge
// values, histogram summaries, the per-frame decode story (sync state,
// erasure/parity-fill rates, confidence-margin distribution) and the
// impairment event log.

#include "telemetry/json.hpp"
#include "util/csv.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace inframe;
namespace json = telemetry::json;

bool read_file(const std::string& path, std::string& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

void report_spans(const std::string& dir)
{
    std::string text;
    if (!read_file(dir + "/trace.json", text)) {
        std::printf("trace.json: not found\n\n");
        return;
    }
    json::Value trace;
    std::string error;
    if (!json::parse(text, trace, &error)) {
        std::printf("trace.json: parse error: %s\n\n", error.c_str());
        return;
    }
    struct Tally {
        std::int64_t count = 0;
        double total_us = 0.0;
        double max_us = 0.0;
    };
    std::map<std::string, Tally> by_name;
    double first_ts = 0.0, last_end = 0.0;
    bool any = false;
    for (const json::Value& event : trace["traceEvents"].as_array()) {
        if (event.string_or("ph", "") != "X") continue;
        const double ts = event.number_or("ts", 0.0);
        const double dur = event.number_or("dur", 0.0);
        Tally& tally = by_name[event.string_or("name", "?")];
        ++tally.count;
        tally.total_us += dur;
        tally.max_us = std::max(tally.max_us, dur);
        if (!any || ts < first_ts) first_ts = ts;
        last_end = std::max(last_end, ts + dur);
        any = true;
    }
    const double wall_us = any ? last_end - first_ts : 0.0;
    std::printf("spans (%zu names, wall %.1f ms):\n", by_name.size(), wall_us / 1000.0);
    util::Table table({"span", "count", "total ms", "mean us", "max us", "share of wall"});
    std::vector<std::pair<std::string, Tally>> sorted(by_name.begin(), by_name.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
        return a.second.total_us > b.second.total_us;
    });
    for (const auto& [name, tally] : sorted) {
        table.add_row({name, tally.count, tally.total_us / 1000.0,
                       tally.total_us / static_cast<double>(tally.count), tally.max_us,
                       wall_us > 0.0 ? tally.total_us / wall_us : 0.0});
    }
    table.print(std::cout);
    std::printf("\n");
}

void report_metrics(const std::string& dir)
{
    std::string text;
    if (!read_file(dir + "/metrics.json", text)) {
        std::printf("metrics.json: not found\n\n");
        return;
    }
    json::Value metrics;
    std::string error;
    if (!json::parse(text, metrics, &error)) {
        std::printf("metrics.json: parse error: %s\n\n", error.c_str());
        return;
    }
    {
        util::Table table({"counter", "value"});
        for (const auto& [name, value] : metrics["counters"].as_object())
            table.add_row({name, static_cast<long long>(value.as_number())});
        for (const auto& [name, value] : metrics["gauges"].as_object())
            table.add_row({name + " (gauge)", value.as_number()});
        if (table.row_count() > 0) {
            std::printf("counters and gauges:\n");
            table.print(std::cout);
            std::printf("\n");
        }
    }
    {
        util::Table table({"histogram", "count", "mean", "min", "max"});
        for (const auto& [name, h] : metrics["histograms"].as_object()) {
            const double count = h.number_or("count", 0.0);
            table.add_row({name, static_cast<long long>(count),
                           count > 0.0 ? h.number_or("sum", 0.0) / count : 0.0,
                           h.number_or("min", 0.0), h.number_or("max", 0.0)});
        }
        if (table.row_count() > 0) {
            std::printf("histograms:\n");
            table.print(std::cout);
            std::printf("\n");
        }
    }
}

void report_frames(const std::string& dir)
{
    std::string text;
    if (!read_file(dir + "/frames.jsonl", text)) {
        std::printf("frames.jsonl: not found\n\n");
        return;
    }
    std::vector<json::Value> lines;
    std::string error;
    if (!json::parse_lines(text, lines, &error)) {
        std::printf("frames.jsonl: parse error: %s\n\n", error.c_str());
        return;
    }

    std::int64_t frames = 0, locked = 0;
    double blocks_total = 0.0, blocks_unknown = 0.0, blocks_erased = 0.0, blocks_occluded = 0.0;
    double gobs_total = 0.0, gobs_available = 0.0, gobs_parity_ok = 0.0, gobs_recovered = 0.0;
    std::vector<double> margin_hist;
    std::map<std::string, std::int64_t> events;
    for (const json::Value& line : lines) {
        const std::string type = line.string_or("type", "");
        if (type == "event") {
            ++events[line.string_or("category", "?") + "/" + line.string_or("name", "?")];
            continue;
        }
        if (type != "frame") continue;
        ++frames;
        if (line.number_or("sync_locked", -1.0) > 0.0) ++locked;
        blocks_total += line.number_or("blocks_total", 0.0);
        blocks_unknown += line.number_or("blocks_unknown", 0.0);
        blocks_erased += line.number_or("blocks_erased", 0.0);
        blocks_occluded += line.number_or("blocks_occluded", 0.0);
        gobs_total += line.number_or("gobs_total", 0.0);
        gobs_available += line.number_or("gobs_available", 0.0);
        gobs_parity_ok += line.number_or("gobs_parity_ok", 0.0);
        gobs_recovered += line.number_or("gobs_recovered", 0.0);
        const json::Value& hist = line["margin_hist"];
        if (hist.is_array()) {
            const auto& buckets = hist.as_array();
            if (margin_hist.size() < buckets.size()) margin_hist.resize(buckets.size(), 0.0);
            for (std::size_t b = 0; b < buckets.size(); ++b)
                margin_hist[b] += buckets[b].as_number();
        }
    }

    std::printf("frames: %lld decoded, %lld sync-locked\n", static_cast<long long>(frames),
                static_cast<long long>(locked));
    if (frames > 0) {
        util::Table table({"per-frame quantity", "mean", "rate"});
        const double n = static_cast<double>(frames);
        table.add_row({std::string("blocks unknown"), blocks_unknown / n,
                       blocks_total > 0.0 ? blocks_unknown / blocks_total : 0.0});
        table.add_row({std::string("blocks erased"), blocks_erased / n,
                       blocks_total > 0.0 ? blocks_erased / blocks_total : 0.0});
        table.add_row({std::string("blocks occluded"), blocks_occluded / n,
                       blocks_total > 0.0 ? blocks_occluded / blocks_total : 0.0});
        table.add_row({std::string("GOBs available"), gobs_available / n,
                       gobs_total > 0.0 ? gobs_available / gobs_total : 0.0});
        table.add_row({std::string("GOBs parity ok"), gobs_parity_ok / n,
                       gobs_total > 0.0 ? gobs_parity_ok / gobs_total : 0.0});
        table.add_row({std::string("GOBs recovered"), gobs_recovered / n,
                       gobs_total > 0.0 ? gobs_recovered / gobs_total : 0.0});
        table.print(std::cout);
        std::printf("\n");
    }
    double margin_count = 0.0;
    for (const double c : margin_hist) margin_count += c;
    if (margin_count > 0.0) {
        // Buckets are relative confidence margin |metric - threshold| /
        // threshold in log2 steps; bucket b covers [2^(b-8), 2^(b-7)).
        std::printf("confidence-margin distribution (%lld block decisions):\n",
                    static_cast<long long>(margin_count));
        util::Table table({"relative margin >=", "blocks", "fraction"});
        for (std::size_t b = 0; b < margin_hist.size(); ++b) {
            if (margin_hist[b] == 0.0) continue;
            const double lower = b == 0 ? 0.0 : std::exp2(static_cast<double>(b) - 8.0);
            table.add_row({lower, static_cast<long long>(margin_hist[b]),
                           margin_hist[b] / margin_count});
        }
        table.print(std::cout);
        std::printf("\n");
    }
    if (!events.empty()) {
        std::printf("events:\n");
        util::Table table({"category/name", "count"});
        for (const auto& [key, count] : events)
            table.add_row({key, static_cast<long long>(count)});
        table.print(std::cout);
        std::printf("\n");
    }
}

} // namespace

int main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr,
                     "usage: telemetry_report <trace-dir>\n"
                     "  <trace-dir> is the directory a --trace run wrote "
                     "(trace.json, frames.jsonl, metrics.json)\n");
        return 2;
    }
    const std::string dir = argv[1];
    std::printf("telemetry report for %s\n\n", dir.c_str());
    report_spans(dir);
    report_metrics(dir);
    report_frames(dir);
    return 0;
}
