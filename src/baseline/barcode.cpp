#include "baseline/barcode.hpp"

#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace inframe::baseline {

void Barcode_config::validate() const
{
    geometry.validate();
    util::expects(hold_refreshes >= 1, "barcode: hold must be >= 1 refresh");
    util::expects(display_fps > 0.0, "barcode: display rate must be positive");
    util::expects(black_level >= 0.0f && white_level <= 255.0f && black_level < white_level,
                  "barcode: levels must satisfy 0 <= black < white <= 255");
}

img::Imagef render_barcode(const Barcode_config& config,
                           std::span<const std::uint8_t> block_bits)
{
    config.validate();
    const auto& g = config.geometry;
    util::expects(block_bits.size() == static_cast<std::size_t>(g.block_count()),
                  "barcode: bit count mismatch");
    // Background at black level; the active area carries the code.
    img::Imagef frame(g.screen_width, g.screen_height, 1, config.black_level);
    for (int by = 0; by < g.blocks_y; ++by) {
        for (int bx = 0; bx < g.blocks_x; ++bx) {
            if (!block_bits[static_cast<std::size_t>(g.block_index(bx, by))]) continue;
            const auto rect = g.block_rect(bx, by);
            for (int y = rect.y0; y < rect.y0 + rect.size; ++y) {
                for (int x = rect.x0; x < rect.x0 + rect.size; ++x) {
                    frame(x, y) = config.white_level;
                }
            }
        }
    }
    return frame;
}

std::vector<std::uint8_t> decode_barcode(const Barcode_config& config,
                                         const img::Imagef& capture)
{
    config.validate();
    const auto& g = config.geometry;
    const double sx = static_cast<double>(capture.width()) / g.screen_width;
    const double sy = static_cast<double>(capture.height()) / g.screen_height;

    std::vector<double> means(static_cast<std::size_t>(g.block_count()));
    for (int by = 0; by < g.blocks_y; ++by) {
        for (int bx = 0; bx < g.blocks_x; ++bx) {
            const auto rect = g.block_rect(bx, by);
            int cx0 = std::clamp(static_cast<int>(std::ceil(rect.x0 * sx)) + 1, 0,
                                 capture.width() - 2);
            int cy0 = std::clamp(static_cast<int>(std::ceil(rect.y0 * sy)) + 1, 0,
                                 capture.height() - 2);
            int cx1 = std::clamp(static_cast<int>(std::floor((rect.x0 + rect.size) * sx)) - 1,
                                 cx0 + 1, capture.width());
            int cy1 = std::clamp(static_cast<int>(std::floor((rect.y0 + rect.size) * sy)) - 1,
                                 cy0 + 1, capture.height());
            means[static_cast<std::size_t>(g.block_index(bx, by))] =
                img::mean_region(capture, cx0, cy0, cx1 - cx0, cy1 - cy0);
        }
    }
    // Adaptive threshold at the midpoint of the observed range: robust to
    // brightness scaling across the channel.
    const auto [lo_it, hi_it] = std::minmax_element(means.begin(), means.end());
    const double threshold = (*lo_it + *hi_it) / 2.0;
    std::vector<std::uint8_t> bits(means.size());
    for (std::size_t i = 0; i < means.size(); ++i) bits[i] = means[i] > threshold ? 1 : 0;
    return bits;
}

Barcode_run_result run_barcode_experiment(const Barcode_config& config,
                                          const channel::Display_params& display,
                                          const channel::Camera_params& camera,
                                          double duration_s, std::uint64_t data_seed)
{
    config.validate();
    util::expects(duration_s > 0.0, "barcode experiment: duration must be positive");

    util::Prng prng(data_seed);
    const auto total_refreshes =
        static_cast<std::int64_t>(std::llround(duration_s * config.display_fps));
    const auto frame_count = total_refreshes / config.hold_refreshes + 1;
    std::vector<std::vector<std::uint8_t>> truth;
    truth.reserve(static_cast<std::size_t>(frame_count));
    for (std::int64_t i = 0; i < frame_count; ++i) {
        truth.push_back(prng.next_bits(static_cast<std::size_t>(config.geometry.block_count())));
    }

    channel::Screen_camera_link link(display, camera, config.geometry.screen_width,
                                     config.geometry.screen_height);
    const double hold_s = config.hold_refreshes / config.display_fps;

    std::size_t bits_checked = 0;
    std::size_t bits_wrong = 0;
    int decoded_frames = 0;
    std::int64_t last_frame = -1;
    for (std::int64_t j = 0; j < total_refreshes; ++j) {
        const auto frame_index = static_cast<std::size_t>(j / config.hold_refreshes);
        const img::Imagef frame = render_barcode(config, truth[frame_index]);
        for (const auto& capture : link.push_display_frame(frame)) {
            // Attribute the capture to the barcode frame at its mid-exposure.
            const double mid = capture.start_time + camera.exposure_s / 2.0;
            const auto shown = static_cast<std::int64_t>(mid / hold_s);
            if (shown >= static_cast<std::int64_t>(truth.size())) continue;
            if (shown == last_frame) continue; // one decode per barcode frame
            last_frame = shown;
            const auto bits = decode_barcode(config, capture.image);
            const auto& expected = truth[static_cast<std::size_t>(shown)];
            for (std::size_t b = 0; b < bits.size(); ++b) {
                ++bits_checked;
                bits_wrong += bits[b] != expected[b];
            }
            ++decoded_frames;
        }
    }

    Barcode_run_result result;
    result.barcode_frames = decoded_frames;
    result.raw_rate_kbps = config.raw_bit_rate() / 1000.0;
    result.block_error_rate =
        bits_checked > 0 ? static_cast<double>(bits_wrong) / bits_checked : 0.0;
    const double decoded_duration = decoded_frames / config.barcode_frame_rate();
    result.goodput_kbps = decoded_duration > 0.0
                              ? static_cast<double>(bits_checked - bits_wrong)
                                    / decoded_duration / 1000.0
                              : 0.0;
    return result;
}

} // namespace inframe::baseline
