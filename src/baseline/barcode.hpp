// Conventional exclusive-screen barcode baseline.
//
// The systems the paper positions itself against (PixNet, COBRA,
// LightSync, 1-4) occupy the display with black/white block barcodes: the
// camera gets a high-contrast channel, the human gets nothing to watch.
// This baseline quantifies that trade: full-frame barcodes streamed at the
// video cadence, decoded over the same simulated channel, plus the flicker
// score a viewer would assign to the strobing pattern.
#pragma once

#include "channel/link.hpp"
#include "coding/geometry.hpp"
#include "util/prng.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace inframe::baseline {

struct Barcode_config {
    coding::Code_geometry geometry;

    // Display refreshes each barcode frame is held for (4 at 120 Hz =
    // 30 barcode frames/s, a COBRA-like rate).
    int hold_refreshes = 4;

    double display_fps = 120.0;

    float black_level = 20.0f;
    float white_level = 235.0f;

    void validate() const;

    double barcode_frame_rate() const { return display_fps / hold_refreshes; }

    // One bit per block: no parity — conventional schemes spend capacity
    // on RS codes instead; we report raw block accuracy.
    double raw_bit_rate() const { return barcode_frame_rate() * geometry.block_count(); }
};

// Renders the barcode frame for a bit vector (block_count() bits).
img::Imagef render_barcode(const Barcode_config& config,
                           std::span<const std::uint8_t> block_bits);

// Decodes a capture into block bits by adaptive mid-level thresholding.
// Returns one bit per block.
std::vector<std::uint8_t> decode_barcode(const Barcode_config& config,
                                         const img::Imagef& capture);

struct Barcode_run_result {
    int barcode_frames = 0;
    double raw_rate_kbps = 0.0;
    double block_error_rate = 0.0; // vs transmitted truth
    double goodput_kbps = 0.0;     // correct bits per second
};

// Streams random barcodes through the simulated channel and measures
// accuracy (mirror of core::run_link_experiment for the baseline).
Barcode_run_result run_barcode_experiment(const Barcode_config& config,
                                          const channel::Display_params& display,
                                          const channel::Camera_params& camera,
                                          double duration_s,
                                          std::uint64_t data_seed = util::Prng::default_seed);

} // namespace inframe::baseline
