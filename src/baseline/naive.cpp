#include "baseline/naive.hpp"

#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"

namespace inframe::baseline {

const char* to_string(Naive_scheme scheme)
{
    switch (scheme) {
    case Naive_scheme::normal: return "normal";
    case Naive_scheme::v_ddd: return "V:D=1:3";
    case Naive_scheme::alternate_vd: return "V:D=1:1";
    case Naive_scheme::vvdd: return "V:D=2:2";
    case Naive_scheme::vvvd: return "V:D=3:1";
    }
    return "unknown";
}

Naive_multiplexer::Naive_multiplexer(Naive_scheme scheme, coding::Code_geometry geometry,
                                     float amplitude, std::uint64_t seed)
    : scheme_(scheme), geometry_(std::move(geometry)), amplitude_(amplitude), seed_(seed)
{
    geometry_.validate();
    util::expects(amplitude > 0.0f, "naive multiplexer amplitude must be positive");
}

bool Naive_multiplexer::is_data_slot(std::int64_t display_index) const
{
    const int slot = static_cast<int>(display_index % 4);
    switch (scheme_) {
    case Naive_scheme::normal: return false;
    case Naive_scheme::v_ddd: return slot != 0;
    case Naive_scheme::alternate_vd: return slot % 2 == 1;
    case Naive_scheme::vvdd: return slot >= 2;
    case Naive_scheme::vvvd: return slot == 3;
    }
    return false;
}

img::Imagef Naive_multiplexer::frame(const img::Imagef& video_frame,
                                     std::int64_t display_index) const
{
    util::expects(display_index >= 0, "display index must be non-negative");
    util::expects(video_frame.width() == geometry_.screen_width
                      && video_frame.height() == geometry_.screen_height,
                  "naive multiplexer: video frame does not match geometry");
    if (!is_data_slot(display_index)) return video_frame;

    // Every data slot carries a *distinct* pseudo-random barcode — the
    // paper's "three distinctive data frames".
    util::Prng prng(seed_ ^ (static_cast<std::uint64_t>(display_index) * 0x9e37'79b9ULL));
    img::Imagef out = video_frame;
    for (int by = 0; by < geometry_.blocks_y; ++by) {
        for (int bx = 0; bx < geometry_.blocks_x; ++bx) {
            const float sign = prng.next_bernoulli(0.5) ? 1.0f : -1.0f;
            const auto rect = geometry_.block_rect(bx, by);
            for (int y = rect.y0; y < rect.y0 + rect.size; ++y) {
                for (int x = rect.x0; x < rect.x0 + rect.size; ++x) {
                    out(x, y) += sign * amplitude_;
                }
            }
        }
    }
    img::clamp(out, 0.0f, 255.0f);
    return out;
}

std::function<img::Imagef(const img::Imagef&, std::int64_t)> Naive_multiplexer::producer() const
{
    return [self = *this](const img::Imagef& video_frame, std::int64_t display_index) {
        return self.frame(video_frame, display_index);
    };
}

} // namespace inframe::baseline
