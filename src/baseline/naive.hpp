// The naive multiplexing designs of Fig. 3.
//
// Before arriving at complementary frames, the paper tried inserting
// distinct data frames between video frames at several V:D ratios — all of
// which flicker visibly because the average of the inserted frames does
// not match the video and the data alternates below the CFF. These
// producers recreate each scheme so the Fig. 3 bench can score them
// against InFrame with the same observer panel.
#pragma once

#include "coding/geometry.hpp"
#include "imgproc/image.hpp"
#include "util/prng.hpp"

#include <cstdint>
#include <functional>
#include <string>

namespace inframe::baseline {

enum class Naive_scheme : std::uint8_t {
    normal,       // (b) plain playback, no data
    v_ddd,        // (c) one video frame, then three distinct data frames
    alternate_vd, // (d) V D V D with a fresh data frame each slot
    vvdd,         // 2:2 ratio
    vvvd,         // 3:1 ratio
};

const char* to_string(Naive_scheme scheme);

// Produces the displayed frame for refresh slot `display_index` given the
// scheduled video frame. Data slots show the video overlaid with a
// semi-transparent barcode of `amplitude` around the video level — the
// "dynamic semi-transparent data blocks" viewers reported seeing.
class Naive_multiplexer {
public:
    Naive_multiplexer(Naive_scheme scheme, coding::Code_geometry geometry, float amplitude,
                      std::uint64_t seed = util::Prng::default_seed);

    img::Imagef frame(const img::Imagef& video_frame, std::int64_t display_index) const;

    Naive_scheme scheme() const { return scheme_; }

    // Adapter for core::Flicker_experiment_config::frame_producer.
    std::function<img::Imagef(const img::Imagef&, std::int64_t)> producer() const;

private:
    bool is_data_slot(std::int64_t display_index) const;

    Naive_scheme scheme_;
    coding::Code_geometry geometry_;
    float amplitude_;
    std::uint64_t seed_;
};

} // namespace inframe::baseline
