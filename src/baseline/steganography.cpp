#include "baseline/steganography.hpp"

#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"

#include <cmath>

namespace inframe::baseline {

img::Image8 lsb_embed(const img::Imagef& frame, std::span<const std::uint8_t> bits)
{
    util::expects(bits.size() <= frame.pixel_count() * static_cast<std::size_t>(frame.channels()),
                  "lsb_embed: more bits than pixel values");
    img::Image8 out = img::to_u8(frame);
    auto values = out.values();
    for (std::size_t i = 0; i < bits.size(); ++i) {
        values[i] = static_cast<std::uint8_t>((values[i] & 0xfe) | (bits[i] & 1));
    }
    return out;
}

std::vector<std::uint8_t> lsb_extract(const img::Image8& frame, std::size_t count)
{
    util::expects(count <= frame.value_count(), "lsb_extract: more bits than pixel values");
    std::vector<std::uint8_t> bits(count);
    const auto values = frame.values();
    for (std::size_t i = 0; i < count; ++i) bits[i] = values[i] & 1;
    return bits;
}

std::vector<std::uint8_t> lsb_extract(const img::Imagef& frame, std::size_t count)
{
    return lsb_extract(img::to_u8(frame), count);
}

double bit_error_rate(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b)
{
    util::expects(a.size() == b.size() && !a.empty(),
                  "bit_error_rate: vectors must be equal-length and non-empty");
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < a.size(); ++i) wrong += (a[i] & 1) != (b[i] & 1);
    return static_cast<double>(wrong) / static_cast<double>(a.size());
}

} // namespace inframe::baseline
