// LSB steganography baseline.
//
// The paper's related-work section (6) distinguishes InFrame from
// steganography/watermarking (16-22): those hide bits in pixel LSBs for a
// *digital* recipient of the exact file. This baseline demonstrates the
// distinction quantitatively: LSB round-trips perfectly over a lossless
// path and collapses to coin-flip error over the screen-camera channel,
// which is why InFrame must signal with camera-surviving structure
// instead.
#pragma once

#include "imgproc/image.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace inframe::baseline {

// Embeds bits into the LSBs of the (rounded) pixel values, row-major from
// the top-left. Requires bits.size() <= pixel count.
img::Image8 lsb_embed(const img::Imagef& frame, std::span<const std::uint8_t> bits);

// Extracts `count` bits from the LSBs.
std::vector<std::uint8_t> lsb_extract(const img::Image8& frame, std::size_t count);
std::vector<std::uint8_t> lsb_extract(const img::Imagef& frame, std::size_t count);

// Fraction of differing bits between two vectors of equal length.
double bit_error_rate(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

} // namespace inframe::baseline
