#include "channel/camera.hpp"

#include "imgproc/filter.hpp"
#include "imgproc/image_ops.hpp"
#include "imgproc/pool.hpp"
#include "imgproc/resize.hpp"
#include "util/contract.hpp"
#include "util/thread_pool.hpp"

#include <cmath>
#include <span>

namespace inframe::channel {

Camera_optics::Camera_optics(const Camera_params& params, int screen_width, int screen_height)
    : params_(params), screen_width_(screen_width), screen_height_(screen_height)
{
    util::expects(params.fps > 0.0, "camera fps must be positive");
    util::expects(params.exposure_s > 0.0, "camera exposure must be positive");
    util::expects(params.exposure_s <= 1.0 / params.fps,
                  "camera exposure cannot exceed the frame interval");
    util::expects(params.readout_s >= 0.0, "camera readout skew must be non-negative");
    util::expects(params.readout_s + params.exposure_s <= 1.0 / params.fps,
                  "rolling-shutter capture must finish within the frame interval");
    util::expects(params.sensor_width > 0 && params.sensor_height > 0,
                  "sensor resolution must be positive");
    util::expects(params.optical_blur_sigma >= 0.0, "optical blur must be non-negative");
    util::expects(params.shot_noise_scale >= 0.0, "shot noise scale must be non-negative");
    util::expects(params.read_noise_sigma >= 0.0, "read noise must be non-negative");
    util::expects(params.gain > 0.0, "camera gain must be positive");
    util::expects(screen_width > 0 && screen_height > 0, "screen size must be positive");
}

img::Imagef Camera_optics::to_sensor(const img::Imagef& emitted) const
{
    util::expects(emitted.width() == screen_width_ && emitted.height() == screen_height_,
                  "emitted frame does not match the configured screen size");
    img::Imagef sensor;
    if (params_.sensor_to_screen) {
        // Perspective path: each sensor pixel samples the screen through
        // the viewing homography (bilinear; the optical blur below stands
        // in for photosite integration).
        sensor = img::warp_perspective(emitted, *params_.sensor_to_screen,
                                       params_.sensor_width, params_.sensor_height);
    } else {
        // Photosite area integration: each sensor pixel averages the
        // screen area it covers.
        sensor = img::resize_area(emitted, params_.sensor_width, params_.sensor_height);
        // Sub-pixel misalignment of the projected image.
        if (params_.offset_x_px != 0.0 || params_.offset_y_px != 0.0) {
            img::Imagef shifted = img::translate(sensor, static_cast<float>(params_.offset_x_px),
                                                 static_cast<float>(params_.offset_y_px));
            img::Frame_pool::instance().recycle(std::move(sensor));
            sensor = std::move(shifted);
        }
    }
    // Lens blur.
    if (params_.optical_blur_sigma > 0.0) {
        img::Imagef blurred = img::gaussian_blur(sensor, params_.optical_blur_sigma);
        img::Frame_pool::instance().recycle(std::move(sensor));
        sensor = std::move(blurred);
    }
    return sensor;
}

Camera_params auto_expose(Camera_params params, double scene_mean_level,
                          double reference_level, double reference_exposure_s,
                          double max_exposure_s)
{
    util::expects(scene_mean_level >= 0.0, "auto_expose: scene level must be non-negative");
    util::expects(reference_level > 0.0 && reference_exposure_s > 0.0 && max_exposure_s > 0.0,
                  "auto_expose: reference parameters must be positive");
    const double level = std::max(scene_mean_level, 1.0);
    const double target = reference_exposure_s * reference_level / level;
    const double frame_limit = 1.0 / params.fps - params.readout_s;
    const double exposure =
        std::clamp(target, 1e-5, std::min(max_exposure_s, frame_limit));
    params.exposure_s = exposure;
    // Metering shortfall becomes digital gain (and amplified noise).
    params.gain *= std::max(target / exposure, 1.0);
    return params;
}

namespace {

void sensor_electronics_span(std::span<float> values, const Camera_params& params,
                             util::Prng& prng)
{
    const auto gain = static_cast<float>(params.gain);
    for (auto& v : values) {
        double level = v;
        if (params.shot_noise_scale > 0.0) {
            level += prng.next_gaussian(0.0,
                                        params.shot_noise_scale * std::sqrt(std::max(level, 0.0)));
        }
        if (params.read_noise_sigma > 0.0) {
            level += prng.next_gaussian(0.0, params.read_noise_sigma);
        }
        level *= gain;
        level = std::clamp(level, 0.0, 255.0);
        if (params.quantize) level = std::nearbyint(level);
        v = static_cast<float>(level);
    }
}

std::uint64_t mix64(std::uint64_t x)
{
    // splitmix64 finalizer: full-avalanche mixing of the seed words.
    x += 0x9e37'79b9'7f4a'7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58'476d'1ce4'e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d0'49bb'1331'11ebULL;
    return x ^ (x >> 31);
}

} // namespace

void apply_sensor_noise(img::Imagef& integrated, const Camera_params& params, util::Prng& prng)
{
    sensor_electronics_span(integrated.values(), params, prng);
}

std::uint64_t row_noise_seed(std::uint64_t seed, std::int64_t capture_index, int row)
{
    return mix64(mix64(seed ^ mix64(static_cast<std::uint64_t>(capture_index)))
                 ^ static_cast<std::uint64_t>(row));
}

void apply_sensor_noise_rows(img::Imagef& integrated, const Camera_params& params,
                             std::int64_t capture_index)
{
    // Skip the whole pass (not just the draws) when the electronics are an
    // identity: gain 1 with no noise or quantization leaves the image
    // untouched either way, and the noiseless configs are the hot ones in
    // the clean-channel tests/benches.
    const bool identity = params.shot_noise_scale <= 0.0 && params.read_noise_sigma <= 0.0
                          && params.gain == 1.0 && !params.quantize;
    if (identity) {
        img::clamp(integrated, 0.0f, 255.0f);
        return;
    }
    util::parallel_for(0, integrated.height(), 8, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
            util::Prng prng(row_noise_seed(params.seed, capture_index, static_cast<int>(r)));
            sensor_electronics_span(integrated.row(static_cast<int>(r)), params, prng);
        }
    });
}

} // namespace inframe::channel
