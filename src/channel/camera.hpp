// Camera model.
//
// Stands in for the paper's Lumia 1020 capturing the screen at 1280x720,
// 30 FPS from 50 cm. Split in two stages:
//
//  - Camera_optics: time-invariant geometry and optics. Maps an emitted
//    screen light field to sensor-plane irradiance: sub-pixel
//    misalignment, photosite area integration (screen -> sensor resample)
//    and lens blur.
//  - Exposure/readout (driven by Screen_camera_link): each sensor ROW
//    integrates the light field over its own exposure window — the rolling
//    shutter the paper names as a key channel impairment — then shot
//    noise, read noise, gain and 8-bit quantization are applied.
#pragma once

#include "imgproc/image.hpp"
#include "imgproc/warp.hpp"
#include "util/prng.hpp"

#include <cstdint>
#include <optional>

namespace inframe::channel {

struct Camera_params {
    // Capture cadence. 29.97 (NTSC timing) rather than exactly 30: the
    // camera clock is not locked to the display, so exposure windows
    // drift slowly across display frame boundaries — the frame-rate
    // mismatch impairment the paper names.
    double fps = 29.97;

    // Exposure (integration) time per row, seconds. Must be short enough
    // that a capture does not straddle a whole complementary pair, or the
    // data cancels — the paper's rig relies on a bright screen forcing a
    // short exposure. 1/480 s is a typical metering result against a
    // full-brightness LCD.
    double exposure_s = 1.0 / 480.0;

    // Rolling-shutter readout skew: delay between the first and last row
    // starting their exposure, seconds. 0 = global shutter.
    double readout_s = 0.006;

    // Sensor resolution.
    int sensor_width = 1280;
    int sensor_height = 720;

    // Lens blur on the sensor plane (Gaussian sigma, sensor pixels).
    double optical_blur_sigma = 0.5;

    // Misalignment of the screen image on the sensor (sensor pixels).
    double offset_x_px = 0.3;
    double offset_y_px = 0.2;

    // Perspective viewing geometry: maps sensor coordinates to screen
    // coordinates (e.g. a keystone from filming at an angle). When set it
    // replaces the axis-aligned resample+offset path; the decoder must be
    // given the same (calibrated) homography. img::Homography::rect_to_quad
    // builds one from the screen quad's corner positions.
    std::optional<img::Homography> sensor_to_screen;

    // Photon shot noise: stddev = shot_noise_scale * sqrt(level). The
    // default models a bright screen filling the view of a large
    // oversampling sensor (the Lumia 1020 bins ~6 photosites per output
    // pixel): SNR ~ 39 dB at level 180.
    double shot_noise_scale = 0.12;

    // Electronics read noise stddev (digital numbers).
    double read_noise_sigma = 0.8;

    // Digital gain applied before quantization.
    double gain = 1.0;

    // Start of capture 0 relative to display frame 0, seconds.
    double phase_offset_s = 0.0;

    // Quantize output to integers (8-bit pipeline).
    bool quantize = true;

    // Sensor noise stream seed.
    std::uint64_t seed = 1020;
};

class Camera_optics {
public:
    Camera_optics(const Camera_params& params, int screen_width, int screen_height);

    // Projects one emitted screen frame onto the sensor plane.
    img::Imagef to_sensor(const img::Imagef& emitted) const;

private:
    Camera_params params_;
    int screen_width_;
    int screen_height_;
};

// Applies the sensor electronics to an integrated irradiance image:
// shot noise, read noise, gain, clamp, optional quantization. Mutates the
// image in place; prng supplies the noise stream.
void apply_sensor_noise(img::Imagef& integrated, const Camera_params& params,
                        util::Prng& prng);

// Per-row variant used by the parallel exposure pipeline: row r of capture
// k draws from an independent PRNG stream seeded from (seed, k, r), so the
// noise field is a pure function of the capture — identical for every
// thread count and for out-of-order row processing. This is the seeding
// contract the determinism tests rely on (DESIGN.md, "Threading model &
// determinism").
void apply_sensor_noise_rows(img::Imagef& integrated, const Camera_params& params,
                             std::int64_t capture_index);

// The derived seed for one row's noise stream (exposed for tests).
std::uint64_t row_noise_seed(std::uint64_t seed, std::int64_t capture_index, int row);

// Auto-exposure metering: returns a copy of `params` with exposure_s and
// gain set the way a phone camera meters a scene of the given mean level.
//
// The camera aims for the reference exposure at a bright scene (level
// ~180, the paper's light-gray video at 100% display brightness); darker
// scenes stretch the exposure up to max_exposure_s, and any remaining
// shortfall becomes digital gain (amplifying noise). This is the
// mechanism that degrades the dark-gray and natural-video runs in Fig. 7:
// exposure beyond one display frame integrates part of the complementary
// -D frame, cancelling a fraction of the embedded pattern.
Camera_params auto_expose(Camera_params params, double scene_mean_level,
                          double reference_level = 180.0,
                          double reference_exposure_s = 1.0 / 480.0,
                          double max_exposure_s = 1.0 / 180.0);

} // namespace inframe::channel
