#include "channel/display.hpp"

#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"

namespace inframe::channel {

Display_model::Display_model(Display_params params) : params_(params)
{
    util::expects(params.refresh_hz > 0.0, "display refresh rate must be positive");
    util::expects(params.brightness > 0.0 && params.brightness <= 1.0,
                  "display brightness must be in (0, 1]");
    util::expects(params.response_persistence >= 0.0 && params.response_persistence < 1.0,
                  "pixel response persistence must be in [0, 1)");
    util::expects(params.black_level >= 0.0, "black level must be non-negative");
}

img::Imagef Display_model::emit(const img::Imagef& frame)
{
    util::expects(!frame.empty(), "display cannot emit an empty frame");
    img::Imagef target =
        img::affine(frame, static_cast<float>(params_.brightness),
                    static_cast<float>(params_.black_level));
    img::clamp(target, 0.0f, 255.0f);

    if (previous_emitted_ && previous_emitted_->same_shape(target)
        && params_.response_persistence > 0.0) {
        const auto persistence = static_cast<float>(params_.response_persistence);
        auto out = target;
        auto dst = out.values();
        const auto prev = previous_emitted_->values();
        for (std::size_t i = 0; i < dst.size(); ++i) {
            dst[i] = prev[i] * persistence + dst[i] * (1.0f - persistence);
        }
        previous_emitted_ = out;
        return out;
    }
    previous_emitted_ = target;
    return target;
}

void Display_model::reset()
{
    previous_emitted_.reset();
}

} // namespace inframe::channel
