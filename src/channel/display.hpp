// Display model.
//
// Stands in for the paper's Eizo FG2421 (120 Hz, 1920x1080, brightness
// 100%). The quantity downstream components consume is the spatio-temporal
// light field the panel emits: logical frames arrive at the refresh rate
// and leave as emitted irradiance after brightness scaling and the LCD
// pixel response (liquid crystal does not switch instantly; the emitted
// value relaxes toward the target each refresh).
#pragma once

#include "imgproc/image.hpp"

#include <optional>

namespace inframe::channel {

struct Display_params {
    double refresh_hz = 120.0;

    // Backlight/brightness scaling of pixel values (1.0 = the paper's
    // "brightness as 100%").
    double brightness = 1.0;

    // Fraction of the previous emitted value that persists into the next
    // refresh (first-order LC response). 0 = ideal instant panel. Typical
    // fast TN/VA panels at 120 Hz: 0.05-0.2.
    double response_persistence = 0.08;

    // Uniform black-level light leakage added after scaling (LCDs do not
    // reach true zero).
    double black_level = 0.5;
};

class Display_model {
public:
    explicit Display_model(Display_params params);

    // Submits the next logical frame (refresh-rate cadence) and returns
    // the light field emitted during that refresh interval.
    img::Imagef emit(const img::Imagef& frame);

    // Duration of one refresh interval in seconds.
    double refresh_period() const { return 1.0 / params_.refresh_hz; }

    const Display_params& params() const { return params_; }

    // Forgets panel state (next frame emits without history).
    void reset();

private:
    Display_params params_;
    std::optional<img::Imagef> previous_emitted_;
};

} // namespace inframe::channel
