#include "channel/impairment.hpp"

#include "imgproc/pool.hpp"
#include "imgproc/warp.hpp"
#include "telemetry/telemetry.hpp"
#include "util/contract.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace inframe::channel {

namespace {

// splitmix64 finalizer: decorrelates structured (seed, stage, index)
// triples into independent Prng seeds.
std::uint64_t mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

// Canonical stage ids: fixed so that adding stages to a chain never
// reshuffles another stage's stream.
enum Stage_id : std::uint32_t {
    stage_timing = 1,
    stage_exposure = 2,
    stage_shake = 3,
    stage_tear = 4,
    stage_occlusion = 5,
};

} // namespace

std::uint64_t impairment_draw_seed(std::uint64_t chain_seed, std::uint32_t stage_id,
                                   std::int64_t capture_index)
{
    return mix64(mix64(chain_seed ^ (static_cast<std::uint64_t>(stage_id) << 56))
                 ^ static_cast<std::uint64_t>(capture_index));
}

bool Impairment_config::any() const
{
    return drop_probability > 0.0 || duplicate_probability > 0.0
           || gain_drift_amplitude != 0.0 || offset_drift_dn != 0.0 || shake_sigma_px > 0.0
           || occlusion_fraction > 0.0 || tear_probability > 0.0;
}

void Impairment_config::validate() const
{
    util::expects(drop_probability >= 0.0 && drop_probability <= 1.0,
                  "impairments: drop probability must be in [0, 1]");
    util::expects(duplicate_probability >= 0.0 && duplicate_probability <= 1.0,
                  "impairments: duplicate probability must be in [0, 1]");
    util::expects(gain_drift_period > 0.0, "impairments: gain drift period must be positive");
    util::expects(shake_sigma_px >= 0.0, "impairments: shake sigma must be non-negative");
    util::expects(shake_max_px >= 0.0, "impairments: shake clamp must be non-negative");
    util::expects(occlusion_fraction >= 0.0 && occlusion_fraction < 1.0,
                  "impairments: occlusion fraction must be in [0, 1)");
    util::expects(occlusion_count >= 1, "impairments: occlusion count must be positive");
    util::expects(tear_probability >= 0.0 && tear_probability <= 1.0,
                  "impairments: tear probability must be in [0, 1]");
}

void Impairment_chain::add(std::unique_ptr<Impairment> stage)
{
    util::expects(stage != nullptr, "impairment chain: stage must not be null");
    stages_.push_back(std::move(stage));
}

Capture_fate Impairment_chain::apply(img::Imagef& image, std::int64_t capture_index)
{
    for (auto& stage : stages_) {
        telemetry::Scoped_span span(stage->name());
        if (stage->apply(image, capture_index) == Capture_fate::dropped) {
            return Capture_fate::dropped;
        }
    }
    return Capture_fate::delivered;
}

void Impairment_chain::reset()
{
    for (auto& stage : stages_) stage->reset();
}

Impairment_chain make_impairment_chain(const Impairment_config& config)
{
    config.validate();
    Impairment_chain chain;
    if (config.drop_probability > 0.0 || config.duplicate_probability > 0.0) {
        chain.add(std::make_unique<Timing_impairment>(config.seed, config.drop_probability,
                                                      config.duplicate_probability));
    }
    if (config.gain_drift_amplitude != 0.0 || config.offset_drift_dn != 0.0) {
        chain.add(std::make_unique<Exposure_drift_impairment>(
            config.gain_drift_amplitude, config.gain_drift_period, config.offset_drift_dn));
    }
    if (config.shake_sigma_px > 0.0) {
        chain.add(std::make_unique<Shake_impairment>(config.seed, config.shake_sigma_px,
                                                     config.shake_max_px));
    }
    if (config.tear_probability > 0.0) {
        chain.add(std::make_unique<Tear_impairment>(config.seed, config.tear_probability,
                                                    config.tear_shift_px));
    }
    if (config.occlusion_fraction > 0.0) {
        chain.add(std::make_unique<Occlusion_impairment>(
            config.seed, config.occlusion_fraction, config.occlusion_count,
            config.occlusion_level, config.occlusion_drift_px));
    }
    return chain;
}

// --- timing -----------------------------------------------------------

Timing_impairment::Timing_impairment(std::uint64_t seed, double drop_probability,
                                     double duplicate_probability)
    : seed_(seed), drop_probability_(drop_probability),
      duplicate_probability_(duplicate_probability)
{
}

Capture_fate Timing_impairment::apply(img::Imagef& image, std::int64_t capture_index)
{
    util::Prng prng(impairment_draw_seed(seed_, stage_timing, capture_index));
    if (prng.next_double() < drop_probability_) {
        telemetry::emit_event({"impairment", "drop", capture_index, 0.0});
        return Capture_fate::dropped;
    }
    if (duplicate_probability_ > 0.0) {
        const bool duplicate = prng.next_double() < duplicate_probability_;
        if (duplicate && !previous_.empty() && previous_.same_shape(image)) {
            telemetry::emit_event({"impairment", "duplicate", capture_index, 0.0});
            // Stale delivery: the pipeline repeats the previous buffer in
            // this capture's slot. The stale image stays `previous_` so a
            // run of duplicates repeats the same frame, as real ISPs do.
            std::copy(previous_.values().begin(), previous_.values().end(),
                      image.values().begin());
            return Capture_fate::delivered;
        }
        // Fresh delivery: remember it for the next stale slot.
        if (!previous_.same_shape(image)) {
            previous_ = img::Imagef(image.width(), image.height(), image.channels());
        }
        std::copy(image.values().begin(), image.values().end(), previous_.values().begin());
    }
    return Capture_fate::delivered;
}

void Timing_impairment::reset() { previous_ = img::Imagef(); }

// --- exposure drift ---------------------------------------------------

Exposure_drift_impairment::Exposure_drift_impairment(double gain_amplitude, double period,
                                                     double offset_dn)
    : amplitude_(gain_amplitude), period_(period), offset_dn_(offset_dn)
{
    util::expects(period > 0.0, "exposure drift: period must be positive");
}

double Exposure_drift_impairment::gain_at(std::int64_t capture_index) const
{
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(capture_index) / period_;
    return 1.0 + amplitude_ * std::sin(phase);
}

double Exposure_drift_impairment::offset_at(std::int64_t capture_index) const
{
    // Offset hunts at a slower, incommensurate cadence so gain and offset
    // extremes do not always coincide.
    const double phase =
        2.0 * std::numbers::pi * static_cast<double>(capture_index) / (period_ * 1.7);
    return offset_dn_ * std::sin(phase);
}

Capture_fate Exposure_drift_impairment::apply(img::Imagef& image, std::int64_t capture_index)
{
    const auto gain = static_cast<float>(gain_at(capture_index));
    const auto offset = static_cast<float>(offset_at(capture_index));
    static const int gain_metric =
        telemetry::intern_metric("impairment.gain", telemetry::Metric_kind::gauge);
    telemetry::gauge_set(gain_metric, gain);
    if (gain == 1.0f && offset == 0.0f) return Capture_fate::delivered;
    // Pure per-value transform: parallel over rows, deterministic at any
    // thread count.
    util::parallel_for(0, image.height(), 32, [&](std::int64_t y0, std::int64_t y1) {
        for (std::int64_t y = y0; y < y1; ++y) {
            for (auto& v : image.row(static_cast<int>(y))) {
                v = std::clamp(v * gain + offset, 0.0f, 255.0f);
            }
        }
    });
    return Capture_fate::delivered;
}

// --- shake ------------------------------------------------------------

Shake_impairment::Shake_impairment(std::uint64_t seed, double sigma_px, double max_px)
    : seed_(seed), sigma_px_(sigma_px), max_px_(max_px)
{
}

void Shake_impairment::jitter_at(std::int64_t capture_index, double& dx, double& dy) const
{
    util::Prng prng(impairment_draw_seed(seed_, stage_shake, capture_index));
    dx = std::clamp(prng.next_gaussian(0.0, sigma_px_), -max_px_, max_px_);
    dy = std::clamp(prng.next_gaussian(0.0, sigma_px_), -max_px_, max_px_);
}

Capture_fate Shake_impairment::apply(img::Imagef& image, std::int64_t capture_index)
{
    double dx = 0.0;
    double dy = 0.0;
    jitter_at(capture_index, dx, dy);
    static const int shake_metric =
        telemetry::intern_metric("impairment.shake_px", telemetry::Metric_kind::histogram);
    telemetry::histogram_record(shake_metric, std::hypot(dx, dy));
    if (dx == 0.0 && dy == 0.0) return Capture_fate::delivered;
    // The jitter composes with the viewing homography: the screen image
    // lands translated on the sensor, and the decoder's calibration does
    // not know about it — that mismatch is the impairment.
    img::Imagef shaken =
        img::warp_perspective(image, img::Homography::translation(dx, dy), image.width(),
                              image.height());
    img::Frame_pool::instance().recycle(std::move(image));
    image = std::move(shaken);
    return Capture_fate::delivered;
}

// --- tear -------------------------------------------------------------

Tear_impairment::Tear_impairment(std::uint64_t seed, double probability, double shift_px)
    : seed_(seed), probability_(probability),
      shift_px_(static_cast<int>(std::lround(shift_px)))
{
}

int Tear_impairment::tear_row_at(std::int64_t capture_index, int height) const
{
    util::Prng prng(impairment_draw_seed(seed_, stage_tear, capture_index));
    if (prng.next_double() >= probability_) return -1;
    // Keep the seam away from the extreme edges so it always bisects.
    const int lo = height / 8;
    const int hi = height - height / 8;
    if (hi <= lo) return -1;
    return lo + static_cast<int>(prng.next_below(static_cast<std::uint64_t>(hi - lo)));
}

Capture_fate Tear_impairment::apply(img::Imagef& image, std::int64_t capture_index)
{
    const int seam = tear_row_at(capture_index, image.height());
    if (seam < 0 || shift_px_ == 0) return Capture_fate::delivered;
    telemetry::emit_event({"impairment", "tear", capture_index, static_cast<double>(seam)});
    const int channels = image.channels();
    const int row_values = image.width() * channels;
    const int shift_values = shift_px_ * channels;
    // Rows below the seam shift horizontally (edge-clamped): the bottom
    // band came from the next scanout position of a mid-swap buffer.
    util::parallel_for(seam, image.height(), 32, [&](std::int64_t y0, std::int64_t y1) {
        for (std::int64_t yy = y0; yy < y1; ++yy) {
            auto row = image.row(static_cast<int>(yy));
            if (shift_values > 0) {
                for (int i = row_values - 1; i >= shift_values; --i) {
                    row[static_cast<std::size_t>(i)] =
                        row[static_cast<std::size_t>(i - shift_values)];
                }
                for (int i = 0; i < shift_values; ++i) {
                    row[static_cast<std::size_t>(i)] =
                        row[static_cast<std::size_t>(shift_values)];
                }
            } else {
                for (int i = 0; i < row_values + shift_values; ++i) {
                    row[static_cast<std::size_t>(i)] =
                        row[static_cast<std::size_t>(i - shift_values)];
                }
                for (int i = row_values + shift_values; i < row_values; ++i) {
                    row[static_cast<std::size_t>(i)] =
                        row[static_cast<std::size_t>(row_values + shift_values - 1)];
                }
            }
        }
    });
    return Capture_fate::delivered;
}

// --- occlusion --------------------------------------------------------

Occlusion_impairment::Occlusion_impairment(std::uint64_t seed, double fraction, int count,
                                           float level, double drift_px)
    : seed_(seed), fraction_(fraction), count_(count), level_(level), drift_px_(drift_px)
{
    util::expects(count >= 1, "occlusion: rectangle count must be positive");
}

Capture_fate Occlusion_impairment::apply(img::Imagef& image, std::int64_t capture_index)
{
    const int w = image.width();
    const int h = image.height();
    const double area_per_rect =
        fraction_ * static_cast<double>(w) * static_cast<double>(h) / count_;
    for (int rect = 0; rect < count_; ++rect) {
        // Placement is a pure function of (seed, rect): the occluder is a
        // physical object, fixed unless drifting. Per-capture drift moves
        // the centre deterministically with capture index.
        util::Prng prng(mix64(mix64(seed_ ^ (static_cast<std::uint64_t>(stage_occlusion) << 56))
                              ^ static_cast<std::uint64_t>(rect)));
        const double aspect = prng.next_double(0.5, 2.0);
        const int rect_w = std::clamp(
            static_cast<int>(std::lround(std::sqrt(area_per_rect * aspect))), 1, w);
        const int rect_h = std::clamp(
            static_cast<int>(std::lround(area_per_rect / rect_w)), 1, h);
        double cx = prng.next_double(0.0, static_cast<double>(w));
        double cy = prng.next_double(0.0, static_cast<double>(h));
        if (drift_px_ != 0.0) {
            const double angle = prng.next_double(0.0, 2.0 * std::numbers::pi);
            cx += std::cos(angle) * drift_px_ * static_cast<double>(capture_index);
            cy += std::sin(angle) * drift_px_ * static_cast<double>(capture_index);
        }
        // Wrap the centre so drifting occluders re-enter instead of
        // leaving forever.
        cx = std::fmod(std::fmod(cx, w) + w, w);
        cy = std::fmod(std::fmod(cy, h) + h, h);
        const int x0 = std::clamp(static_cast<int>(std::lround(cx)) - rect_w / 2, 0, w - 1);
        const int y0 = std::clamp(static_cast<int>(std::lround(cy)) - rect_h / 2, 0, h - 1);
        const int x1 = std::min(x0 + rect_w, w);
        const int y1 = std::min(y0 + rect_h, h);
        util::parallel_for(y0, y1, 32, [&](std::int64_t yy0, std::int64_t yy1) {
            for (std::int64_t y = yy0; y < yy1; ++y) {
                auto row = image.row(static_cast<int>(y));
                for (int x = x0; x < x1; ++x) {
                    for (int c = 0; c < image.channels(); ++c) {
                        row[static_cast<std::size_t>(x * image.channels() + c)] = level_;
                    }
                }
            }
        });
    }
    return Capture_fate::delivered;
}

} // namespace inframe::channel
