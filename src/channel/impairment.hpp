// Fault-injection impairments for the screen-camera link.
//
// The paper evaluates InFrame on a clean lab rig (fixed camera, locked
// exposure, nothing between lens and panel). Real screen-camera channels
// add capture-pipeline frame drops and stale-frame duplication, auto
// exposure hunting, hand shake, partial occlusion (a finger, a passer-by)
// and tear bands when the display and camera clocks fight — the failures
// DeepLight and Revelio engineer around. Each is modelled here as a
// deterministic, seedable `Impairment` stage; a chain of stages is
// applied to every completed capture inside Screen_camera_link.
//
// Determinism contract (same as the rest of the pipeline, see DESIGN.md
// "Threading model & determinism"): every random draw an impairment makes
// is a pure function of (chain seed, stage id, capture index). Captures
// flow through the chain serially in index order, and any per-pixel work
// is either value-parallel (pure function of the pixel) or row-sliced
// with per-row derived streams — so the impaired capture stream is
// bit-identical for every thread count.
#pragma once

#include "imgproc/image.hpp"
#include "util/prng.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace inframe::channel {

// What the chain decided about one capture.
enum class Capture_fate : std::uint8_t {
    delivered, // capture (possibly modified) reaches the receiver
    dropped,   // capture lost in the camera pipeline; receiver sees a gap
};

// One impairment stage. Stages are stateful (duplication keeps the last
// delivered frame) but their state advances only through apply() calls,
// which the link makes serially in capture order.
class Impairment {
public:
    virtual ~Impairment() = default;

    virtual const char* name() const = 0;

    // Transforms the capture in place. Returning `dropped` removes the
    // capture from the stream; later stages never see it.
    virtual Capture_fate apply(img::Imagef& image, std::int64_t capture_index) = 0;

    // Forgets any cross-capture state (start of a new run).
    virtual void reset() {}
};

// Declarative description of a chain, so experiment configs stay plain
// data. Every field at its default disables that impairment.
struct Impairment_config {
    // Root seed for all stage streams. Two chains with equal configs
    // produce bit-identical capture streams.
    std::uint64_t seed = 0x0cc1'0ded'5eed'0001ULL;

    // --- capture-pipeline timing faults -------------------------------
    // Probability a completed capture never reaches the receiver.
    double drop_probability = 0.0;
    // Probability (evaluated when not dropped) that the pipeline delivers
    // the previous capture's image again — a stale frame, as when an ISP
    // misses its deadline and repeats the last buffer.
    double duplicate_probability = 0.0;

    // --- exposure / gain drift ----------------------------------------
    // Auto-exposure hunting: multiplicative gain 1 + A*sin(2*pi*k/period)
    // and an additive black-level drift, both smooth in capture index k.
    double gain_drift_amplitude = 0.0;    // A, e.g. 0.15
    double gain_drift_period = 48.0;      // captures per hunting cycle
    double offset_drift_dn = 0.0;         // additive drift amplitude (DN)

    // --- translational camera shake -----------------------------------
    // Per-capture jitter of the screen image on the sensor, modelled as a
    // translation applied on top of the (uncalibrated) viewing homography.
    double shake_sigma_px = 0.0;          // stddev of per-axis jitter
    double shake_max_px = 6.0;            // hard clamp per axis

    // --- partial occlusion --------------------------------------------
    // Total sensor-area fraction covered by `occlusion_count` rectangles
    // painted at `occlusion_level` (a dark finger/hand by default).
    double occlusion_fraction = 0.0;
    int occlusion_count = 1;
    float occlusion_level = 8.0f;
    // Rectangle centres drift this many pixels per capture (a waving
    // hand); 0 keeps them fixed for the whole run.
    double occlusion_drift_px = 0.0;

    // --- rolling-shutter tear -----------------------------------------
    // Probability a capture shows a tear seam: rows below a random seam
    // row are shifted horizontally by tear_shift_px (display/camera clock
    // skew delivering a mid-scanout buffer swap).
    double tear_probability = 0.0;
    double tear_shift_px = 8.0;

    // True when at least one impairment is active.
    bool any() const;

    void validate() const;
};

// Ordered chain of impairment stages.
class Impairment_chain {
public:
    Impairment_chain() = default;

    void add(std::unique_ptr<Impairment> stage);

    bool empty() const { return stages_.empty(); }
    std::size_t size() const { return stages_.size(); }

    // Runs the capture through every stage in order. Stops early when a
    // stage drops it.
    Capture_fate apply(img::Imagef& image, std::int64_t capture_index);

    void reset();

private:
    std::vector<std::unique_ptr<Impairment>> stages_;
};

// Builds the chain a config describes (stages for the active impairments
// only, in a fixed canonical order: timing, exposure, shake, tear,
// occlusion — the occluder sits in front of the lens, after everything
// the sensor does).
Impairment_chain make_impairment_chain(const Impairment_config& config);

// The derived seed for one stage's draw at one capture (exposed for
// tests; this is the pure-function contract the determinism tests pin).
std::uint64_t impairment_draw_seed(std::uint64_t chain_seed, std::uint32_t stage_id,
                                   std::int64_t capture_index);

// --- concrete stages (exposed for unit tests and custom chains) -------

// Frame drop + stale-frame duplication.
class Timing_impairment final : public Impairment {
public:
    Timing_impairment(std::uint64_t seed, double drop_probability,
                      double duplicate_probability);
    const char* name() const override { return "timing"; }
    Capture_fate apply(img::Imagef& image, std::int64_t capture_index) override;
    void reset() override;

private:
    std::uint64_t seed_;
    double drop_probability_;
    double duplicate_probability_;
    img::Imagef previous_; // last delivered image (for duplication)
};

// Smooth exposure/gain hunting.
class Exposure_drift_impairment final : public Impairment {
public:
    Exposure_drift_impairment(double gain_amplitude, double period, double offset_dn);
    const char* name() const override { return "exposure-drift"; }
    Capture_fate apply(img::Imagef& image, std::int64_t capture_index) override;

    // The gain/offset applied at capture k (exposed for tests).
    double gain_at(std::int64_t capture_index) const;
    double offset_at(std::int64_t capture_index) const;

private:
    double amplitude_;
    double period_;
    double offset_dn_;
};

// Per-capture translational jitter.
class Shake_impairment final : public Impairment {
public:
    Shake_impairment(std::uint64_t seed, double sigma_px, double max_px);
    const char* name() const override { return "shake"; }
    Capture_fate apply(img::Imagef& image, std::int64_t capture_index) override;

    // The (dx, dy) jitter drawn for capture k (exposed for tests).
    void jitter_at(std::int64_t capture_index, double& dx, double& dy) const;

private:
    std::uint64_t seed_;
    double sigma_px_;
    double max_px_;
};

// Horizontal tear seam from display/camera clock skew.
class Tear_impairment final : public Impairment {
public:
    Tear_impairment(std::uint64_t seed, double probability, double shift_px);
    const char* name() const override { return "tear"; }
    Capture_fate apply(img::Imagef& image, std::int64_t capture_index) override;

    // Seam row for capture k; -1 when this capture shows no tear.
    int tear_row_at(std::int64_t capture_index, int height) const;

private:
    std::uint64_t seed_;
    double probability_;
    int shift_px_;
};

// Opaque rectangles in front of the lens.
class Occlusion_impairment final : public Impairment {
public:
    Occlusion_impairment(std::uint64_t seed, double fraction, int count, float level,
                         double drift_px);
    const char* name() const override { return "occlusion"; }
    Capture_fate apply(img::Imagef& image, std::int64_t capture_index) override;

private:
    std::uint64_t seed_;
    double fraction_;
    int count_;
    float level_;
    double drift_px_;
};

} // namespace inframe::channel
