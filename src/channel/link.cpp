#include "channel/link.hpp"

#include "imgproc/pool.hpp"
#include "telemetry/telemetry.hpp"
#include "util/contract.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>

namespace inframe::channel {

Screen_camera_link::Screen_camera_link(Display_params display, Camera_params camera,
                                       int screen_width, int screen_height)
    : display_(display), camera_params_(camera), optics_(camera, screen_width, screen_height)
{
    util::expects(camera.phase_offset_s >= 0.0, "camera phase offset must be non-negative");
}

Screen_camera_link::Screen_camera_link(Display_params display, Camera_params camera,
                                       int screen_width, int screen_height,
                                       const Impairment_config& impairments)
    : Screen_camera_link(display, camera, screen_width, screen_height)
{
    impairments_ = make_impairment_chain(impairments);
}

bool Screen_camera_link::capture_complete(double now) const
{
    // Capture k is complete once the last row's exposure window has ended.
    const double start =
        camera_params_.phase_offset_s + static_cast<double>(capture_index_) / camera_params_.fps;
    const double end = start + camera_params_.readout_s + camera_params_.exposure_s;
    return end <= now + 1e-12;
}

std::vector<Capture> Screen_camera_link::push_display_frame(const img::Imagef& frame)
{
    const double period = display_.refresh_period();
    const double start_time = static_cast<double>(display_index_) * period;

    Buffered_frame buffered;
    buffered.sensor_image = optics_.to_sensor(display_.emit(frame));
    buffered.start_time = start_time;
    buffered.end_time = start_time + period;
    buffer_.push_back(std::move(buffered));
    ++display_index_;

    std::vector<Capture> completed;
    const double now = static_cast<double>(display_index_) * period;
    while (capture_complete(now)) {
        Capture capture = assemble_capture();
        ++capture_index_;
        // Captures flow through the impairment chain serially in index
        // order; each stage's draws are a pure function of the capture
        // index, so the impaired stream is bit-identical at any thread
        // count.
        if (!impairments_.empty()
            && impairments_.apply(capture.image, capture.index) == Capture_fate::dropped) {
            ++captures_dropped_;
            static const int dropped_metric =
                telemetry::intern_metric("link.captures_dropped", telemetry::Metric_kind::counter);
            telemetry::counter_add(dropped_metric);
            img::Frame_pool::instance().recycle(std::move(capture.image));
            continue;
        }
        static const int delivered_metric =
            telemetry::intern_metric("link.captures_delivered", telemetry::Metric_kind::counter);
        telemetry::counter_add(delivered_metric);
        completed.push_back(std::move(capture));
    }
    trim_buffer();
    return completed;
}

Capture Screen_camera_link::assemble_capture()
{
    telemetry::Scoped_span span("link.capture");
    const double capture_start =
        camera_params_.phase_offset_s + static_cast<double>(capture_index_) / camera_params_.fps;
    const int rows = camera_params_.sensor_height;
    const int cols = camera_params_.sensor_width;
    const double exposure = camera_params_.exposure_s;
    const int channels = buffer_.empty() ? 1 : buffer_.front().sensor_image.channels();

    img::Imagef integrated = img::Frame_pool::instance().acquire(cols, rows, channels, 0.0f);
    // Rows integrate independently (each owns its exposure window and its
    // output row), so the rolling-shutter pass parallelizes over row bands.
    util::parallel_for(0, rows, 8, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t rr = r0; rr < r1; ++rr) {
            const int r = static_cast<int>(rr);
            // Row r starts integrating after its share of the readout skew.
            const double row_start =
                capture_start
                + (rows > 1 ? camera_params_.readout_s * static_cast<double>(r) / (rows - 1)
                            : 0.0);
            const double row_end = row_start + exposure;
            auto out_row = integrated.row(r);
            double covered = 0.0;
            for (const auto& frame : buffer_) {
                const double overlap = std::min(frame.end_time, row_end)
                                       - std::max(frame.start_time, row_start);
                if (overlap <= 0.0) continue;
                const auto weight = static_cast<float>(overlap / exposure);
                covered += overlap;
                const auto src_row = frame.sensor_image.row(r);
                for (std::size_t i = 0; i < out_row.size(); ++i) out_row[i] += weight * src_row[i];
            }
            util::ensures(covered >= exposure - 1e-9,
                          "capture exposure window not fully covered by buffered frames");
        }
    });

    // Per-row seeded noise streams: the noise field depends only on
    // (camera seed, capture index, row), never on thread scheduling.
    apply_sensor_noise_rows(integrated, camera_params_, capture_index_);

    Capture capture;
    capture.image = std::move(integrated);
    capture.index = capture_index_;
    capture.start_time = capture_start;
    return capture;
}

void Screen_camera_link::trim_buffer()
{
    // Frames that end before the next capture's earliest window can never
    // contribute again.
    const double next_start =
        camera_params_.phase_offset_s + static_cast<double>(capture_index_) / camera_params_.fps;
    while (!buffer_.empty() && buffer_.front().end_time <= next_start - 1e-12) {
        // The projected frame can never contribute again; recycle its
        // storage for the next sensor projection.
        img::Frame_pool::instance().recycle(std::move(buffer_.front().sensor_image));
        buffer_.pop_front();
    }
}

std::vector<Capture> run_link(const Display_params& display, const Camera_params& camera,
                              std::span<const img::Imagef> display_frames)
{
    return run_link(display, camera, Impairment_config{}, display_frames);
}

std::vector<Capture> run_link(const Display_params& display, const Camera_params& camera,
                              const Impairment_config& impairments,
                              std::span<const img::Imagef> display_frames)
{
    util::expects(!display_frames.empty(), "run_link needs display frames");
    Screen_camera_link link(display, camera, display_frames[0].width(),
                            display_frames[0].height(), impairments);
    std::vector<Capture> captures;
    for (const auto& frame : display_frames) {
        auto completed = link.push_display_frame(frame);
        for (auto& c : completed) captures.push_back(std::move(c));
    }
    return captures;
}

} // namespace inframe::channel
