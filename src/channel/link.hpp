// Screen-camera link: composes the display and camera models with the
// timing math that produces the paper's channel impairments.
//
// Display frames are pushed at the refresh cadence; the link projects each
// onto the sensor plane and integrates per-row exposure windows against the
// piecewise-constant light field. Because rows start their exposure at
// staggered times (rolling shutter), a single capture can mix adjacent
// display frames differently per row — exactly the distortion the InFrame
// decoder must tolerate (3.3). Frame-rate mismatch and phase drift come
// out of the same timing model for free.
#pragma once

#include "channel/camera.hpp"
#include "channel/display.hpp"
#include "channel/impairment.hpp"

#include <cstdint>
#include <deque>
#include <vector>

namespace inframe::channel {

struct Capture {
    img::Imagef image;

    // Capture sequence number (k-th camera frame).
    std::int64_t index = 0;

    // Time the first row began integrating, seconds.
    double start_time = 0.0;
};

class Screen_camera_link {
public:
    Screen_camera_link(Display_params display, Camera_params camera, int screen_width,
                       int screen_height);

    // Same link with a fault-injection chain applied to every completed
    // capture (drops, duplication, drift, shake, tear, occlusion).
    Screen_camera_link(Display_params display, Camera_params camera, int screen_width,
                       int screen_height, const Impairment_config& impairments);

    // Pushes the next logical display frame (refresh cadence). Returns the
    // captures completed by the end of this refresh interval (usually zero
    // or one). Captures the impairment chain drops never appear here.
    std::vector<Capture> push_display_frame(const img::Imagef& frame);

    // Number of display frames pushed so far.
    std::int64_t display_frames_pushed() const { return display_index_; }

    // Captures the impairment chain swallowed so far.
    std::int64_t captures_dropped() const { return captures_dropped_; }

    // Expected captures per second.
    double capture_rate() const { return camera_params_.fps; }

    const Camera_params& camera_params() const { return camera_params_; }
    const Display_params& display_params() const { return display_.params(); }

private:
    struct Buffered_frame {
        img::Imagef sensor_image;
        double start_time;
        double end_time;
    };

    bool capture_complete(double now) const;
    Capture assemble_capture();
    void trim_buffer();

    Display_model display_;
    Camera_params camera_params_;
    Camera_optics optics_;
    Impairment_chain impairments_;
    std::deque<Buffered_frame> buffer_;
    std::int64_t display_index_ = 0;
    std::int64_t capture_index_ = 0;
    std::int64_t captures_dropped_ = 0;
};

// Convenience: run a prepared sequence of display frames through a fresh
// link and collect all completed captures.
std::vector<Capture> run_link(const Display_params& display, const Camera_params& camera,
                              std::span<const img::Imagef> display_frames);

// Same, with a fault-injection chain on the capture stream.
std::vector<Capture> run_link(const Display_params& display, const Camera_params& camera,
                              const Impairment_config& impairments,
                              std::span<const img::Imagef> display_frames);

} // namespace inframe::channel
