#include "coding/chessboard.hpp"

namespace inframe::coding {

void add_chessboard_block(img::Imagef& frame, const Code_geometry& geometry, int bx, int by,
                          float delta)
{
    util::expects(frame.width() == geometry.screen_width
                      && frame.height() == geometry.screen_height,
                  "chessboard: frame does not match geometry");
    const Block_rect rect = geometry.block_rect(bx, by);
    const int p = geometry.pixel_size;
    const int channels = frame.channels();
    for (int py = 0; py < geometry.block_pixels; ++py) {
        for (int px = 0; px < geometry.block_pixels; ++px) {
            if (((px + py) & 1) == 0) continue; // paper: raised when i+j odd
            const int x0 = rect.x0 + px * p;
            const int y0 = rect.y0 + py * p;
            for (int y = y0; y < y0 + p; ++y) {
                for (int x = x0; x < x0 + p; ++x) {
                    // Colour video: the same amplitude on every channel
                    // shifts luminance without altering chromaticity.
                    for (int c = 0; c < channels; ++c) frame(x, y, c) += delta;
                }
            }
        }
    }
}

img::Imagef render_data_frame(const Code_geometry& geometry,
                              std::span<const std::uint8_t> block_bits, float delta)
{
    geometry.validate();
    util::expects(block_bits.size() == static_cast<std::size_t>(geometry.block_count()),
                  "chessboard: bit count does not match block count");
    img::Imagef frame(geometry.screen_width, geometry.screen_height, 1, 0.0f);
    for (int by = 0; by < geometry.blocks_y; ++by) {
        for (int bx = 0; bx < geometry.blocks_x; ++bx) {
            if (block_bits[static_cast<std::size_t>(geometry.block_index(bx, by))]) {
                add_chessboard_block(frame, geometry, bx, by, delta);
            }
        }
    }
    return frame;
}

float chessboard_block_mean(float delta)
{
    // In an s x s Pixel block with s odd, (s*s - 1) / 2 of s*s Pixels are
    // raised; for the paper's s = 9 that is 40/81 ~ 0.494. Treat as half.
    return delta * 0.5f;
}

} // namespace inframe::coding
