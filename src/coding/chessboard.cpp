#include "coding/chessboard.hpp"

#include "simd/simd.hpp"

#include <cstdint>
#include <vector>

namespace inframe::coding {

void add_chessboard_block(img::Imagef& frame, const Code_geometry& geometry, int bx, int by,
                          float delta)
{
    util::expects(frame.width() == geometry.screen_width
                      && frame.height() == geometry.screen_height,
                  "chessboard: frame does not match geometry");
    const Block_rect rect = geometry.block_rect(bx, by);
    const int p = geometry.pixel_size;
    const int channels = frame.channels();
    const int row_values = rect.size * channels;

    // The chessboard pattern has only two distinct pixel rows (Pixel row
    // parity even/odd); precompute both as 0 / all-ones masks and let
    // masked_add_f32 sweep whole image rows. The kernel's bitwise select
    // leaves unset lanes untouched — identical to skipping them, so this
    // matches the original per-cell loop bit for bit. Colour video: the
    // same amplitude lands on every channel of a raised pixel, shifting
    // luminance without altering chromaticity.
    std::vector<std::uint32_t> mask(static_cast<std::size_t>(2 * row_values), 0);
    for (int parity = 0; parity < 2; ++parity) {
        std::uint32_t* m = mask.data() + static_cast<std::ptrdiff_t>(parity) * row_values;
        for (int px = 0; px < geometry.block_pixels; ++px) {
            if (((px + parity) & 1) == 0) continue; // paper: raised when i+j odd
            for (int x = px * p; x < (px + 1) * p; ++x) {
                for (int c = 0; c < channels; ++c) {
                    m[static_cast<std::ptrdiff_t>(x) * channels + c] = ~std::uint32_t{0};
                }
            }
        }
    }

    const auto& k = simd::kernels();
    for (int y = rect.y0; y < rect.y0 + rect.size; ++y) {
        const int py = (y - rect.y0) / p;
        const std::uint32_t* m =
            mask.data() + static_cast<std::ptrdiff_t>(py & 1) * row_values;
        float* row = frame.row(y).data() + static_cast<std::ptrdiff_t>(rect.x0) * channels;
        k.masked_add_f32(row, m, row_values, delta);
    }
}

img::Imagef render_data_frame(const Code_geometry& geometry,
                              std::span<const std::uint8_t> block_bits, float delta)
{
    geometry.validate();
    util::expects(block_bits.size() == static_cast<std::size_t>(geometry.block_count()),
                  "chessboard: bit count does not match block count");
    img::Imagef frame(geometry.screen_width, geometry.screen_height, 1, 0.0f);
    for (int by = 0; by < geometry.blocks_y; ++by) {
        for (int bx = 0; bx < geometry.blocks_x; ++bx) {
            if (block_bits[static_cast<std::size_t>(geometry.block_index(bx, by))]) {
                add_chessboard_block(frame, geometry, bx, by, delta);
            }
        }
    }
    return frame;
}

float chessboard_block_mean(float delta)
{
    // In an s x s Pixel block with s odd, (s*s - 1) / 2 of s*s Pixels are
    // raised; for the paper's s = 9 that is 40/81 ~ 0.494. Treat as half.
    return delta * 0.5f;
}

} // namespace inframe::coding
