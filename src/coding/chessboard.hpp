// Chessboard on/off keying (paper 3.3).
//
// A Block carries one bit: bit 0 leaves the video content untouched, bit 1
// adds a chessboard of super Pixels — Pixel (i, j) is set to the amplitude
// delta when i + j is odd, 0 otherwise. The pattern is the highest spatial
// frequency the Pixel grid can express, which is what the decoder's
// smooth-and-subtract detector keys on and what the viewer's eye pools
// away spatially.
#pragma once

#include "coding/geometry.hpp"
#include "imgproc/image.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace inframe::coding {

// Renders the data frame D for a vector of block bits (raster order,
// geometry.block_count() entries): a screen-sized image that is 0
// everywhere except bit-1 blocks, which hold the chessboard at +delta.
img::Imagef render_data_frame(const Code_geometry& geometry,
                              std::span<const std::uint8_t> block_bits, float delta);

// Writes one block's chessboard directly into `frame` (accumulating), with
// the given amplitude. Used by the encoder's local amplitude capping path,
// where delta varies per block.
void add_chessboard_block(img::Imagef& frame, const Code_geometry& geometry, int bx, int by,
                          float delta);

// The chessboard's mean value over a block is delta/2 (half the Pixels are
// raised). Exposed because the encoder must reason about the DC shift when
// capping near saturation.
float chessboard_block_mean(float delta);

} // namespace inframe::coding
