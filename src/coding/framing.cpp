#include "coding/framing.hpp"

#include "util/bitstream.hpp"
#include "util/contract.hpp"
#include "util/crc32.hpp"

namespace inframe::coding {

Payload_framer::Payload_framer(int capacity_bits) : capacity_bits_(capacity_bits)
{
    util::expects(capacity_bits > header_bits + 8,
                  "framer: capacity too small for header plus any payload");
}

std::vector<std::uint8_t> Payload_framer::build(std::uint32_t sequence,
                                                std::span<const std::uint8_t> payload) const
{
    util::expects(static_cast<int>(payload.size()) <= max_payload_bytes(),
                  "framer: payload exceeds frame capacity");
    util::Bit_writer writer;
    writer.put_bits(magic, 16);
    writer.put_bits(sequence, 32);
    writer.put_bits(static_cast<std::uint16_t>(payload.size()), 16);
    writer.put_bits(util::crc32(payload), 32);
    writer.put_bytes(payload);

    auto bits = writer.to_bit_vector();
    bits.reserve(static_cast<std::size_t>(capacity_bits_));
    util::Prng filler(0xf111'e500'0000'0000ULL ^ sequence);
    while (bits.size() < static_cast<std::size_t>(capacity_bits_)) {
        bits.push_back(static_cast<std::uint8_t>(filler.next_u64() >> 63));
    }
    return bits;
}

std::optional<Payload_framer::Parsed>
Payload_framer::parse(std::span<const std::uint8_t> bits) const
{
    if (bits.size() != static_cast<std::size_t>(capacity_bits_)) return std::nullopt;
    const auto bytes = util::pack_bits(bits);
    util::Bit_reader reader(bytes, bits.size());
    if (reader.get_bits(16) != magic) return std::nullopt;
    Parsed parsed;
    parsed.sequence = static_cast<std::uint32_t>(reader.get_bits(32));
    const auto payload_bytes = static_cast<int>(reader.get_bits(16));
    if (payload_bytes > max_payload_bytes()) return std::nullopt;
    const auto expected_crc = static_cast<std::uint32_t>(reader.get_bits(32));
    parsed.payload.reserve(static_cast<std::size_t>(payload_bytes));
    for (int i = 0; i < payload_bytes; ++i) parsed.payload.push_back(reader.get_byte());
    if (util::crc32(parsed.payload) != expected_crc) return std::nullopt;
    return parsed;
}

std::vector<std::vector<std::uint8_t>> chunk_message(std::span<const std::uint8_t> message,
                                                     int chunk_bytes)
{
    util::expects(chunk_bytes >= 1, "chunk_message: chunk size must be positive");
    std::vector<std::vector<std::uint8_t>> chunks;
    std::size_t offset = 0;
    while (offset < message.size()) {
        const std::size_t take =
            std::min(message.size() - offset, static_cast<std::size_t>(chunk_bytes));
        chunks.emplace_back(message.begin() + static_cast<std::ptrdiff_t>(offset),
                            message.begin() + static_cast<std::ptrdiff_t>(offset + take));
        offset += take;
    }
    if (chunks.empty()) chunks.emplace_back(); // empty message -> one empty frame
    return chunks;
}

Rs_framer::Rs_framer(int capacity_bits, int rs_n, int rs_k)
    : capacity_bits_(capacity_bits), code_(rs_n, rs_k)
{
    util::expects(capacity_bits >= rs_n * 8,
                  "rs framer: capacity cannot hold one RS codeword");
}

int Rs_framer::max_payload_bytes() const
{
    // Header inside the protected region: magic(2) + sequence(4) +
    // length(2) + crc32(4). The CRC guards against RS miscorrection: an
    // error pattern beyond t symbols can decode to a *valid-looking*
    // wrong codeword, which must not reach the application.
    return code_.k() - 12;
}

std::vector<std::uint8_t> Rs_framer::build(std::uint32_t sequence,
                                           std::span<const std::uint8_t> payload) const
{
    util::expects(static_cast<int>(payload.size()) <= max_payload_bytes(),
                  "rs framer: payload exceeds codeword capacity");
    std::vector<std::uint8_t> data;
    data.reserve(static_cast<std::size_t>(code_.k()));
    // Non-zero magic first: the all-zero vector is a valid RS codeword
    // (with a vacuously matching empty-payload CRC), and an undecodable
    // frame's fill bits are exactly all-zero.
    data.push_back(static_cast<std::uint8_t>(Payload_framer::magic >> 8));
    data.push_back(static_cast<std::uint8_t>(Payload_framer::magic & 0xff));
    data.push_back(static_cast<std::uint8_t>(sequence >> 24));
    data.push_back(static_cast<std::uint8_t>(sequence >> 16));
    data.push_back(static_cast<std::uint8_t>(sequence >> 8));
    data.push_back(static_cast<std::uint8_t>(sequence));
    data.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
    data.push_back(static_cast<std::uint8_t>(payload.size()));
    const std::uint32_t crc = util::crc32(payload);
    data.push_back(static_cast<std::uint8_t>(crc >> 24));
    data.push_back(static_cast<std::uint8_t>(crc >> 16));
    data.push_back(static_cast<std::uint8_t>(crc >> 8));
    data.push_back(static_cast<std::uint8_t>(crc));
    data.insert(data.end(), payload.begin(), payload.end());
    util::Prng filler(0x5e9u ^ sequence);
    while (data.size() < static_cast<std::size_t>(code_.k())) {
        data.push_back(static_cast<std::uint8_t>(filler.next_u64()));
    }
    const auto codeword = code_.encode(data);

    util::Bit_writer writer;
    writer.put_bytes(codeword);
    auto bits = writer.to_bit_vector();
    while (bits.size() < static_cast<std::size_t>(capacity_bits_)) {
        bits.push_back(static_cast<std::uint8_t>(filler.next_u64() >> 63));
    }
    return bits;
}

std::optional<Rs_framer::Parsed> Rs_framer::parse(std::span<const std::uint8_t> bits) const
{
    return parse(bits, {});
}

std::optional<Rs_framer::Parsed>
Rs_framer::parse(std::span<const std::uint8_t> bits,
                 std::span<const std::uint8_t> trusted) const
{
    if (bits.size() != static_cast<std::size_t>(capacity_bits_)) return std::nullopt;
    util::expects(trusted.empty() || trusted.size() == bits.size(),
                  "rs framer: trust mask must match the bit vector");
    const auto codeword_bits = static_cast<std::size_t>(code_.n()) * 8;
    const auto bytes = util::pack_bits(bits.first(codeword_bits));

    std::vector<int> erasures;
    if (!trusted.empty()) {
        for (int symbol = 0; symbol < code_.n(); ++symbol) {
            bool reliable = true;
            for (int bit = 0; bit < 8; ++bit) {
                reliable &= trusted[static_cast<std::size_t>(symbol) * 8
                                    + static_cast<std::size_t>(bit)]
                            != 0;
            }
            if (!reliable) erasures.push_back(symbol);
        }
        // More suspect symbols than the code can absorb: fall back to
        // errors-only decoding (some of the suspects may still be right).
        if (static_cast<int>(erasures.size()) > code_.parity_symbols()) erasures.clear();
    }

    const auto decoded = erasures.empty() ? code_.decode(bytes)
                                          : code_.decode_with_erasures(bytes, erasures);
    if (!decoded) return std::nullopt;
    const auto& data = decoded->data;
    const auto magic =
        static_cast<std::uint16_t>((static_cast<int>(data[0]) << 8) | data[1]);
    if (magic != Payload_framer::magic) return std::nullopt;
    Parsed parsed;
    parsed.sequence = (static_cast<std::uint32_t>(data[2]) << 24)
                      | (static_cast<std::uint32_t>(data[3]) << 16)
                      | (static_cast<std::uint32_t>(data[4]) << 8)
                      | static_cast<std::uint32_t>(data[5]);
    const int payload_bytes = (static_cast<int>(data[6]) << 8) | static_cast<int>(data[7]);
    if (payload_bytes > max_payload_bytes()) return std::nullopt;
    const std::uint32_t expected_crc =
        (static_cast<std::uint32_t>(data[8]) << 24) | (static_cast<std::uint32_t>(data[9]) << 16)
        | (static_cast<std::uint32_t>(data[10]) << 8) | static_cast<std::uint32_t>(data[11]);
    parsed.payload.assign(data.begin() + 12, data.begin() + 12 + payload_bytes);
    if (util::crc32(parsed.payload) != expected_crc) return std::nullopt;
    parsed.corrected_symbols = decoded->corrected_errors;
    return parsed;
}

} // namespace inframe::coding
