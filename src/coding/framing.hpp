// Payload framing.
//
// The paper transmits raw pseudo-random data frames; a usable link needs
// structure on top: each data frame carries a small header (magic,
// sequence number, payload length) and a CRC-32 so the receiver can
// reassemble a byte stream and discard corrupted frames. An optional
// Reed-Solomon mode wraps the payload so scattered bit errors are
// corrected rather than dropping the whole frame.
#pragma once

#include "coding/reed_solomon.hpp"
#include "util/prng.hpp"

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace inframe::coding {

class Payload_framer {
public:
    // capacity_bits: bits one data frame carries (payload_bits_per_frame).
    explicit Payload_framer(int capacity_bits);

    static constexpr std::uint16_t magic = 0x1f7a;

    // Header: magic(16) + sequence(32) + payload_bytes(16) + crc32(32).
    static constexpr int header_bits = 96;

    int capacity_bits() const { return capacity_bits_; }
    int max_payload_bytes() const { return (capacity_bits_ - header_bits) / 8; }

    // Builds the frame's bit vector (capacity_bits entries, 0/1). Unused
    // tail bits are deterministic pseudo-random filler keyed by the
    // sequence number (white filler keeps the on-screen pattern balanced).
    std::vector<std::uint8_t> build(std::uint32_t sequence,
                                    std::span<const std::uint8_t> payload) const;

    struct Parsed {
        std::uint32_t sequence = 0;
        std::vector<std::uint8_t> payload;
    };

    // Validates magic and CRC; nullopt for garbage.
    std::optional<Parsed> parse(std::span<const std::uint8_t> bits) const;

private:
    int capacity_bits_;
};

// Splits a message into frame payload chunks of at most chunk_bytes.
std::vector<std::vector<std::uint8_t>> chunk_message(std::span<const std::uint8_t> message,
                                                     int chunk_bytes);

// RS-protected framer: payload symbols are RS(n, k)-encoded and the
// codeword is spread over the frame bits, correcting residual bit errors
// that slipped past GOB parity.
class Rs_framer {
public:
    Rs_framer(int capacity_bits, int rs_n, int rs_k);

    int max_payload_bytes() const;

    std::vector<std::uint8_t> build(std::uint32_t sequence,
                                    std::span<const std::uint8_t> payload) const;

    struct Parsed {
        std::uint32_t sequence = 0;
        std::vector<std::uint8_t> payload;
        int corrected_symbols = 0;
    };

    std::optional<Parsed> parse(std::span<const std::uint8_t> bits) const;

    // Erasure-aware parse: trusted is parallel to bits (1 = reliable).
    // Codeword symbols containing any untrusted bit are declared erasures,
    // doubling the correction power exactly where GOBs were lost.
    std::optional<Parsed> parse(std::span<const std::uint8_t> bits,
                                std::span<const std::uint8_t> trusted) const;

private:
    int capacity_bits_;
    Reed_solomon code_;
};

} // namespace inframe::coding
