#include "coding/geometry.hpp"

namespace inframe::coding {

void Code_geometry::validate() const
{
    util::expects(screen_width > 0 && screen_height > 0, "geometry: screen must be non-empty");
    util::expects(pixel_size >= 1, "geometry: pixel_size must be >= 1");
    util::expects(block_pixels >= 2, "geometry: block needs at least 2x2 Pixels for a pattern");
    util::expects(gob_size >= 2, "geometry: GOB needs at least 2x2 blocks");
    util::expects(blocks_x >= gob_size && blocks_y >= gob_size,
                  "geometry: data frame smaller than one GOB");
    util::expects(blocks_x % gob_size == 0 && blocks_y % gob_size == 0,
                  "geometry: block grid must divide into whole GOBs");
    util::expects(active_width() <= screen_width && active_height() <= screen_height,
                  "geometry: active area exceeds the screen");
}

Block_rect Code_geometry::block_rect(int bx, int by) const
{
    util::expects(bx >= 0 && bx < blocks_x && by >= 0 && by < blocks_y,
                  "geometry: block coordinate out of range");
    return Block_rect{origin_x() + bx * block_px(), origin_y() + by * block_px(), block_px()};
}

int Code_geometry::block_index(int bx, int by) const
{
    util::expects(bx >= 0 && bx < blocks_x && by >= 0 && by < blocks_y,
                  "geometry: block coordinate out of range");
    return by * blocks_x + bx;
}

Code_geometry fitted_geometry(int screen_width, int screen_height, int pixel_size,
                              int block_pixels)
{
    Code_geometry geometry;
    geometry.screen_width = screen_width;
    geometry.screen_height = screen_height;
    geometry.pixel_size = pixel_size;
    geometry.block_pixels = block_pixels;
    geometry.gob_size = 2;
    const int block = geometry.block_px();
    util::expects(block > 0 && screen_width >= 2 * block && screen_height >= 2 * block,
                  "fitted_geometry: screen smaller than one GOB");
    geometry.blocks_x = screen_width / block / 2 * 2;
    geometry.blocks_y = screen_height / block / 2 * 2;
    geometry.validate();
    return geometry;
}

Code_geometry paper_geometry(int screen_width, int screen_height)
{
    Code_geometry geometry;
    geometry.screen_width = screen_width;
    geometry.screen_height = screen_height;
    // p = 4 at 1080 rows; scale linearly so a Block (s = 9 Pixels) keeps
    // its angular size and the 50x30 Block grid its coverage.
    geometry.pixel_size = std::max(1, screen_height * 4 / 1080);
    geometry.block_pixels = 9;
    geometry.gob_size = 2;
    geometry.blocks_x = 50;
    geometry.blocks_y = 30;
    // Shrink the grid if a small screen cannot hold the full layout.
    while (geometry.blocks_x > 2 && geometry.active_width() > screen_width) {
        geometry.blocks_x -= 2;
    }
    while (geometry.blocks_y > 2 && geometry.active_height() > screen_height) {
        geometry.blocks_y -= 2;
    }
    geometry.validate();
    return geometry;
}

} // namespace inframe::coding
