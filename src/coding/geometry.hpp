// Data-frame geometry (paper 3.3).
//
// The hierarchy, smallest to largest:
//   Element pixel  — one physical display pixel;
//   Pixel          — p x p Element pixels sharing one value (the minimum
//                    operating unit; p approximates the eye's resolution
//                    at the intended viewing distance);
//   Block          — s x s Pixels carrying ONE bit;
//   GOB            — m x m Blocks protected together (the paper uses 2x2
//                    with an XOR parity block).
//
// The paper's rig: 1920x1080 screen, data frames of 50x30 Blocks grouped
// into 25x15 GOBs, i.e. 375 GOBs x 3 payload bits = 1125 bits per data
// frame. paper_geometry() reproduces that layout and scales it to other
// resolutions.
#pragma once

#include "util/contract.hpp"

#include <cstdint>

namespace inframe::coding {

struct Block_rect {
    int x0 = 0;
    int y0 = 0;
    int size = 0; // square side in Element pixels
};

struct Code_geometry {
    int screen_width = 1920;
    int screen_height = 1080;

    int pixel_size = 4;  // p: Element pixels per Pixel side
    int block_pixels = 9; // s: Pixels per Block side
    int gob_size = 2;    // m: Blocks per GOB side

    int blocks_x = 50; // data frame width in Blocks
    int blocks_y = 30; // data frame height in Blocks

    // Throws Contract_violation unless the layout fits the screen and the
    // block grid divides evenly into GOBs.
    void validate() const;

    int block_px() const { return pixel_size * block_pixels; }
    int active_width() const { return blocks_x * block_px(); }
    int active_height() const { return blocks_y * block_px(); }

    // Active area is centred on the screen.
    int origin_x() const { return (screen_width - active_width()) / 2; }
    int origin_y() const { return (screen_height - active_height()) / 2; }

    int gobs_x() const { return blocks_x / gob_size; }
    int gobs_y() const { return blocks_y / gob_size; }
    int gob_count() const { return gobs_x() * gobs_y(); }
    int block_count() const { return blocks_x * blocks_y; }

    // Data bits per GOB: all blocks minus one parity block.
    int payload_bits_per_gob() const { return gob_size * gob_size - 1; }

    // The paper's w/s/2 x h/s/2 x 3 capacity.
    int payload_bits_per_frame() const { return gob_count() * payload_bits_per_gob(); }

    // Element-pixel rectangle of Block (bx, by).
    Block_rect block_rect(int bx, int by) const;

    // Raster index of Block (bx, by) within the data frame.
    int block_index(int bx, int by) const;
};

// The paper's layout for the given screen size: p scales with resolution
// (4 at 1080 rows) so the Block grid stays 50x30 and the angular size of a
// Pixel is unchanged.
Code_geometry paper_geometry(int screen_width, int screen_height);

// A layout with an explicit Pixel size: as many whole GOBs as fit the
// screen. Use when the capture path cannot resolve paper_geometry's
// Pixels (e.g. small demo screens captured by a realistic camera: a
// larger p moves the chessboard away from the sensor's Nyquist limit).
Code_geometry fitted_geometry(int screen_width, int screen_height, int pixel_size,
                              int block_pixels = 9);

} // namespace inframe::coding
