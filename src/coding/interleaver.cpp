#include "coding/interleaver.hpp"

namespace inframe::coding {

Interleaver::Interleaver(int rows, int cols) : rows_(rows), cols_(cols)
{
    util::expects(rows >= 1 && cols >= 1, "interleaver dimensions must be positive");
}

std::vector<std::uint8_t> Interleaver::interleave(std::span<const std::uint8_t> input) const
{
    util::expects(input.size() == size(), "interleaver: input size mismatch");
    std::vector<std::uint8_t> output(input.size());
    std::size_t out = 0;
    for (int c = 0; c < cols_; ++c) {
        for (int r = 0; r < rows_; ++r) {
            output[out++] = input[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_)
                                  + static_cast<std::size_t>(c)];
        }
    }
    return output;
}

std::vector<std::uint8_t> Interleaver::deinterleave(std::span<const std::uint8_t> input) const
{
    util::expects(input.size() == size(), "interleaver: input size mismatch");
    std::vector<std::uint8_t> output(input.size());
    std::size_t in = 0;
    for (int c = 0; c < cols_; ++c) {
        for (int r = 0; r < rows_; ++r) {
            output[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_)
                   + static_cast<std::size_t>(c)] = input[in++];
        }
    }
    return output;
}

} // namespace inframe::coding
