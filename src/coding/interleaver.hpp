// Block interleaver. Rolling-shutter seams and local video texture destroy
// GOBs in bursts along rows; interleaving payload bits before the GOB
// mapping spreads each RS codeword across the whole frame so a burst turns
// into scattered correctable symbol errors.
#pragma once

#include "util/contract.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace inframe::coding {

class Interleaver {
public:
    // Rectangular interleaver: writes row-wise into a rows x cols matrix,
    // reads column-wise. size = rows * cols elements per pass.
    Interleaver(int rows, int cols);

    std::size_t size() const
    {
        return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
    }

    std::vector<std::uint8_t> interleave(std::span<const std::uint8_t> input) const;
    std::vector<std::uint8_t> deinterleave(std::span<const std::uint8_t> input) const;

private:
    int rows_;
    int cols_;
};

} // namespace inframe::coding
