#include "coding/parity.hpp"

namespace inframe::coding {

std::vector<std::uint8_t> encode_gob_parity(const Code_geometry& geometry,
                                            std::span<const std::uint8_t> payload_bits)
{
    geometry.validate();
    util::expects(payload_bits.size()
                      == static_cast<std::size_t>(geometry.payload_bits_per_frame()),
                  "parity: payload size does not match frame capacity");
    std::vector<std::uint8_t> block_bits(static_cast<std::size_t>(geometry.block_count()), 0);
    const int m = geometry.gob_size;
    std::size_t next_payload = 0;
    for (int gy = 0; gy < geometry.gobs_y(); ++gy) {
        for (int gx = 0; gx < geometry.gobs_x(); ++gx) {
            std::uint8_t parity = 0;
            for (int j = 0; j < m; ++j) {
                for (int i = 0; i < m; ++i) {
                    const int bx = gx * m + i;
                    const int by = gy * m + j;
                    const auto index = static_cast<std::size_t>(geometry.block_index(bx, by));
                    if (j == m - 1 && i == m - 1) {
                        block_bits[index] = parity;
                    } else {
                        const std::uint8_t bit = payload_bits[next_payload++] ? 1 : 0;
                        block_bits[index] = bit;
                        parity ^= bit;
                    }
                }
            }
        }
    }
    util::ensures(next_payload == payload_bits.size(), "parity: payload not fully consumed");
    return block_bits;
}

Frame_decode_result decode_gob_parity(const Code_geometry& geometry,
                                      std::span<const Block_decision> block_decisions,
                                      std::uint8_t fill_bit, bool erasure_fill)
{
    geometry.validate();
    util::expects(block_decisions.size() == static_cast<std::size_t>(geometry.block_count()),
                  "parity: decision count does not match block count");
    Frame_decode_result result;
    result.gobs.reserve(static_cast<std::size_t>(geometry.gob_count()));
    result.payload_bits.reserve(static_cast<std::size_t>(geometry.payload_bits_per_frame()));

    const int m = geometry.gob_size;
    std::size_t available = 0;
    std::size_t erroneous = 0;
    for (int gy = 0; gy < geometry.gobs_y(); ++gy) {
        for (int gx = 0; gx < geometry.gobs_x(); ++gx) {
            Gob_status status;
            status.available = true;
            std::uint8_t parity = 0;
            std::uint8_t parity_block = 0;
            int unknown_count = 0;
            int unknown_slot = -1; // raster slot within the GOB, parity last
            std::uint8_t known_xor = 0; // XOR of every known block, parity included
            for (int j = 0; j < m; ++j) {
                for (int i = 0; i < m; ++i) {
                    const int bx = gx * m + i;
                    const int by = gy * m + j;
                    const auto decision =
                        block_decisions[static_cast<std::size_t>(geometry.block_index(bx, by))];
                    if (decision == Block_decision::unknown) {
                        status.available = false;
                        ++unknown_count;
                        unknown_slot = j * m + i;
                        if (erasure_fill && unknown_count == 1) {
                            // Hold the slot so a reconstructed bit can
                            // land in frame order.
                            if (!(j == m - 1 && i == m - 1)) {
                                status.payload_bits.push_back(0);
                            }
                        }
                        continue;
                    }
                    const std::uint8_t bit = decision == Block_decision::one ? 1 : 0;
                    known_xor ^= bit;
                    if (j == m - 1 && i == m - 1) {
                        parity_block = bit;
                    } else {
                        status.payload_bits.push_back(bit);
                        parity ^= bit;
                    }
                }
            }
            if (erasure_fill && unknown_count == 1) {
                // One erasure: the parity equation (XOR of all m*m blocks
                // is 0) has a single unknown. Reconstruct it — or, when
                // the parity block itself was erased, accept the complete
                // payload unverified.
                status.available = true;
                status.recovered = true;
                status.parity_ok = true;
                ++result.recovered_gobs;
                if (unknown_slot != m * m - 1) {
                    status.payload_bits[static_cast<std::size_t>(unknown_slot)] = known_xor;
                }
            } else if (erasure_fill && unknown_count > 1) {
                // Placeholder from the first erasure is meaningless with
                // two or more missing blocks; drop partial bits the way
                // the hard-decision path leaves them.
                status.payload_bits.clear();
            }
            if (status.available) {
                ++available;
                if (!status.recovered) status.parity_ok = parity == parity_block;
                if (!status.parity_ok) ++erroneous;
            }
            const bool trusted = status.available && status.parity_ok;
            for (int b = 0; b < geometry.payload_bits_per_gob(); ++b) {
                result.payload_bit_trusted.push_back(trusted ? 1 : 0);
                if (trusted) {
                    result.payload_bits.push_back(status.payload_bits[static_cast<std::size_t>(b)]);
                    ++result.good_payload_bits;
                } else {
                    result.payload_bits.push_back(fill_bit);
                }
            }
            result.gobs.push_back(std::move(status));
        }
    }
    const auto total = static_cast<double>(geometry.gob_count());
    result.available_ratio = total > 0.0 ? static_cast<double>(available) / total : 0.0;
    result.error_rate =
        available > 0 ? static_cast<double>(erroneous) / static_cast<double>(available) : 0.0;
    return result;
}

} // namespace inframe::coding
