#include "coding/reed_solomon.hpp"

#include "util/contract.hpp"

#include <array>

namespace inframe::coding {

namespace gf256 {

namespace {

struct Tables {
    std::array<std::uint8_t, 512> exp{};
    std::array<int, 256> log{};

    Tables()
    {
        int x = 1;
        for (int i = 0; i < 255; ++i) {
            exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
            log[static_cast<std::size_t>(x)] = i;
            x <<= 1;
            if (x & 0x100) x ^= 0x11d;
        }
        for (int i = 255; i < 512; ++i) {
            exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
        }
        log[0] = -1;
    }
};

const Tables& tables()
{
    static const Tables t;
    return t;
}

} // namespace

std::uint8_t add(std::uint8_t a, std::uint8_t b)
{
    return a ^ b;
}

std::uint8_t mul(std::uint8_t a, std::uint8_t b)
{
    if (a == 0 || b == 0) return 0;
    const auto& t = tables();
    return t.exp[static_cast<std::size_t>(t.log[a] + t.log[b])];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b)
{
    util::expects(b != 0, "gf256: division by zero");
    if (a == 0) return 0;
    const auto& t = tables();
    return t.exp[static_cast<std::size_t>(t.log[a] - t.log[b] + 255)];
}

std::uint8_t pow(std::uint8_t a, int e)
{
    if (e == 0) return 1;
    if (a == 0) return 0;
    const auto& t = tables();
    long long exponent = (static_cast<long long>(t.log[a]) * e) % 255;
    if (exponent < 0) exponent += 255;
    return t.exp[static_cast<std::size_t>(exponent)];
}

std::uint8_t inverse(std::uint8_t a)
{
    util::expects(a != 0, "gf256: inverse of zero");
    const auto& t = tables();
    return t.exp[static_cast<std::size_t>(255 - t.log[a])];
}

} // namespace gf256

namespace {

using Poly = std::vector<std::uint8_t>; // coefficients, lowest degree first

std::uint8_t poly_eval(const Poly& p, std::uint8_t x)
{
    std::uint8_t y = 0;
    for (std::size_t i = p.size(); i-- > 0;) {
        y = gf256::add(gf256::mul(y, x), p[i]);
    }
    return y;
}

Poly poly_mul(const Poly& a, const Poly& b)
{
    Poly out(a.size() + b.size() - 1, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t j = 0; j < b.size(); ++j) {
            out[i + j] = gf256::add(out[i + j], gf256::mul(a[i], b[j]));
        }
    }
    return out;
}

} // namespace

Reed_solomon::Reed_solomon(int n, int k) : n_(n), k_(k)
{
    util::expects(n > 0 && n <= 255, "RS: n must be in [1, 255]");
    util::expects(k > 0 && k < n, "RS: k must be in [1, n)");
    // Generator polynomial: product of (x - alpha^i) for i in [0, n-k).
    generator_ = {1};
    for (int i = 0; i < n - k; ++i) {
        generator_ = poly_mul(generator_, Poly{gf256::pow(2, i), 1});
    }
}

std::vector<std::uint8_t> Reed_solomon::encode(std::span<const std::uint8_t> data) const
{
    util::expects(data.size() == static_cast<std::size_t>(k_), "RS: data must hold k symbols");
    // Systematic encoding: message * x^(n-k) mod g(x) gives the parity.
    const int parity_count = n_ - k_;
    std::vector<std::uint8_t> remainder(static_cast<std::size_t>(parity_count), 0);
    for (std::size_t i = 0; i < data.size(); ++i) {
        const std::uint8_t factor = gf256::add(data[i], remainder.back());
        // Shift remainder left by one and add factor * g.
        for (std::size_t j = remainder.size(); j-- > 1;) {
            remainder[j] = gf256::add(remainder[j - 1],
                                      gf256::mul(factor, generator_[j]));
        }
        remainder[0] = gf256::mul(factor, generator_[0]);
    }
    std::vector<std::uint8_t> codeword(data.begin(), data.end());
    // Parity appended highest-degree-first to match the polynomial view
    // c(x) = m(x) x^(n-k) + r(x).
    for (std::size_t j = remainder.size(); j-- > 0;) codeword.push_back(remainder[j]);
    return codeword;
}

std::optional<Reed_solomon::Decode_result>
Reed_solomon::decode(std::span<const std::uint8_t> received) const
{
    return decode_with_erasures(received, {});
}

std::optional<Reed_solomon::Decode_result>
Reed_solomon::decode_with_erasures(std::span<const std::uint8_t> received,
                                   std::span<const int> erasure_positions) const
{
    util::expects(received.size() == static_cast<std::size_t>(n_),
                  "RS: received word must hold n symbols");
    const int parity_count = n_ - k_;
    const int erasure_count = static_cast<int>(erasure_positions.size());
    if (erasure_count > parity_count) return std::nullopt;
    for (std::size_t i = 0; i < erasure_positions.size(); ++i) {
        util::expects(erasure_positions[i] >= 0 && erasure_positions[i] < n_,
                      "RS: erasure position out of range");
        for (std::size_t j = i + 1; j < erasure_positions.size(); ++j) {
            util::expects(erasure_positions[i] != erasure_positions[j],
                          "RS: duplicate erasure position");
        }
    }

    // Received polynomial, lowest degree first: last symbol of `received`
    // is the constant term.
    Poly r(received.size());
    for (std::size_t i = 0; i < received.size(); ++i) r[received.size() - 1 - i] = received[i];

    // Syndromes S_i = r(alpha^i).
    Poly syndromes(static_cast<std::size_t>(parity_count));
    bool all_zero = true;
    for (int i = 0; i < parity_count; ++i) {
        syndromes[static_cast<std::size_t>(i)] = poly_eval(r, gf256::pow(2, i));
        all_zero &= syndromes[static_cast<std::size_t>(i)] == 0;
    }
    if (all_zero) {
        // Already a codeword; the declared erasures are consistent with it.
        Decode_result result;
        result.data.assign(received.begin(), received.begin() + k_);
        return result;
    }

    // Erasure locator Gamma(x) = prod (1 + X_p x) with X_p = alpha^degree.
    Poly gamma = {1};
    for (const int pos : erasure_positions) {
        const int degree = n_ - 1 - pos;
        gamma = poly_mul(gamma, Poly{1, gf256::pow(2, degree % 255)});
    }

    // Modified syndromes Xi = (S * Gamma) mod x^(2t).
    Poly xi(static_cast<std::size_t>(parity_count), 0);
    for (std::size_t i = 0; i < xi.size(); ++i) {
        for (std::size_t j = 0; j <= i && j < gamma.size(); ++j) {
            xi[i] = gf256::add(xi[i], gf256::mul(gamma[j], syndromes[i - j]));
        }
    }

    // Berlekamp-Massey on the modified syndromes, starting past the
    // erasure prefix: finds the locator of the *unknown* error positions.
    Poly sigma = {1};
    Poly prev_sigma = {1};
    int l = 0;
    int m = 1;
    std::uint8_t prev_discrepancy = 1;
    for (int i = erasure_count; i < parity_count; ++i) {
        std::uint8_t discrepancy = xi[static_cast<std::size_t>(i)];
        for (int j = 1; j <= l; ++j) {
            if (static_cast<std::size_t>(j) < sigma.size()) {
                discrepancy = gf256::add(
                    discrepancy, gf256::mul(sigma[static_cast<std::size_t>(j)],
                                            xi[static_cast<std::size_t>(i - j)]));
            }
        }
        if (discrepancy == 0) {
            ++m;
            continue;
        }
        const Poly sigma_backup = sigma;
        const std::uint8_t factor = gf256::div(discrepancy, prev_discrepancy);
        if (sigma.size() < prev_sigma.size() + static_cast<std::size_t>(m)) {
            sigma.resize(prev_sigma.size() + static_cast<std::size_t>(m), 0);
        }
        for (std::size_t j = 0; j < prev_sigma.size(); ++j) {
            sigma[j + static_cast<std::size_t>(m)] = gf256::add(
                sigma[j + static_cast<std::size_t>(m)], gf256::mul(factor, prev_sigma[j]));
        }
        if (2 * l <= i - erasure_count) {
            l = i - erasure_count + 1 - l;
            prev_sigma = sigma_backup;
            prev_discrepancy = discrepancy;
            m = 1;
        } else {
            ++m;
        }
    }
    const int error_count = l;
    if (2 * error_count + erasure_count > parity_count) return std::nullopt;

    // Combined locator Psi = sigma * Gamma covers erasures and errors.
    Poly psi = poly_mul(sigma, gamma);
    while (psi.size() > 1 && psi.back() == 0) psi.pop_back();
    const auto psi_degree = static_cast<int>(psi.size()) - 1;

    // Chien search: roots of Psi give all corrupted positions.
    std::vector<int> corrupted_positions;
    for (int pos = 0; pos < n_; ++pos) {
        const int degree = n_ - 1 - pos;
        const std::uint8_t x_inverse = gf256::pow(2, 255 - (degree % 255));
        if (poly_eval(psi, x_inverse) == 0) corrupted_positions.push_back(pos);
    }
    if (static_cast<int>(corrupted_positions.size()) != psi_degree) return std::nullopt;

    // Forney: error evaluator Omega = (S * Psi) mod x^(n-k).
    Poly omega(static_cast<std::size_t>(parity_count), 0);
    for (std::size_t i = 0; i < omega.size(); ++i) {
        for (std::size_t j = 0; j <= i && j < psi.size(); ++j) {
            omega[i] = gf256::add(omega[i], gf256::mul(psi[j], syndromes[i - j]));
        }
    }
    // Formal derivative of Psi (odd-degree terms survive over GF(2^m)).
    Poly psi_prime;
    for (std::size_t j = 1; j < psi.size(); j += 2) {
        psi_prime.resize(std::max(psi_prime.size(), j), 0);
        psi_prime[j - 1] = psi[j];
    }
    if (psi_prime.empty()) return std::nullopt;

    std::vector<std::uint8_t> corrected(received.begin(), received.end());
    int changed_at_erasures = 0;
    for (const int pos : corrupted_positions) {
        const int degree = n_ - 1 - pos;
        const std::uint8_t x = gf256::pow(2, degree % 255);
        const std::uint8_t x_inverse = gf256::inverse(x);
        const std::uint8_t denominator = poly_eval(psi_prime, x_inverse);
        if (denominator == 0) return std::nullopt;
        const std::uint8_t magnitude =
            gf256::mul(x, gf256::div(poly_eval(omega, x_inverse), denominator));
        corrected[static_cast<std::size_t>(pos)] =
            gf256::add(corrected[static_cast<std::size_t>(pos)], magnitude);
        if (magnitude != 0) {
            bool declared = false;
            for (const int e : erasure_positions) declared |= e == pos;
            if (declared) ++changed_at_erasures;
        }
    }

    // Verify: all syndromes of the corrected word must vanish.
    Poly corrected_poly(corrected.size());
    for (std::size_t i = 0; i < corrected.size(); ++i) {
        corrected_poly[corrected.size() - 1 - i] = corrected[i];
    }
    for (int i = 0; i < parity_count; ++i) {
        if (poly_eval(corrected_poly, gf256::pow(2, i)) != 0) return std::nullopt;
    }

    Decode_result result;
    result.data.assign(corrected.begin(), corrected.begin() + k_);
    result.corrected_errors = error_count;
    result.corrected_erasures = changed_at_erasures;
    return result;
}

} // namespace inframe::coding
