// Reed-Solomon codes over GF(256).
//
// The paper applies XOR parity inside each GOB and notes that "common
// error correction code such as RS code are applied" for larger GOBs,
// leaving sophisticated ECC as future work. This is that future-work path:
// a systematic RS(n, k) codec (polynomial 0x11d, the QR-code field) used
// by the payload framing layer to correct — not merely detect — symbol
// errors across a data frame.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace inframe::coding {

// Galois field GF(2^8) arithmetic with generator polynomial x^8 + x^4 +
// x^3 + x^2 + 1 (0x11d) and primitive element 2.
namespace gf256 {

std::uint8_t add(std::uint8_t a, std::uint8_t b);
std::uint8_t mul(std::uint8_t a, std::uint8_t b);
std::uint8_t div(std::uint8_t a, std::uint8_t b); // b != 0
std::uint8_t pow(std::uint8_t a, int e);
std::uint8_t inverse(std::uint8_t a); // a != 0

} // namespace gf256

class Reed_solomon {
public:
    // n: total symbols per codeword (<= 255); k: data symbols (< n).
    // Corrects up to (n - k) / 2 symbol errors.
    Reed_solomon(int n, int k);

    int n() const { return n_; }
    int k() const { return k_; }
    int parity_symbols() const { return n_ - k_; }
    int max_correctable() const { return (n_ - k_) / 2; }

    // Systematic encode: returns data followed by parity (size n).
    std::vector<std::uint8_t> encode(std::span<const std::uint8_t> data) const;

    struct Decode_result {
        std::vector<std::uint8_t> data; // k corrected data symbols
        int corrected_errors = 0;       // errors at unknown positions
        int corrected_erasures = 0;     // corrections at declared positions
    };

    // Decodes a received codeword (size n). Returns nullopt when the error
    // pattern exceeds the correction capability.
    std::optional<Decode_result> decode(std::span<const std::uint8_t> received) const;

    // Errors-and-erasures decoding: erasure_positions lists indices into
    // `received` whose symbols are known to be unreliable (e.g. bits from
    // unavailable GOBs). Capability: 2 * errors + erasures <= n - k, i.e.
    // a declared erasure costs half an undeclared error. Duplicate or
    // out-of-range positions are rejected.
    std::optional<Decode_result>
    decode_with_erasures(std::span<const std::uint8_t> received,
                         std::span<const int> erasure_positions) const;

private:
    int n_;
    int k_;
    std::vector<std::uint8_t> generator_; // generator polynomial, degree n-k
};

} // namespace inframe::coding
