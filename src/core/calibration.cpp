#include "core/calibration.hpp"

#include "imgproc/draw.hpp"
#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"

#include <cmath>

namespace inframe::core {

std::array<double, 8> calibration_marker_centers(const coding::Code_geometry& geometry,
                                                 const Calibration_params& params)
{
    geometry.validate();
    const double w = geometry.screen_width;
    const double h = geometry.screen_height;
    const double ix = params.inset_fraction * w;
    const double iy = params.inset_fraction * h;
    // Clockwise from top-left, matching Homography::rect_to_quad.
    return {ix, iy, w - ix, iy, w - ix, h - iy, ix, h - iy};
}

img::Imagef render_calibration_frame(const coding::Code_geometry& geometry,
                                     const Calibration_params& params)
{
    util::expects(params.marker_fraction > 0.0 && params.marker_fraction < 0.5,
                  "calibration: marker fraction must be in (0, 0.5)");
    util::expects(params.inset_fraction > 0.0 && params.inset_fraction < 0.5,
                  "calibration: inset fraction must be in (0, 0.5)");
    img::Imagef frame(geometry.screen_width, geometry.screen_height, 1, params.background);
    const int side = std::max(
        2, static_cast<int>(params.marker_fraction
                            * std::min(geometry.screen_width, geometry.screen_height)));
    const auto centers = calibration_marker_centers(geometry, params);
    for (int m = 0; m < 4; ++m) {
        const int cx = static_cast<int>(std::lround(centers[static_cast<std::size_t>(2 * m)]));
        const int cy =
            static_cast<int>(std::lround(centers[static_cast<std::size_t>(2 * m + 1)]));
        img::fill_rect(frame, cx - side / 2, cy - side / 2, side, side, params.marker_level);
    }
    return frame;
}

std::optional<std::array<double, 8>>
detect_calibration_markers(const img::Imagef& capture, const Calibration_params& params)
{
    util::expects(!capture.empty(), "calibration: empty capture");
    const img::Imagef gray = img::to_gray(capture);
    const auto [lo, hi] = img::min_max(gray);
    if (hi - lo < 20.0f) return std::nullopt; // no contrast: not a calibration frame
    const float threshold = lo + 0.5f * (hi - lo);

    // Bright-pixel centroid per capture quadrant, ordered clockwise from
    // top-left to match the marker layout.
    const int half_w = gray.width() / 2;
    const int half_h = gray.height() / 2;
    const int qx0[4] = {0, half_w, half_w, 0};
    const int qy0[4] = {0, 0, half_h, half_h};
    std::array<double, 8> centers{};
    for (int q = 0; q < 4; ++q) {
        double sum_x = 0.0;
        double sum_y = 0.0;
        double weight = 0.0;
        int count = 0;
        for (int y = qy0[q]; y < qy0[q] + half_h; ++y) {
            for (int x = qx0[q]; x < qx0[q] + half_w; ++x) {
                const float v = gray(x, y);
                if (v <= threshold) continue;
                const double w = v - threshold; // intensity-weighted centroid
                sum_x += w * x;
                sum_y += w * y;
                weight += w;
                ++count;
            }
        }
        if (count < params.min_marker_pixels || weight <= 0.0) return std::nullopt;
        centers[static_cast<std::size_t>(2 * q)] = sum_x / weight;
        centers[static_cast<std::size_t>(2 * q + 1)] = sum_y / weight;
    }
    return centers;
}

std::optional<img::Homography>
estimate_sensor_to_screen(const img::Imagef& capture, const coding::Code_geometry& geometry,
                          const Calibration_params& params)
{
    const auto detected = detect_calibration_markers(capture, params);
    if (!detected) return std::nullopt;
    const auto screen = calibration_marker_centers(geometry, params);
    // sensor -> unit square -> screen: both legs via the quad mapping.
    const auto unit_to_sensor = img::Homography::unit_square_to_quad(*detected);
    const auto unit_to_screen = img::Homography::unit_square_to_quad(screen);
    return unit_to_screen * unit_to_sensor.inverse();
}

} // namespace inframe::core
