// Viewing-geometry calibration.
//
// The perspective decoder needs the sensor->screen homography. Instead of
// assuming a calibrated rig, the transmitter can flash a calibration frame
// — four white corner markers on black at known screen positions — and the
// receiver recovers the homography from one capture: threshold, take the
// bright-pixel centroid in each capture quadrant, and fit the projective
// map through the four correspondences. This is how a deployment would
// bootstrap before `Synced_decoder` takes over.
#pragma once

#include "coding/geometry.hpp"
#include "imgproc/warp.hpp"

#include <array>
#include <optional>

namespace inframe::core {

struct Calibration_params {
    // Marker square side as a fraction of the screen's smaller dimension.
    double marker_fraction = 0.08;

    // Marker centre inset from each screen corner, as a fraction of the
    // respective dimension.
    double inset_fraction = 0.08;

    float background = 0.0f;
    float marker_level = 255.0f;

    // Detection: a capture quadrant must contain at least this many
    // pixels above the adaptive threshold to count as a marker.
    int min_marker_pixels = 16;
};

// The four marker centres in screen coordinates (clockwise from top-left).
std::array<double, 8> calibration_marker_centers(const coding::Code_geometry& geometry,
                                                 const Calibration_params& params = {});

// Renders the calibration frame the transmitter shows.
img::Imagef render_calibration_frame(const coding::Code_geometry& geometry,
                                     const Calibration_params& params = {});

// Detects the four marker centroids in a capture (clockwise from
// top-left); nullopt if any quadrant lacks a bright blob.
std::optional<std::array<double, 8>>
detect_calibration_markers(const img::Imagef& capture, const Calibration_params& params = {});

// Full pipeline: detect markers and fit the sensor->screen homography.
std::optional<img::Homography>
estimate_sensor_to_screen(const img::Imagef& capture, const coding::Code_geometry& geometry,
                          const Calibration_params& params = {});

} // namespace inframe::core
