#include "core/config.hpp"

#include "util/contract.hpp"

#include <cmath>

namespace inframe::core {

void Inframe_config::validate() const
{
    geometry.validate();
    util::expects(delta > 0.0f && delta < 128.0f, "config: delta must be in (0, 128)");
    util::expects(tau >= 2 && tau % 2 == 0, "config: tau must be even and >= 2");
    util::expects(display_fps > 0.0 && video_fps > 0.0, "config: rates must be positive");
    const double ratio = display_fps / video_fps;
    util::expects(std::fabs(ratio - std::lround(ratio)) < 1e-9 && ratio >= 1.0,
                  "config: display rate must be an integer multiple of the video rate");
    util::expects(threads >= 0, "config: threads must be >= 0 (0 = hardware concurrency)");
}

int Inframe_config::video_repeat() const
{
    return static_cast<int>(std::lround(display_fps / video_fps));
}

Inframe_config paper_config(int screen_width, int screen_height)
{
    Inframe_config config;
    config.geometry = coding::paper_geometry(screen_width, screen_height);
    config.validate();
    return config;
}

} // namespace inframe::core
