// System-level configuration for the InFrame encoder.
#pragma once

#include "coding/geometry.hpp"
#include "dsp/envelope.hpp"

#include <cstdint>

namespace inframe::core {

struct Inframe_config {
    coding::Code_geometry geometry;

    // Chessboard amplitude delta (pixel-value units). The paper studies
    // 20-50; delta <= 20 with tau >= 10 keeps viewing clean (4).
    float delta = 20.0f;

    // Smoothing cycle: display frames per data frame. The complementary
    // +D/-D pair alternates every display frame, so tau must be even; the
    // transition to the next data frame's amplitude occupies the second
    // half of the cycle. The paper evaluates tau = 10, 12, 14 on a 120 Hz
    // panel.
    //
    // Note on units: 3.2 of the paper describes tau in "iterations" (one
    // iteration = one complementary pair), but the throughput figures of
    // 4 (12.6-12.8 kbps at tau = 10) only work out if a data frame lasts
    // tau *display frames* (1125 bits x 120/10 = 13.5 kbps raw). We adopt
    // the display-frame reading; EXPERIMENTS.md discusses the mismatch.
    int tau = 12;

    dsp::Transition_shape transition = dsp::Transition_shape::srrc;

    double display_fps = 120.0;
    double video_fps = 30.0;

    // Locally reduce the amplitude of blocks whose video content would
    // clip at 0/255 (paper: "for bright or dark areas, we locally adjust
    // the amplitude for corresponding Blocks").
    bool local_amplitude_cap = true;

    // Worker threads for the simulation pipeline: 0 = hardware
    // concurrency, 1 = serial, N = exactly N lanes. Results are
    // bit-identical for every value (static partitioning + per-row noise
    // seeding; see DESIGN.md "Threading model & determinism") — the knob
    // only changes wall-clock time. Experiment runners install it via
    // util::Parallel_scope.
    int threads = 0;

    void validate() const;

    // Display frames per video frame (e.g. 4 on the paper's rig).
    int video_repeat() const;

    // Data frames per second.
    double data_frame_rate() const { return display_fps / tau; }

    // Raw payload bit rate before channel losses.
    double raw_payload_rate() const
    {
        return data_frame_rate() * geometry.payload_bits_per_frame();
    }
};

// The paper's full configuration at a given screen size.
Inframe_config paper_config(int screen_width, int screen_height);

} // namespace inframe::core
