#include "core/decoder.hpp"

#include "imgproc/filter.hpp"
#include "imgproc/image_ops.hpp"
#include "imgproc/pool.hpp"
#include "telemetry/telemetry.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace inframe::core {

void Decoder_params::validate() const
{
    geometry.validate();
    util::expects(capture_width > 0 && capture_height > 0,
                  "decoder: capture size must be positive");
    util::expects(tau >= 2 && tau % 2 == 0, "decoder: tau must be even and >= 2");
    util::expects(display_fps > 0.0, "decoder: display rate must be positive");
    util::expects(fixed_threshold > 0.0, "decoder: threshold must be positive");
    util::expects(hysteresis >= 0.0 && hysteresis < 1.0, "decoder: hysteresis must be in [0, 1)");
    util::expects(stable_fraction > 0.0 && stable_fraction <= 1.0,
                  "decoder: stable fraction must be in (0, 1]");
    util::expects(min_signal_level >= 0.0, "decoder: signal floor must be non-negative");
    util::expects(occlusion_level_fraction >= 0.0 && occlusion_level_fraction < 1.0,
                  "decoder: occlusion level fraction must be in [0, 1)");
    util::expects(occlusion_level_floor >= 0.0,
                  "decoder: occlusion level floor must be non-negative");
    util::expects(max_frame_gap >= 1, "decoder: frame gap cap must be positive");
}

const char* to_string(Detector detector)
{
    switch (detector) {
    case Detector::noise_level: return "noise-level";
    case Detector::matched: return "matched-filter";
    }
    return "unknown";
}

Inframe_decoder::Inframe_decoder(Decoder_params params) : params_(std::move(params))
{
    params_.validate();
    scale_x_ = static_cast<double>(params_.capture_width) / params_.geometry.screen_width;
    scale_y_ = static_cast<double>(params_.capture_height) / params_.geometry.screen_height;
    // The chessboard's cell is one Pixel (p Element pixels); on the sensor
    // that is p * scale pixels. Smoothing over that scale flattens the
    // pattern.
    smooth_radius_ =
        std::max(1, static_cast<int>(std::lround(params_.geometry.pixel_size * scale_x_ * 0.75)));
    metric_sum_.assign(static_cast<std::size_t>(params_.geometry.block_count()), 0.0);
    level_sum_.assign(static_cast<std::size_t>(params_.geometry.block_count()), 0.0);
    util::expects(!params_.capture_to_screen || params_.detector == Detector::matched,
                  "decoder: perspective capture requires the matched detector");
    if (params_.detector == Detector::matched) build_template();
}

void Inframe_decoder::build_template()
{
    const auto& g = params_.geometry;
    const auto pixel_count = static_cast<std::size_t>(params_.capture_width)
                             * static_cast<std::size_t>(params_.capture_height);
    block_of_pixel_.assign(pixel_count, -1);
    cos1_.assign(pixel_count, 0.0f);
    sin1_.assign(pixel_count, 0.0f);
    cos2_.assign(pixel_count, 0.0f);
    sin2_.assign(pixel_count, 0.0f);
    // Each sensor row writes its own slice of the template tables, so the
    // trigonometric fill parallelizes over rows with disjoint outputs.
    util::parallel_for(0, params_.capture_height, 16, [&](std::int64_t cy0, std::int64_t cy1) {
    for (int cy = static_cast<int>(cy0); cy < static_cast<int>(cy1); ++cy) {
        for (int cx = 0; cx < params_.capture_width; ++cx) {
            // Sensor pixel centre mapped back to screen coordinates —
            // through the calibrated homography when viewing at an angle,
            // otherwise through the axis-aligned scale.
            double sx = 0.0;
            double sy = 0.0;
            if (params_.capture_to_screen) {
                params_.capture_to_screen->apply(cx + 0.5, cy + 0.5, sx, sy);
                sx -= 0.5;
                sy -= 0.5;
            } else {
                sx = (cx + 0.5) / scale_x_ - 0.5;
                sy = (cy + 0.5) / scale_y_ - 0.5;
            }
            // Continuous Pixel coordinates within the active area.
            const double pxf = (sx - g.origin_x()) / g.pixel_size;
            const double pyf = (sy - g.origin_y()) / g.pixel_size;
            const int px = static_cast<int>(std::floor(pxf));
            const int py = static_cast<int>(std::floor(pyf));
            if (px < 0 || py < 0 || px >= g.blocks_x * g.block_pixels
                || py >= g.blocks_y * g.block_pixels) {
                continue;
            }
            // Interior Pixels only: skip the outermost ring of each block
            // so neighbouring blocks do not bleed in.
            const int lx = px % g.block_pixels;
            const int ly = py % g.block_pixels;
            if (lx == 0 || ly == 0 || lx == g.block_pixels - 1 || ly == g.block_pixels - 1) {
                continue;
            }
            const auto index = static_cast<std::size_t>(cy)
                                   * static_cast<std::size_t>(params_.capture_width)
                               + static_cast<std::size_t>(cx);
            block_of_pixel_[index] =
                g.block_index(px / g.block_pixels, py / g.block_pixels);
            // The chessboard's two diagonal fundamentals: spatial
            // frequency half a cycle per Pixel along both diagonals.
            const double phase1 = std::numbers::pi * (pxf + pyf);
            const double phase2 = std::numbers::pi * (pxf - pyf);
            cos1_[index] = static_cast<float>(std::cos(phase1));
            sin1_[index] = static_cast<float>(std::sin(phase1));
            cos2_[index] = static_cast<float>(std::cos(phase2));
            sin2_[index] = static_cast<float>(std::sin(phase2));
        }
    }
    });
}

std::vector<double> Inframe_decoder::block_metrics(const img::Imagef& capture) const
{
    util::expects(capture.width() == params_.capture_width
                      && capture.height() == params_.capture_height,
                  "decoder: capture size mismatch");
    if (capture.channels() != 1) {
        // The pattern is a luminance modulation; demodulate on luminance.
        const img::Imagef gray = img::to_gray(capture);
        return params_.detector == Detector::matched ? matched_metrics(gray)
                                                     : noise_level_metrics(gray);
    }
    return params_.detector == Detector::matched ? matched_metrics(capture)
                                                 : noise_level_metrics(capture);
}

std::vector<double> Inframe_decoder::block_levels(const img::Imagef& capture) const
{
    util::expects(capture.width() == params_.capture_width
                      && capture.height() == params_.capture_height,
                  "decoder: capture size mismatch");
    const img::Imagef gray = capture.channels() == 1 ? img::Imagef() : img::to_gray(capture);
    const img::Imagef& luma = capture.channels() == 1 ? capture : gray;

    const auto& g = params_.geometry;
    std::vector<double> levels(static_cast<std::size_t>(g.block_count()), 0.0);
    // Same block->capture-rectangle mapping as the noise-level detector;
    // each block writes one slot, so rows fan out with no shared state.
    util::parallel_for(0, g.blocks_y, 1, [&](std::int64_t by0, std::int64_t by1) {
        for (int by = static_cast<int>(by0); by < static_cast<int>(by1); ++by) {
            for (int bx = 0; bx < g.blocks_x; ++bx) {
                const auto rect = g.block_rect(bx, by);
                int cx0 = static_cast<int>(std::ceil(rect.x0 * scale_x_)) + 1;
                int cy0 = static_cast<int>(std::ceil(rect.y0 * scale_y_)) + 1;
                int cx1 = static_cast<int>(std::floor((rect.x0 + rect.size) * scale_x_)) - 1;
                int cy1 = static_cast<int>(std::floor((rect.y0 + rect.size) * scale_y_)) - 1;
                cx0 = std::clamp(cx0, 0, luma.width() - 1);
                cy0 = std::clamp(cy0, 0, luma.height() - 1);
                cx1 = std::clamp(cx1, cx0 + 1, luma.width());
                cy1 = std::clamp(cy1, cy0 + 1, luma.height());
                levels[static_cast<std::size_t>(g.block_index(bx, by))] =
                    img::mean_region(luma, cx0, cy0, cx1 - cx0, cy1 - cy0);
            }
        }
    });
    return levels;
}

std::vector<double> Inframe_decoder::matched_metrics(const img::Imagef& capture) const
{
    const auto& g = params_.geometry;
    const auto blocks = static_cast<std::size_t>(g.block_count());

    // Per-block accumulators for the quadrature correlation. The block
    // mean is removed via the accumulated template sums so partial blocks
    // stay unbiased.
    struct Acc {
        double n = 0.0;
        double sum = 0.0;
        double ic1 = 0.0, is1 = 0.0, ic2 = 0.0, is2 = 0.0;
        double tc1 = 0.0, ts1 = 0.0, tc2 = 0.0, ts2 = 0.0;
    };
    // Fixed row slices produce per-slice Acc partials that are merged in
    // slice order — the floating-point association depends on the slice
    // grain only, never on the thread count, so every thread count yields
    // bit-identical metrics (the contract the determinism tests pin down).
    const auto stride = static_cast<std::size_t>(capture.width());
    constexpr std::int64_t slice_rows = 64;
    std::vector<Acc> acc = util::parallel_reduce(
        0, capture.height(), slice_rows, std::vector<Acc>(blocks),
        [&](std::int64_t y0, std::int64_t y1) {
            std::vector<Acc> partial(blocks);
            for (std::int64_t cy = y0; cy < y1; ++cy) {
                const auto row = capture.row(static_cast<int>(cy));
                const auto base = static_cast<std::size_t>(cy) * stride;
                for (int cx = 0; cx < capture.width(); ++cx) {
                    const auto index = base + static_cast<std::size_t>(cx);
                    const auto block = block_of_pixel_[index];
                    if (block < 0) continue;
                    auto& a = partial[static_cast<std::size_t>(block)];
                    const double v = row[static_cast<std::size_t>(cx)];
                    a.n += 1.0;
                    a.sum += v;
                    a.ic1 += v * cos1_[index];
                    a.is1 += v * sin1_[index];
                    a.ic2 += v * cos2_[index];
                    a.is2 += v * sin2_[index];
                    a.tc1 += cos1_[index];
                    a.ts1 += sin1_[index];
                    a.tc2 += cos2_[index];
                    a.ts2 += sin2_[index];
                }
            }
            return partial;
        },
        [&](std::vector<Acc> total, std::vector<Acc> partial) {
            for (std::size_t b = 0; b < total.size(); ++b) {
                auto& t = total[b];
                const auto& p = partial[b];
                t.n += p.n;
                t.sum += p.sum;
                t.ic1 += p.ic1;
                t.is1 += p.is1;
                t.ic2 += p.ic2;
                t.is2 += p.is2;
                t.tc1 += p.tc1;
                t.ts1 += p.ts1;
                t.tc2 += p.tc2;
                t.ts2 += p.ts2;
            }
            return total;
        });

    std::vector<double> metrics(blocks, 0.0);
    for (std::size_t b = 0; b < blocks; ++b) {
        const auto& a = acc[b];
        if (a.n < 9.0) continue; // too few samples to judge
        const double mean = a.sum / a.n;
        const double corr1 = std::hypot(a.ic1 - mean * a.tc1, a.is1 - mean * a.ts1);
        const double corr2 = std::hypot(a.ic2 - mean * a.tc2, a.is2 - mean * a.ts2);
        metrics[b] = 2.0 * (corr1 + corr2) / a.n;
    }
    return metrics;
}

std::vector<double> Inframe_decoder::noise_level_metrics(const img::Imagef& capture) const
{
    const auto& g = params_.geometry;

    // High-band residual: |I - smooth(I)| captures the chessboard plus
    // fine texture and sensor noise.
    img::Imagef smoothed = img::box_blur(capture, smooth_radius_);
    img::Imagef high_band = img::abs_diff(capture, smoothed);

    // Octave-lower residual: texture is broadband, the chessboard is not.
    img::Imagef mid_band;
    if (params_.texture_compensation) {
        img::Imagef smoother = img::box_blur(smoothed, 2 * smooth_radius_ + 1);
        mid_band = img::abs_diff(smoothed, smoother);
        img::Frame_pool::instance().recycle(std::move(smoother));
    }

    std::vector<double> metrics(static_cast<std::size_t>(g.block_count()), 0.0);
    // Each block writes exactly one metrics slot, so block rows fan out
    // across threads without any shared state.
    util::parallel_for(0, g.blocks_y, 1, [&](std::int64_t by0, std::int64_t by1) {
    for (int by = static_cast<int>(by0); by < static_cast<int>(by1); ++by) {
        for (int bx = 0; bx < g.blocks_x; ++bx) {
            const auto rect = g.block_rect(bx, by);
            // Block rectangle in capture coordinates, shrunk by one sensor
            // pixel on each side so neighbouring blocks do not bleed in.
            int cx0 = static_cast<int>(std::ceil(rect.x0 * scale_x_)) + 1;
            int cy0 = static_cast<int>(std::ceil(rect.y0 * scale_y_)) + 1;
            int cx1 = static_cast<int>(std::floor((rect.x0 + rect.size) * scale_x_)) - 1;
            int cy1 = static_cast<int>(std::floor((rect.y0 + rect.size) * scale_y_)) - 1;
            cx0 = std::clamp(cx0, 0, capture.width() - 1);
            cy0 = std::clamp(cy0, 0, capture.height() - 1);
            cx1 = std::clamp(cx1, cx0 + 1, capture.width());
            cy1 = std::clamp(cy1, cy0 + 1, capture.height());
            const int w = cx1 - cx0;
            const int h = cy1 - cy0;
            double metric = img::mean_region(high_band, cx0, cy0, w, h);
            if (params_.texture_compensation) {
                metric -= img::mean_region(mid_band, cx0, cy0, w, h);
            }
            metrics[static_cast<std::size_t>(g.block_index(bx, by))] = std::max(metric, 0.0);
        }
    }
    });
    img::Frame_pool::instance().recycle(std::move(smoothed));
    img::Frame_pool::instance().recycle(std::move(high_band));
    img::Frame_pool::instance().recycle(std::move(mid_band));
    return metrics;
}

Inframe_decoder::Threshold_split
Inframe_decoder::split_metrics(std::span<const double> metrics) const
{
    util::expects(!metrics.empty(), "decoder: cannot pick a threshold from no metrics");

    // Otsu's method on the sorted metric values: choose the split that
    // maximizes between-class variance.
    std::vector<double> sorted(metrics.begin(), metrics.end());
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    std::vector<double> prefix(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + sorted[i];
    const double total = prefix[n];

    double best_score = -1.0;
    std::size_t best_split = 1;
    for (std::size_t split = 1; split < n; ++split) {
        const double w0 = static_cast<double>(split);
        const double w1 = static_cast<double>(n - split);
        const double mean0 = prefix[split] / w0;
        const double mean1 = (total - prefix[split]) / w1;
        const double score = w0 * w1 * (mean0 - mean1) * (mean0 - mean1);
        if (score > best_score) {
            best_score = score;
            best_split = split;
        }
    }
    const double lower_mean = prefix[best_split] / static_cast<double>(best_split);
    const double upper_mean =
        (total - prefix[best_split]) / static_cast<double>(n - best_split);

    // Within-class spread on both sides of the split.
    double var_lower = 0.0;
    double var_upper = 0.0;
    for (std::size_t i = 0; i < best_split; ++i) {
        var_lower += (sorted[i] - lower_mean) * (sorted[i] - lower_mean);
    }
    for (std::size_t i = best_split; i < n; ++i) {
        var_upper += (sorted[i] - upper_mean) * (sorted[i] - upper_mean);
    }
    var_lower /= static_cast<double>(std::max<std::size_t>(best_split, 1));
    var_upper /= static_cast<double>(std::max<std::size_t>(n - best_split, 1));
    const double pooled_sigma = std::sqrt((var_lower + var_upper) / 2.0) + 1e-9;
    const double dprime = (upper_mean - lower_mean) / pooled_sigma;

    Threshold_split result;
    result.value = (lower_mean + upper_mean) / 2.0;
    result.dprime = dprime;
    // Degenerate distribution: classes not separated, the "signal" class
    // inside the noise floor, or the separation quality too poor to
    // classify reliably — either way, no trustworthy chessboard
    // population among these blocks.
    result.bimodal = upper_mean >= lower_mean * 1.5 + 0.25
                     && upper_mean >= params_.min_signal_level
                     && dprime >= params_.min_separation_dprime;
    return result;
}

double Inframe_decoder::select_threshold(std::span<const double> metrics) const
{
    if (!params_.auto_threshold) return params_.fixed_threshold;
    const auto split = split_metrics(metrics);
    return split.bimodal ? split.value : params_.fixed_threshold;
}

void Inframe_decoder::set_sync_context(int locked, double offset_s)
{
    sync_locked_ = locked;
    sync_offset_s_ = offset_s;
}

std::vector<Data_frame_result> Inframe_decoder::push_capture(const img::Imagef& capture,
                                                             double start_time)
{
    telemetry::Scoped_span span("decode.capture");
    util::expects(start_time >= 0.0, "decoder: capture time must be non-negative");
    std::vector<Data_frame_result> finalized;

    const double frame_period = params_.tau / params_.display_fps;
    // Saturate instead of casting out-of-range doubles (UB): a garbage
    // timestamp lands on the gap cap below, not on undefined behavior.
    const double raw_index = start_time / frame_period;
    constexpr double index_limit = 4.0e18; // comfortably inside int64
    const std::int64_t frame_index =
        raw_index >= index_limit ? static_cast<std::int64_t>(index_limit)
                                 : static_cast<std::int64_t>(raw_index);

    // Cap the number of idle frames emitted for one capture: a wildly
    // future timestamp (clock glitch, fuzzed input) must not turn into
    // millions of empty results. Frames beyond the cap are skipped.
    if (frame_index - current_frame_ > params_.max_frame_gap) {
        finalized.push_back(finalize());
        current_frame_ = frame_index;
    }
    while (frame_index > current_frame_) {
        finalized.push_back(finalize());
    }

    // Phase of the capture within the tau cycle; transition-region
    // captures do not vote.
    const double phase = (start_time - static_cast<double>(current_frame_) * frame_period)
                         / frame_period;
    // Strictly inside the stable window: a capture starting exactly at the
    // half-cycle boundary already integrates the transition ramp.
    if (phase < params_.stable_fraction - 1e-9) {
        const auto metrics = block_metrics(capture);
        for (std::size_t i = 0; i < metrics.size(); ++i) metric_sum_[i] += metrics[i];
        if (params_.erasure_aware) {
            const auto levels = block_levels(capture);
            for (std::size_t i = 0; i < levels.size(); ++i) level_sum_[i] += levels[i];
        }
        ++captures_in_frame_;
    }
    return finalized;
}

std::optional<Data_frame_result> Inframe_decoder::flush()
{
    if (captures_in_frame_ == 0) return std::nullopt;
    return finalize();
}

Data_frame_result Inframe_decoder::finalize()
{
    telemetry::Scoped_span span("decode.finalize");
    const bool record_diagnostics = telemetry::enabled();
    telemetry::Frame_record record;

    Data_frame_result result;
    result.data_frame_index = current_frame_;
    result.captures_used = captures_in_frame_;

    const auto block_count = static_cast<std::size_t>(params_.geometry.block_count());
    result.decisions.assign(block_count, coding::Block_decision::unknown);
    if (params_.erasure_aware) result.erasures.assign(block_count, 0);

    // Occlusion mask from the aggregated block levels: blocks far below
    // the frame's median level are covered, not dark content — their
    // residual metric is meaningless and must become an erasure rather
    // than a confident zero.
    std::vector<std::uint8_t> occluded;
    if (params_.erasure_aware && captures_in_frame_ > 0) {
        std::vector<double> levels(block_count);
        for (std::size_t i = 0; i < block_count; ++i) {
            levels[i] = level_sum_[i] / captures_in_frame_;
        }
        std::vector<double> sorted_levels = levels;
        std::nth_element(sorted_levels.begin(), sorted_levels.begin() + sorted_levels.size() / 2,
                         sorted_levels.end());
        const double median = sorted_levels[sorted_levels.size() / 2];
        const double cutoff =
            std::max(params_.occlusion_level_floor, params_.occlusion_level_fraction * median);
        occluded.assign(block_count, 0);
        for (std::size_t i = 0; i < block_count; ++i) {
            if (levels[i] < cutoff) {
                occluded[i] = 1;
                ++result.occluded_blocks;
            }
        }
    }

    if (captures_in_frame_ > 0) {
        std::vector<double> metrics(block_count);
        for (std::size_t i = 0; i < block_count; ++i) {
            metrics[i] = metric_sum_[i] / captures_in_frame_;
        }
        auto classify = [&](std::size_t begin, std::size_t count, double threshold) {
            const double hi = threshold * (1.0 + params_.hysteresis);
            const double lo = threshold * (1.0 - params_.hysteresis);
            for (std::size_t i = begin; i < begin + count; ++i) {
                if (metrics[i] >= hi) {
                    result.decisions[i] = coding::Block_decision::one;
                } else if (metrics[i] <= lo) {
                    result.decisions[i] = coding::Block_decision::zero;
                }
            }
            if (record_diagnostics && threshold > 0.0) {
                // Confidence margin of every block this threshold judged:
                // distance from the decision boundary, relative to it.
                // Low buckets = blocks drifting toward misclassification.
                for (std::size_t i = begin; i < begin + count; ++i) {
                    const double margin = std::abs(metrics[i] - threshold) / threshold;
                    ++record.margin_hist[static_cast<std::size_t>(
                        telemetry::Frame_record::margin_bucket(margin))];
                }
            }
        };
        if (params_.auto_threshold && params_.row_adaptive) {
            // Per block-row split: adapts to rolling-shutter bands. Rows
            // whose classes are inseparable stay unknown.
            const auto row = static_cast<std::size_t>(params_.geometry.blocks_x);
            util::Running_stats chosen;
            for (std::size_t by = 0; by < static_cast<std::size_t>(params_.geometry.blocks_y);
                 ++by) {
                const auto split =
                    split_metrics(std::span(metrics).subspan(by * row, row));
                if (!split.bimodal) continue;
                classify(by * row, row, split.value);
                chosen.add(split.value);
            }
            result.threshold = chosen.count() > 0 ? chosen.mean() : 0.0;
        } else {
            const double threshold = select_threshold(metrics);
            result.threshold = threshold;
            classify(0, block_count, threshold);
        }

        if (params_.erasure_aware) {
            // Occluded blocks are erasures no matter how confidently the
            // (meaningless) metric classified them; ambiguous blocks —
            // still unknown after classification — are erasures too.
            for (std::size_t i = 0; i < block_count; ++i) {
                if (!occluded.empty() && occluded[i]) {
                    result.decisions[i] = coding::Block_decision::unknown;
                    result.erasures[i] = 1;
                } else if (result.decisions[i] == coding::Block_decision::unknown) {
                    result.erasures[i] = 1;
                }
            }
        }
    }
    result.gob = coding::decode_gob_parity(params_.geometry, result.decisions, 0,
                                           params_.erasure_aware);

    if (record_diagnostics) {
        record.data_frame_index = result.data_frame_index;
        record.time_s = static_cast<double>(current_frame_) * params_.tau / params_.display_fps;
        record.captures_used = result.captures_used;
        record.threshold = result.threshold;
        record.blocks_total = static_cast<int>(block_count);
        for (const auto decision : result.decisions) {
            if (decision == coding::Block_decision::unknown) ++record.blocks_unknown;
        }
        for (const auto erased : result.erasures) record.blocks_erased += erased;
        record.blocks_occluded = result.occluded_blocks;
        record.gobs_total = static_cast<int>(result.gob.gobs.size());
        for (const auto& gob : result.gob.gobs) {
            record.gobs_available += gob.available ? 1 : 0;
            record.gobs_parity_ok += gob.parity_ok ? 1 : 0;
            record.gobs_recovered += gob.recovered ? 1 : 0;
        }
        record.sync_locked = sync_locked_;
        record.sync_offset_s = sync_offset_s_;
        telemetry::emit_frame(record);
    }

    std::fill(metric_sum_.begin(), metric_sum_.end(), 0.0);
    std::fill(level_sum_.begin(), level_sum_.end(), 0.0);
    captures_in_frame_ = 0;
    ++current_frame_;
    return result;
}

} // namespace inframe::core
