// InFrame decoder: demultiplexes data from captured frames (paper 3.3).
//
// Per capture, for every Block: smooth the block, subtract the smoothed
// content from the original, and sum the absolute difference — the
// chessboard (bit 1) leaves a large high-frequency residual that ordinary
// video content does not. "To work around high-texture areas we further
// remove the mean absolute difference": here implemented as subtracting
// the same residual measured one octave lower, which natural texture
// populates and the chessboard (living exactly at the Pixel-grid Nyquist
// frequency) does not.
//
// Captures are grouped by the data frame on air at their exposure time
// (the receiver knows tau and the display rate; frame-level sync is
// assumed, as in the paper's strawman). Only captures inside the stable
// first half of the tau cycle vote — the second half may be mid-transition
// to the next data frame. A block whose aggregated metric lands in the
// hysteresis band around the threshold is reported `unknown`, which makes
// its whole GOB unavailable (the paper's "available GOB" notion).
#pragma once

#include "coding/parity.hpp"
#include "core/config.hpp"
#include "imgproc/image.hpp"
#include "imgproc/warp.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace inframe::core {

// Block-bit detector.
//  - noise_level: the paper's scheme — smooth, subtract, sum |difference|
//    (3.3). Content-agnostic but leaks on high-texture video.
//  - matched: correlate the capture against the known chessboard template
//    (the demultiplexer knows the Pixel grid). Random texture and sensor
//    noise decorrelate, so this survives much busier content; it is the
//    "more effective scheme" the paper's 5 asks for and is compared in
//    bench_ablation_params.
enum class Detector : std::uint8_t { noise_level, matched };

const char* to_string(Detector detector);

struct Decoder_params {
    coding::Code_geometry geometry; // screen-space layout

    Detector detector = Detector::noise_level;

    // Calibrated perspective of the capture (sensor -> screen coordinates,
    // matching channel::Camera_params::sensor_to_screen). Requires the
    // matched detector: block regions become quadrilaterals that the
    // per-pixel template mapping handles naturally.
    std::optional<img::Homography> capture_to_screen;

    // Capture resolution (the camera's, e.g. 1280x720 for a 1920x1080
    // screen).
    int capture_width = 1280;
    int capture_height = 720;

    int tau = 12;
    double display_fps = 120.0;

    // Subtract the octave-lower residual (texture compensation).
    bool texture_compensation = true;

    // Threshold selection: automatic (Otsu split of the block metrics) or
    // fixed.
    bool auto_threshold = true;
    double fixed_threshold = 2.0;

    // With auto thresholding, split each block-row separately. Rolling
    // shutter cancels the pattern in horizontal bands (rows whose exposure
    // straddles a +D/-D boundary); a per-row split adapts to the local
    // pattern strength and — crucially — marks rows whose two classes are
    // not separable as unknown instead of reading them as confident
    // all-zeros, which XOR parity cannot catch.
    bool row_adaptive = true;

    // Fraction around the threshold treated as "no confident decision".
    double hysteresis = 0.2;

    // Minimum upper-class metric for a split to count as signal: guards
    // against Otsu "finding" a split inside the noise floor when the
    // pattern has been destroyed entirely (e.g. defocused capture).
    double min_signal_level = 0.6;

    // Minimum separation quality d' = (m1 - m0) / pooled-sigma for the
    // split to be trusted. Classes closer than this misclassify at rates
    // parity cannot contain, so the row is reported unknown instead.
    double min_separation_dprime = 3.0;

    // Captures whose mid-exposure phase within the tau cycle is at or
    // beyond this fraction are ignored (transition region).
    double stable_fraction = 0.5;

    // Erasure-aware decoding. Blocks flagged unreliable — metric inside
    // the hysteresis band, or mean level far below the frame's median
    // (an occluder in front of the lens) — become erasures instead of
    // hard bits, and the GOB parity layer fills single-erasure GOBs
    // (decode_gob_parity erasure_fill). Off reproduces the paper's
    // hard-decision strawman.
    bool erasure_aware = false;

    // Occlusion mask: a block whose mean captured level is below
    // max(occlusion_level_floor, occlusion_level_fraction * median block
    // level) is treated as occluded. Only consulted when erasure_aware.
    double occlusion_level_fraction = 0.35;
    double occlusion_level_floor = 16.0;

    // Hard cap on the number of idle data frames finalized per capture:
    // a capture timestamped far in the future would otherwise emit one
    // result per skipped frame (unbounded work from one bad input). The
    // region beyond the cap is skipped silently.
    std::int64_t max_frame_gap = 1024;

    void validate() const;
};

struct Data_frame_result {
    std::int64_t data_frame_index = 0;
    int captures_used = 0;
    double threshold = 0.0;
    std::vector<coding::Block_decision> decisions;

    // Parallel to decisions (erasure-aware mode): 1 where the block was
    // flagged as an erasure (ambiguous metric or occlusion) rather than
    // decided. Empty when erasure_aware is off.
    std::vector<std::uint8_t> erasures;

    // Blocks the occlusion mask flagged (subset of erasures).
    int occluded_blocks = 0;

    coding::Frame_decode_result gob;
};

class Inframe_decoder {
public:
    explicit Inframe_decoder(Decoder_params params);

    // Feeds a capture with the wall-clock time its exposure began.
    // Returns data frames finalized by this capture (zero or one, in
    // order).
    std::vector<Data_frame_result> push_capture(const img::Imagef& capture,
                                                double start_time);

    // Finalizes the data frame currently being accumulated (end of
    // stream).
    std::optional<Data_frame_result> flush();

    // Per-block residual metrics for one capture (exposed for analysis
    // and benches).
    std::vector<double> block_metrics(const img::Imagef& capture) const;

    // Per-block mean captured level (luminance). The occlusion mask is
    // built from these: an opaque occluder pulls whole blocks far below
    // the frame's median level.
    std::vector<double> block_levels(const img::Imagef& capture) const;

    // Otsu split of a metric vector. bimodal is false when the two
    // classes are not separated (no detectable signal population).
    struct Threshold_split {
        double value = 0.0;
        bool bimodal = false;
        // Separation quality (upper mean - lower mean) / pooled sigma.
        double dprime = 0.0;
    };
    Threshold_split split_metrics(std::span<const double> metrics) const;

    // The threshold that would be chosen for a metric vector (fixed
    // threshold when auto selection is off or the split is degenerate).
    double select_threshold(std::span<const double> metrics) const;

    // Sync-layer state reported on telemetry frame records: -1 = sync
    // assumed/unknown (the paper's strawman), 0 = searching, 1 = locked
    // at `offset_s`. Synced_decoder keeps this current; plain decoders
    // stay at the default -1. Observational only — decoding ignores it.
    void set_sync_context(int locked, double offset_s);

    const Decoder_params& params() const { return params_; }

private:
    Data_frame_result finalize();
    std::vector<double> noise_level_metrics(const img::Imagef& capture) const;
    std::vector<double> matched_metrics(const img::Imagef& capture) const;
    void build_template();

    Decoder_params params_;
    double scale_x_;
    double scale_y_;
    int smooth_radius_;

    // Matched-filter tables (one entry per sensor pixel): owning block
    // (-1 = outside/border) and the quadrature phases of the chessboard's
    // two diagonal fundamentals at that pixel. Correlating against
    // cos/sin of both makes the detector invariant to sub-period
    // misalignment of the calibration.
    std::vector<std::int32_t> block_of_pixel_;
    std::vector<float> cos1_, sin1_, cos2_, sin2_;

    std::int64_t current_frame_ = 0;
    std::vector<double> metric_sum_;
    std::vector<double> level_sum_; // erasure-aware mode only
    int captures_in_frame_ = 0;
    int sync_locked_ = -1;          // telemetry only; see set_sync_context
    double sync_offset_s_ = 0.0;
};

} // namespace inframe::core
