#include "core/encoder.hpp"

#include "coding/parity.hpp"
#include "imgproc/image_ops.hpp"
#include "imgproc/pool.hpp"
#include "telemetry/telemetry.hpp"
#include "util/contract.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>

namespace inframe::core {

Inframe_encoder::Inframe_encoder(Inframe_config config) : config_(std::move(config))
{
    config_.validate();
    idle_bits_.assign(static_cast<std::size_t>(config_.geometry.block_count()), 0);
    block_min_.assign(static_cast<std::size_t>(config_.geometry.block_count()), 0.0f);
    block_max_.assign(static_cast<std::size_t>(config_.geometry.block_count()), 255.0f);
}

void Inframe_encoder::queue_payload(std::span<const std::uint8_t> payload_bits)
{
    queue_.push_back(coding::encode_gob_parity(config_.geometry, payload_bits));
}

void Inframe_encoder::queue_block_bits(std::vector<std::uint8_t> block_bits)
{
    util::expects(block_bits.size() == static_cast<std::size_t>(config_.geometry.block_count()),
                  "encoder: block bit count mismatch");
    queue_.push_back(std::move(block_bits));
}

const std::vector<std::uint8_t>& Inframe_encoder::bits_for(std::int64_t data_index)
{
    while (static_cast<std::int64_t>(history_.size()) <= data_index) {
        const bool idle_now =
            paused_ && static_cast<std::int64_t>(history_.size()) >= pause_boundary_;
        if (idle_now || queue_.empty()) {
            history_.push_back(idle_bits_);
        } else {
            history_.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
    }
    return history_[static_cast<std::size_t>(data_index)];
}

void Inframe_encoder::pause()
{
    if (paused_) return;
    paused_ = true;
    const std::int64_t current = display_index_ / config_.tau;
    if (history_.empty()) {
        pause_boundary_ = current; // nothing aired yet: idle immediately
        return;
    }
    // Return the peeked-ahead (not yet aired) frames to the queue so
    // resume() continues without losing data.
    while (static_cast<std::int64_t>(history_.size()) > current + 1) {
        auto bits = std::move(history_.back());
        history_.pop_back();
        if (bits != idle_bits_) queue_.push_front(std::move(bits));
    }
    pause_boundary_ = static_cast<std::int64_t>(history_.size());
}

void Inframe_encoder::resume()
{
    paused_ = false;
    pause_boundary_ = -1;
}

bool Inframe_encoder::idle() const
{
    return paused_ && pause_boundary_ >= 0 && display_index_ / config_.tau >= pause_boundary_;
}

const std::vector<std::uint8_t>*
Inframe_encoder::transmitted_block_bits(std::int64_t data_index) const
{
    if (data_index < 0 || data_index >= static_cast<std::int64_t>(history_.size())) {
        return nullptr;
    }
    return &history_[static_cast<std::size_t>(data_index)];
}

float Inframe_encoder::envelope_gain(std::uint8_t current_bit, std::uint8_t next_bit,
                                     int phase) const
{
    const int half = config_.tau / 2;
    if (current_bit == next_bit || phase < half) {
        return current_bit ? 1.0f : 0.0f;
    }
    const double t = static_cast<double>(phase - half + 1) / static_cast<double>(half);
    return static_cast<float>(current_bit ? dsp::transition_gain_10(config_.transition, t)
                                          : dsp::transition_gain_01(config_.transition, t));
}

void Inframe_encoder::refresh_video_stats(const img::Imagef& video_frame)
{
    const auto& g = config_.geometry;
    // Block rows are independent (each writes its own block_min_/block_max_
    // slots), so the min/max scan parallelizes over rows of blocks.
    util::parallel_for(0, g.blocks_y, 1, [&](std::int64_t by0, std::int64_t by1) {
        for (std::int64_t by = by0; by < by1; ++by) {
            for (int bx = 0; bx < g.blocks_x; ++bx) {
                const auto rect = g.block_rect(bx, static_cast<int>(by));
                float lo = 255.0f;
                float hi = 0.0f;
                for (int y = rect.y0; y < rect.y0 + rect.size; ++y) {
                    for (int x = rect.x0; x < rect.x0 + rect.size; ++x) {
                        for (int c = 0; c < video_frame.channels(); ++c) {
                            const float v = video_frame(x, y, c);
                            lo = std::min(lo, v);
                            hi = std::max(hi, v);
                        }
                    }
                }
                const auto index =
                    static_cast<std::size_t>(g.block_index(bx, static_cast<int>(by)));
                block_min_[index] = lo;
                block_max_[index] = hi;
            }
        }
    });
}

img::Imagef Inframe_encoder::next_display_frame(const img::Imagef& video_frame)
{
    telemetry::Scoped_span span("encode.embed");
    const auto& g = config_.geometry;
    util::expects(video_frame.width() == g.screen_width
                      && video_frame.height() == g.screen_height,
                  "encoder: video frame does not match geometry");

    const std::int64_t j = display_index_;
    const std::int64_t data_index = j / config_.tau;
    const int phase = static_cast<int>(j % config_.tau);
    const float sign = (j % 2 == 0) ? 1.0f : -1.0f;

    // Per-block min/max refresh once per video frame (the pair V+D, V-D
    // must share the cap so complementarity survives clamping).
    const std::int64_t video_index = j / config_.video_repeat();
    if (config_.local_amplitude_cap && video_index != stats_video_frame_) {
        refresh_video_stats(video_frame);
        stats_video_frame_ = video_index;
    }

    // Materialize the next frame's bits first: bits_for can grow history_
    // and would invalidate a previously taken reference.
    const auto& next = bits_for(data_index + 1);
    const auto& current = bits_for(data_index);

    // Copy the video frame into a recycled buffer; the chessboard embed
    // then runs over block rows in parallel (blocks write disjoint pixel
    // rectangles, so any partition yields identical output).
    img::Imagef out =
        img::Frame_pool::instance().acquire(g.screen_width, g.screen_height,
                                            video_frame.channels());
    std::copy(video_frame.values().begin(), video_frame.values().end(),
              out.values().begin());
    util::parallel_for(0, g.blocks_y, 1, [&](std::int64_t by0, std::int64_t by1) {
        for (std::int64_t by = by0; by < by1; ++by) {
            for (int bx = 0; bx < g.blocks_x; ++bx) {
                const auto index =
                    static_cast<std::size_t>(g.block_index(bx, static_cast<int>(by)));
                const float gain = envelope_gain(current[index], next[index], phase);
                if (gain <= 0.0f) continue;
                float amplitude = config_.delta * gain;
                if (config_.local_amplitude_cap) {
                    // V + D must stay <= 255 and V - D >= 0 for the raised
                    // Pixels; cap symmetrically so the pair still cancels.
                    const float headroom =
                        std::min(255.0f - block_max_[index], block_min_[index]);
                    amplitude = std::clamp(amplitude, 0.0f, std::max(headroom, 0.0f));
                }
                if (amplitude <= 0.0f) continue;
                coding::add_chessboard_block(out, g, bx, static_cast<int>(by),
                                             sign * amplitude);
            }
        }
    });
    img::clamp(out, 0.0f, 255.0f);
    ++display_index_;
    return out;
}

Complementary_pair make_complementary_pair(const Inframe_config& config,
                                           const img::Imagef& video_frame,
                                           std::span<const std::uint8_t> block_bits)
{
    config.validate();
    const auto& g = config.geometry;
    util::expects(video_frame.width() == g.screen_width
                      && video_frame.height() == g.screen_height,
                  "complementary pair: video frame does not match geometry");
    util::expects(block_bits.size() == static_cast<std::size_t>(g.block_count()),
                  "complementary pair: block bit count mismatch");

    Complementary_pair pair{video_frame, video_frame};
    for (int by = 0; by < g.blocks_y; ++by) {
        for (int bx = 0; bx < g.blocks_x; ++bx) {
            if (!block_bits[static_cast<std::size_t>(g.block_index(bx, by))]) continue;
            float amplitude = config.delta;
            if (config.local_amplitude_cap) {
                const auto rect = g.block_rect(bx, by);
                float lo = 255.0f;
                float hi = 0.0f;
                for (int y = rect.y0; y < rect.y0 + rect.size; ++y) {
                    for (int x = rect.x0; x < rect.x0 + rect.size; ++x) {
                        for (int c = 0; c < video_frame.channels(); ++c) {
                            lo = std::min(lo, video_frame(x, y, c));
                            hi = std::max(hi, video_frame(x, y, c));
                        }
                    }
                }
                amplitude = std::clamp(amplitude, 0.0f, std::max(std::min(255.0f - hi, lo), 0.0f));
            }
            coding::add_chessboard_block(pair.plus, config.geometry, bx, by, amplitude);
            coding::add_chessboard_block(pair.minus, config.geometry, bx, by, -amplitude);
        }
    }
    img::clamp(pair.plus, 0.0f, 255.0f);
    img::clamp(pair.minus, 0.0f, 255.0f);
    return pair;
}

} // namespace inframe::core
