// InFrame encoder: multiplexes data frames onto video frames (paper 3.2).
//
// For every display refresh the encoder emits V + sigma * D', where
//   - V is the current video frame (each video frame repeats
//     display_fps / video_fps times),
//   - sigma alternates +1 / -1 every refresh (complementary frames: the
//     eye averages the pair back to V),
//   - D' is the active data frame's chessboard with a per-block amplitude:
//     delta scaled by the temporal smoothing envelope (SRRC transition in
//     the second half of the tau-cycle when the block's bit changes) and
//     by the local cap that keeps V +- D inside [0, 255] near saturated
//     content.
#pragma once

#include "coding/chessboard.hpp"
#include "core/config.hpp"

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace inframe::core {

class Inframe_encoder {
public:
    explicit Inframe_encoder(Inframe_config config);

    // Queues a data frame given payload bits (payload_bits_per_frame());
    // GOB parity blocks are inserted here.
    void queue_payload(std::span<const std::uint8_t> payload_bits);

    // Queues a data frame given raw block bits (block_count()).
    void queue_block_bits(std::vector<std::uint8_t> block_bits);

    // Produces the next multiplexed display frame. `video_frame` must be
    // the frame the playback schedule shows during this refresh (the
    // caller advances it every video_repeat() refreshes). When the data
    // queue is empty an all-zero (idle) data frame is transmitted.
    img::Imagef next_display_frame(const img::Imagef& video_frame);

    // Pauses data embedding (5's practical issue: "the original video
    // frame should be rendered when video viewing pauses"). The active
    // data frame finishes its cycle ramping into idle — an abrupt stop
    // would itself flicker — after which frames pass through unmodified.
    // Queued data frames are retained and resume() continues with them.
    void pause();
    void resume();
    bool paused() const { return paused_; }

    // True once a pause has fully ramped out (output == plain video).
    bool idle() const;

    // Number of display frames emitted so far.
    std::int64_t display_index() const { return display_index_; }

    // Index of the data frame currently on air.
    std::int64_t data_frame_index() const { return display_index_ / config_.tau; }

    // Block bits of the data frame that was (or will be) on air for the
    // given data frame index; empty if it was idle. Retained so
    // experiments can compare decoded output against the truth.
    const std::vector<std::uint8_t>* transmitted_block_bits(std::int64_t data_index) const;

    std::size_t queued_data_frames() const { return queue_.size(); }

    const Inframe_config& config() const { return config_; }

private:
    // Envelope gain for a block at phase k of the tau cycle.
    float envelope_gain(std::uint8_t current_bit, std::uint8_t next_bit, int phase) const;

    // Per-block min/max of the current video frame (for the local cap).
    void refresh_video_stats(const img::Imagef& video_frame);

    const std::vector<std::uint8_t>& bits_for(std::int64_t data_index);

    Inframe_config config_;
    std::deque<std::vector<std::uint8_t>> queue_; // pending data frames
    std::vector<std::vector<std::uint8_t>> history_; // transmitted block bits per data frame
    std::vector<std::uint8_t> idle_bits_;
    std::int64_t display_index_ = 0;
    bool paused_ = false;
    std::int64_t pause_boundary_ = -1; // first fully-idle data frame index

    std::vector<float> block_min_;
    std::vector<float> block_max_;
    std::int64_t stats_video_frame_ = -1;
};

// Builds the complementary pair (V + D, V - D) for a single video frame
// and data frame — the Fig. 4 visual. Applies clamping but no smoothing.
struct Complementary_pair {
    img::Imagef plus;
    img::Imagef minus;
};
Complementary_pair make_complementary_pair(const Inframe_config& config,
                                           const img::Imagef& video_frame,
                                           std::span<const std::uint8_t> block_bits);

} // namespace inframe::core
