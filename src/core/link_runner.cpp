#include "core/link_runner.hpp"

#include "core/session.hpp"
#include "core/stages.hpp"
#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

#include <cmath>
#include <utility>

namespace inframe::core {

Link_experiment_result run_link_experiment(const Link_experiment_config& config)
{
    util::expects(config.video != nullptr, "link experiment: video source required");
    util::expects(config.duration_s > 0.0, "link experiment: duration must be positive");
    config.inframe.validate();
    util::expects(config.video->width() == config.inframe.geometry.screen_width
                      && config.video->height() == config.inframe.geometry.screen_height,
                  "link experiment: video size must match geometry");

    // Install the experiment's thread budget for every stage below
    // (encoder embed, channel kernels, decoder metrics). Restored on exit.
    const util::Parallel_scope parallel_scope(
        config.threads >= 0 ? config.threads : config.inframe.threads);

    // Trace export for this run; inert when no trace_dir is configured or
    // an outer session is already collecting.
    telemetry::Session telemetry_session(config.telemetry);

    Decoder_params decoder_params = make_decoder_params(
        config.inframe, config.camera.sensor_width, config.camera.sensor_height);
    decoder_params.detector = config.detector;
    decoder_params.texture_compensation = config.texture_compensation;
    decoder_params.auto_threshold = config.auto_threshold;
    decoder_params.fixed_threshold = config.fixed_threshold;
    decoder_params.hysteresis = config.hysteresis;
    decoder_params.capture_to_screen = config.decoder_capture_to_screen;
    decoder_params.erasure_aware = config.erasure_aware;

    channel::Camera_params camera = config.camera;
    if (config.auto_exposure) {
        camera = channel::auto_expose(camera, img::mean(config.video->frame(0)));
    }

    const auto total_display_frames =
        static_cast<std::int64_t>(std::llround(config.duration_s * config.inframe.display_fps));

    // Assemble the paper's dataflow as a stage graph. Payload bits come
    // from the config's lazy source (default: the paper's "pseudo-random
    // data generator with a pre-set seed"), pulled as frames go on air.
    Pipeline pipeline;
    pipeline.emplace_stage<Video_stage>(
        config.video,
        video::Playback_schedule{config.inframe.display_fps, config.inframe.video_fps});
    Encode_stage::Options encode_options;
    encode_options.payloads =
        config.payloads ? config.payloads
                        : make_random_payload_source(
                              config.data_seed, config.inframe.geometry.payload_bits_per_frame());
    Encode_stage& encode =
        pipeline.emplace_stage<Encode_stage>(config.inframe, std::move(encode_options));
    Link_stage& link = pipeline.emplace_stage<Link_stage>(
        config.display, camera, config.inframe.geometry.screen_width,
        config.inframe.geometry.screen_height, config.impairments);
    Decode_stage& decode = pipeline.emplace_stage<Decode_stage>(decoder_params);

    Pipeline_options pipeline_options;
    pipeline_options.frames_in_flight = config.frames_in_flight;
    Pipeline_metrics pipeline_metrics = pipeline.run(total_display_frames, pipeline_options);

    const Inframe_encoder& encoder = encode.encoder();
    const std::vector<Data_frame_result>& results = decode.results();

    Link_experiment_result out;
    out.pipeline = std::move(pipeline_metrics);
    out.duration_s = config.duration_s;
    out.raw_rate_kbps = config.inframe.raw_payload_rate() / 1000.0;

    util::Running_stats available;
    util::Running_stats errors;
    std::size_t good_bits = 0;
    std::size_t confident_blocks = 0;
    std::size_t wrong_blocks = 0;
    std::size_t unknown_blocks = 0;
    std::size_t total_blocks = 0;
    std::size_t trusted_bits = 0;
    std::size_t trusted_bit_errors = 0;
    std::size_t payload_bits_total = 0;
    std::size_t payload_bit_errors = 0;
    std::size_t recovered_gobs = 0;
    std::size_t counted_gobs = 0;
    std::size_t occluded_blocks = 0;
    int captures_used = 0;

    const auto& geometry = config.inframe.geometry;

    // Transmitted payload bits of one data frame, recovered from the
    // block-bit truth by dropping each GOB's parity block (the inverse of
    // encode_gob_parity's insertion).
    const auto truth_payload = [&](const std::vector<std::uint8_t>& truth_blocks) {
        std::vector<std::uint8_t> payload;
        payload.reserve(static_cast<std::size_t>(geometry.payload_bits_per_frame()));
        const int m = geometry.gob_size;
        for (int gy = 0; gy < geometry.gobs_y(); ++gy) {
            for (int gx = 0; gx < geometry.gobs_x(); ++gx) {
                for (int j = 0; j < m; ++j) {
                    for (int i = 0; i < m; ++i) {
                        if (j == m - 1 && i == m - 1) continue;
                        payload.push_back(truth_blocks[static_cast<std::size_t>(
                            geometry.block_index(gx * m + i, gy * m + j))]);
                    }
                }
            }
        }
        return payload;
    };

    for (const auto& result : results) {
        // Only fully transmitted data frames count (the tail may be cut).
        if ((result.data_frame_index + 1) * config.inframe.tau > total_display_frames) continue;
        const auto* truth = encoder.transmitted_block_bits(result.data_frame_index);
        if (truth == nullptr) continue;
        ++out.data_frames;
        captures_used += result.captures_used;
        available.add(result.gob.available_ratio);
        errors.add(result.gob.error_rate);
        good_bits += result.gob.good_payload_bits;
        recovered_gobs += result.gob.recovered_gobs;
        counted_gobs += result.gob.gobs.size();
        occluded_blocks += static_cast<std::size_t>(result.occluded_blocks);

        // End-to-end payload BER against the transmitted payload.
        const auto expected_payload = truth_payload(*truth);
        for (std::size_t b = 0; b < expected_payload.size(); ++b) {
            ++payload_bits_total;
            if (result.gob.payload_bits[b] != expected_payload[b]) ++payload_bit_errors;
        }

        for (std::size_t b = 0; b < result.decisions.size(); ++b) {
            ++total_blocks;
            const auto decision = result.decisions[b];
            if (decision == coding::Block_decision::unknown) {
                ++unknown_blocks;
                continue;
            }
            ++confident_blocks;
            const std::uint8_t bit = decision == coding::Block_decision::one ? 1 : 0;
            if (bit != (*truth)[b]) ++wrong_blocks;
        }

        // True errors hiding inside trusted (available, parity-OK) GOBs.
        const int m = geometry.gob_size;
        for (int gy = 0; gy < geometry.gobs_y(); ++gy) {
            for (int gx = 0; gx < geometry.gobs_x(); ++gx) {
                const auto& gob =
                    result.gob.gobs[static_cast<std::size_t>(gy * geometry.gobs_x() + gx)];
                if (!gob.available || !gob.parity_ok) continue;
                int payload_slot = 0;
                for (int jj = 0; jj < m; ++jj) {
                    for (int ii = 0; ii < m; ++ii) {
                        if (jj == m - 1 && ii == m - 1) continue; // parity block
                        const auto block =
                            static_cast<std::size_t>(geometry.block_index(gx * m + ii, gy * m + jj));
                        ++trusted_bits;
                        const std::uint8_t decoded =
                            gob.payload_bits[static_cast<std::size_t>(payload_slot++)];
                        if (decoded != (*truth)[block]) ++trusted_bit_errors;
                    }
                }
            }
        }
    }

    out.captures = captures_used;
    out.available_gob_ratio = available.mean();
    out.gob_error_rate = errors.mean();
    const double effective_duration =
        out.data_frames / config.inframe.data_frame_rate();
    out.goodput_kbps =
        effective_duration > 0.0 ? static_cast<double>(good_bits) / effective_duration / 1000.0
                                 : 0.0;
    out.block_error_rate = confident_blocks > 0
                               ? static_cast<double>(wrong_blocks) / confident_blocks
                               : 0.0;
    out.unknown_block_ratio =
        total_blocks > 0 ? static_cast<double>(unknown_blocks) / total_blocks : 0.0;
    out.trusted_bit_error_rate =
        trusted_bits > 0 ? static_cast<double>(trusted_bit_errors) / trusted_bits : 0.0;
    out.payload_bit_error_rate =
        payload_bits_total > 0 ? static_cast<double>(payload_bit_errors) / payload_bits_total
                               : 0.0;
    out.recovered_gob_ratio =
        counted_gobs > 0 ? static_cast<double>(recovered_gobs) / counted_gobs : 0.0;
    out.occluded_block_ratio =
        total_blocks > 0 ? static_cast<double>(occluded_blocks) / total_blocks : 0.0;
    out.captures_dropped = link.captures_dropped();
    return out;
}

hvs::Panel_result run_flicker_experiment(const Flicker_experiment_config& config)
{
    util::expects(config.video != nullptr, "flicker experiment: video source required");
    util::expects(config.duration_s > 0.0, "flicker experiment: duration must be positive");
    util::expects(config.observers >= 1, "flicker experiment: need at least one observer");
    config.inframe.validate();

    const util::Parallel_scope parallel_scope(
        config.threads >= 0 ? config.threads : config.inframe.threads);

    telemetry::Session telemetry_session(config.telemetry);

    const auto total_display_frames =
        static_cast<std::int64_t>(std::llround(config.duration_s * config.inframe.display_fps));

    const auto panel = hvs::make_observer_panel(config.observers, config.observer_seed);
    std::vector<hvs::Flicker_assessor> assessors;
    assessors.reserve(panel.size());
    for (const auto& observer : panel) {
        assessors.emplace_back(config.inframe.geometry.screen_width,
                               config.inframe.geometry.screen_height,
                               config.inframe.display_fps, config.vision, observer,
                               config.options);
    }

    // Video -> produce (encoder or the caller's frame_producer) ->
    // observer panel. The produce stage keeps the raw video frame on the
    // token's reference slot: the paper's side-by-side protocol has
    // observers rate the difference from the unmodified video, not the
    // video's own motion.
    Pipeline pipeline;
    pipeline.emplace_stage<Video_stage>(
        config.video,
        video::Playback_schedule{config.inframe.display_fps, config.inframe.video_fps});
    if (config.frame_producer) {
        pipeline.emplace_stage<Function_stage>("produce", [&config](Frame_token token) {
            img::Imagef display = config.frame_producer(token.image, token.index);
            token.reference = std::move(token.image);
            token.image = std::move(display);
            std::vector<Frame_token> out;
            out.push_back(std::move(token));
            return out;
        });
    } else {
        Encode_stage::Options encode_options;
        encode_options.payloads = make_random_payload_source(
            config.data_seed, config.inframe.geometry.payload_bits_per_frame());
        encode_options.emit_reference = true;
        pipeline.emplace_stage<Encode_stage>(config.inframe, std::move(encode_options));
    }
    pipeline.emplace_stage<Function_stage>("assess", [&assessors](Frame_token token) {
        for (auto& assessor : assessors) assessor.push_frame_pair(token.image, token.reference);
        std::vector<Frame_token> out;
        out.push_back(std::move(token)); // runtime recycles sink output frames
        return out;
    });

    Pipeline_options pipeline_options;
    pipeline_options.frames_in_flight = config.frames_in_flight;
    pipeline.run(total_display_frames, pipeline_options);

    hvs::Panel_result result;
    util::Running_stats stats;
    for (const auto& assessor : assessors) {
        const auto r = assessor.result();
        result.scores.push_back(r.score);
        stats.add(r.score);
    }
    result.mean_score = stats.mean();
    result.stddev_score = stats.stddev();
    return result;
}

} // namespace inframe::core
