// End-to-end experiment harnesses.
//
// run_link_experiment assembles the Video -> Encode -> Link -> Decode
// stage graph (core::Pipeline), drives video + random data through it,
// and accounts throughput the way the paper's Fig. 7 does
// (available-GOB ratio, GOB error rate, goodput).
//
// run_flicker_experiment drives encoder output into the simulated observer
// panel — the stand-in for the paper's Fig. 6 user study.
#pragma once

#include "channel/link.hpp"
#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/pipeline.hpp"
#include "core/stages.hpp"
#include "hvs/flicker.hpp"
#include "telemetry/telemetry.hpp"
#include "video/playback.hpp"

#include <functional>
#include <memory>

namespace inframe::core {

struct Link_experiment_config {
    std::shared_ptr<const video::Video_source> video;
    Inframe_config inframe;
    channel::Display_params display;
    channel::Camera_params camera;

    // Fault-injection chain applied to the capture stream (drops, stale
    // duplication, exposure drift, shake, tear, occlusion). Defaults to
    // the clean lab link.
    channel::Impairment_config impairments;

    // Meter the camera against the first video frame (channel::auto_expose)
    // before the run, as a phone camera locked once at session start would.
    bool auto_exposure = true;

    // Decoder overrides applied on top of make_decoder_params.
    Detector detector = Detector::noise_level;
    bool texture_compensation = true;
    bool auto_threshold = true;
    double fixed_threshold = 2.0;
    double hysteresis = 0.2;
    std::optional<img::Homography> decoder_capture_to_screen;

    // Erasure-aware receive path (Decoder_params::erasure_aware): flagged
    // blocks become erasures and GOB parity fills single-erasure GOBs.
    bool erasure_aware = false;

    double duration_s = 4.0;
    std::uint64_t data_seed = util::Prng::default_seed;

    // Payload bits per data frame, pulled lazily as frames go on air.
    // Empty = the paper's pseudo-random generator seeded with data_seed
    // (make_random_payload_source).
    Payload_source payloads;

    // Worker threads for this experiment: -1 inherits inframe.threads,
    // 0 = hardware concurrency, 1 = serial, N = exactly N lanes. Output is
    // bit-identical for every value (see DESIGN.md).
    int threads = -1;

    // Frames-in-flight window for the stage-graph executor: 1 = serial,
    // >1 overlaps stages across display frames (one thread per stage,
    // bounded queues). Output is bit-identical for every value.
    int frames_in_flight = 1;

    // Telemetry export: a non-empty trace_dir wraps the run in a
    // telemetry::Session writing trace.json / frames.jsonl /
    // metrics.json there. Purely observational — results are
    // bit-identical with tracing on or off. Ignored (the outer scope
    // wins) when a session is already active.
    telemetry::Config telemetry;
};

struct Link_experiment_result {
    double duration_s = 0.0;
    int data_frames = 0;
    int captures = 0;

    // Fig. 7 metrics.
    double available_gob_ratio = 0.0; // mean over data frames
    double gob_error_rate = 0.0;      // erroneous / available
    double goodput_kbps = 0.0;        // trusted payload bits per second
    double raw_rate_kbps = 0.0;       // capacity before losses

    // Ground-truth quality (the simulator knows the transmitted bits).
    double block_error_rate = 0.0;    // wrong decisions / confident decisions
    double unknown_block_ratio = 0.0; // unknown / all blocks
    double trusted_bit_error_rate = 0.0; // errors inside parity-OK GOBs

    // End-to-end payload BER: decoded frame payload (untrusted positions
    // carry the fill bit) against the transmitted payload, over every
    // payload bit of every counted frame. The headline number the
    // fault-injection bench compares across decode modes.
    double payload_bit_error_rate = 0.0;

    // Fault-injection accounting.
    double recovered_gob_ratio = 0.0;  // parity-filled GOBs / all GOBs
    double occluded_block_ratio = 0.0; // occlusion-flagged / all blocks
    std::int64_t captures_dropped = 0; // swallowed by the impairment chain

    // Stage-graph observability for this run: per-stage wall time, queue
    // occupancy/waits, Frame_pool hit/miss deltas. Not part of the
    // deterministic payload — timings vary run to run.
    Pipeline_metrics pipeline;
};

Link_experiment_result run_link_experiment(const Link_experiment_config& config);

struct Flicker_experiment_config {
    std::shared_ptr<const video::Video_source> video;
    Inframe_config inframe;
    hvs::Vision_model_params vision;
    hvs::Flicker_options options;
    int observers = 8;
    std::uint64_t observer_seed = 42;
    double duration_s = 2.0;
    std::uint64_t data_seed = util::Prng::default_seed;

    // Same contract as Link_experiment_config::threads.
    int threads = -1;

    // Same contract as Link_experiment_config::frames_in_flight.
    int frames_in_flight = 1;

    // Same contract as Link_experiment_config::telemetry.
    telemetry::Config telemetry;

    // Optional replacement for the InFrame encoder: maps (video frame,
    // display index) to the displayed frame. Used by the Fig. 3 naive
    // designs bench. When empty, the InFrame encoder is used.
    std::function<img::Imagef(const img::Imagef&, std::int64_t)> frame_producer;
};

hvs::Panel_result run_flicker_experiment(const Flicker_experiment_config& config);

} // namespace inframe::core
