#include "core/pipeline.hpp"

#include "imgproc/pool.hpp"
#include "simd/simd.hpp"
#include "telemetry/telemetry.hpp"
#include "util/contract.hpp"
#include "util/spsc_queue.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

namespace inframe::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

void recycle_token(Frame_token&& token)
{
    img::Frame_pool::instance().recycle(std::move(token.image));
    img::Frame_pool::instance().recycle(std::move(token.reference));
}

} // namespace

Stage& Pipeline::add_stage(std::unique_ptr<Stage> stage)
{
    util::expects(stage != nullptr, "pipeline stage must not be null");
    stages_.push_back(std::move(stage));
    return *stages_.back();
}

Pipeline_metrics Pipeline::run(std::int64_t head_tokens, Pipeline_options options)
{
    util::expects(!stages_.empty(), "pipeline has no stages");
    util::expects(head_tokens >= 0, "head token count must be >= 0");
    if (options.frames_in_flight < 1) options.frames_in_flight = 1;

    // Record which SIMD level the kernels below will run at; telemetry
    // reports print gauges, so the dispatch decision shows up next to the
    // stage timings it explains (Level enum value: 0=scalar 1=sse2 2=avx2
    // 3=neon).
    static const int simd_gauge =
        telemetry::intern_metric("simd.dispatch_level", telemetry::Metric_kind::gauge);
    telemetry::gauge_set(simd_gauge, static_cast<double>(simd::active_level()));

    const img::Frame_pool::Counters pool_before = img::Frame_pool::instance().counters();
    const Clock::time_point start = Clock::now();

    Pipeline_metrics metrics = (options.frames_in_flight == 1 || stages_.size() == 1)
                                   ? run_serial(head_tokens, options)
                                   : run_overlapped(head_tokens, options);

    metrics.wall_s = seconds_since(start);
    metrics.frames_in_flight = options.frames_in_flight;
    const img::Frame_pool::Counters pool_after = img::Frame_pool::instance().counters();
    metrics.pool_hits = static_cast<std::int64_t>(pool_after.hits - pool_before.hits);
    metrics.pool_misses = static_cast<std::int64_t>(pool_after.misses - pool_before.misses);
    return metrics;
}

Pipeline_metrics Pipeline::run_serial(std::int64_t head_tokens, const Pipeline_options& options)
{
    const std::size_t n = stages_.size();
    Pipeline_metrics metrics;
    metrics.stages.resize(n);
    for (std::size_t s = 0; s < n; ++s) metrics.stages[s].name = stages_[s]->name();

    // Depth-first drive: every output token is carried all the way to the
    // sink before the next head token is injected, so each stage still sees
    // its inputs in index order. Stage timing brackets only that stage's
    // push/flush — the recursion into downstream stages happens outside it.
    std::function<void(std::size_t, Frame_token)> feed = [&](std::size_t s, Frame_token token) {
        if (s == n) {
            recycle_token(std::move(token));
            return;
        }
        Stage_metrics& sm = metrics.stages[s];
        ++sm.tokens_in;
        const Clock::time_point t0 = Clock::now();
        std::vector<Frame_token> outputs;
        {
            telemetry::Scoped_span span(stages_[s]->name());
            outputs = stages_[s]->push(std::move(token));
        }
        sm.wall_s += seconds_since(t0);
        sm.tokens_out += static_cast<std::int64_t>(outputs.size());
        for (Frame_token& out : outputs) feed(s + 1, std::move(out));
    };

    for (std::int64_t i = 0; i < head_tokens; ++i) {
        if (options.stop_when && options.stop_when()) break;
        Frame_token token;
        token.index = i;
        feed(0, std::move(token));
        ++metrics.head_tokens;
    }

    for (std::size_t s = 0; s < n; ++s) {
        Stage_metrics& sm = metrics.stages[s];
        const Clock::time_point t0 = Clock::now();
        std::vector<Frame_token> outputs;
        {
            telemetry::Scoped_span span(stages_[s]->name());
            outputs = stages_[s]->flush();
        }
        sm.wall_s += seconds_since(t0);
        sm.tokens_out += static_cast<std::int64_t>(outputs.size());
        for (Frame_token& out : outputs) feed(s + 1, std::move(out));
    }
    return metrics;
}

Pipeline_metrics Pipeline::run_overlapped(std::int64_t head_tokens, const Pipeline_options& options)
{
    const std::size_t n = stages_.size();
    Pipeline_metrics metrics;
    metrics.stages.resize(n);
    for (std::size_t s = 0; s < n; ++s) metrics.stages[s].name = stages_[s]->name();

    // One bounded queue per edge; the capacity is the frames-in-flight
    // window between adjacent stages.
    std::vector<std::unique_ptr<util::Spsc_queue<Frame_token>>> queues;
    queues.reserve(n - 1);
    for (std::size_t e = 0; e + 1 < n; ++e) {
        queues.push_back(std::make_unique<util::Spsc_queue<Frame_token>>(
            static_cast<std::size_t>(options.frames_in_flight)));
    }

    std::atomic<bool> stop{false};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    auto record_error = [&] {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
    };

    // Each stage thread writes only its own Stage_metrics entry; entries
    // are read after the joins, so no locking is needed.
    auto stage_thread = [&](std::size_t s) {
        Stage& stage = *stages_[s];
        Stage_metrics& sm = metrics.stages[s];
        util::Spsc_queue<Frame_token>* in = s > 0 ? queues[s - 1].get() : nullptr;
        util::Spsc_queue<Frame_token>* out = s + 1 < n ? queues[s].get() : nullptr;
        const bool is_sink = out == nullptr;
        try {
            auto emit = [&](std::vector<Frame_token> outputs) -> bool {
                sm.tokens_out += static_cast<std::int64_t>(outputs.size());
                for (Frame_token& token : outputs) {
                    if (is_sink) {
                        recycle_token(std::move(token));
                    } else if (!out->push(std::move(token))) {
                        // Downstream died; nothing we produce can land.
                        return false;
                    }
                }
                if (is_sink && options.stop_when && options.stop_when()) {
                    stop.store(true, std::memory_order_relaxed);
                }
                return true;
            };

            bool downstream_alive = true;
            if (in == nullptr) {
                // Head: manufacture the token stream.
                for (std::int64_t i = 0; i < head_tokens; ++i) {
                    if (stop.load(std::memory_order_relaxed)) break;
                    Frame_token token;
                    token.index = i;
                    const Clock::time_point t0 = Clock::now();
                    std::vector<Frame_token> outputs;
                    {
                        telemetry::Scoped_span span(stage.name());
                        outputs = stage.push(std::move(token));
                    }
                    sm.wall_s += seconds_since(t0);
                    ++sm.tokens_in;
                    ++metrics.head_tokens;
                    if (!emit(std::move(outputs))) {
                        downstream_alive = false;
                        break;
                    }
                }
            } else {
                while (std::optional<Frame_token> token = in->pop()) {
                    ++sm.tokens_in;
                    const Clock::time_point t0 = Clock::now();
                    std::vector<Frame_token> outputs;
                    {
                        telemetry::Scoped_span span(stage.name());
                        outputs = stage.push(std::move(*token));
                    }
                    sm.wall_s += seconds_since(t0);
                    if (!emit(std::move(outputs))) {
                        downstream_alive = false;
                        break;
                    }
                }
            }

            if (downstream_alive) {
                const Clock::time_point t0 = Clock::now();
                std::vector<Frame_token> outputs;
                {
                    telemetry::Scoped_span span(stage.name());
                    outputs = stage.flush();
                }
                sm.wall_s += seconds_since(t0);
                emit(std::move(outputs));
            }
            // Normal end of stream: downstream drains what is queued,
            // then sees the close and flushes in turn.
            if (out != nullptr) out->close();
            if (!downstream_alive && in != nullptr) in->close();
        } catch (...) {
            record_error();
            // Unblock both neighbours; upstream sees failed pushes and
            // unwinds without flushing, downstream drains and finishes.
            if (in != nullptr) in->close();
            if (out != nullptr) out->close();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t s = 0; s < n; ++s) threads.emplace_back(stage_thread, s);
    for (std::thread& t : threads) t.join();

    // Queued tokens abandoned by an aborted run still hold pool-backed
    // frames; recycle them rather than letting the queue destructor free
    // the storage cold.
    for (auto& queue : queues) {
        while (std::optional<Frame_token> token = queue->pop()) recycle_token(std::move(*token));
    }

    for (std::size_t s = 0; s < n; ++s) {
        Stage_metrics& sm = metrics.stages[s];
        if (s > 0) {
            sm.mean_input_queue_depth = queues[s - 1]->mean_depth();
            sm.input_waits = queues[s - 1]->empty_waits();
        }
        if (s + 1 < n) sm.output_waits = queues[s]->full_waits();
    }

    if (first_error) std::rethrow_exception(first_error);
    return metrics;
}

} // namespace inframe::core
