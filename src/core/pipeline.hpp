// Stage-graph runtime for the simulation dataflow.
//
// The paper's whole evaluation is one pipeline — video -> encoder ->
// display/camera link -> decoder — and every driver in this repo
// (link_runner, the examples, the benches) is some assembly of that
// graph. core::Pipeline owns the assembly: stages implement a common
// push/flush interface, the runtime connects them with bounded SPSC
// queues carrying pool-backed frames by move, and a frames-in-flight
// executor overlaps stages across display frames.
//
// Determinism: each stage runs serially, in token-index order, on at
// most one thread. Its internal state therefore evolves exactly as in
// the serial loop, regardless of how many frames are in flight — overlap
// changes *when* a stage runs relative to other stages, never the order
// of inputs any single stage sees. All stochastic stages are already
// keyed by (seed, stage, index), and sinks observe tokens in index
// order, so the output is bit-identical for every frames_in_flight and
// thread count. tests/core/test_pipeline.cpp asserts this.
#pragma once

#include "imgproc/image.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace inframe::core {

// The unit of work flowing along pipeline edges. `image` is the payload
// frame (pool-backed; stages recycle or forward it — see Stage). The
// optional `reference` slot carries a second frame when a downstream
// stage needs both (e.g. the flicker assessor compares the encoded
// display frame against the raw video frame).
struct Frame_token {
    std::int64_t index = 0;  // sequence position within this edge's stream
    double time_s = 0.0;     // simulation timestamp (display/capture start)
    img::Imagef image;
    img::Imagef reference;
};

// A pipeline stage. Contract:
//  - push() receives tokens in ascending index order and returns zero or
//    more output tokens, also in ascending index order. A stage may
//    buffer (0 outputs now, several later) or fan out (several outputs
//    per input) as long as the cumulative output sequence is ordered.
//  - The stage takes ownership of the input token's images: it must
//    either move them into an output token or recycle them into
//    img::Frame_pool. Images on returned tokens become the runtime's
//    (and then the next stage's) responsibility.
//  - flush() is called exactly once, after the final push(), and may
//    emit trailing tokens (e.g. the decoder's partially captured frame).
//  - A stage is driven from a single thread at a time; it needs no
//    internal locking. Stages may call util::parallel_for freely — the
//    ambient pool supports concurrent top-level calls from different
//    stage threads.
class Stage {
public:
    virtual ~Stage() = default;
    virtual const char* name() const = 0;
    virtual std::vector<Frame_token> push(Frame_token token) = 0;
    virtual std::vector<Frame_token> flush() { return {}; }
};

// Adapter for one-off stages: wraps callables instead of requiring a
// named subclass. Used by drivers whose sink logic is a few lines.
class Function_stage : public Stage {
public:
    using Push_fn = std::function<std::vector<Frame_token>(Frame_token)>;
    using Flush_fn = std::function<std::vector<Frame_token>()>;

    Function_stage(std::string name, Push_fn push, Flush_fn flush = {})
        : name_(std::move(name)), push_(std::move(push)), flush_(std::move(flush))
    {
    }

    const char* name() const override { return name_.c_str(); }
    std::vector<Frame_token> push(Frame_token token) override { return push_(std::move(token)); }
    std::vector<Frame_token> flush() override { return flush_ ? flush_() : std::vector<Frame_token>{}; }

private:
    std::string name_;
    Push_fn push_;
    Flush_fn flush_;
};

// Per-stage observability, harvested after a run.
//
// The queue-derived fields only exist where a queue exists, i.e. in
// overlapped mode: serial execution has no edges (all three absent), the
// head stage has no input queue (depth and input_waits absent) and the
// sink has no output queue (output_waits absent). Absent values are
// reported as the sentinel -1, never as a misleadingly quiet 0 —
// consumers must check `>= 0` before aggregating.
struct Stage_metrics {
    std::string name;
    double wall_s = 0.0;              // time spent inside push()/flush()
    std::int64_t tokens_in = 0;
    std::int64_t tokens_out = 0;
    double mean_input_queue_depth = -1.0;  // occupancy seen at pop; -1 = no input queue
    std::int64_t input_waits = -1;    // pops that blocked; -1 = no input queue
    std::int64_t output_waits = -1;   // pushes that blocked; -1 = no output queue
};

struct Pipeline_metrics {
    double wall_s = 0.0;
    int frames_in_flight = 1;
    std::int64_t head_tokens = 0;     // tokens injected at the head stage
    std::vector<Stage_metrics> stages;
    // img::Frame_pool acquire outcomes during the run (delta, not lifetime).
    std::int64_t pool_hits = 0;
    std::int64_t pool_misses = 0;
};

struct Pipeline_options {
    // Bound on tokens concurrently in flight between adjacent stages
    // (the SPSC edge capacity). 1 = serial execution on the calling
    // thread; >1 runs each stage on its own thread with backpressure.
    int frames_in_flight = 1;
    // Optional early stop: once it returns true, no further head tokens
    // are injected (tokens already in flight drain normally). Serial
    // mode evaluates it before each head token; overlap mode evaluates
    // it on the sink thread after each consumed token, so a lambda may
    // safely read sink-stage state.
    std::function<bool()> stop_when;
};

// A linear stage graph plus its executor. Assemble with emplace_stage /
// add_stage (source first, sink last), then run(): the runtime injects
// `head_tokens` empty tokens (index 0..n-1) into the first stage and
// drives every token through to the sink, flushing each stage in order
// after its input stream ends. Images on tokens leaving the sink are
// recycled into img::Frame_pool by the runtime.
class Pipeline {
public:
    Pipeline() = default;
    Pipeline(const Pipeline&) = delete;
    Pipeline& operator=(const Pipeline&) = delete;

    Stage& add_stage(std::unique_ptr<Stage> stage);

    template <typename S, typename... Args>
    S& emplace_stage(Args&&... args)
    {
        auto stage = std::make_unique<S>(std::forward<Args>(args)...);
        S& ref = *stage;
        add_stage(std::move(stage));
        return ref;
    }

    std::size_t stage_count() const { return stages_.size(); }

    // Drives the graph to completion and returns the run's metrics.
    // May be called repeatedly; stages keep their internal state across
    // runs, but head token indices restart at 0 for each run.
    Pipeline_metrics run(std::int64_t head_tokens, Pipeline_options options = {});

private:
    Pipeline_metrics run_serial(std::int64_t head_tokens, const Pipeline_options& options);
    Pipeline_metrics run_overlapped(std::int64_t head_tokens, const Pipeline_options& options);

    std::vector<std::unique_ptr<Stage>> stages_;
};

} // namespace inframe::core
