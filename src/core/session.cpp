#include "core/session.hpp"

#include "util/contract.hpp"

namespace inframe::core {

Frame_codec::Frame_codec(int capacity_bits, Session_options options)
{
    if (!options.use_rs) {
        crc_framer_.emplace(capacity_bits);
        return;
    }
    util::expects(options.rs_parity_fraction > 0.0 && options.rs_parity_fraction < 1.0,
                  "session: RS parity fraction must be in (0, 1)");
    const int n = std::min(capacity_bits / 8, 255);
    const int parity = std::max(2, static_cast<int>(n * options.rs_parity_fraction));
    const int k = n - parity;
    // 12 bytes of protected header; at least one payload byte must fit.
    util::expects(k >= 13, "session: frame capacity too small for RS framing");
    rs_framer_.emplace(capacity_bits, n, k);
}

int Frame_codec::max_payload_bytes() const
{
    return rs_framer_ ? rs_framer_->max_payload_bytes() : crc_framer_->max_payload_bytes();
}

std::vector<std::uint8_t> Frame_codec::build(std::uint32_t sequence,
                                             std::span<const std::uint8_t> payload) const
{
    return rs_framer_ ? rs_framer_->build(sequence, payload)
                      : crc_framer_->build(sequence, payload);
}

std::optional<Frame_codec::Parsed> Frame_codec::parse(std::span<const std::uint8_t> bits) const
{
    return parse(bits, {});
}

std::optional<Frame_codec::Parsed>
Frame_codec::parse(std::span<const std::uint8_t> bits,
                   std::span<const std::uint8_t> trusted) const
{
    Parsed parsed;
    if (rs_framer_) {
        const auto inner = rs_framer_->parse(bits, trusted);
        if (!inner) return std::nullopt;
        parsed.sequence = inner->sequence;
        parsed.payload = inner->payload;
        return parsed;
    }
    const auto inner = crc_framer_->parse(bits);
    if (!inner) return std::nullopt;
    parsed.sequence = inner->sequence;
    parsed.payload = inner->payload;
    return parsed;
}

Inframe_sender::Inframe_sender(Inframe_config config, std::vector<std::uint8_t> message,
                               bool loop, Session_options options)
    : encoder_(config), codec_(config.geometry.payload_bits_per_frame(), options), loop_(loop)
{
    chunks_ = coding::chunk_message(message, codec_.max_payload_bytes());
    refill_queue();
}

void Inframe_sender::refill_queue()
{
    // Keep a couple of data frames queued so the encoder can smooth into
    // the *next* frame's bits.
    while (encoder_.queued_data_frames() < 3) {
        const std::size_t chunk_index = next_sequence_ % chunks_.size();
        if (!loop_ && next_sequence_ >= chunks_.size()) break;
        const auto bits = codec_.build(next_sequence_, chunks_[chunk_index]);
        encoder_.queue_payload(bits);
        ++next_sequence_;
    }
}

img::Imagef Inframe_sender::next_display_frame(const img::Imagef& video_frame)
{
    refill_queue();
    return encoder_.next_display_frame(video_frame);
}

Inframe_receiver::Inframe_receiver(Decoder_params params, std::size_t expected_chunks,
                                   Session_options options)
    : decoder_(std::move(params)),
      codec_(decoder_.params().geometry.payload_bits_per_frame(), options),
      expected_chunks_(expected_chunks)
{
    util::expects(expected_chunks >= 1, "receiver: expected chunk count must be positive");
}

void Inframe_receiver::ingest(const Data_frame_result& result)
{
    const auto parsed =
        codec_.parse(result.gob.payload_bits, result.gob.payload_bit_trusted);
    if (!parsed) {
        ++frames_rejected_;
        return;
    }
    ++frames_decoded_;
    const std::uint32_t chunk_index = parsed->sequence % expected_chunks_;
    chunks_.emplace(chunk_index, parsed->payload);
}

void Inframe_receiver::push_capture(const img::Imagef& capture, double start_time)
{
    for (const auto& result : decoder_.push_capture(capture, start_time)) ingest(result);
}

void Inframe_receiver::finish()
{
    if (const auto result = decoder_.flush()) ingest(*result);
}

bool Inframe_receiver::message_complete() const
{
    if (chunks_.size() < expected_chunks_) return false;
    for (std::uint32_t i = 0; i < expected_chunks_; ++i) {
        if (!chunks_.contains(i)) return false;
    }
    return true;
}

std::vector<std::uint8_t> Inframe_receiver::message() const
{
    if (!message_complete()) return {};
    std::vector<std::uint8_t> out;
    for (std::uint32_t i = 0; i < expected_chunks_; ++i) {
        const auto& chunk = chunks_.at(i);
        out.insert(out.end(), chunk.begin(), chunk.end());
    }
    return out;
}

Decoder_params make_decoder_params(const Inframe_config& config, int capture_width,
                                   int capture_height)
{
    Decoder_params params;
    params.geometry = config.geometry;
    params.capture_width = capture_width;
    params.capture_height = capture_height;
    params.tau = config.tau;
    params.display_fps = config.display_fps;
    params.validate();
    return params;
}

} // namespace inframe::core
