// Sender/receiver sessions: the byte-stream API a downstream application
// uses. The sender chunks a message into framed data frames (header +
// CRC, 3.3's framing made concrete) and feeds the encoder; the receiver
// turns decoded data frames back into ordered payload chunks.
#pragma once

#include "coding/framing.hpp"
#include "core/decoder.hpp"
#include "core/encoder.hpp"

#include <map>
#include <optional>

namespace inframe::core {

// Frame-level protection for sessions. The paper's strawman leaves error
// correction beyond GOB parity as future work; real message delivery
// needs it, because one undecodable GOB corrupts the whole frame payload.
struct Session_options {
    // Wrap every frame in a Reed-Solomon codeword so bursts of lost GOBs
    // (rolling-shutter bands) are corrected. Off = bare CRC framing: a
    // frame is accepted only if it decodes perfectly.
    bool use_rs = true;

    // Fraction of the RS codeword spent on parity symbols.
    double rs_parity_fraction = 0.55;
};

// Wraps the CRC-only Payload_framer and the Rs_framer behind one
// interface so sessions can switch protection modes.
class Frame_codec {
public:
    Frame_codec(int capacity_bits, Session_options options);

    int max_payload_bytes() const;
    std::vector<std::uint8_t> build(std::uint32_t sequence,
                                    std::span<const std::uint8_t> payload) const;

    struct Parsed {
        std::uint32_t sequence = 0;
        std::vector<std::uint8_t> payload;
    };
    std::optional<Parsed> parse(std::span<const std::uint8_t> bits) const;

    // Erasure-aware parse (RS mode only): trusted marks reliable bits;
    // untrusted spans become symbol erasures for the RS decoder.
    std::optional<Parsed> parse(std::span<const std::uint8_t> bits,
                                std::span<const std::uint8_t> trusted) const;

private:
    std::optional<coding::Payload_framer> crc_framer_;
    std::optional<coding::Rs_framer> rs_framer_;
};

class Inframe_sender {
public:
    // loop = true keeps re-broadcasting the message (carousel mode, e.g.
    // coupon links in an ad video, 5); false idles once sent.
    Inframe_sender(Inframe_config config, std::vector<std::uint8_t> message, bool loop = true,
                   Session_options options = {});

    // Multiplexes the next display frame over the given video frame.
    img::Imagef next_display_frame(const img::Imagef& video_frame);

    // Chunks of the message and frames needed for one full carousel pass.
    std::size_t total_chunks() const { return chunks_.size(); }

    const Inframe_encoder& encoder() const { return encoder_; }
    const Frame_codec& codec() const { return codec_; }

private:
    void refill_queue();

    Inframe_encoder encoder_;
    Frame_codec codec_;
    std::vector<std::vector<std::uint8_t>> chunks_;
    std::uint32_t next_sequence_ = 0;
    bool loop_;
};

class Inframe_receiver {
public:
    Inframe_receiver(Decoder_params params, std::size_t expected_chunks,
                     Session_options options = {});

    // Feeds one capture; internally decodes data frames and parses payload
    // chunks as they complete.
    void push_capture(const img::Imagef& capture, double start_time);

    // Finalizes pending state (end of stream).
    void finish();

    // True once every chunk sequence [0, expected_chunks) has arrived.
    bool message_complete() const;

    // Concatenated message (empty until complete).
    std::vector<std::uint8_t> message() const;

    std::size_t chunks_received() const { return chunks_.size(); }
    std::size_t frames_decoded() const { return frames_decoded_; }
    std::size_t frames_rejected() const { return frames_rejected_; }

    const Inframe_decoder& decoder() const { return decoder_; }

private:
    void ingest(const Data_frame_result& result);

    Inframe_decoder decoder_;
    Frame_codec codec_;
    std::size_t expected_chunks_;
    std::map<std::uint32_t, std::vector<std::uint8_t>> chunks_;
    std::size_t frames_decoded_ = 0;
    std::size_t frames_rejected_ = 0;
};

// Matching decoder parameters for an encoder configuration and a camera's
// capture resolution.
Decoder_params make_decoder_params(const Inframe_config& config, int capture_width,
                                   int capture_height);

} // namespace inframe::core
