#include "core/stages.hpp"

#include "imgproc/pool.hpp"
#include "util/contract.hpp"
#include "util/prng.hpp"

#include <algorithm>
#include <utility>

namespace inframe::core {

namespace {

void recycle(img::Imagef&& frame)
{
    img::Frame_pool::instance().recycle(std::move(frame));
}

} // namespace

Payload_source make_random_payload_source(std::uint64_t seed, int bits_per_frame)
{
    util::expects(bits_per_frame > 0, "payload source: bits per frame must be positive");
    struct State {
        util::Prng prng;
        std::int64_t next = 0;
    };
    auto state = std::make_shared<State>(State{util::Prng(seed), 0});
    return [state, bits_per_frame](std::int64_t index) {
        // The Prng stream is sequential, so pulls must arrive in order —
        // which the Encode_stage top-up guarantees.
        util::expects(index == state->next, "payload source: indices must be sequential");
        ++state->next;
        return state->prng.next_bits(static_cast<std::size_t>(bits_per_frame));
    };
}

// --- Video_stage ----------------------------------------------------------

Video_stage::Video_stage(std::shared_ptr<const video::Video_source> source,
                         video::Playback_schedule schedule)
    : video_(std::move(source)), schedule_(schedule)
{
    util::expects(video_ != nullptr, "video stage: source required");
}

std::vector<Frame_token> Video_stage::push(Frame_token token)
{
    token.time_s = schedule_.display_time(token.index);
    token.image = video_->frame(schedule_.video_frame_for_display(token.index));
    std::vector<Frame_token> out;
    out.push_back(std::move(token));
    return out;
}

// --- Encode_stage ---------------------------------------------------------

Encode_stage::Encode_stage(Inframe_config config, Options options)
    : encoder_(std::move(config)), options_(std::move(options))
{
}

void Encode_stage::top_up()
{
    if (!options_.payloads) return;
    // The encoder peeks at data frame d+1 while frame d is on air (the
    // transition envelope needs the next bits), so keep the queue one
    // frame ahead of the display index.
    const std::int64_t needed = encoder_.display_index() / encoder_.config().tau + 1;
    while (next_payload_index_ <= needed) {
        std::vector<std::uint8_t> bits = options_.payloads(next_payload_index_);
        if (bits.empty()) {
            options_.payloads = nullptr; // exhausted; idle from here on
            break;
        }
        encoder_.queue_payload(bits);
        ++next_payload_index_;
    }
}

img::Imagef Encode_stage::encode(const img::Imagef& video_frame)
{
    top_up();
    return encoder_.next_display_frame(video_frame);
}

std::vector<Frame_token> Encode_stage::push(Frame_token token)
{
    img::Imagef display = encode(token.image);
    if (options_.emit_reference) {
        recycle(std::move(token.reference));
        token.reference = std::move(token.image);
    } else {
        recycle(std::move(token.image));
    }
    token.image = std::move(display);
    std::vector<Frame_token> out;
    out.push_back(std::move(token));
    return out;
}

// --- Link_stage -----------------------------------------------------------

Link_stage::Link_stage(channel::Display_params display, channel::Camera_params camera,
                       int screen_width, int screen_height,
                       channel::Impairment_config impairments)
    : link_(display, camera, screen_width, screen_height, impairments)
{
}

std::vector<Frame_token> Link_stage::push(Frame_token token)
{
    std::vector<channel::Capture> captures = link_.push_display_frame(token.image);
    recycle(std::move(token.image));
    recycle(std::move(token.reference));
    std::vector<Frame_token> out;
    out.reserve(captures.size());
    for (channel::Capture& capture : captures) {
        Frame_token produced;
        produced.index = capture.index;
        produced.time_s = capture.start_time;
        produced.image = std::move(capture.image);
        out.push_back(std::move(produced));
    }
    return out;
}

// --- Decode_stage ---------------------------------------------------------

Decode_stage::Decode_stage(Decoder_params params) : decoder_(std::move(params)) {}

std::vector<Frame_token> Decode_stage::push(Frame_token token)
{
    for (Data_frame_result& result : decoder_.push_capture(token.image, token.time_s)) {
        results_.push_back(std::move(result));
    }
    recycle(std::move(token.image));
    recycle(std::move(token.reference));
    return {};
}

std::vector<Frame_token> Decode_stage::flush()
{
    if (std::optional<Data_frame_result> last = decoder_.flush()) {
        results_.push_back(std::move(*last));
    }
    // Sinks reorder: present results in data-frame order regardless of
    // how the executor interleaved their arrival.
    std::stable_sort(results_.begin(), results_.end(),
                     [](const Data_frame_result& a, const Data_frame_result& b) {
                         return a.data_frame_index < b.data_frame_index;
                     });
    return {};
}

// --- Send_stage / Receive_stage -------------------------------------------

Send_stage::Send_stage(Inframe_config config, std::vector<std::uint8_t> message, bool loop,
                       Session_options options)
    : sender_(std::move(config), std::move(message), loop, options)
{
}

std::vector<Frame_token> Send_stage::push(Frame_token token)
{
    img::Imagef display = sender_.next_display_frame(token.image);
    recycle(std::move(token.image));
    token.image = std::move(display);
    std::vector<Frame_token> out;
    out.push_back(std::move(token));
    return out;
}

Receive_stage::Receive_stage(Decoder_params params, std::size_t expected_chunks,
                             Session_options options)
    : receiver_(std::move(params), expected_chunks, options)
{
}

std::vector<Frame_token> Receive_stage::push(Frame_token token)
{
    receiver_.push_capture(token.image, token.time_s);
    if (completed_at_ < 0.0 && receiver_.message_complete()) completed_at_ = token.time_s;
    recycle(std::move(token.image));
    recycle(std::move(token.reference));
    return {};
}

std::vector<Frame_token> Receive_stage::flush()
{
    receiver_.finish();
    return {};
}

} // namespace inframe::core
