// Concrete pipeline stages for the paper's dataflow:
//
//   Video_stage -> Encode_stage -> Link_stage -> Decode_stage
//                  (Send_stage)                  (Receive_stage)
//
// Every driver in the repo — link_runner, the examples, the benches —
// assembles its graph from these instead of hand-rolling the
// video -> encoder -> display/camera -> decoder loop. Each stage wraps
// one existing component (Inframe_encoder, Screen_camera_link, ...) and
// owns the Frame_pool recycling discipline at its boundary, so callers
// never touch frame lifetimes.
#pragma once

#include "channel/link.hpp"
#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/pipeline.hpp"
#include "core/session.hpp"
#include "video/playback.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace inframe::core {

// Pulls the payload bits for one data frame. Called with strictly
// increasing data-frame indices (0, 1, 2, ...); returning an empty
// vector means the source is exhausted and the encoder idles from then
// on. This replaces queueing every payload of a run up front — memory
// no longer grows with the experiment duration.
using Payload_source = std::function<std::vector<std::uint8_t>(std::int64_t data_frame_index)>;

// The paper's "pseudo-random data generator with a pre-set seed",
// generated lazily frame by frame. The bit stream is identical to
// draining one util::Prng(seed) up front.
Payload_source make_random_payload_source(std::uint64_t seed, int bits_per_frame);

// Source stage: expands bare head tokens (sequence indices) into video
// frames with display timestamps, following the playback schedule.
class Video_stage final : public Stage {
public:
    Video_stage(std::shared_ptr<const video::Video_source> source,
                video::Playback_schedule schedule);

    const char* name() const override { return "video"; }
    std::vector<Frame_token> push(Frame_token token) override;

    const video::Playback_schedule& schedule() const { return schedule_; }

private:
    std::shared_ptr<const video::Video_source> video_;
    video::Playback_schedule schedule_;
};

// Multiplexes data onto the video frame (Inframe_encoder), topping up
// the encoder's queue from the Payload_source just ahead of the air
// schedule (the encoder peeks one data frame ahead for its transition
// envelope).
class Encode_stage final : public Stage {
public:
    struct Options {
        Payload_source payloads;     // empty -> the encoder idles
        // Keep the raw video frame on the token's `reference` slot (the
        // flicker assessor compares display against video); otherwise
        // the video frame is recycled here.
        bool emit_reference = false;
    };

    Encode_stage(Inframe_config config, Options options);

    const char* name() const override { return "encode"; }
    std::vector<Frame_token> push(Frame_token token) override;

    // Top-up + next_display_frame, for drivers that must pre-roll the
    // encoder outside a running pipeline (the sync-acquisition bench
    // discards the first N display frames before the link starts).
    img::Imagef encode(const img::Imagef& video_frame);

    Inframe_encoder& encoder() { return encoder_; }
    const Inframe_encoder& encoder() const { return encoder_; }

private:
    void top_up();

    Inframe_encoder encoder_;
    Options options_;
    std::int64_t next_payload_index_ = 0;
};

// Display + camera + impairment chain. The single factory for
// channel::Screen_camera_link in driver code: every assembly routes
// through here, so examples cannot drift from link_runner's defaults by
// forgetting the Impairment_config. Emits one token per completed
// capture (timestamped with the exposure start), which is usually fewer
// than one per display frame.
class Link_stage final : public Stage {
public:
    Link_stage(channel::Display_params display, channel::Camera_params camera, int screen_width,
               int screen_height, channel::Impairment_config impairments = {});

    const char* name() const override { return "link"; }
    std::vector<Frame_token> push(Frame_token token) override;

    channel::Screen_camera_link& link() { return link_; }
    std::int64_t captures_dropped() const { return link_.captures_dropped(); }

private:
    channel::Screen_camera_link link_;
};

// Demultiplexing sink: accumulates Data_frame_results in data-frame
// order for the driver to account after the run.
class Decode_stage final : public Stage {
public:
    explicit Decode_stage(Decoder_params params);

    const char* name() const override { return "decode"; }
    std::vector<Frame_token> push(Frame_token token) override;
    std::vector<Frame_token> flush() override;

    const std::vector<Data_frame_result>& results() const { return results_; }
    Inframe_decoder& decoder() { return decoder_; }

private:
    Inframe_decoder decoder_;
    std::vector<Data_frame_result> results_;
};

// Session-level counterparts: Send_stage multiplexes a framed message
// carousel (Inframe_sender) instead of raw payload bits; Receive_stage
// sinks captures into an Inframe_receiver and records when the message
// completed.
class Send_stage final : public Stage {
public:
    Send_stage(Inframe_config config, std::vector<std::uint8_t> message, bool loop = true,
               Session_options options = {});

    const char* name() const override { return "send"; }
    std::vector<Frame_token> push(Frame_token token) override;

    Inframe_sender& sender() { return sender_; }
    const Inframe_sender& sender() const { return sender_; }

private:
    Inframe_sender sender_;
};

class Receive_stage final : public Stage {
public:
    Receive_stage(Decoder_params params, std::size_t expected_chunks,
                  Session_options options = {});

    const char* name() const override { return "receive"; }
    std::vector<Frame_token> push(Frame_token token) override;
    std::vector<Frame_token> flush() override;

    Inframe_receiver& receiver() { return receiver_; }
    const Inframe_receiver& receiver() const { return receiver_; }

    // Capture timestamp at which message_complete() first became true;
    // negative if the message never completed.
    double completed_at() const { return completed_at_; }

private:
    Inframe_receiver receiver_;
    double completed_at_ = -1.0;
};

} // namespace inframe::core
