#include "core/sync.hpp"

#include "telemetry/telemetry.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace inframe::core {

Phase_estimator::Phase_estimator(Decoder_params decoder_params, Sync_params sync_params)
    : decoder_params_(std::move(decoder_params)), sync_params_(sync_params),
      metric_probe_(decoder_params_),
      frame_period_(decoder_params_.tau / decoder_params_.display_fps)
{
    util::expects(sync_params.candidates >= 8, "sync: need at least 8 candidate offsets");
    util::expects(sync_params.min_captures >= 8, "sync: need at least 8 captures");
    util::expects(sync_params.min_lock_score >= 0.0, "sync: lock score must be non-negative");
}

void Phase_estimator::push_capture(const img::Imagef& capture, double receiver_time)
{
    util::expects(receiver_time >= 0.0, "sync: receiver time must be non-negative");
    observations_.push_back({receiver_time, metric_probe_.block_metrics(capture)});
    cached_offset_.reset();
}

double Phase_estimator::score_candidate(double offset) const
{
    // Group stable-window captures into data frames under this offset.
    std::map<std::int64_t, std::vector<const Observation*>> frames;
    for (const auto& observation : observations_) {
        const double shifted = observation.time - offset;
        if (shifted < 0.0) continue;
        const auto frame = static_cast<std::int64_t>(std::floor(shifted / frame_period_));
        const double phase = shifted / frame_period_ - static_cast<double>(frame);
        if (phase < decoder_params_.stable_fraction - 1e-9) {
            frames[frame].push_back(&observation);
        }
    }

    util::Running_stats dprimes;
    double disagreement = 0.0;
    std::size_t pairs = 0;
    const std::size_t block_count = observations_.front().metrics.size();
    for (const auto& [frame, members] : frames) {
        std::vector<double> averaged(block_count, 0.0);
        for (const auto* member : members) {
            for (std::size_t i = 0; i < block_count; ++i) averaged[i] += member->metrics[i];
        }
        for (auto& v : averaged) v /= static_cast<double>(members.size());
        const auto split = metric_probe_.split_metrics(averaged);
        dprimes.add(split.bimodal ? split.dprime : 0.0);

        // Pattern agreement between the captures grouped into this frame:
        // captures from different true frames disagree on ~half the bits.
        for (std::size_t a = 1; a < members.size(); ++a) {
            double distance = 0.0;
            for (std::size_t i = 0; i < block_count; ++i) {
                const bool bit_prev = members[a - 1]->metrics[i] > split.value;
                const bool bit_this = members[a]->metrics[i] > split.value;
                distance += bit_prev != bit_this;
            }
            disagreement += distance / static_cast<double>(block_count);
            ++pairs;
        }
    }
    if (dprimes.count() < 3) return -1e9;
    const double mean_disagreement = pairs > 0 ? disagreement / static_cast<double>(pairs) : 0.0;
    return dprimes.mean() - sync_params_.disagreement_weight * mean_disagreement;
}

std::optional<double> Phase_estimator::estimated_offset() const
{
    if (cached_offset_) return cached_offset_;
    if (static_cast<int>(observations_.size()) < sync_params_.min_captures) {
        return std::nullopt;
    }

    telemetry::Scoped_span span("sync.estimate");
    double best_score = -1e9;
    double best_offset = 0.0;
    for (int c = 0; c < sync_params_.candidates; ++c) {
        const double offset =
            frame_period_ * static_cast<double>(c) / sync_params_.candidates;
        const double score = score_candidate(offset);
        if (score > best_score) {
            best_score = score;
            best_offset = offset;
        }
    }

    lock_score_ = best_score;
    static const int score_metric =
        telemetry::intern_metric("sync.lock_score", telemetry::Metric_kind::gauge);
    telemetry::gauge_set(score_metric, best_score);
    if (best_score < sync_params_.min_lock_score) {
        telemetry::emit_event({"sync", "search", static_cast<std::int64_t>(observations_.size()),
                               best_score});
        return std::nullopt;
    }
    cached_offset_ = best_offset;
    telemetry::emit_event({"sync", "lock", static_cast<std::int64_t>(observations_.size()),
                           best_offset});
    return cached_offset_;
}

Synced_decoder::Synced_decoder(Decoder_params params, Sync_params sync_params)
    : params_(std::move(params)), estimator_(params_, sync_params)
{
}

std::vector<Data_frame_result> Synced_decoder::push_capture(const img::Imagef& capture,
                                                            double receiver_time)
{
    std::vector<Data_frame_result> results;
    if (!decoder_) {
        estimator_.push_capture(capture, receiver_time);
        backlog_.emplace_back(capture, receiver_time);
        offset_ = estimator_.estimated_offset();
        if (!offset_) return results;
        decoder_.emplace(params_);
        decoder_->set_sync_context(1, *offset_);
        // Replay buffered captures with corrected timestamps. Captures
        // earlier than the offset fall before the first complete frame
        // and are dropped.
        for (const auto& [buffered, time] : backlog_) {
            const double corrected = time - *offset_;
            if (corrected < 0.0) continue;
            for (auto& r : decoder_->push_capture(buffered, corrected)) {
                results.push_back(std::move(r));
            }
        }
        backlog_.clear();
        return results;
    }
    const double corrected = receiver_time - *offset_;
    if (corrected < 0.0) return results;
    return decoder_->push_capture(capture, corrected);
}

} // namespace inframe::core
