// Data-frame phase synchronization.
//
// The paper's prototype assumes the receiver knows where data frames
// begin (a "strawman" limitation of 5). A real receiver only knows the
// protocol constants (tau, display rate) — not the offset between its
// clock and the transmitter's data-frame boundaries.
//
// Phase_estimator recovers that offset by trying candidate offsets and
// scoring each by *decode quality*: group the buffered captures into data
// frames under the candidate, average the stable-window captures of each
// frame, and measure (a) how cleanly the averaged block metrics split into
// two classes (d') and (b) how well the captures grouped together agree on
// the bit pattern. The true offset maximizes the combination; offsets
// equivalent up to capture assignment score identically, which is exactly
// the equivalence the decoder cares about.
#pragma once

#include "core/decoder.hpp"

#include <optional>
#include <vector>

namespace inframe::core {

struct Sync_params {
    // Candidate offsets tested across one data-frame period. Resolution is
    // period / candidates; 48 gives a quarter display frame at tau = 12.
    int candidates = 48;

    // Captures required before an estimate is produced. Each data frame
    // spans ~tau/4 captures, so 24 covers several boundaries.
    int min_captures = 24;

    // Required best score (d'-based) for a confident lock; matches the
    // decoder's separation gate.
    double min_lock_score = 3.0;

    // Penalty weight on within-frame pattern disagreement.
    double disagreement_weight = 10.0;
};

class Phase_estimator {
public:
    Phase_estimator(Decoder_params decoder_params, Sync_params sync_params = {});

    // Feeds a capture stamped with the *receiver's* clock.
    void push_capture(const img::Imagef& capture, double receiver_time);

    // Offset to subtract from receiver times so data-frame boundaries land
    // on multiples of the frame period; available once enough captures
    // with detectable structure have been seen.
    std::optional<double> estimated_offset() const;

    // Diagnostic: the winning candidate's score.
    double lock_score() const { return lock_score_; }

    std::size_t captures_seen() const { return observations_.size(); }

private:
    double score_candidate(double offset) const;

    Decoder_params decoder_params_;
    Sync_params sync_params_;
    Inframe_decoder metric_probe_;
    double frame_period_;

    struct Observation {
        double time = 0.0;
        std::vector<double> metrics;
    };
    std::vector<Observation> observations_;
    mutable std::optional<double> cached_offset_;
    mutable double lock_score_ = 0.0;
};

// Convenience wrapper: buffers captures, locks phase, then replays them
// through a decoder with corrected timestamps and keeps decoding live.
class Synced_decoder {
public:
    Synced_decoder(Decoder_params params, Sync_params sync_params = {});

    // Returns finalized data frames (empty until phase lock).
    std::vector<Data_frame_result> push_capture(const img::Imagef& capture,
                                                double receiver_time);

    bool locked() const { return decoder_.has_value(); }
    std::optional<double> offset() const { return offset_; }

private:
    Decoder_params params_;
    Phase_estimator estimator_;
    std::optional<Inframe_decoder> decoder_;
    std::optional<double> offset_;
    std::vector<std::pair<img::Imagef, double>> backlog_;
};

} // namespace inframe::core
