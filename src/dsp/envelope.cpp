#include "dsp/envelope.hpp"

#include "util/contract.hpp"

#include <cmath>
#include <numbers>

namespace inframe::dsp {

const char* to_string(Transition_shape shape)
{
    switch (shape) {
    case Transition_shape::srrc: return "srrc";
    case Transition_shape::linear: return "linear";
    case Transition_shape::stair: return "stair";
    }
    return "unknown";
}

double transition_gain_01(Transition_shape shape, double t)
{
    util::expects(t >= 0.0 && t <= 1.0, "transition gain time must be in [0,1]");
    switch (shape) {
    case Transition_shape::srrc:
        // Half of the square-root raised-cosine ramp: sqrt((1-cos(pi t))/2)
        // == sin(pi t / 2). Smooth approach into the new level.
        return std::sin(std::numbers::pi * t / 2.0);
    case Transition_shape::linear: return t;
    case Transition_shape::stair: return t < 0.5 ? 0.0 : 1.0;
    }
    return t;
}

double transition_gain_10(Transition_shape shape, double t)
{
    return transition_gain_01(shape, 1.0 - t);
}

std::vector<double> smoothing_envelope(std::span<const std::uint8_t> bits, int tau,
                                       Transition_shape shape)
{
    util::expects(tau >= 2 && tau % 2 == 0,
                  "smoothing cycle tau must be an even number of display frames");
    std::vector<double> envelope;
    envelope.reserve(bits.size() * static_cast<std::size_t>(tau));
    const int half = tau / 2;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        const double level = bits[i] ? 1.0 : 0.0;
        const bool flips = i + 1 < bits.size() && bits[i + 1] != bits[i];
        for (int k = 0; k < tau; ++k) {
            if (!flips || k < half) {
                envelope.push_back(level);
                continue;
            }
            // Transition occupies the second half of the cycle; t reaches
            // 1 exactly on the last frame so the next period starts at the
            // new level with no residual step.
            const double t = static_cast<double>(k - half + 1) / static_cast<double>(half);
            envelope.push_back(bits[i] ? transition_gain_10(shape, t)
                                       : transition_gain_01(shape, t));
        }
    }
    return envelope;
}

std::vector<double> pixel_waveform(std::span<const std::uint8_t> bits, int tau,
                                   Transition_shape shape)
{
    auto waveform = smoothing_envelope(bits, tau, shape);
    // Complementary +D / -D alternation at half the display rate.
    for (std::size_t j = 0; j < waveform.size(); ++j) {
        if (j % 2 == 1) waveform[j] = -waveform[j];
    }
    return waveform;
}

} // namespace inframe::dsp
