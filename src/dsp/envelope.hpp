// Temporal smoothing envelopes (paper 3.2, Fig. 5).
//
// When a Pixel's data bit flips between consecutive data frames, the
// amplitude of the embedded chessboard must not jump: the abrupt step
// excites the phantom-array sensitivity of the eye. InFrame shapes the
// amplitude with the functions Omega_10(t) / Omega_01(t) over the second
// half of the smoothing cycle. The paper settled on half of a square-root
// raised-cosine waveform after comparing it against linear and stair
// transitions; all three are implemented here so the ablation bench can
// reproduce that comparison.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace inframe::dsp {

enum class Transition_shape : std::uint8_t {
    srrc,   // half square-root raised-cosine (the paper's choice)
    linear, // straight ramp
    stair,  // single mid-point step
};

const char* to_string(Transition_shape shape);

// Gain of the 0 -> 1 transition at normalized time t in [0, 1].
// All shapes satisfy gain(0) == 0 and gain(1) == 1 and are monotone.
double transition_gain_01(Transition_shape shape, double t);

// Gain of the 1 -> 0 transition at normalized time t in [0, 1]
// (mirror image: gain(0) == 1, gain(1) == 0).
double transition_gain_10(Transition_shape shape, double t);

// Per-display-frame amplitude envelope for a sequence of data bits.
//
// One data frame occupies `tau` display frames (tau >= 2, even: the frames
// come in complementary +D/-D pairs). Within a data frame period the
// amplitude holds at the bit's level for the first half and, if the *next*
// bit differs, transitions over the second half — the paper's "switch at
// the tau/2-th iteration".
//
// Returns one gain in [0, 1] per display frame, length bits.size() * tau.
std::vector<double> smoothing_envelope(std::span<const std::uint8_t> bits, int tau,
                                       Transition_shape shape = Transition_shape::srrc);

// The signed per-display-frame data waveform for one Pixel: envelope gain
// times the alternating complementary sign (+1, -1, +1, -1, ...), times the
// bit value of the owning data frame. This is the red curve of Fig. 5.
std::vector<double> pixel_waveform(std::span<const std::uint8_t> bits, int tau,
                                   Transition_shape shape = Transition_shape::srrc);

} // namespace inframe::dsp
