#include "dsp/filter.hpp"

#include "util/contract.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace inframe::dsp {

std::vector<double> design_lowpass_fir(double cutoff_hz, double sample_rate, int taps)
{
    util::expects(sample_rate > 0.0, "FIR sample rate must be positive");
    util::expects(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0,
                  "FIR cutoff must be below Nyquist");
    util::expects(taps >= 3 && taps % 2 == 1, "FIR taps must be odd and >= 3");

    const double fc = cutoff_hz / sample_rate; // normalized cutoff
    const int mid = taps / 2;
    std::vector<double> kernel(static_cast<std::size_t>(taps));
    double sum = 0.0;
    for (int n = 0; n < taps; ++n) {
        const int k = n - mid;
        const double sinc = k == 0 ? 2.0 * fc
                                   : std::sin(2.0 * std::numbers::pi * fc * k)
                                         / (std::numbers::pi * k);
        const double hamming =
            0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * n / (taps - 1));
        kernel[static_cast<std::size_t>(n)] = sinc * hamming;
        sum += kernel[static_cast<std::size_t>(n)];
    }
    for (auto& k : kernel) k /= sum; // unity DC gain
    return kernel;
}

std::vector<double> fir_filter(std::span<const double> signal, std::span<const double> kernel)
{
    util::expects(!kernel.empty() && kernel.size() % 2 == 1, "FIR kernel must be odd-length");
    if (signal.empty()) return {};
    const int mid = static_cast<int>(kernel.size() / 2);
    const int n = static_cast<int>(signal.size());
    std::vector<double> out(signal.size());
    for (int i = 0; i < n; ++i) {
        double acc = 0.0;
        for (int k = 0; k < static_cast<int>(kernel.size()); ++k) {
            int j = i + mid - k;
            j = std::clamp(j, 0, n - 1); // edge replication
            acc += kernel[static_cast<std::size_t>(k)] * signal[static_cast<std::size_t>(j)];
        }
        out[static_cast<std::size_t>(i)] = acc;
    }
    return out;
}

Butterworth_lowpass::Butterworth_lowpass(double cutoff_hz, double sample_rate)
{
    util::expects(sample_rate > 0.0, "Butterworth sample rate must be positive");
    util::expects(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0,
                  "Butterworth cutoff must be below Nyquist");
    // Bilinear transform with frequency pre-warping.
    const double k = std::tan(std::numbers::pi * cutoff_hz / sample_rate);
    const double sqrt2 = std::numbers::sqrt2;
    const double norm = 1.0 / (1.0 + sqrt2 * k + k * k);
    b0_ = k * k * norm;
    b1_ = 2.0 * b0_;
    b2_ = b0_;
    a1_ = 2.0 * (k * k - 1.0) * norm;
    a2_ = (1.0 - sqrt2 * k + k * k) * norm;
}

double Butterworth_lowpass::step(double x)
{
    const double y = b0_ * x + b1_ * x1_ + b2_ * x2_ - a1_ * y1_ - a2_ * y2_;
    x2_ = x1_;
    x1_ = x;
    y2_ = y1_;
    y1_ = y;
    return y;
}

void Butterworth_lowpass::reset()
{
    x1_ = x2_ = y1_ = y2_ = 0.0;
}

std::vector<double> Butterworth_lowpass::filter(std::span<const double> signal)
{
    reset();
    std::vector<double> out(signal.size());
    for (std::size_t i = 0; i < signal.size(); ++i) out[i] = step(signal[i]);
    return out;
}

Exponential_cascade::Exponential_cascade(double corner_hz, int stages, double sample_rate)
    : corner_hz_(corner_hz), sample_rate_(sample_rate)
{
    util::expects(sample_rate > 0.0, "cascade sample rate must be positive");
    util::expects(corner_hz > 0.0, "cascade corner frequency must be positive");
    util::expects(stages >= 1, "cascade needs at least one stage");
    // First-order exponential smoothing: alpha = dt / (RC + dt) with
    // RC = 1 / (2 pi fc).
    const double dt = 1.0 / sample_rate;
    const double rc = 1.0 / (2.0 * std::numbers::pi * corner_hz);
    alpha_ = dt / (rc + dt);
    state_.assign(static_cast<std::size_t>(stages), 0.0);
}

double Exponential_cascade::step(double x)
{
    double value = x;
    for (auto& s : state_) {
        s += alpha_ * (value - s);
        value = s;
    }
    return value;
}

void Exponential_cascade::reset()
{
    for (auto& s : state_) s = 0.0;
}

void Exponential_cascade::prime(double value)
{
    for (auto& s : state_) s = value;
}

std::vector<double> Exponential_cascade::filter(std::span<const double> signal)
{
    reset();
    std::vector<double> out(signal.size());
    for (std::size_t i = 0; i < signal.size(); ++i) out[i] = step(signal[i]);
    return out;
}

std::complex<double> Exponential_cascade::response_at(double frequency_hz) const
{
    // One stage is y[n] = y[n-1] + alpha (x[n] - y[n-1]):
    // H(z) = alpha / (1 - (1-alpha) z^-1).
    const double omega = 2.0 * std::numbers::pi * frequency_hz / sample_rate_;
    const std::complex<double> z_inverse = std::polar(1.0, -omega);
    const std::complex<double> per_stage = alpha_ / (1.0 - (1.0 - alpha_) * z_inverse);
    return std::pow(per_stage, stages());
}

double Exponential_cascade::gain_at(double frequency_hz) const
{
    return std::abs(response_at(frequency_hz));
}

} // namespace inframe::dsp
