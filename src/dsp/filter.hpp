// 1-D temporal filters.
//
// Two users: (1) the paper verifies the smoothing waveform by passing it
// through an "electronic low-pass filter" (Fig. 5) — reproduced with the
// FIR/Butterworth filters here; (2) the human-vision temporal model in
// src/hvs is built on the exponential cascade.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace inframe::dsp {

// Windowed-sinc (Hamming) low-pass FIR design.
// cutoff_hz must be in (0, sample_rate/2); taps must be odd and >= 3.
std::vector<double> design_lowpass_fir(double cutoff_hz, double sample_rate, int taps);

// Convolves signal with kernel, zero-phase alignment (output delayed by
// (taps-1)/2 is compensated by edge replication). Output length == input.
std::vector<double> fir_filter(std::span<const double> signal, std::span<const double> kernel);

// Second-order Butterworth low-pass via bilinear transform.
class Butterworth_lowpass {
public:
    Butterworth_lowpass(double cutoff_hz, double sample_rate);

    double step(double x);
    void reset();

    // Filters a whole signal (stateful; resets first).
    std::vector<double> filter(std::span<const double> signal);

private:
    double b0_, b1_, b2_, a1_, a2_;
    double x1_ = 0.0, x2_ = 0.0, y1_ = 0.0, y2_ = 0.0;
};

// Cascade of N identical first-order exponential low-pass stages: a steep
// high-frequency rolloff that approximates the human temporal contrast
// sensitivity cutoff.
class Exponential_cascade {
public:
    // corner_hz: the -3 dB frequency of a single stage.
    Exponential_cascade(double corner_hz, int stages, double sample_rate);

    double step(double x);
    void reset();

    // Sets every stage to `value`: the filter behaves as if the input had
    // been `value` forever, eliminating the start-up transient.
    void prime(double value);

    std::vector<double> filter(std::span<const double> signal);

    // Steady-state magnitude gain at the given frequency: the exact
    // discrete-time response of the cascade, |H(e^{jw})|^N.
    double gain_at(double frequency_hz) const;

    // Exact complex discrete-time response H(e^{jw})^N.
    std::complex<double> response_at(double frequency_hz) const;

    int stages() const { return static_cast<int>(state_.size()); }

private:
    double alpha_;
    double corner_hz_;
    double sample_rate_;
    std::vector<double> state_;
};

} // namespace inframe::dsp
