#include "dsp/spectrum.hpp"

#include "util/contract.hpp"

#include <cmath>
#include <numbers>

namespace inframe::dsp {

std::vector<double> magnitude_spectrum(std::span<const double> signal)
{
    util::expects(!signal.empty(), "magnitude_spectrum of empty signal");
    const std::size_t n = signal.size();
    const std::size_t bins = n / 2 + 1;
    std::vector<double> magnitude(bins);
    for (std::size_t k = 0; k < bins; ++k) {
        double real = 0.0;
        double imag = 0.0;
        for (std::size_t t = 0; t < n; ++t) {
            const double phase = -2.0 * std::numbers::pi * static_cast<double>(k)
                                 * static_cast<double>(t) / static_cast<double>(n);
            real += signal[t] * std::cos(phase);
            imag += signal[t] * std::sin(phase);
        }
        magnitude[k] = std::hypot(real, imag) / static_cast<double>(n);
    }
    return magnitude;
}

double dominant_frequency(std::span<const double> signal, double sample_rate)
{
    util::expects(sample_rate > 0.0, "dominant_frequency sample rate must be positive");
    const auto spectrum = magnitude_spectrum(signal);
    std::size_t best = 1;
    for (std::size_t k = 2; k < spectrum.size(); ++k) {
        if (spectrum[k] > spectrum[best]) best = k;
    }
    return static_cast<double>(best) * sample_rate / static_cast<double>(signal.size());
}

double band_energy(std::span<const double> signal, double sample_rate, double lo_hz,
                   double hi_hz)
{
    util::expects(sample_rate > 0.0, "band_energy sample rate must be positive");
    util::expects(lo_hz <= hi_hz, "band_energy requires lo <= hi");
    const auto spectrum = magnitude_spectrum(signal);
    const double bin_hz = sample_rate / static_cast<double>(signal.size());
    double total = 0.0;
    for (std::size_t k = 0; k < spectrum.size(); ++k) {
        const double f = static_cast<double>(k) * bin_hz;
        if (f >= lo_hz && f <= hi_hz) total += spectrum[k];
    }
    return total;
}

double remove_mean(std::span<double> signal)
{
    if (signal.empty()) return 0.0;
    double sum = 0.0;
    for (const double v : signal) sum += v;
    const double mean = sum / static_cast<double>(signal.size());
    for (double& v : signal) v -= mean;
    return mean;
}

} // namespace inframe::dsp
