// Small spectral analysis helpers: used to verify that the multiplexed
// pixel waveform concentrates its data energy at refresh_rate/2 (60 Hz on
// the paper's rig) and that smoothing suppresses low-frequency leakage.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace inframe::dsp {

// Magnitude spectrum |X(f)| / N of a real signal via direct DFT
// (signals here are a few hundred samples; O(N^2) is fine).
// Returns N/2 + 1 bins: bin k corresponds to k * sample_rate / N Hz.
std::vector<double> magnitude_spectrum(std::span<const double> signal);

// Frequency (Hz) of the largest non-DC bin.
double dominant_frequency(std::span<const double> signal, double sample_rate);

// Sum of magnitudes over bins whose frequency lies in [lo_hz, hi_hz].
double band_energy(std::span<const double> signal, double sample_rate, double lo_hz,
                   double hi_hz);

// Removes the mean in place and returns the removed value.
double remove_mean(std::span<double> signal);

} // namespace inframe::dsp
