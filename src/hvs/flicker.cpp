#include "hvs/flicker.hpp"

#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

namespace inframe::hvs {

namespace {

struct Pooling_kernel {
    int radius = 0;
    std::vector<float> weights; // (2r+1)^2, normalized

    static Pooling_kernel make(double sigma)
    {
        Pooling_kernel kernel;
        kernel.radius = std::max(1, static_cast<int>(std::ceil(2.0 * sigma)));
        const int size = 2 * kernel.radius + 1;
        kernel.weights.resize(static_cast<std::size_t>(size) * static_cast<std::size_t>(size));
        double sum = 0.0;
        for (int dy = -kernel.radius; dy <= kernel.radius; ++dy) {
            for (int dx = -kernel.radius; dx <= kernel.radius; ++dx) {
                const double w =
                    std::exp(-(static_cast<double>(dx) * dx + static_cast<double>(dy) * dy)
                             / (2.0 * sigma * sigma));
                kernel.weights[static_cast<std::size_t>((dy + kernel.radius) * size
                                                        + (dx + kernel.radius))] =
                    static_cast<float>(w);
                sum += w;
            }
        }
        for (auto& w : kernel.weights) w = static_cast<float>(w / sum);
        return kernel;
    }

    double sample(const img::Imagef& frame, double cx, double cy) const
    {
        const int ix = static_cast<int>(std::lround(cx));
        const int iy = static_cast<int>(std::lround(cy));
        const int size = 2 * radius + 1;
        double acc = 0.0;
        for (int dy = -radius; dy <= radius; ++dy) {
            for (int dx = -radius; dx <= radius; ++dx) {
                acc += weights[static_cast<std::size_t>((dy + radius) * size + (dx + radius))]
                       * frame.at_clamped(ix + dx, iy + dy);
            }
        }
        return acc;
    }
};

struct Site {
    double x = 0.0;
    double y = 0.0;
    double adapt_luminance = 0.0;
    double peak_amplitude = 0.0;
    std::optional<Perceptual_filter> filter;
};

} // namespace

struct Flicker_assessor::Impl {
    int width;
    int height;
    double fps;
    Vision_model_params params;
    Observer observer;
    Flicker_options options;
    Pooling_kernel kernel;
    std::vector<Site> sites;
    std::size_t frames_seen = 0;
    std::size_t warmup_frames = 0;

    Impl(int w, int h, double f, Vision_model_params p, Observer o, Flicker_options opts)
        : width(w), height(h), fps(f), params(p), observer(std::move(o)), options(opts),
          kernel(Pooling_kernel::make(std::max(0.3, opts.pooling_sigma_540 * h / 540.0)))
    {
        util::expects(w > 0 && h > 0, "Flicker_assessor frame size must be positive");
        util::expects(f > 0.0, "Flicker_assessor fps must be positive");
        util::expects(opts.max_sites >= 1, "Flicker_assessor needs at least one site");
        util::expects(opts.warmup_seconds >= 0.0, "warmup must be non-negative");
        warmup_frames = static_cast<std::size_t>(opts.warmup_seconds * f);
        place_sites();
    }

    void place_sites()
    {
        // Near-square jittered grid covering the frame.
        const double aspect = static_cast<double>(width) / height;
        int ny = std::max(1, static_cast<int>(std::floor(std::sqrt(options.max_sites / aspect))));
        int nx = std::max(1, options.max_sites / ny);
        util::Prng prng(options.seed);
        sites.reserve(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny));
        for (int gy = 0; gy < ny; ++gy) {
            for (int gx = 0; gx < nx; ++gx) {
                Site site;
                const double cell_w = static_cast<double>(width) / nx;
                const double cell_h = static_cast<double>(height) / ny;
                site.x = (gx + 0.5) * cell_w + prng.next_double(-0.25, 0.25) * cell_w;
                site.y = (gy + 0.5) * cell_h + prng.next_double(-0.25, 0.25) * cell_h;
                site.x = std::clamp(site.x, 0.0, static_cast<double>(width - 1));
                site.y = std::clamp(site.y, 0.0, static_cast<double>(height - 1));
                sites.push_back(std::move(site));
            }
        }
    }

    void push_frame(const img::Imagef& frame_in, const img::Imagef* reference_in = nullptr)
    {
        const img::Imagef frame = img::to_gray(frame_in);
        util::expects(frame.width() == width && frame.height() == height,
                      "Flicker_assessor frame size mismatch");
        img::Imagef reference;
        if (reference_in != nullptr) {
            reference = img::to_gray(*reference_in);
            util::expects(reference.width() == width && reference.height() == height,
                          "Flicker_assessor reference size mismatch");
        }
        const double t = static_cast<double>(frames_seen);
        for (auto& site : sites) {
            // Gaze drift (phantom-array condition): the retinal site slides
            // across the screen; wrap keeps it on-frame for long runs.
            double sx = site.x + options.gaze_velocity_x * t;
            double sy = site.y + options.gaze_velocity_y * t;
            if (width > 1) sx = std::fmod(std::fmod(sx, width - 1) + (width - 1), width - 1);
            if (height > 1) sy = std::fmod(std::fmod(sy, height - 1) + (height - 1), height - 1);
            double pooled = kernel.sample(frame, sx, sy);
            if (!site.filter) {
                // Adaptation state comes from the first (reference) frame.
                const double adapt = reference_in != nullptr
                                         ? kernel.sample(reference, sx, sy)
                                         : pooled;
                site.adapt_luminance = adapt;
                site.filter.emplace(params, observer, adapt, fps);
                site.filter->prime(adapt);
            }
            if (reference_in != nullptr) {
                // Side-by-side mode: cancel the content, keep the artifact
                // riding at the site's adaptation level.
                pooled = site.adapt_luminance + (pooled - kernel.sample(reference, sx, sy));
            }
            const double y = site.filter->step(pooled);
            if (frames_seen >= warmup_frames) {
                site.peak_amplitude = std::max(site.peak_amplitude, std::fabs(y));
            }
        }
        ++frames_seen;
    }

    Flicker_result result() const
    {
        Flicker_result r;
        r.frames_assessed = frames_seen;
        if (sites.empty() || frames_seen == 0) return r;

        // Rank sites by visibility ratio; judge by the worst 1% (at least
        // 4 sites) so a single noisy site cannot dominate but localized
        // artifacts still count.
        std::vector<double> ratios;
        ratios.reserve(sites.size());
        double mean_luminance = 0.0;
        for (const auto& site : sites) {
            const double threshold = amplitude_threshold(params, observer, site.adapt_luminance);
            ratios.push_back(site.peak_amplitude / threshold);
            mean_luminance += site.adapt_luminance;
            r.peak_perceived_amplitude = std::max(r.peak_perceived_amplitude, site.peak_amplitude);
        }
        mean_luminance /= static_cast<double>(sites.size());
        std::sort(ratios.begin(), ratios.end(), std::greater<>());
        const std::size_t top = std::max<std::size_t>(4, ratios.size() / 100);
        double acc = 0.0;
        const std::size_t n = std::min(top, ratios.size());
        for (std::size_t i = 0; i < n; ++i) acc += ratios[i];
        r.visibility_ratio = acc / static_cast<double>(n);
        r.adapt_luminance = mean_luminance;
        r.score = score_from_ratio(r.visibility_ratio);
        return r;
    }
};

Flicker_assessor::Flicker_assessor(int width, int height, double fps, Vision_model_params params,
                                   Observer observer, Flicker_options options)
    : impl_(std::make_unique<Impl>(width, height, fps, params, std::move(observer), options))
{
}

Flicker_assessor::~Flicker_assessor() = default;
Flicker_assessor::Flicker_assessor(Flicker_assessor&&) noexcept = default;
Flicker_assessor& Flicker_assessor::operator=(Flicker_assessor&&) noexcept = default;

void Flicker_assessor::push_frame(const img::Imagef& frame)
{
    impl_->push_frame(frame);
}

void Flicker_assessor::push_frame_pair(const img::Imagef& shown, const img::Imagef& reference)
{
    impl_->push_frame(shown, &reference);
}

Flicker_result Flicker_assessor::result() const
{
    return impl_->result();
}

int Flicker_assessor::width() const
{
    return impl_->width;
}

int Flicker_assessor::height() const
{
    return impl_->height;
}

Flicker_result assess_flicker(std::span<const img::Imagef> frames, double fps,
                              const Vision_model_params& params, const Observer& observer,
                              const Flicker_options& options)
{
    util::expects(!frames.empty(), "assess_flicker needs at least one frame");
    Flicker_assessor assessor(frames[0].width(), frames[0].height(), fps, params, observer,
                              options);
    for (const auto& frame : frames) assessor.push_frame(frame);
    return assessor.result();
}

Panel_result assess_flicker_panel(std::span<const img::Imagef> frames, double fps,
                                  const Vision_model_params& params,
                                  std::span<const Observer> panel,
                                  const Flicker_options& options)
{
    util::expects(!panel.empty(), "assess_flicker_panel needs observers");
    Panel_result result;
    util::Running_stats stats;
    for (const auto& observer : panel) {
        const auto r = assess_flicker(frames, fps, params, observer, options);
        result.scores.push_back(r.score);
        stats.add(r.score);
    }
    result.mean_score = stats.mean();
    result.stddev_score = stats.stddev();
    return result;
}

} // namespace inframe::hvs
