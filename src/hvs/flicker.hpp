// Frame-sequence flicker assessment.
//
// Replaces the paper's subjective side-by-side user study (4): given the
// sequence of frames a display emits, predict the 0-4 flicker score a
// viewer would report. The retina is sampled at a grid of sites, each site
// pools luminance over a small Gaussian aperture (the eye cannot resolve
// individual super Pixels at the paper's viewing distance — the basis of
// the Pixel-size design choice), and each pooled waveform runs through the
// Perceptual_filter band-pass. The verdict is driven by the worst sites:
// flicker anywhere on the screen is flicker.
//
// An optional constant-velocity gaze drift models the phantom-array
// condition: a moving retina turns the temporally-alternating chessboard
// into a spatial pattern that no longer cancels, which is why the paper
// keeps super Pixels near the eye's resolution limit.
#pragma once

#include "hvs/temporal_model.hpp"
#include "imgproc/image.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace inframe::hvs {

struct Flicker_options {
    // Retinal sampling sites (upper bound; the grid is near-square).
    int max_sites = 1024;

    // Gaussian pooling aperture, expressed at a 540-pixel-tall frame and
    // scaled linearly with resolution so results are viewing-geometry
    // stable: sigma_px = pooling_sigma_540 * height / 540.
    double pooling_sigma_540 = 1.0;

    // Frames to ignore while the temporal filters settle.
    double warmup_seconds = 0.5;

    // Gaze drift in pixels per frame (phantom-array condition); 0 = steady
    // fixation.
    double gaze_velocity_x = 0.0;
    double gaze_velocity_y = 0.0;

    // Site placement jitter seed.
    std::uint64_t seed = 9;
};

struct Flicker_result {
    // Predicted subjective score on the paper's 0-4 scale.
    double score = 0.0;

    // Visibility ratio backing the score (perceived amplitude / threshold,
    // pooled over the worst sites).
    double visibility_ratio = 0.0;

    // Worst single-site perceived amplitude (pixel-value units).
    double peak_perceived_amplitude = 0.0;

    // Luminance the model adapted to.
    double adapt_luminance = 0.0;

    std::size_t frames_assessed = 0;
};

class Flicker_assessor {
public:
    Flicker_assessor(int width, int height, double fps, Vision_model_params params,
                     Observer observer, Flicker_options options = {});
    ~Flicker_assessor();

    Flicker_assessor(Flicker_assessor&&) noexcept;
    Flicker_assessor& operator=(Flicker_assessor&&) noexcept;

    // Feeds the next displayed frame (display rate, grayscale).
    void push_frame(const img::Imagef& frame);

    // Side-by-side protocol (the paper's user study showed original and
    // multiplexed videos together and asked for the *difference*): feeds
    // the shown frame along with the unmodified reference frame. Content
    // motion, being present in both, cancels; only the embedding
    // artifacts are scored.
    void push_frame_pair(const img::Imagef& shown, const img::Imagef& reference);

    // Finishes the assessment; the assessor can keep receiving frames and
    // result() may be called repeatedly (it reflects frames so far).
    Flicker_result result() const;

    int width() const;
    int height() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

// Convenience: assess a pre-rendered sequence with one observer.
Flicker_result assess_flicker(std::span<const img::Imagef> frames, double fps,
                              const Vision_model_params& params, const Observer& observer,
                              const Flicker_options& options = {});

// Panel study: mean and standard deviation of the score over a panel, as
// the paper reports in Fig. 6. Scores are per-observer assessments of the
// same frame sequence.
struct Panel_result {
    double mean_score = 0.0;
    double stddev_score = 0.0;
    std::vector<double> scores;
};

Panel_result assess_flicker_panel(std::span<const img::Imagef> frames, double fps,
                                  const Vision_model_params& params,
                                  std::span<const Observer> panel,
                                  const Flicker_options& options = {});

} // namespace inframe::hvs
