#include "hvs/observer.hpp"

#include "util/contract.hpp"
#include "util/prng.hpp"

#include <algorithm>
#include <cmath>

namespace inframe::hvs {

std::vector<Observer> make_observer_panel(int n, std::uint64_t seed)
{
    util::expects(n >= 1, "observer panel needs at least one member");
    util::Prng prng(seed);
    std::vector<Observer> panel;
    panel.reserve(static_cast<std::size_t>(n));
    panel.push_back(Observer{}); // population reference
    panel.back().label = "observer-0";
    for (int i = 1; i < n; ++i) {
        Observer o;
        o.cff_ref_hz = std::clamp(prng.next_gaussian(45.0, 3.0), 38.0, 52.0);
        // Log-normal threshold spread around the reference sensitivity.
        o.amp_threshold = Observer{}.amp_threshold * std::exp(prng.next_gaussian(0.0, 0.18));
        // Mirror the paper's two expert viewers: observers 1 and 2 are
        // noticeably more sensitive than the rest of the panel.
        if (i <= 2) o.amp_threshold *= 0.75;
        o.label = "observer-" + std::to_string(i);
        panel.push_back(o);
    }
    return panel;
}

} // namespace inframe::hvs
