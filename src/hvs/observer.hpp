// Simulated observers.
//
// The paper's Fig. 6 reports flicker-perception scores (0-4) averaged over
// an 8-person panel. We replace the human panel with a population of model
// observers whose parameters are drawn from the vision literature the
// paper cites (7-11): critical flicker frequency near 40-50 Hz with
// individual spread, and individual sensitivity differences (the panel
// included "a designer and a video expert, who are more sensitive").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace inframe::hvs {

struct Observer {
    // CFF at the reference luminance (pixel level 100); population mean
    // ~45 Hz per Simonson & Brozek / Kelly.
    double cff_ref_hz = 45.0;

    // Perceived-amplitude visibility threshold at the reference luminance,
    // in pixel-value units. Smaller = more sensitive viewer. Calibrated
    // jointly with Vision_model_params::cff_to_corner (see there).
    double amp_threshold = 0.7;

    std::string label = "reference";
};

// Deterministically generates a panel of n observers. The first observer
// is always the population reference; the rest scatter around it. Two of
// the generated observers are biased sensitive (lower threshold) to mirror
// the paper's expert participants.
std::vector<Observer> make_observer_panel(int n, std::uint64_t seed);

} // namespace inframe::hvs
