#include "hvs/temporal_model.hpp"

#include "util/contract.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace inframe::hvs {

namespace {

double clamped_luminance(double luminance)
{
    // Pixel level 1 is the darkest adaptation state we model; log10 below
    // that is meaningless for an 8-bit display.
    return std::max(luminance, 1.0);
}

int oversample_factor(const Vision_model_params& params, double sample_rate_hz)
{
    return std::max(1, static_cast<int>(std::ceil(params.min_internal_rate_hz / sample_rate_hz)));
}

} // namespace

double cff_hz(const Vision_model_params& params, const Observer& observer, double luminance)
{
    const double l = clamped_luminance(luminance);
    const double cff =
        observer.cff_ref_hz + params.ferry_porter_slope_hz * std::log10(l / params.luminance_ref);
    return std::clamp(cff, 20.0, 70.0);
}

double corner_frequency_hz(const Vision_model_params& params, const Observer& observer,
                           double luminance)
{
    return cff_hz(params, observer, luminance) / params.cff_to_corner;
}

double amplitude_threshold(const Vision_model_params& params, const Observer& observer,
                           double luminance)
{
    const double l = clamped_luminance(luminance);
    const double scale = std::pow(l / params.luminance_ref, params.threshold_luminance_exponent);
    // Cap the low-luminance desensitization: even dark scenes reveal large
    // ripples.
    return observer.amp_threshold * std::clamp(scale, 0.4, 3.0);
}

double perceptual_gain(const Vision_model_params& params, const Observer& observer,
                       double luminance, double frequency_hz, double sample_rate_hz)
{
    util::expects(frequency_hz >= 0.0, "perceptual_gain frequency must be non-negative");
    util::expects(sample_rate_hz > 0.0, "perceptual_gain sample rate must be positive");
    const double internal_rate =
        sample_rate_hz * oversample_factor(params, sample_rate_hz);
    const dsp::Exponential_cascade fast(corner_frequency_hz(params, observer, luminance),
                                        params.cascade_stages, internal_rate);
    const dsp::Exponential_cascade slow(params.adapt_cutoff_hz, 1, internal_rate);
    const auto h_fast = fast.response_at(frequency_hz);
    const auto h_slow = slow.response_at(frequency_hz);
    // Zero-order-hold droop of the display: a sinusoid at f held at the
    // display rate loses sinc(pi f / fs) of its amplitude.
    double zoh = 1.0;
    if (frequency_hz > 0.0) {
        const double x = std::numbers::pi * frequency_hz / sample_rate_hz;
        zoh = std::fabs(std::sin(x) / x);
    }
    return std::abs(h_fast * (1.0 - h_slow)) * zoh;
}

Perceptual_filter::Perceptual_filter(const Vision_model_params& params, const Observer& observer,
                                     double adapt_luminance, double sample_rate_hz)
    : oversample_(oversample_factor(params, sample_rate_hz)),
      fast_(corner_frequency_hz(params, observer, adapt_luminance), params.cascade_stages,
            sample_rate_hz * oversample_factor(params, sample_rate_hz)),
      slow_(params.adapt_cutoff_hz, 1,
            sample_rate_hz * oversample_factor(params, sample_rate_hz))
{
}

double Perceptual_filter::step(double luminance_sample)
{
    // The display holds each frame (zero-order hold); the retina filters
    // the held value at the internal rate. Adaptation then subtracts the
    // slow component of the *perceived* signal: gradual luminance drift is
    // tracked and cancelled, fast residuals pass through.
    double out = 0.0;
    for (int i = 0; i < oversample_; ++i) {
        const double fast = fast_.step(luminance_sample);
        out = fast - slow_.step(fast);
    }
    return out;
}

void Perceptual_filter::reset()
{
    fast_.reset();
    slow_.reset();
}

void Perceptual_filter::prime(double luminance)
{
    fast_.prime(luminance);
    slow_.prime(luminance);
}

double perceived_peak_amplitude(const Vision_model_params& params, const Observer& observer,
                                std::span<const double> waveform, double sample_rate_hz,
                                double adapt_luminance, double warmup_seconds)
{
    util::expects(sample_rate_hz > 0.0, "sample rate must be positive");
    util::expects(warmup_seconds >= 0.0, "warmup must be non-negative");
    Perceptual_filter filter(params, observer, adapt_luminance, sample_rate_hz);
    filter.prime(adapt_luminance);
    const auto warmup =
        static_cast<std::size_t>(warmup_seconds * sample_rate_hz);
    double peak = 0.0;
    for (std::size_t i = 0; i < waveform.size(); ++i) {
        const double y = filter.step(waveform[i]);
        if (i >= warmup) peak = std::max(peak, std::fabs(y));
    }
    return peak;
}

double score_from_ratio(double ratio)
{
    if (!(ratio > 0.0)) return 0.0;
    return std::clamp(1.0 + std::log2(ratio), 0.0, 4.0);
}

} // namespace inframe::hvs
