// Temporal model of human flicker perception.
//
// The paper's design rests on approximating the human vision system "as a
// linear low-pass filter at a high frequency exceeding the CFF" (2). This
// module implements that approximation concretely:
//
//  - the front end is a cascade of first-order low-pass stages whose corner
//    frequency tracks luminance via the Ferry-Porter law (CFF rises with
//    log luminance — this is why the paper observes stronger flicker on
//    brighter videos, Fig. 6 left);
//  - a slow adaptation path is subtracted, making the overall response
//    band-pass: gradual luminance drift (ordinary video content) is not
//    flicker, fast residuals are;
//  - visibility is judged on perceived *amplitude* against a
//    luminance-dependent threshold (high-frequency flicker detection is
//    amplitude-linear rather than Weber-contrast driven, per Kelly 1972).
#pragma once

#include "dsp/filter.hpp"
#include "hvs/observer.hpp"

#include <span>

namespace inframe::hvs {

struct Vision_model_params {
    // Reference luminance (pixel value) at which Observer parameters hold.
    double luminance_ref = 100.0;

    // Ferry-Porter slope: CFF gain in Hz per decade of luminance.
    double ferry_porter_slope_hz = 12.0;

    // Stages in the low-pass cascade. Ten stages with the corner right at
    // CFF give the de Lange-curve shape: nearly flat below ~20 Hz, a cliff
    // between 30 and 60 Hz (gain ratio ~25x), which is the separation the
    // complementary-frame design exploits.
    int cascade_stages = 10;

    // Relation between CFF and the per-stage corner frequency. Calibrated
    // (with amp_threshold) against two anchors: +-20 around level 127 at
    // 30 Hz is strong flicker (visibility ratio ~5-6), and full-contrast
    // 60 Hz sits at threshold (large bright 60 Hz fields are borderline,
    // as CRT experience showed).
    double cff_to_corner = 1.0;

    // Internal filter rate (Hz): display output is zero-order-held and the
    // retina integrates continuously, so the cascade runs at >= this rate
    // with the frame value held between display samples.
    double min_internal_rate_hz = 960.0;

    // Corner of the slow adaptation path that is subtracted (Hz).
    double adapt_cutoff_hz = 2.0;

    // Exponent of the amplitude threshold vs. luminance: negative means
    // brighter scenes reveal smaller ripples.
    double threshold_luminance_exponent = -0.25;
};

// Luminance-adapted CFF for an observer (Ferry-Porter law).
double cff_hz(const Vision_model_params& params, const Observer& observer, double luminance);

// Per-stage corner frequency of the cascade for the adapted CFF.
double corner_frequency_hz(const Vision_model_params& params, const Observer& observer,
                           double luminance);

// Amplitude visibility threshold (pixel-value units) at the luminance.
double amplitude_threshold(const Vision_model_params& params, const Observer& observer,
                           double luminance);

// Steady-state gain of the perceptual band-pass at a frequency. The
// response is H_fast(f) * (1 - H_adapt(f)): the front-end low-pass cascade
// followed by subtractive adaptation of its own slow component. Computed
// from the exact discrete-time responses at the given sample rate.
double perceptual_gain(const Vision_model_params& params, const Observer& observer,
                       double luminance, double frequency_hz,
                       double sample_rate_hz = 120.0);

// Streaming band-pass stage for one retinal site: feed display-rate
// luminance samples, read back the perceived deviation.
class Perceptual_filter {
public:
    Perceptual_filter(const Vision_model_params& params, const Observer& observer,
                      double adapt_luminance, double sample_rate_hz);

    // Returns the perceived deviation (fast path minus adaptation path).
    double step(double luminance_sample);
    void reset();

    // Settles both paths at a steady luminance (no start-up transient).
    void prime(double luminance);

private:
    int oversample_;
    dsp::Exponential_cascade fast_;
    dsp::Exponential_cascade slow_;
};

// Offline helper: perceived peak deviation of a waveform after warmup.
// Useful for waveform-level analysis (Fig. 5 style) and unit tests.
double perceived_peak_amplitude(const Vision_model_params& params, const Observer& observer,
                                std::span<const double> waveform, double sample_rate_hz,
                                double adapt_luminance, double warmup_seconds = 0.5);

// Maps a visibility ratio (perceived amplitude / threshold) to the paper's
// 0-4 subjective scale: r <= 0.5 -> 0 ("no difference"), r == 1 -> 1
// ("almost unnoticeable"), doubling r adds one level, capped at 4.
double score_from_ratio(double ratio);

} // namespace inframe::hvs
