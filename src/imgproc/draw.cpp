#include "imgproc/draw.hpp"

#include <array>
#include <cmath>
#include <cstring>

namespace inframe::img {

void fill_rect(Imagef& image, int x0, int y0, int w, int h, float value)
{
    const int x_begin = std::max(x0, 0);
    const int y_begin = std::max(y0, 0);
    const int x_end = std::min(x0 + w, image.width());
    const int y_end = std::min(y0 + h, image.height());
    for (int y = y_begin; y < y_end; ++y) {
        for (int x = x_begin; x < x_end; ++x) {
            for (int c = 0; c < image.channels(); ++c) image(x, y, c) = value;
        }
    }
}

void fill_rect_rgb(Imagef& image, int x0, int y0, int w, int h, float r, float g, float b)
{
    util::expects(image.channels() == 3, "fill_rect_rgb requires an RGB image");
    const int x_begin = std::max(x0, 0);
    const int y_begin = std::max(y0, 0);
    const int x_end = std::min(x0 + w, image.width());
    const int y_end = std::min(y0 + h, image.height());
    for (int y = y_begin; y < y_end; ++y) {
        for (int x = x_begin; x < x_end; ++x) {
            image(x, y, 0) = r;
            image(x, y, 1) = g;
            image(x, y, 2) = b;
        }
    }
}

void fill_disc(Imagef& image, float cx, float cy, float radius, float value)
{
    util::expects(radius >= 0.0f, "fill_disc radius must be non-negative");
    const int x_begin = std::max(static_cast<int>(std::floor(cx - radius)), 0);
    const int y_begin = std::max(static_cast<int>(std::floor(cy - radius)), 0);
    const int x_end = std::min(static_cast<int>(std::ceil(cx + radius)) + 1, image.width());
    const int y_end = std::min(static_cast<int>(std::ceil(cy + radius)) + 1, image.height());
    const float r2 = radius * radius;
    for (int y = y_begin; y < y_end; ++y) {
        for (int x = x_begin; x < x_end; ++x) {
            const float dx = static_cast<float>(x) - cx;
            const float dy = static_cast<float>(y) - cy;
            if (dx * dx + dy * dy <= r2) {
                for (int c = 0; c < image.channels(); ++c) image(x, y, c) = value;
            }
        }
    }
}

Imagef checkerboard(int width, int height, int cell, float a, float b, int phase)
{
    util::expects(cell >= 1, "checkerboard cell must be >= 1");
    Imagef out(width, height, 1);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const int parity = ((x / cell) + (y / cell) + phase) & 1;
            out(x, y) = parity == 0 ? a : b;
        }
    }
    return out;
}

Imagef horizontal_gradient(int width, int height, float left, float right)
{
    Imagef out(width, height, 1);
    for (int x = 0; x < width; ++x) {
        const float t = width > 1 ? static_cast<float>(x) / static_cast<float>(width - 1) : 0.0f;
        const float v = left + (right - left) * t;
        for (int y = 0; y < height; ++y) out(x, y) = v;
    }
    return out;
}

Imagef vertical_gradient(int width, int height, float top, float bottom)
{
    Imagef out(width, height, 1);
    for (int y = 0; y < height; ++y) {
        const float t = height > 1 ? static_cast<float>(y) / static_cast<float>(height - 1) : 0.0f;
        const float v = top + (bottom - top) * t;
        for (int x = 0; x < width; ++x) out(x, y) = v;
    }
    return out;
}

namespace {

// 5x7 glyphs, one byte per row, low 5 bits used (bit 4 = leftmost column).
struct Glyph {
    char ch;
    std::array<std::uint8_t, 7> rows;
};

constexpr Glyph font[] = {
    {'0', {0x0e, 0x11, 0x13, 0x15, 0x19, 0x11, 0x0e}},
    {'1', {0x04, 0x0c, 0x04, 0x04, 0x04, 0x04, 0x0e}},
    {'2', {0x0e, 0x11, 0x01, 0x02, 0x04, 0x08, 0x1f}},
    {'3', {0x1f, 0x02, 0x04, 0x02, 0x01, 0x11, 0x0e}},
    {'4', {0x02, 0x06, 0x0a, 0x12, 0x1f, 0x02, 0x02}},
    {'5', {0x1f, 0x10, 0x1e, 0x01, 0x01, 0x11, 0x0e}},
    {'6', {0x06, 0x08, 0x10, 0x1e, 0x11, 0x11, 0x0e}},
    {'7', {0x1f, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08}},
    {'8', {0x0e, 0x11, 0x11, 0x0e, 0x11, 0x11, 0x0e}},
    {'9', {0x0e, 0x11, 0x11, 0x0f, 0x01, 0x02, 0x0c}},
    {'A', {0x0e, 0x11, 0x11, 0x1f, 0x11, 0x11, 0x11}},
    {'B', {0x1e, 0x11, 0x11, 0x1e, 0x11, 0x11, 0x1e}},
    {'C', {0x0e, 0x11, 0x10, 0x10, 0x10, 0x11, 0x0e}},
    {'D', {0x1c, 0x12, 0x11, 0x11, 0x11, 0x12, 0x1c}},
    {'E', {0x1f, 0x10, 0x10, 0x1e, 0x10, 0x10, 0x1f}},
    {'F', {0x1f, 0x10, 0x10, 0x1e, 0x10, 0x10, 0x10}},
    {'G', {0x0e, 0x11, 0x10, 0x17, 0x11, 0x11, 0x0f}},
    {'H', {0x11, 0x11, 0x11, 0x1f, 0x11, 0x11, 0x11}},
    {'I', {0x0e, 0x04, 0x04, 0x04, 0x04, 0x04, 0x0e}},
    {'J', {0x07, 0x02, 0x02, 0x02, 0x02, 0x12, 0x0c}},
    {'K', {0x11, 0x12, 0x14, 0x18, 0x14, 0x12, 0x11}},
    {'L', {0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x1f}},
    {'M', {0x11, 0x1b, 0x15, 0x15, 0x11, 0x11, 0x11}},
    {'N', {0x11, 0x19, 0x15, 0x13, 0x11, 0x11, 0x11}},
    {'O', {0x0e, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0e}},
    {'P', {0x1e, 0x11, 0x11, 0x1e, 0x10, 0x10, 0x10}},
    {'Q', {0x0e, 0x11, 0x11, 0x11, 0x15, 0x12, 0x0d}},
    {'R', {0x1e, 0x11, 0x11, 0x1e, 0x14, 0x12, 0x11}},
    {'S', {0x0f, 0x10, 0x10, 0x0e, 0x01, 0x01, 0x1e}},
    {'T', {0x1f, 0x04, 0x04, 0x04, 0x04, 0x04, 0x04}},
    {'U', {0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0e}},
    {'V', {0x11, 0x11, 0x11, 0x11, 0x11, 0x0a, 0x04}},
    {'W', {0x11, 0x11, 0x11, 0x15, 0x15, 0x1b, 0x11}},
    {'X', {0x11, 0x11, 0x0a, 0x04, 0x0a, 0x11, 0x11}},
    {'Y', {0x11, 0x11, 0x0a, 0x04, 0x04, 0x04, 0x04}},
    {'Z', {0x1f, 0x01, 0x02, 0x04, 0x08, 0x10, 0x1f}},
    {' ', {0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}},
    {'.', {0x00, 0x00, 0x00, 0x00, 0x00, 0x0c, 0x0c}},
    {':', {0x00, 0x0c, 0x0c, 0x00, 0x0c, 0x0c, 0x00}},
    {'-', {0x00, 0x00, 0x00, 0x1f, 0x00, 0x00, 0x00}},
};

const Glyph* find_glyph(char ch)
{
    if (ch >= 'a' && ch <= 'z') ch = static_cast<char>(ch - 'a' + 'A');
    for (const auto& glyph : font) {
        if (glyph.ch == ch) return &glyph;
    }
    return nullptr;
}

} // namespace

void draw_text(Imagef& image, int x0, int y0, const char* text, float value, int scale)
{
    util::expects(text != nullptr, "draw_text requires text");
    util::expects(scale >= 1, "draw_text scale must be >= 1");
    int pen_x = x0;
    for (const char* p = text; *p != '\0'; ++p) {
        const Glyph* glyph = find_glyph(*p);
        if (glyph != nullptr) {
            for (int row = 0; row < 7; ++row) {
                for (int col = 0; col < 5; ++col) {
                    if ((glyph->rows[static_cast<std::size_t>(row)] >> (4 - col)) & 1) {
                        fill_rect(image, pen_x + col * scale, y0 + row * scale, scale, scale,
                                  value);
                    }
                }
            }
        }
        pen_x += 6 * scale;
    }
}

} // namespace inframe::img
