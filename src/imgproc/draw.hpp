// Drawing primitives for procedural video generation (the paper's test
// inputs are pure-color videos plus a sunrise clip) and for visual dumps.
#pragma once

#include "imgproc/image.hpp"

namespace inframe::img {

// Fills an axis-aligned rectangle (clipped to the image) on channel set.
void fill_rect(Imagef& image, int x0, int y0, int w, int h, float value);
void fill_rect_rgb(Imagef& image, int x0, int y0, int w, int h, float r, float g, float b);

// Filled disc centred at (cx, cy), clipped.
void fill_disc(Imagef& image, float cx, float cy, float radius, float value);

// Chessboard of `cell` x `cell` pixels alternating between two values,
// phase-selectable (phase 0: (0,0) cell = a; phase 1: (0,0) cell = b).
Imagef checkerboard(int width, int height, int cell, float a, float b, int phase = 0);

// Horizontal linear gradient from `left` to `right`.
Imagef horizontal_gradient(int width, int height, float left, float right);

// Vertical linear gradient from `top` to `bottom`.
Imagef vertical_gradient(int width, int height, float top, float bottom);

// Renders a 5x7 bitmap digit/letter string scaled by `scale` at (x0, y0).
// Supports [0-9A-Z .:-]; unknown characters render as blanks.
void draw_text(Imagef& image, int x0, int y0, const char* text, float value, int scale = 1);

} // namespace inframe::img
