#include "imgproc/filter.hpp"

#include "imgproc/pool.hpp"
#include "simd/simd.hpp"
#include "util/thread_pool.hpp"

#include <array>
#include <cmath>
#include <vector>

namespace inframe::img {

namespace {

// Rows per parallel chunk. Fixed (thread-count-independent) so chunk
// boundaries — and with them any per-chunk state — are deterministic.
constexpr std::int64_t row_grain = 16;

// Horizontal box blur for a band of rows: every (row, channel) pair is an
// independent sliding-window stream, so up to 8 of them ride in the vector
// lanes of one box_blur_h call. Each lane replays the exact scalar
// sequence (double window, float entering-leaving subtract, double add),
// so output is identical for any lane grouping and any SIMD level.
void box_blur_horizontal_band(const Imagef& src, Imagef& dst, int radius, int y_begin,
                              int y_end)
{
    const auto& k = simd::kernels();
    const int ch = src.channels();
    constexpr int max_lanes = 8;
    std::array<const float*, max_lanes> in{};
    std::array<float*, max_lanes> out{};
    int lanes = 0;
    for (int y = y_begin; y < y_end; ++y) {
        const float* in_row = src.row(y).data();
        float* out_row = dst.row(y).data();
        for (int c = 0; c < ch; ++c) {
            in[static_cast<std::size_t>(lanes)] = in_row + c;
            out[static_cast<std::size_t>(lanes)] = out_row + c;
            if (++lanes == max_lanes) {
                k.box_blur_h(in.data(), out.data(), lanes, src.width(), ch, radius);
                lanes = 0;
            }
        }
    }
    if (lanes > 0) k.box_blur_h(in.data(), out.data(), lanes, src.width(), ch, radius);
}

// Vertical box blur over a band of output rows, accumulating whole rows at a
// time: the inner loops stride unit distance through memory instead of
// jumping width*channels floats per step as a column-by-column pass would.
// The sliding window is a row of double sums, re-initialized at the band
// start; band boundaries depend only on the grain, so every thread count
// (including the serial path) produces identical output. The row-wide
// accumulate/update/store loops run through the simd dispatch table; the
// vector versions are elementwise and replicate the float-subtract-then-
// double-add order exactly, so results match the pre-SIMD code bit for bit.
void box_blur_vertical_band(const Imagef& src, Imagef& dst, int radius, int y_begin, int y_end)
{
    const auto& k = simd::kernels();
    const int height = src.height();
    const int row_values = static_cast<int>(src.row(0).size());
    const float norm = 1.0f / static_cast<float>(2 * radius + 1);

    std::vector<double> window(static_cast<std::size_t>(row_values), 0.0);
    for (int j = y_begin - radius; j <= y_begin + radius; ++j) {
        k.vblur_accum(window.data(), src.row(std::clamp(j, 0, height - 1)).data(), row_values);
    }
    for (int y = y_begin; y < y_end; ++y) {
        k.vblur_store(window.data(), dst.row(y).data(), row_values, norm);
        const float* leaving = src.row(std::clamp(y - radius, 0, height - 1)).data();
        const float* entering = src.row(std::clamp(y + radius + 1, 0, height - 1)).data();
        k.vblur_update(window.data(), entering, leaving, row_values);
    }
}

} // namespace

Imagef box_blur(const Imagef& src, int radius_x, int radius_y)
{
    util::expects(radius_x >= 0 && radius_y >= 0, "box_blur radius must be non-negative");
    if (radius_x == 0 && radius_y == 0) return src;

    const int ch = src.channels();
    Imagef horizontal;
    if (radius_x > 0) {
        horizontal = Frame_pool::instance().acquire(src.width(), src.height(), ch);
        util::parallel_for(0, src.height(), row_grain, [&](std::int64_t y0, std::int64_t y1) {
            box_blur_horizontal_band(src, horizontal, radius_x, static_cast<int>(y0),
                                     static_cast<int>(y1));
        });
        if (radius_y == 0) return horizontal;
    }
    const Imagef& h_src = radius_x > 0 ? horizontal : src;

    Imagef out = Frame_pool::instance().acquire(src.width(), src.height(), ch);
    // Bands must be at least as tall as the radius or the O(radius) window
    // init dominates; the grain is still a pure function of the radius.
    const std::int64_t band = std::max<std::int64_t>(row_grain, radius_y);
    util::parallel_for(0, src.height(), band, [&](std::int64_t y0, std::int64_t y1) {
        box_blur_vertical_band(h_src, out, radius_y, static_cast<int>(y0),
                               static_cast<int>(y1));
    });
    if (radius_x > 0) Frame_pool::instance().recycle(std::move(horizontal));
    return out;
}

Imagef box_blur(const Imagef& src, int radius)
{
    return box_blur(src, radius, radius);
}

std::vector<float> gaussian_kernel(double sigma)
{
    util::expects(sigma > 0.0, "gaussian_kernel sigma must be positive");
    const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
    std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
    double sum = 0.0;
    for (int i = -radius; i <= radius; ++i) {
        const double v = std::exp(-(static_cast<double>(i) * i) / (2.0 * sigma * sigma));
        kernel[static_cast<std::size_t>(i + radius)] = static_cast<float>(v);
        sum += v;
    }
    for (auto& k : kernel) k = static_cast<float>(k / sum);
    return kernel;
}

Imagef separable_convolve(const Imagef& src, std::span<const float> kernel)
{
    util::expects(kernel.size() % 2 == 1, "separable_convolve kernel size must be odd");
    const int radius = static_cast<int>(kernel.size() / 2);
    const int ch = src.channels();

    Imagef horizontal = Frame_pool::instance().acquire(src.width(), src.height(), ch);
    util::parallel_for(0, src.height(), row_grain, [&](std::int64_t y0, std::int64_t y1) {
        for (std::int64_t yy = y0; yy < y1; ++yy) {
            const int y = static_cast<int>(yy);
            for (int x = 0; x < src.width(); ++x) {
                for (int c = 0; c < ch; ++c) {
                    double acc = 0.0;
                    for (int k = -radius; k <= radius; ++k) {
                        acc += kernel[static_cast<std::size_t>(k + radius)]
                               * src.at_clamped(x + k, y, c);
                    }
                    horizontal(x, y, c) = static_cast<float>(acc);
                }
            }
        }
    });

    Imagef out = Frame_pool::instance().acquire(src.width(), src.height(), ch);
    util::parallel_for(0, src.height(), row_grain, [&](std::int64_t y0, std::int64_t y1) {
        for (std::int64_t yy = y0; yy < y1; ++yy) {
            const int y = static_cast<int>(yy);
            for (int x = 0; x < src.width(); ++x) {
                for (int c = 0; c < ch; ++c) {
                    double acc = 0.0;
                    for (int k = -radius; k <= radius; ++k) {
                        acc += kernel[static_cast<std::size_t>(k + radius)]
                               * horizontal.at_clamped(x, y + k, c);
                    }
                    out(x, y, c) = static_cast<float>(acc);
                }
            }
        }
    });
    Frame_pool::instance().recycle(std::move(horizontal));
    return out;
}

Imagef gaussian_blur(const Imagef& src, double sigma)
{
    if (sigma <= 0.0) return src;
    return separable_convolve(src, gaussian_kernel(sigma));
}

Imagef laplacian_abs(const Imagef& src)
{
    Imagef out = Frame_pool::instance().acquire(src.width(), src.height(), src.channels());
    util::parallel_for(0, src.height(), row_grain, [&](std::int64_t y0, std::int64_t y1) {
        for (std::int64_t yy = y0; yy < y1; ++yy) {
            const int y = static_cast<int>(yy);
            for (int x = 0; x < src.width(); ++x) {
                for (int c = 0; c < src.channels(); ++c) {
                    const float v = 4.0f * src(x, y, c) - src.at_clamped(x - 1, y, c)
                                    - src.at_clamped(x + 1, y, c) - src.at_clamped(x, y - 1, c)
                                    - src.at_clamped(x, y + 1, c);
                    out(x, y, c) = std::fabs(v);
                }
            }
        }
    });
    return out;
}

} // namespace inframe::img
