#include "imgproc/filter.hpp"

#include <cmath>

namespace inframe::img {

namespace {

// Horizontal sliding-window box sum for one channel of one row.
void box_blur_row(const float* src, float* dst, int width, int stride, int radius)
{
    const float norm = 1.0f / static_cast<float>(2 * radius + 1);
    double window = 0.0;
    for (int i = -radius; i <= radius; ++i) {
        const int x = std::clamp(i, 0, width - 1);
        window += src[static_cast<std::ptrdiff_t>(x) * stride];
    }
    for (int x = 0; x < width; ++x) {
        dst[static_cast<std::ptrdiff_t>(x) * stride] = static_cast<float>(window) * norm;
        const int leaving = std::clamp(x - radius, 0, width - 1);
        const int entering = std::clamp(x + radius + 1, 0, width - 1);
        window += src[static_cast<std::ptrdiff_t>(entering) * stride]
                  - src[static_cast<std::ptrdiff_t>(leaving) * stride];
    }
}

} // namespace

Imagef box_blur(const Imagef& src, int radius_x, int radius_y)
{
    util::expects(radius_x >= 0 && radius_y >= 0, "box_blur radius must be non-negative");
    if (radius_x == 0 && radius_y == 0) return src;

    const int ch = src.channels();
    Imagef horizontal = src;
    if (radius_x > 0) {
        for (int y = 0; y < src.height(); ++y) {
            const float* in = src.row(y).data();
            float* out = horizontal.row(y).data();
            for (int c = 0; c < ch; ++c) box_blur_row(in + c, out + c, src.width(), ch, radius_x);
        }
    }
    if (radius_y == 0) return horizontal;

    Imagef out(src.width(), src.height(), ch);
    const int column_stride = src.width() * ch;
    for (int x = 0; x < src.width(); ++x) {
        for (int c = 0; c < ch; ++c) {
            const float* in = horizontal.values().data() + static_cast<std::ptrdiff_t>(x) * ch + c;
            float* dst = out.values().data() + static_cast<std::ptrdiff_t>(x) * ch + c;
            box_blur_row(in, dst, src.height(), column_stride, radius_y);
        }
    }
    return out;
}

Imagef box_blur(const Imagef& src, int radius)
{
    return box_blur(src, radius, radius);
}

std::vector<float> gaussian_kernel(double sigma)
{
    util::expects(sigma > 0.0, "gaussian_kernel sigma must be positive");
    const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
    std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
    double sum = 0.0;
    for (int i = -radius; i <= radius; ++i) {
        const double v = std::exp(-(static_cast<double>(i) * i) / (2.0 * sigma * sigma));
        kernel[static_cast<std::size_t>(i + radius)] = static_cast<float>(v);
        sum += v;
    }
    for (auto& k : kernel) k = static_cast<float>(k / sum);
    return kernel;
}

Imagef separable_convolve(const Imagef& src, std::span<const float> kernel)
{
    util::expects(kernel.size() % 2 == 1, "separable_convolve kernel size must be odd");
    const int radius = static_cast<int>(kernel.size() / 2);
    const int ch = src.channels();

    Imagef horizontal(src.width(), src.height(), ch);
    for (int y = 0; y < src.height(); ++y) {
        for (int x = 0; x < src.width(); ++x) {
            for (int c = 0; c < ch; ++c) {
                double acc = 0.0;
                for (int k = -radius; k <= radius; ++k) {
                    acc += kernel[static_cast<std::size_t>(k + radius)]
                           * src.at_clamped(x + k, y, c);
                }
                horizontal(x, y, c) = static_cast<float>(acc);
            }
        }
    }

    Imagef out(src.width(), src.height(), ch);
    for (int y = 0; y < src.height(); ++y) {
        for (int x = 0; x < src.width(); ++x) {
            for (int c = 0; c < ch; ++c) {
                double acc = 0.0;
                for (int k = -radius; k <= radius; ++k) {
                    acc += kernel[static_cast<std::size_t>(k + radius)]
                           * horizontal.at_clamped(x, y + k, c);
                }
                out(x, y, c) = static_cast<float>(acc);
            }
        }
    }
    return out;
}

Imagef gaussian_blur(const Imagef& src, double sigma)
{
    if (sigma <= 0.0) return src;
    return separable_convolve(src, gaussian_kernel(sigma));
}

Imagef laplacian_abs(const Imagef& src)
{
    Imagef out(src.width(), src.height(), src.channels());
    for (int y = 0; y < src.height(); ++y) {
        for (int x = 0; x < src.width(); ++x) {
            for (int c = 0; c < src.channels(); ++c) {
                const float v = 4.0f * src(x, y, c) - src.at_clamped(x - 1, y, c)
                                - src.at_clamped(x + 1, y, c) - src.at_clamped(x, y - 1, c)
                                - src.at_clamped(x, y + 1, c);
                out(x, y, c) = std::fabs(v);
            }
        }
    }
    return out;
}

} // namespace inframe::img
