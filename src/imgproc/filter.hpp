// Spatial filtering. The decoder's core operation is "smooth the block,
// subtract, sum |difference|" (paper 3.3); box_blur is that smoother.
// Gaussian blur models camera optics in the channel simulator.
#pragma once

#include "imgproc/image.hpp"

#include <vector>

namespace inframe::img {

// Separable box blur with clamp-to-edge borders. radius >= 0; radius 0 is a
// copy. Runs in O(pixels) per channel via sliding sums.
Imagef box_blur(const Imagef& src, int radius);

// Box blur with independent horizontal/vertical radii.
Imagef box_blur(const Imagef& src, int radius_x, int radius_y);

// Separable Gaussian blur; sigma <= 0 is a copy. Kernel truncated at
// ceil(3*sigma).
Imagef gaussian_blur(const Imagef& src, double sigma);

// Samples of a normalized 1-D Gaussian kernel for the given sigma.
std::vector<float> gaussian_kernel(double sigma);

// 1-D horizontal then vertical convolution with the same kernel
// (clamp-to-edge). Kernel size must be odd.
Imagef separable_convolve(const Imagef& src, std::span<const float> kernel);

// 3x3 Laplacian magnitude (used by texture/noise diagnostics).
Imagef laplacian_abs(const Imagef& src);

} // namespace inframe::img
