// Image container used across the whole system.
//
// There is no OpenCV in this reproduction; every raster operation the
// pipeline needs (blur, resize, warp, metrics, I/O) is built on this class.
//
// Conventions:
//  - row-major storage, channels interleaved (x fastest, then channel)
//  - float images carry luminance/RGB in the 8-bit domain [0, 255]; this
//    matches the paper's pixel-value language (amplitude delta = 20 means
//    +-20 of 255) and keeps float<->uint8 conversion a pure round/clamp
//  - (0, 0) is the top-left pixel, like the display scanout order that the
//    rolling-shutter camera model cares about
#pragma once

#include "util/contract.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace inframe::img {

template <typename T>
class Image {
public:
    Image() = default;

    Image(int width, int height, int channels = 1, T fill = T{})
        : width_(width), height_(height), channels_(channels)
    {
        util::expects(width > 0 && height > 0, "Image dimensions must be positive");
        util::expects(channels == 1 || channels == 3, "Image supports 1 or 3 channels");
        data_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height)
                         * static_cast<std::size_t>(channels),
                     fill);
    }

    // Adopts recycled storage (Frame_pool): the vector's capacity is reused,
    // its contents are unspecified after the resize.
    Image(int width, int height, int channels, std::vector<T>&& storage)
        : width_(width), height_(height), channels_(channels), data_(std::move(storage))
    {
        util::expects(width > 0 && height > 0, "Image dimensions must be positive");
        util::expects(channels == 1 || channels == 3, "Image supports 1 or 3 channels");
        data_.resize(static_cast<std::size_t>(width) * static_cast<std::size_t>(height)
                     * static_cast<std::size_t>(channels));
    }

    // Surrenders the backing storage (for recycling); the image is empty
    // afterwards.
    std::vector<T> take_storage()
    {
        width_ = 0;
        height_ = 0;
        channels_ = 0;
        return std::move(data_);
    }

    int width() const { return width_; }
    int height() const { return height_; }
    int channels() const { return channels_; }
    bool empty() const { return data_.empty(); }
    std::size_t pixel_count() const
    {
        return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
    }
    std::size_t value_count() const { return data_.size(); }

    bool same_shape(const Image& other) const
    {
        return width_ == other.width_ && height_ == other.height_ && channels_ == other.channels_;
    }

    T& at(int x, int y, int c = 0)
    {
        util::expects(contains(x, y) && c >= 0 && c < channels_, "Image::at out of range");
        return data_[index(x, y, c)];
    }

    T at(int x, int y, int c = 0) const
    {
        util::expects(contains(x, y) && c >= 0 && c < channels_, "Image::at out of range");
        return data_[index(x, y, c)];
    }

    // Unchecked fast path for inner loops.
    T& operator()(int x, int y, int c = 0) { return data_[index(x, y, c)]; }
    T operator()(int x, int y, int c = 0) const { return data_[index(x, y, c)]; }

    // Clamp-to-edge sampling; safe for any coordinates.
    T at_clamped(int x, int y, int c = 0) const
    {
        x = std::clamp(x, 0, width_ - 1);
        y = std::clamp(y, 0, height_ - 1);
        return data_[index(x, y, c)];
    }

    bool contains(int x, int y) const { return x >= 0 && x < width_ && y >= 0 && y < height_; }

    std::span<T> values() { return data_; }
    std::span<const T> values() const { return data_; }
    std::span<T> row(int y)
    {
        util::expects(y >= 0 && y < height_, "Image::row out of range");
        return std::span<T>(data_).subspan(index(0, y, 0),
                                           static_cast<std::size_t>(width_ * channels_));
    }
    std::span<const T> row(int y) const
    {
        util::expects(y >= 0 && y < height_, "Image::row out of range");
        return std::span<const T>(data_).subspan(index(0, y, 0),
                                                 static_cast<std::size_t>(width_ * channels_));
    }

    void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

    // Applies fn(value) to every stored value.
    template <typename Fn>
    void transform(Fn&& fn)
    {
        for (auto& v : data_) v = fn(v);
    }

    // Copies a rectangular region into a new image. The region must lie
    // fully inside this image.
    Image crop(int x0, int y0, int w, int h) const
    {
        util::expects(w > 0 && h > 0, "Image::crop needs a non-empty region");
        util::expects(x0 >= 0 && y0 >= 0 && x0 + w <= width_ && y0 + h <= height_,
                      "Image::crop region out of bounds");
        Image out(w, h, channels_);
        for (int y = 0; y < h; ++y) {
            const auto src = row(y0 + y).subspan(static_cast<std::size_t>(x0 * channels_),
                                                 static_cast<std::size_t>(w * channels_));
            std::copy(src.begin(), src.end(), out.row(y).begin());
        }
        return out;
    }

private:
    std::size_t index(int x, int y, int c) const
    {
        return (static_cast<std::size_t>(y) * static_cast<std::size_t>(width_)
                + static_cast<std::size_t>(x))
                   * static_cast<std::size_t>(channels_)
               + static_cast<std::size_t>(c);
    }

    int width_ = 0;
    int height_ = 0;
    int channels_ = 0;
    std::vector<T> data_;
};

using Imagef = Image<float>;
using Image8 = Image<std::uint8_t>;

// Rounds and clamps a float image (8-bit domain) to uint8 storage.
Image8 to_u8(const Imagef& src);

// Widens an 8-bit image to float.
Imagef to_float(const Image8& src);

// Collapses RGB to luminance with Rec.601 weights; identity for grayscale.
Imagef to_gray(const Imagef& src);

} // namespace inframe::img
