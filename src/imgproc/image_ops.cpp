#include "imgproc/image_ops.hpp"

#include "imgproc/pool.hpp"
#include "simd/simd.hpp"
#include "util/thread_pool.hpp"

#include <cmath>

namespace inframe::img {

namespace {

// Flat values per parallel chunk for elementwise ops. Each element is
// computed independently, so any partition is bit-identical; the grain just
// keeps chunk dispatch overhead negligible. The per-element work inside a
// chunk goes through the simd dispatch table (bit-identical at every
// level, see src/simd/simd.hpp), so partitioning and vectorization compose
// without affecting results.
constexpr std::int64_t value_grain = 1 << 15;

} // namespace

Image8 to_u8(const Imagef& src)
{
    Image8 out(src.width(), src.height(), src.channels());
    const auto in = src.values();
    auto dst = out.values();
    const auto& k = simd::kernels();
    util::parallel_for(0, static_cast<std::int64_t>(in.size()), value_grain,
                       [&](std::int64_t i0, std::int64_t i1) {
                           k.quantize_u8(in.data() + i0, dst.data() + i0,
                                         static_cast<int>(i1 - i0));
                       });
    return out;
}

Imagef to_float(const Image8& src)
{
    Imagef out = Frame_pool::instance().acquire(src.width(), src.height(), src.channels());
    const auto in = src.values();
    auto dst = out.values();
    const auto& k = simd::kernels();
    util::parallel_for(0, static_cast<std::int64_t>(in.size()), value_grain,
                       [&](std::int64_t i0, std::int64_t i1) {
                           k.widen_u8(in.data() + i0, dst.data() + i0,
                                      static_cast<int>(i1 - i0));
                       });
    return out;
}

Imagef to_gray(const Imagef& src)
{
    if (src.channels() == 1) return src;
    Imagef out = Frame_pool::instance().acquire(src.width(), src.height(), 1);
    util::parallel_for(0, src.height(), 16, [&](std::int64_t y0, std::int64_t y1) {
        for (std::int64_t yy = y0; yy < y1; ++yy) {
            const int y = static_cast<int>(yy);
            for (int x = 0; x < src.width(); ++x) {
                out(x, y) = 0.299f * src(x, y, 0) + 0.587f * src(x, y, 1)
                            + 0.114f * src(x, y, 2);
            }
        }
    });
    return out;
}

namespace {

// out[i] = kernel(a[i], b[i]) with the output frame drawn from the pool.
Imagef binary_elementwise(const Imagef& a, const Imagef& b, const char* what,
                          void (*kernel)(const float*, const float*, float*, int))
{
    util::expects(a.same_shape(b), what);
    Imagef out = Frame_pool::instance().acquire(a.width(), a.height(), a.channels());
    auto dst = out.values();
    const auto lhs = a.values();
    const auto rhs = b.values();
    util::parallel_for(0, static_cast<std::int64_t>(dst.size()), value_grain,
                       [&](std::int64_t i0, std::int64_t i1) {
                           kernel(lhs.data() + i0, rhs.data() + i0, dst.data() + i0,
                                  static_cast<int>(i1 - i0));
                       });
    return out;
}

// Same shape-checked pattern for the uint8 saturating trio.
Image8 binary_elementwise_u8(const Image8& a, const Image8& b, const char* what,
                             void (*kernel)(const std::uint8_t*, const std::uint8_t*,
                                            std::uint8_t*, int))
{
    util::expects(a.same_shape(b), what);
    Image8 out(a.width(), a.height(), a.channels());
    auto dst = out.values();
    const auto lhs = a.values();
    const auto rhs = b.values();
    util::parallel_for(0, static_cast<std::int64_t>(dst.size()), value_grain,
                       [&](std::int64_t i0, std::int64_t i1) {
                           kernel(lhs.data() + i0, rhs.data() + i0, dst.data() + i0,
                                  static_cast<int>(i1 - i0));
                       });
    return out;
}

} // namespace

Imagef add(const Imagef& a, const Imagef& b)
{
    return binary_elementwise(a, b, "add: shape mismatch", simd::kernels().add_f32);
}

Imagef subtract(const Imagef& a, const Imagef& b)
{
    return binary_elementwise(a, b, "subtract: shape mismatch", simd::kernels().sub_f32);
}

Imagef abs_diff(const Imagef& a, const Imagef& b)
{
    return binary_elementwise(a, b, "abs_diff: shape mismatch", simd::kernels().absdiff_f32);
}

Image8 add_saturate(const Image8& a, const Image8& b)
{
    return binary_elementwise_u8(a, b, "add_saturate: shape mismatch",
                                 simd::kernels().add_sat_u8);
}

Image8 subtract_saturate(const Image8& a, const Image8& b)
{
    return binary_elementwise_u8(a, b, "subtract_saturate: shape mismatch",
                                 simd::kernels().sub_sat_u8);
}

Image8 abs_diff(const Image8& a, const Image8& b)
{
    return binary_elementwise_u8(a, b, "abs_diff: shape mismatch",
                                 simd::kernels().absdiff_u8);
}

Imagef affine(const Imagef& a, float scale, float offset)
{
    Imagef out = Frame_pool::instance().acquire(a.width(), a.height(), a.channels());
    auto dst = out.values();
    const auto in = a.values();
    util::parallel_for(0, static_cast<std::int64_t>(dst.size()), value_grain,
                       [&](std::int64_t i0, std::int64_t i1) {
                           for (std::int64_t i = i0; i < i1; ++i) {
                               const auto s = static_cast<std::size_t>(i);
                               dst[s] = in[s] * scale + offset;
                           }
                       });
    return out;
}

void clamp(Imagef& image, float lo, float hi)
{
    util::expects(lo <= hi, "clamp: lo must not exceed hi");
    auto values = image.values();
    const auto& k = simd::kernels();
    util::parallel_for(0, static_cast<std::int64_t>(values.size()), value_grain,
                       [&](std::int64_t i0, std::int64_t i1) {
                           k.clamp_f32(values.data() + i0, static_cast<int>(i1 - i0), lo, hi);
                       });
}

void accumulate(Imagef& a, const Imagef& b, float weight)
{
    util::expects(a.same_shape(b), "accumulate: shape mismatch");
    auto dst = a.values();
    const auto rhs = b.values();
    util::parallel_for(0, static_cast<std::int64_t>(dst.size()), value_grain,
                       [&](std::int64_t i0, std::int64_t i1) {
                           for (std::int64_t i = i0; i < i1; ++i) {
                               const auto s = static_cast<std::size_t>(i);
                               dst[s] += rhs[s] * weight;
                           }
                       });
}

double mean(const Imagef& image)
{
    util::expects(!image.empty(), "mean of empty image");
    // Fixed-slice deterministic reduction (see thread_pool.hpp): partial
    // sums are merged in slice order regardless of thread count.
    const auto values = image.values();
    const double sum = util::parallel_reduce(
        0, static_cast<std::int64_t>(values.size()), value_grain, 0.0,
        [&](std::int64_t i0, std::int64_t i1) {
            double acc = 0.0;
            for (std::int64_t i = i0; i < i1; ++i) acc += values[static_cast<std::size_t>(i)];
            return acc;
        },
        [](double acc, double partial) { return acc + partial; });
    return sum / static_cast<double>(image.value_count());
}

double mean_region(const Imagef& image, int x0, int y0, int w, int h, int c)
{
    util::expects(w > 0 && h > 0, "mean_region: empty region");
    util::expects(x0 >= 0 && y0 >= 0 && x0 + w <= image.width() && y0 + h <= image.height(),
                  "mean_region: region out of bounds");
    double sum = 0.0;
    if (image.channels() == 1) {
        // Contiguous rows: per-row reduction through the dispatch table.
        // row_sum_f64 has a fixed 8-lane accumulation shape, so the result
        // is identical at every SIMD level (and to the scalar reference).
        const auto& k = simd::kernels();
        for (int y = y0; y < y0 + h; ++y) {
            sum += k.row_sum_f64(image.row(y).data() + x0, w);
        }
    }
    else {
        for (int y = y0; y < y0 + h; ++y) {
            for (int x = x0; x < x0 + w; ++x) sum += image(x, y, c);
        }
    }
    return sum / (static_cast<double>(w) * static_cast<double>(h));
}

double mean_abs_region(const Imagef& image, int x0, int y0, int w, int h, int c)
{
    util::expects(w > 0 && h > 0, "mean_abs_region: empty region");
    util::expects(x0 >= 0 && y0 >= 0 && x0 + w <= image.width() && y0 + h <= image.height(),
                  "mean_abs_region: region out of bounds");
    double sum = 0.0;
    for (int y = y0; y < y0 + h; ++y) {
        for (int x = x0; x < x0 + w; ++x) sum += std::fabs(image(x, y, c));
    }
    return sum / (static_cast<double>(w) * static_cast<double>(h));
}

std::pair<float, float> min_max(const Imagef& image)
{
    util::expects(!image.empty(), "min_max of empty image");
    float lo = image.values()[0];
    float hi = lo;
    for (const float v : image.values()) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    return {lo, hi};
}

Imagef normalize_to_8bit(const Imagef& image, float in_lo, float in_hi)
{
    util::expects(in_hi > in_lo, "normalize_to_8bit: degenerate input range");
    const float scale = 255.0f / (in_hi - in_lo);
    Imagef out = affine(image, scale, -in_lo * scale);
    clamp(out, 0.0f, 255.0f);
    return out;
}

} // namespace inframe::img
