#include "imgproc/image_ops.hpp"

#include <cmath>

namespace inframe::img {

Image8 to_u8(const Imagef& src)
{
    Image8 out(src.width(), src.height(), src.channels());
    const auto in = src.values();
    auto dst = out.values();
    for (std::size_t i = 0; i < in.size(); ++i) {
        dst[i] = static_cast<std::uint8_t>(std::clamp(std::lround(in[i]), 0L, 255L));
    }
    return out;
}

Imagef to_float(const Image8& src)
{
    Imagef out(src.width(), src.height(), src.channels());
    const auto in = src.values();
    auto dst = out.values();
    for (std::size_t i = 0; i < in.size(); ++i) dst[i] = static_cast<float>(in[i]);
    return out;
}

Imagef to_gray(const Imagef& src)
{
    if (src.channels() == 1) return src;
    Imagef out(src.width(), src.height(), 1);
    for (int y = 0; y < src.height(); ++y) {
        for (int x = 0; x < src.width(); ++x) {
            out(x, y) = 0.299f * src(x, y, 0) + 0.587f * src(x, y, 1) + 0.114f * src(x, y, 2);
        }
    }
    return out;
}

Imagef add(const Imagef& a, const Imagef& b)
{
    util::expects(a.same_shape(b), "add: shape mismatch");
    Imagef out = a;
    auto dst = out.values();
    const auto rhs = b.values();
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += rhs[i];
    return out;
}

Imagef subtract(const Imagef& a, const Imagef& b)
{
    util::expects(a.same_shape(b), "subtract: shape mismatch");
    Imagef out = a;
    auto dst = out.values();
    const auto rhs = b.values();
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] -= rhs[i];
    return out;
}

Imagef abs_diff(const Imagef& a, const Imagef& b)
{
    util::expects(a.same_shape(b), "abs_diff: shape mismatch");
    Imagef out = a;
    auto dst = out.values();
    const auto rhs = b.values();
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = std::fabs(dst[i] - rhs[i]);
    return out;
}

Imagef affine(const Imagef& a, float scale, float offset)
{
    Imagef out = a;
    out.transform([=](float v) { return v * scale + offset; });
    return out;
}

void clamp(Imagef& image, float lo, float hi)
{
    util::expects(lo <= hi, "clamp: lo must not exceed hi");
    image.transform([=](float v) { return std::clamp(v, lo, hi); });
}

void accumulate(Imagef& a, const Imagef& b, float weight)
{
    util::expects(a.same_shape(b), "accumulate: shape mismatch");
    auto dst = a.values();
    const auto rhs = b.values();
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += rhs[i] * weight;
}

double mean(const Imagef& image)
{
    util::expects(!image.empty(), "mean of empty image");
    double sum = 0.0;
    for (const float v : image.values()) sum += v;
    return sum / static_cast<double>(image.value_count());
}

double mean_region(const Imagef& image, int x0, int y0, int w, int h, int c)
{
    util::expects(w > 0 && h > 0, "mean_region: empty region");
    util::expects(x0 >= 0 && y0 >= 0 && x0 + w <= image.width() && y0 + h <= image.height(),
                  "mean_region: region out of bounds");
    double sum = 0.0;
    for (int y = y0; y < y0 + h; ++y) {
        for (int x = x0; x < x0 + w; ++x) sum += image(x, y, c);
    }
    return sum / (static_cast<double>(w) * static_cast<double>(h));
}

double mean_abs_region(const Imagef& image, int x0, int y0, int w, int h, int c)
{
    util::expects(w > 0 && h > 0, "mean_abs_region: empty region");
    util::expects(x0 >= 0 && y0 >= 0 && x0 + w <= image.width() && y0 + h <= image.height(),
                  "mean_abs_region: region out of bounds");
    double sum = 0.0;
    for (int y = y0; y < y0 + h; ++y) {
        for (int x = x0; x < x0 + w; ++x) sum += std::fabs(image(x, y, c));
    }
    return sum / (static_cast<double>(w) * static_cast<double>(h));
}

std::pair<float, float> min_max(const Imagef& image)
{
    util::expects(!image.empty(), "min_max of empty image");
    float lo = image.values()[0];
    float hi = lo;
    for (const float v : image.values()) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    return {lo, hi};
}

Imagef normalize_to_8bit(const Imagef& image, float in_lo, float in_hi)
{
    util::expects(in_hi > in_lo, "normalize_to_8bit: degenerate input range");
    const float scale = 255.0f / (in_hi - in_lo);
    Imagef out = affine(image, scale, -in_lo * scale);
    clamp(out, 0.0f, 255.0f);
    return out;
}

} // namespace inframe::img
