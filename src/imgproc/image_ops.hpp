// Elementwise arithmetic on float images. These are the primitives the
// encoder (V +- D multiplexing, clamping) and decoder (residual = |I -
// smooth(I)|) are written in.
#pragma once

#include "imgproc/image.hpp"

namespace inframe::img {

// out = a + b (shapes must match).
Imagef add(const Imagef& a, const Imagef& b);

// out = a - b (shapes must match).
Imagef subtract(const Imagef& a, const Imagef& b);

// out = |a - b| (shapes must match).
Imagef abs_diff(const Imagef& a, const Imagef& b);

// Saturating uint8 arithmetic (shapes must match): results clamp to
// [0, 255] instead of wrapping. Useful on quantized display frames where
// round-tripping through float would be wasteful.
Image8 add_saturate(const Image8& a, const Image8& b);
Image8 subtract_saturate(const Image8& a, const Image8& b);
Image8 abs_diff(const Image8& a, const Image8& b);

// out = a * scale + offset.
Imagef affine(const Imagef& a, float scale, float offset);

// In-place clamp of every value to [lo, hi].
void clamp(Imagef& image, float lo, float hi);

// In-place a += b * weight.
void accumulate(Imagef& a, const Imagef& b, float weight = 1.0f);

// Mean over all values.
double mean(const Imagef& image);

// Mean over a rectangular region (must lie inside the image); channel 0.
double mean_region(const Imagef& image, int x0, int y0, int w, int h, int c = 0);

// Mean of |values| over a region; channel c.
double mean_abs_region(const Imagef& image, int x0, int y0, int w, int h, int c = 0);

// Min and max over all values.
std::pair<float, float> min_max(const Imagef& image);

// Returns a copy scaled so values map [in_lo,in_hi] -> [0,255], clamped.
Imagef normalize_to_8bit(const Imagef& image, float in_lo, float in_hi);

} // namespace inframe::img
