#include "imgproc/io.hpp"

#include "imgproc/image_ops.hpp"

#include <fstream>
#include <stdexcept>

namespace inframe::img {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& why)
{
    throw std::runtime_error("pnm: " + path + ": " + why);
}

// Skips whitespace and '#' comments between header tokens.
int read_header_int(std::istream& in)
{
    for (;;) {
        const int ch = in.peek();
        if (ch == '#') {
            std::string line;
            std::getline(in, line);
        } else if (std::isspace(ch)) {
            in.get();
        } else {
            break;
        }
    }
    int value = 0;
    in >> value;
    return value;
}

} // namespace

void write_pnm(const Image8& image, const std::string& path)
{
    util::expects(!image.empty(), "write_pnm: empty image");
    std::ofstream out(path, std::ios::binary);
    if (!out) fail(path, "cannot open for writing");
    out << (image.channels() == 1 ? "P5" : "P6") << "\n"
        << image.width() << " " << image.height() << "\n255\n";
    out.write(reinterpret_cast<const char*>(image.values().data()),
              static_cast<std::streamsize>(image.value_count()));
    if (!out) fail(path, "write failed");
}

void write_pnm(const Imagef& image, const std::string& path)
{
    write_pnm(to_u8(image), path);
}

Image8 read_pnm(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) fail(path, "cannot open for reading");
    std::string magic;
    in >> magic;
    int channels = 0;
    if (magic == "P5") {
        channels = 1;
    } else if (magic == "P6") {
        channels = 3;
    } else {
        fail(path, "unsupported magic '" + magic + "'");
    }
    const int width = read_header_int(in);
    const int height = read_header_int(in);
    const int maxval = read_header_int(in);
    if (width <= 0 || height <= 0) fail(path, "bad dimensions");
    if (maxval <= 0 || maxval > 255) fail(path, "unsupported maxval");
    in.get(); // single whitespace byte after maxval
    Image8 image(width, height, channels);
    in.read(reinterpret_cast<char*>(image.values().data()),
            static_cast<std::streamsize>(image.value_count()));
    if (static_cast<std::size_t>(in.gcount()) != image.value_count()) fail(path, "truncated data");
    return image;
}

} // namespace inframe::img
