// Image file I/O: binary PGM (P5) for grayscale and PPM (P6) for RGB, the
// simplest formats every external viewer understands. Used by the examples
// and benches to dump Fig. 4-style frame pairs.
#pragma once

#include "imgproc/image.hpp"

#include <string>

namespace inframe::img {

// Writes an 8-bit image as PGM (1 channel) or PPM (3 channels).
void write_pnm(const Image8& image, const std::string& path);

// Convenience: round/clamp a float image and write it.
void write_pnm(const Imagef& image, const std::string& path);

// Reads a binary P5/P6 file (maxval <= 255). Throws on malformed input.
Image8 read_pnm(const std::string& path);

} // namespace inframe::img
