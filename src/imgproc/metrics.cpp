#include "imgproc/metrics.hpp"

#include "imgproc/image_ops.hpp"
#include "simd/simd.hpp"

#include <cmath>
#include <limits>

namespace inframe::img {

std::int64_t residual_energy(const Image8& a, const Image8& b)
{
    util::expects(a.same_shape(b), "residual_energy: shape mismatch");
    const auto va = a.values();
    const auto vb = b.values();
    return static_cast<std::int64_t>(
        simd::kernels().residual_energy_u8(va.data(), vb.data(),
                                           static_cast<int>(va.size())));
}

std::int64_t residual_energy_region(const Image8& a, const Image8& b, int x0, int y0, int w,
                                    int h)
{
    util::expects(a.same_shape(b), "residual_energy_region: shape mismatch");
    util::expects(w > 0 && h > 0, "residual_energy_region: empty region");
    util::expects(x0 >= 0 && y0 >= 0 && x0 + w <= a.width() && y0 + h <= a.height(),
                  "residual_energy_region: region out of bounds");
    const int ch = a.channels();
    const auto& k = simd::kernels();
    std::uint64_t sum = 0;
    for (int y = y0; y < y0 + h; ++y) {
        const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(x0) * ch;
        sum += k.residual_energy_u8(a.row(y).data() + off, b.row(y).data() + off, w * ch);
    }
    return static_cast<std::int64_t>(sum);
}

double mae(const Imagef& a, const Imagef& b)
{
    util::expects(a.same_shape(b), "mae: shape mismatch");
    double sum = 0.0;
    const auto va = a.values();
    const auto vb = b.values();
    for (std::size_t i = 0; i < va.size(); ++i) sum += std::fabs(va[i] - vb[i]);
    return sum / static_cast<double>(va.size());
}

double mse(const Imagef& a, const Imagef& b)
{
    util::expects(a.same_shape(b), "mse: shape mismatch");
    double sum = 0.0;
    const auto va = a.values();
    const auto vb = b.values();
    for (std::size_t i = 0; i < va.size(); ++i) {
        const double d = static_cast<double>(va[i]) - vb[i];
        sum += d * d;
    }
    return sum / static_cast<double>(va.size());
}

double psnr(const Imagef& a, const Imagef& b)
{
    const double error = mse(a, b);
    if (error <= 0.0) return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(255.0 * 255.0 / error);
}

double ssim(const Imagef& a_in, const Imagef& b_in)
{
    util::expects(a_in.width() == b_in.width() && a_in.height() == b_in.height(),
                  "ssim: shape mismatch");
    const Imagef a = to_gray(a_in);
    const Imagef b = to_gray(b_in);

    constexpr int window = 8;
    constexpr double c1 = (0.01 * 255.0) * (0.01 * 255.0);
    constexpr double c2 = (0.03 * 255.0) * (0.03 * 255.0);

    double total = 0.0;
    std::size_t windows = 0;
    for (int y0 = 0; y0 + window <= a.height(); y0 += window) {
        for (int x0 = 0; x0 + window <= a.width(); x0 += window) {
            double mean_a = 0.0;
            double mean_b = 0.0;
            for (int y = y0; y < y0 + window; ++y) {
                for (int x = x0; x < x0 + window; ++x) {
                    mean_a += a(x, y);
                    mean_b += b(x, y);
                }
            }
            constexpr double n = window * window;
            mean_a /= n;
            mean_b /= n;
            double var_a = 0.0;
            double var_b = 0.0;
            double cov = 0.0;
            for (int y = y0; y < y0 + window; ++y) {
                for (int x = x0; x < x0 + window; ++x) {
                    const double da = a(x, y) - mean_a;
                    const double db = b(x, y) - mean_b;
                    var_a += da * da;
                    var_b += db * db;
                    cov += da * db;
                }
            }
            var_a /= n - 1;
            var_b /= n - 1;
            cov /= n - 1;
            const double numerator = (2.0 * mean_a * mean_b + c1) * (2.0 * cov + c2);
            const double denominator = (mean_a * mean_a + mean_b * mean_b + c1) * (var_a + var_b + c2);
            total += numerator / denominator;
            ++windows;
        }
    }
    util::ensures(windows > 0, "ssim: image smaller than one window");
    return total / static_cast<double>(windows);
}

} // namespace inframe::img
