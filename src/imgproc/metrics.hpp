// Full-reference image quality metrics. Used to verify that the decoded
// experience matches the paper's claims: complementary pairs must average
// back to the original (high PSNR/SSIM of the temporal mean vs. V), while
// individual multiplexed frames show "obvious artifacts" (low PSNR).
#pragma once

#include "imgproc/image.hpp"

#include <cstdint>

namespace inframe::img {

// Sum of squared differences between same-shaped uint8 images, in an
// int64 accumulator: the worst case (every pixel differs by 255) reaches
// count * 255^2, which overflows 32 bits from ~66k pixels up — a 256x256
// frame already needs 4,261,478,400.
std::int64_t residual_energy(const Image8& a, const Image8& b);

// Same, over the region [x0, x0+w) x [y0, y0+h) of channel-interleaved rows.
std::int64_t residual_energy_region(const Image8& a, const Image8& b, int x0, int y0, int w,
                                    int h);

// Mean absolute error between same-shaped images.
double mae(const Imagef& a, const Imagef& b);

// Mean squared error.
double mse(const Imagef& a, const Imagef& b);

// Peak signal-to-noise ratio in dB for the 8-bit domain (peak = 255).
// Returns +inf for identical images.
double psnr(const Imagef& a, const Imagef& b);

// Global SSIM (mean of the local SSIM map, 8x8 windows, standard C1/C2
// constants for 8-bit dynamic range). Grayscale only; RGB inputs are
// converted to luminance first.
double ssim(const Imagef& a, const Imagef& b);

} // namespace inframe::img
