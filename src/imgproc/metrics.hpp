// Full-reference image quality metrics. Used to verify that the decoded
// experience matches the paper's claims: complementary pairs must average
// back to the original (high PSNR/SSIM of the temporal mean vs. V), while
// individual multiplexed frames show "obvious artifacts" (low PSNR).
#pragma once

#include "imgproc/image.hpp"

namespace inframe::img {

// Mean absolute error between same-shaped images.
double mae(const Imagef& a, const Imagef& b);

// Mean squared error.
double mse(const Imagef& a, const Imagef& b);

// Peak signal-to-noise ratio in dB for the 8-bit domain (peak = 255).
// Returns +inf for identical images.
double psnr(const Imagef& a, const Imagef& b);

// Global SSIM (mean of the local SSIM map, 8x8 windows, standard C1/C2
// constants for 8-bit dynamic range). Grayscale only; RGB inputs are
// converted to luminance first.
double ssim(const Imagef& a, const Imagef& b);

} // namespace inframe::img
