#include "imgproc/pool.hpp"

#include "telemetry/telemetry.hpp"

#include <algorithm>

namespace inframe::img {

Frame_pool& Frame_pool::instance()
{
    static Frame_pool pool;
    return pool;
}

Imagef Frame_pool::acquire(int width, int height, int channels)
{
    const std::size_t needed = static_cast<std::size_t>(width)
                               * static_cast<std::size_t>(height)
                               * static_cast<std::size_t>(channels);
    std::vector<float> storage;
    bool reused = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Best-fitting buffer that already has enough capacity; a smaller
        // buffer would just reallocate and waste the reuse.
        std::size_t best = free_.size();
        for (std::size_t i = 0; i < free_.size(); ++i) {
            const std::size_t cap = free_[i].capacity();
            if (cap >= needed && (best == free_.size() || cap < free_[best].capacity())) {
                best = i;
            }
        }
        if (best != free_.size()) {
            storage = std::move(free_[best]);
            free_[best] = std::move(free_.back());
            free_.pop_back();
            ++reuses_;
            reused = true;
        } else {
            ++misses_;
        }
    }
    static const int hit_metric = telemetry::intern_metric("pool.hit", telemetry::Metric_kind::counter);
    static const int miss_metric = telemetry::intern_metric("pool.miss", telemetry::Metric_kind::counter);
    telemetry::counter_add(reused ? hit_metric : miss_metric);
    return Imagef(width, height, channels, std::move(storage));
}

Imagef Frame_pool::acquire(int width, int height, int channels, float fill)
{
    Imagef frame = acquire(width, height, channels);
    frame.fill(fill);
    return frame;
}

void Frame_pool::recycle(Imagef&& frame)
{
    if (frame.empty()) return;
    std::vector<float> storage = frame.take_storage();
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_.size() < max_pooled) free_.push_back(std::move(storage));
}

std::size_t Frame_pool::pooled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
}

std::size_t Frame_pool::reuse_count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reuses_;
}

Frame_pool::Counters Frame_pool::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return Counters{reuses_, misses_};
}

void Frame_pool::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    free_.clear();
}

} // namespace inframe::img
