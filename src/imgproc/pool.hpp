// Frame-buffer recycling for the 120 Hz simulation loop.
//
// Every stage of the link pipeline (encoder output, display emission, sensor
// projection, exposure integration, decoder residuals) produces whole-frame
// Imagef temporaries. At 120 display frames per simulated second that is
// thousands of multi-megabyte allocations per experiment; the pool keeps a
// small freelist of float buffers so steady-state frames reuse warm memory
// instead of round-tripping through the allocator.
//
// Usage: acquire() in place of the Imagef constructor for hot-path frames,
// recycle() when a frame's contents are dead. Recycling is optional —
// an Imagef that is never returned simply frees its storage as before.
#pragma once

#include "imgproc/image.hpp"

#include <cstddef>
#include <mutex>
#include <vector>

namespace inframe::img {

class Frame_pool {
public:
    // Process-wide pool shared by the pipeline stages. Thread-safe.
    static Frame_pool& instance();

    // A frame backed by recycled storage when available. Contents are
    // unspecified unless `fill` is given.
    Imagef acquire(int width, int height, int channels);
    Imagef acquire(int width, int height, int channels, float fill);

    // Returns a frame's storage to the freelist. Accepts empty images
    // (no-op) so callers can recycle moved-from frames unconditionally.
    void recycle(Imagef&& frame);

    // Buffers currently parked in the freelist / lifetime reuse count.
    std::size_t pooled() const;
    std::size_t reuse_count() const;

    // Lifetime acquire outcomes: hits served from the freelist, misses
    // that fell through to a fresh allocation. The pipeline's
    // observability taps report the delta across a run.
    struct Counters {
        std::size_t hits = 0;
        std::size_t misses = 0;
    };
    Counters counters() const;

    // Drops all pooled buffers (tests; memory pressure).
    void clear();

    // The freelist never holds more than this many buffers; further
    // recycles free their storage normally.
    static constexpr std::size_t max_pooled = 48;

private:
    mutable std::mutex mutex_;
    std::vector<std::vector<float>> free_;
    std::size_t reuses_ = 0;
    std::size_t misses_ = 0;
};

} // namespace inframe::img
