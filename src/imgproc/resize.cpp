#include "imgproc/resize.hpp"

#include "imgproc/pool.hpp"
#include "simd/simd.hpp"
#include "util/thread_pool.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

namespace inframe::img {

namespace {

// Rows per parallel chunk; fixed so partitioning is thread-count-invariant.
constexpr std::int64_t row_grain = 16;

// Per-output-column horizontal sampling plan for resize_bilinear: the
// clamp/floor/fraction math of sample_bilinear precomputed once per resize
// instead of once per (pixel, row). Indices are in pixel units (single
// channel only).
struct Bilinear_columns {
    std::vector<std::int32_t> idx0;
    std::vector<std::int32_t> idx1;
    std::vector<float> tx;
};

Bilinear_columns plan_bilinear_columns(int src_w, int out_w, float sx)
{
    Bilinear_columns plan;
    plan.idx0.resize(static_cast<std::size_t>(out_w));
    plan.idx1.resize(static_cast<std::size_t>(out_w));
    plan.tx.resize(static_cast<std::size_t>(out_w));
    for (int x = 0; x < out_w; ++x) {
        const float src_x = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
        const float fx = std::clamp(src_x, 0.0f, static_cast<float>(src_w - 1));
        const int x0 = static_cast<int>(fx);
        plan.idx0[static_cast<std::size_t>(x)] = x0;
        plan.idx1[static_cast<std::size_t>(x)] = std::min(x0 + 1, src_w - 1);
        plan.tx[static_cast<std::size_t>(x)] = fx - static_cast<float>(x0);
    }
    return plan;
}

} // namespace

float sample_bilinear(const Imagef& src, float x, float y, int c)
{
    const float fx = std::clamp(x, 0.0f, static_cast<float>(src.width() - 1));
    const float fy = std::clamp(y, 0.0f, static_cast<float>(src.height() - 1));
    const int x0 = static_cast<int>(fx);
    const int y0 = static_cast<int>(fy);
    const int x1 = std::min(x0 + 1, src.width() - 1);
    const int y1 = std::min(y0 + 1, src.height() - 1);
    const float tx = fx - static_cast<float>(x0);
    const float ty = fy - static_cast<float>(y0);
    const float top = src(x0, y0, c) * (1.0f - tx) + src(x1, y0, c) * tx;
    const float bottom = src(x0, y1, c) * (1.0f - tx) + src(x1, y1, c) * tx;
    return top * (1.0f - ty) + bottom * ty;
}

Imagef resize_bilinear(const Imagef& src, int out_w, int out_h)
{
    util::expects(out_w > 0 && out_h > 0, "resize_bilinear output must be non-empty");
    Imagef out = Frame_pool::instance().acquire(out_w, out_h, src.channels());
    const float sx = static_cast<float>(src.width()) / static_cast<float>(out_w);
    const float sy = static_cast<float>(src.height()) / static_cast<float>(out_h);
    if (src.channels() == 1) {
        // Single-channel fast path: precompute the horizontal plan once and
        // stream each output row through the bilinear_row kernel. The
        // kernel's lerp order matches sample_bilinear exactly (mul/add, no
        // FMA), so output is bit-identical to the generic path below.
        const Bilinear_columns plan = plan_bilinear_columns(src.width(), out_w, sx);
        const auto& k = simd::kernels();
        util::parallel_for(0, out_h, row_grain, [&](std::int64_t y0, std::int64_t y1) {
            for (std::int64_t yy = y0; yy < y1; ++yy) {
                const int y = static_cast<int>(yy);
                const float src_y = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
                const float fy =
                    std::clamp(src_y, 0.0f, static_cast<float>(src.height() - 1));
                const int sy0 = static_cast<int>(fy);
                const int sy1 = std::min(sy0 + 1, src.height() - 1);
                const float ty = fy - static_cast<float>(sy0);
                k.bilinear_row(src.row(sy0).data(), src.row(sy1).data(), plan.idx0.data(),
                               plan.idx1.data(), plan.tx.data(), ty, out.row(y).data(),
                               out_w);
            }
        });
        return out;
    }
    util::parallel_for(0, out_h, row_grain, [&](std::int64_t y0, std::int64_t y1) {
        for (std::int64_t yy = y0; yy < y1; ++yy) {
            const int y = static_cast<int>(yy);
            const float src_y = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
            for (int x = 0; x < out_w; ++x) {
                const float src_x = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
                for (int c = 0; c < src.channels(); ++c) {
                    out(x, y, c) = sample_bilinear(src, src_x, src_y, c);
                }
            }
        }
    });
    return out;
}

Imagef resize_area(const Imagef& src, int out_w, int out_h)
{
    util::expects(out_w > 0 && out_h > 0, "resize_area output must be non-empty");
    Imagef out = Frame_pool::instance().acquire(out_w, out_h, src.channels());
    const double sx = static_cast<double>(src.width()) / out_w;
    const double sy = static_cast<double>(src.height()) / out_h;
    util::parallel_for(0, out_h, row_grain, [&](std::int64_t band_y0, std::int64_t band_y1) {
        for (std::int64_t yy = band_y0; yy < band_y1; ++yy) {
            const int y = static_cast<int>(yy);
            const double y_lo = y * sy;
            const double y_hi = (y + 1) * sy;
            const int iy_lo = static_cast<int>(std::floor(y_lo));
            const int iy_hi = std::min(static_cast<int>(std::ceil(y_hi)), src.height());
            for (int x = 0; x < out_w; ++x) {
                const double x_lo = x * sx;
                const double x_hi = (x + 1) * sx;
                const int ix_lo = static_cast<int>(std::floor(x_lo));
                const int ix_hi = std::min(static_cast<int>(std::ceil(x_hi)), src.width());
                for (int c = 0; c < src.channels(); ++c) {
                    double acc = 0.0;
                    double area = 0.0;
                    for (int sy_i = iy_lo; sy_i < iy_hi; ++sy_i) {
                        const double hy =
                            std::min<double>(y_hi, sy_i + 1) - std::max<double>(y_lo, sy_i);
                        for (int sx_i = ix_lo; sx_i < ix_hi; ++sx_i) {
                            const double wx =
                                std::min<double>(x_hi, sx_i + 1) - std::max<double>(x_lo, sx_i);
                            const double w = wx * hy;
                            acc += w * src(sx_i, sy_i, c);
                            area += w;
                        }
                    }
                    out(x, y, c) = static_cast<float>(area > 0.0 ? acc / area : 0.0);
                }
            }
        }
    });
    return out;
}

Imagef translate(const Imagef& src, float dx, float dy)
{
    Imagef out = Frame_pool::instance().acquire(src.width(), src.height(), src.channels());
    util::parallel_for(0, src.height(), row_grain, [&](std::int64_t y0, std::int64_t y1) {
        for (std::int64_t yy = y0; yy < y1; ++yy) {
            const int y = static_cast<int>(yy);
            for (int x = 0; x < src.width(); ++x) {
                for (int c = 0; c < src.channels(); ++c) {
                    out(x, y, c) = sample_bilinear(src, static_cast<float>(x) - dx,
                                                   static_cast<float>(y) - dy, c);
                }
            }
        }
    });
    return out;
}

Imagef upscale_nearest(const Imagef& src, int k)
{
    util::expects(k >= 1, "upscale_nearest factor must be >= 1");
    Imagef out = Frame_pool::instance().acquire(src.width() * k, src.height() * k,
                                                src.channels());
    util::parallel_for(0, out.height(), row_grain, [&](std::int64_t y0, std::int64_t y1) {
        for (std::int64_t yy = y0; yy < y1; ++yy) {
            const int y = static_cast<int>(yy);
            for (int x = 0; x < out.width(); ++x) {
                for (int c = 0; c < src.channels(); ++c) out(x, y, c) = src(x / k, y / k, c);
            }
        }
    });
    return out;
}

} // namespace inframe::img
