// Resampling. The camera model downsamples the 1920x1080 screen image to
// the 1280x720 sensor grid (paper 4); area averaging models the photosite
// integration, bilinear handles sub-pixel misalignment.
#pragma once

#include "imgproc/image.hpp"

namespace inframe::img {

// Bilinear resize to (out_w, out_h).
Imagef resize_bilinear(const Imagef& src, int out_w, int out_h);

// Area-average (pixel-mixing) resize; correct for downscaling because every
// source pixel contributes proportionally to its overlap.
Imagef resize_area(const Imagef& src, int out_w, int out_h);

// Bilinear sample at a real-valued position (clamp-to-edge).
float sample_bilinear(const Imagef& src, float x, float y, int c = 0);

// Translates the image by a (possibly fractional) offset, clamp-to-edge.
Imagef translate(const Imagef& src, float dx, float dy);

// Nearest-neighbour integer upscale by factor k (used to render super
// Pixels and for visual dumps).
Imagef upscale_nearest(const Imagef& src, int k);

} // namespace inframe::img
