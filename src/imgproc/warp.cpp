#include "imgproc/warp.hpp"

#include "imgproc/pool.hpp"
#include "imgproc/resize.hpp"
#include "util/contract.hpp"
#include "util/thread_pool.hpp"

#include <cmath>

namespace inframe::img {

Homography::Homography() : m_{1, 0, 0, 0, 1, 0, 0, 0, 1} {}

Homography::Homography(const std::array<double, 9>& m) : m_(m)
{
    util::expects(std::fabs(m[8]) > 1e-12 || std::fabs(m[6]) + std::fabs(m[7]) > 1e-12,
                  "homography: degenerate matrix");
}

Homography Homography::identity()
{
    return Homography();
}

Homography Homography::translation(double dx, double dy)
{
    return Homography({1, 0, dx, 0, 1, dy, 0, 0, 1});
}

Homography Homography::scale(double sx, double sy)
{
    util::expects(sx != 0.0 && sy != 0.0, "homography: zero scale");
    return Homography({sx, 0, 0, 0, sy, 0, 0, 0, 1});
}

Homography Homography::unit_square_to_quad(const std::array<double, 8>& c)
{
    // Standard projective mapping of the unit square to a quad
    // (Heckbert's formulation). Corners clockwise from top-left:
    // (x0,y0) <- (0,0), (x1,y1) <- (1,0), (x2,y2) <- (1,1), (x3,y3) <- (0,1).
    const double x0 = c[0], y0 = c[1], x1 = c[2], y1 = c[3];
    const double x2 = c[4], y2 = c[5], x3 = c[6], y3 = c[7];
    const double dx1 = x1 - x2;
    const double dx2 = x3 - x2;
    const double dy1 = y1 - y2;
    const double dy2 = y3 - y2;
    const double sx = x0 - x1 + x2 - x3;
    const double sy = y0 - y1 + y2 - y3;
    const double denom = dx1 * dy2 - dx2 * dy1;
    util::expects(std::fabs(denom) > 1e-12, "homography: collinear quad corners");
    const double g = (sx * dy2 - sy * dx2) / denom;
    const double h = (sy * dx1 - sx * dy1) / denom;
    const double a = x1 - x0 + g * x1;
    const double b = x3 - x0 + h * x3;
    const double d = y1 - y0 + g * y1;
    const double e = y3 - y0 + h * y3;
    return Homography({a, b, x0, d, e, y0, g, h, 1.0});
}

Homography Homography::rect_to_quad(double w, double h, const std::array<double, 8>& corners)
{
    util::expects(w > 0.0 && h > 0.0, "homography: rectangle must be non-empty");
    return unit_square_to_quad(corners) * scale(1.0 / w, 1.0 / h);
}

Homography operator*(const Homography& a, const Homography& b)
{
    std::array<double, 9> out{};
    for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) {
            double acc = 0.0;
            for (int k = 0; k < 3; ++k) {
                acc += a.m_[static_cast<std::size_t>(r * 3 + k)]
                       * b.m_[static_cast<std::size_t>(k * 3 + c)];
            }
            out[static_cast<std::size_t>(r * 3 + c)] = acc;
        }
    }
    return Homography(out);
}

void Homography::apply(double x, double y, double& out_x, double& out_y) const
{
    const double w = m_[6] * x + m_[7] * y + m_[8];
    util::expects(std::fabs(w) > 1e-12, "homography: point maps to infinity");
    out_x = (m_[0] * x + m_[1] * y + m_[2]) / w;
    out_y = (m_[3] * x + m_[4] * y + m_[5]) / w;
}

Homography Homography::inverse() const
{
    const auto& m = m_;
    std::array<double, 9> adj = {
        m[4] * m[8] - m[5] * m[7], m[2] * m[7] - m[1] * m[8], m[1] * m[5] - m[2] * m[4],
        m[5] * m[6] - m[3] * m[8], m[0] * m[8] - m[2] * m[6], m[2] * m[3] - m[0] * m[5],
        m[3] * m[7] - m[4] * m[6], m[1] * m[6] - m[0] * m[7], m[0] * m[4] - m[1] * m[3]};
    const double det = m[0] * adj[0] + m[1] * adj[3] + m[2] * adj[6];
    util::expects(std::fabs(det) > 1e-12, "homography: singular matrix");
    for (auto& v : adj) v /= det;
    return Homography(adj);
}

Imagef warp_perspective(const Imagef& src, const Homography& dst_to_src, int out_w, int out_h)
{
    util::expects(out_w > 0 && out_h > 0, "warp_perspective: output must be non-empty");
    Imagef out = Frame_pool::instance().acquire(out_w, out_h, src.channels());
    util::parallel_for(0, out_h, 16, [&](std::int64_t y0, std::int64_t y1) {
        for (std::int64_t yy = y0; yy < y1; ++yy) {
            const int y = static_cast<int>(yy);
            for (int x = 0; x < out_w; ++x) {
                double sx = 0.0;
                double sy = 0.0;
                dst_to_src.apply(static_cast<double>(x), static_cast<double>(y), sx, sy);
                for (int c = 0; c < src.channels(); ++c) {
                    out(x, y, c) = sample_bilinear(src, static_cast<float>(sx),
                                                   static_cast<float>(sy), c);
                }
            }
        }
    });
    return out;
}

} // namespace inframe::img
