// Homographies and perspective warping.
//
// The paper's rig captures the screen head-on from 50 cm; a real phone
// views it from an angle. A plane-to-plane homography models that geometry
// exactly: the camera model warps the screen image through it, and the
// perspective-aware decoder maps sensor pixels back through the inverse.
#pragma once

#include "imgproc/image.hpp"

#include <array>

namespace inframe::img {

// 3x3 projective transform, row-major. Maps (x, y) -> (x', y') via
// homogeneous coordinates.
class Homography {
public:
    // Identity by default.
    Homography();
    explicit Homography(const std::array<double, 9>& m);

    static Homography identity();

    // Translation and axis-aligned scale (affine special cases).
    static Homography translation(double dx, double dy);
    static Homography scale(double sx, double sy);

    // The unique homography mapping the unit square's corners
    // (0,0),(1,0),(1,1),(0,1) to the four given points (clockwise from
    // top-left). Build arbitrary quad mappings by composition.
    static Homography unit_square_to_quad(const std::array<double, 8>& corners);

    // Maps the rectangle [0,w]x[0,h] to the quad given by 4 corner points
    // (x0,y0, x1,y1, x2,y2, x3,y3; clockwise from top-left).
    static Homography rect_to_quad(double w, double h, const std::array<double, 8>& corners);

    // Composition: (a * b)(p) == a(b(p)).
    friend Homography operator*(const Homography& a, const Homography& b);

    // Applies to a point.
    void apply(double x, double y, double& out_x, double& out_y) const;

    // Matrix inverse (throws Contract_violation if singular).
    Homography inverse() const;

    const std::array<double, 9>& matrix() const { return m_; }

private:
    std::array<double, 9> m_;
};

// Warps src into an out_w x out_h image: each destination pixel samples
// src at dst_to_src(x, y) with bilinear interpolation; samples falling
// outside src use clamp-to-edge.
Imagef warp_perspective(const Imagef& src, const Homography& dst_to_src, int out_w, int out_h);

} // namespace inframe::img
