// Umbrella header: the public API of the InFrame library.
//
//   #include <inframe.hpp>   (with src/ on the include path)
//
// For finer-grained builds include the per-module headers directly; every
// public type is documented at its declaration.
#pragma once

// The paper's contribution.
#include "core/config.hpp"      // Inframe_config, paper_config
#include "core/encoder.hpp"     // Inframe_encoder, make_complementary_pair
#include "core/decoder.hpp"     // Inframe_decoder, Detector
#include "core/session.hpp"     // Inframe_sender / Inframe_receiver, Frame_codec
#include "core/sync.hpp"        // Phase_estimator, Synced_decoder
#include "core/calibration.hpp" // viewing-geometry bootstrap
#include "core/link_runner.hpp" // experiment harnesses
#include "core/pipeline.hpp"    // stage-graph runtime (Pipeline, Stage)
#include "core/stages.hpp"      // Video/Encode/Link/Decode/Send/Receive stages

// Substrates.
#include "channel/display.hpp"
#include "channel/camera.hpp"
#include "channel/link.hpp"
#include "coding/geometry.hpp"
#include "coding/chessboard.hpp"
#include "coding/parity.hpp"
#include "coding/reed_solomon.hpp"
#include "coding/interleaver.hpp"
#include "coding/framing.hpp"
#include "hvs/observer.hpp"
#include "hvs/temporal_model.hpp"
#include "hvs/flicker.hpp"
#include "video/source.hpp"
#include "video/playback.hpp"
#include "dsp/envelope.hpp"
#include "dsp/filter.hpp"
#include "dsp/spectrum.hpp"
#include "imgproc/image.hpp"
#include "imgproc/image_ops.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/resize.hpp"
#include "imgproc/draw.hpp"
#include "imgproc/io.hpp"
#include "imgproc/metrics.hpp"
#include "telemetry/telemetry.hpp" // Registry, Scoped_span, Session (--trace)
#include "util/prng.hpp"
#include "util/bitstream.hpp"
#include "util/crc32.hpp"
#include "util/stats.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"
