// Runtime dispatch: build the per-level kernel tables once, pick the
// active level once (CPUID/compile-target detection, overridable with
// INFRAME_SIMD), and hand out const references ever after.

#include "simd/simd.hpp"

#include "simd/kernels_internal.hpp"
#include "util/contract.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace inframe::simd {
namespace {

constexpr int level_count = 4;

struct Dispatch_state {
    std::array<Kernels, level_count> tables{};
    std::array<Level, level_count> available{};
    int available_count = 0;
    Level best = Level::scalar;
    Level initial = Level::scalar; // after INFRAME_SIMD is applied
};

bool is_supported_here(Level level)
{
#if defined(__x86_64__)
    switch (level) {
    case Level::scalar: return true;
    case Level::sse2: return true; // x86-64 baseline
    case Level::avx2:
#if defined(__GNUC__) || defined(__clang__)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    case Level::neon: return false;
    }
    return false;
#elif defined(__aarch64__)
    // NEON (ASIMD) is mandatory in AArch64 — no HWCAP probe needed.
    return level == Level::scalar || level == Level::neon;
#else
    return level == Level::scalar;
#endif
}

Dispatch_state build_state()
{
    Dispatch_state s;

    // Cumulative composition: each table starts from the previous level's,
    // so an unsupported-at-compile-time level inherits the best below it.
    s.tables[int(Level::scalar)] = detail::scalar_table();
    s.tables[int(Level::sse2)] = detail::sse2_table(s.tables[int(Level::scalar)]);
    s.tables[int(Level::avx2)] = detail::avx2_table(s.tables[int(Level::sse2)]);
    s.tables[int(Level::neon)] = detail::neon_table(s.tables[int(Level::scalar)]);

    for (Level level : {Level::scalar, Level::sse2, Level::avx2, Level::neon}) {
        if (is_supported_here(level)) {
            s.available[s.available_count++] = level;
            s.best = level;
        }
    }

    s.initial = s.best;
    if (const char* env = std::getenv("INFRAME_SIMD"); env != nullptr && env[0] != '\0') {
        const Level requested = level_from_name(env);
        if (is_supported_here(requested)) {
            s.initial = requested;
        }
        else {
            std::fprintf(stderr,
                         "inframe: INFRAME_SIMD=%s is not supported on this host; "
                         "using %s\n",
                         to_string(requested), to_string(s.best));
        }
    }
    return s;
}

const Dispatch_state& state()
{
    static const Dispatch_state s = build_state();
    return s;
}

std::atomic<Level>& active_slot()
{
    static std::atomic<Level> slot{state().initial};
    return slot;
}

} // namespace

const char* to_string(Level level)
{
    switch (level) {
    case Level::scalar: return "scalar";
    case Level::sse2: return "sse2";
    case Level::avx2: return "avx2";
    case Level::neon: return "neon";
    }
    return "unknown";
}

Level best_supported() { return state().best; }

std::span<const Level> available_levels()
{
    const Dispatch_state& s = state();
    return {s.available.data(), static_cast<std::size_t>(s.available_count)};
}

Level active_level() { return active_slot().load(std::memory_order_relaxed); }

const Kernels& kernels() { return state().tables[int(active_level())]; }

const Kernels& kernels_for(Level level)
{
    util::expects(is_supported_here(level), "simd level not supported on this host");
    return state().tables[int(level)];
}

Level set_active_level(Level level)
{
    util::expects(is_supported_here(level), "simd level not supported on this host");
    return active_slot().exchange(level, std::memory_order_relaxed);
}

Level level_from_name(const std::string& name)
{
    std::string lower(name.size(), '\0');
    std::transform(name.begin(), name.end(), lower.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    if (lower == "scalar") return Level::scalar;
    if (lower == "sse2") return Level::sse2;
    if (lower == "avx2") return Level::avx2;
    if (lower == "neon") return Level::neon;
    util::expects(false, "INFRAME_SIMD must be scalar, sse2, avx2, or neon");
    return Level::scalar; // unreachable
}

} // namespace inframe::simd
