// AVX2 kernels. Built on top of the SSE2 table: kernels re-implemented
// here go 8 (float) / 32 (uint8) wide; everything else inherits the SSE2
// version. Bit-identity arguments mirror kernels_sse2.cpp — wider vectors
// change nothing about per-lane arithmetic, and row_sum_f64 keeps the same
// fixed 8-lane accumulation shape (two 4-wide double accumulators).
//
// This file is compiled with -mavx2 (see src/simd/CMakeLists.txt) and its
// functions are only reachable after a runtime CPUID check in dispatch.cpp.

#include "simd/kernels_internal.hpp"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace inframe::simd {
namespace avx2 {

void add_f32(const float* a, const float* b, float* out, int n)
{
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i,
                         _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
    }
    for (; i < n; ++i) out[i] = a[i] + b[i];
}

void sub_f32(const float* a, const float* b, float* out, int n)
{
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i,
                         _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
    }
    for (; i < n; ++i) out[i] = a[i] - b[i];
}

void absdiff_f32(const float* a, const float* b, float* out, int n)
{
    const __m256 sign = _mm256_set1_ps(-0.0f);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
        _mm256_storeu_ps(out + i, _mm256_andnot_ps(sign, d));
    }
    for (; i < n; ++i) out[i] = std::fabs(a[i] - b[i]);
}

void clamp_f32(float* x, int n, float lo, float hi)
{
    const __m256 vlo = _mm256_set1_ps(lo);
    const __m256 vhi = _mm256_set1_ps(hi);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(x + i,
                         _mm256_min_ps(_mm256_max_ps(_mm256_loadu_ps(x + i), vlo), vhi));
    }
    for (; i < n; ++i) x[i] = std::min(std::max(x[i], lo), hi);
}

void masked_add_f32(float* dst, const std::uint32_t* mask, int n, float delta)
{
    const __m256 vdelta = _mm256_set1_ps(delta);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 x = _mm256_loadu_ps(dst + i);
        const __m256 m = _mm256_castsi256_ps(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i)));
        // blendv keeps unset lanes bit-for-bit untouched (no fp op on them).
        _mm256_storeu_ps(dst + i, _mm256_blendv_ps(x, _mm256_add_ps(x, vdelta), m));
    }
    for (; i < n; ++i) {
        if (mask[i]) dst[i] += delta;
    }
}

void quantize_u8(const float* in, std::uint8_t* out, int n)
{
    const __m256 vlo = _mm256_setzero_ps();
    const __m256 vhi = _mm256_set1_ps(255.0f);
    const __m256d half = _mm256_set1_pd(0.5);
    const __m128i zero = _mm_setzero_si128();
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 x = _mm256_min_ps(_mm256_max_ps(_mm256_loadu_ps(in + i), vlo), vhi);
        const __m128i lo4 = _mm256_cvttpd_epi32(
            _mm256_add_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(x)), half));
        const __m128i hi4 = _mm256_cvttpd_epi32(
            _mm256_add_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(x, 1)), half));
        const __m128i words = _mm_packs_epi32(lo4, hi4);
        _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i),
                         _mm_packus_epi16(words, zero));
    }
    for (; i < n; ++i) {
        const float v = std::min(std::max(in[i], 0.0f), 255.0f);
        out[i] = static_cast<std::uint8_t>(std::lround(v));
    }
}

void widen_u8(const std::uint8_t* in, float* out, int n)
{
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i bytes = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + i));
        _mm256_storeu_ps(out + i, _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes)));
    }
    for (; i < n; ++i) out[i] = static_cast<float>(in[i]);
}

void add_sat_u8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, int n)
{
    int i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), _mm256_adds_epu8(va, vb));
    }
    if (i < n) scalar::add_sat_u8(a + i, b + i, out + i, n - i);
}

void sub_sat_u8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, int n)
{
    int i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), _mm256_subs_epu8(va, vb));
    }
    if (i < n) scalar::sub_sat_u8(a + i, b + i, out + i, n - i);
}

void absdiff_u8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, int n)
{
    int i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(out + i),
            _mm256_or_si256(_mm256_subs_epu8(va, vb), _mm256_subs_epu8(vb, va)));
    }
    if (i < n) scalar::absdiff_u8(a + i, b + i, out + i, n - i);
}

std::uint64_t residual_energy_u8(const std::uint8_t* a, const std::uint8_t* b, int n)
{
    const __m256i zero = _mm256_setzero_si256();
    __m256i acc64 = zero;
    int i = 0;
    while (i + 32 <= n) {
        const int block_end = std::min(n, i + 4096 * 32);
        __m256i acc32 = zero;
        for (; i + 32 <= block_end; i += 32) {
            const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
            const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
            const __m256i d =
                _mm256_or_si256(_mm256_subs_epu8(va, vb), _mm256_subs_epu8(vb, va));
            const __m256i dlo = _mm256_unpacklo_epi8(d, zero);
            const __m256i dhi = _mm256_unpackhi_epi8(d, zero);
            acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(dlo, dlo));
            acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(dhi, dhi));
        }
        acc64 = _mm256_add_epi64(acc64, _mm256_unpacklo_epi32(acc32, zero));
        acc64 = _mm256_add_epi64(acc64, _mm256_unpackhi_epi32(acc32, zero));
    }
    alignas(32) std::uint64_t parts[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(parts), acc64);
    std::uint64_t sum = parts[0] + parts[1] + parts[2] + parts[3];
    return sum + (i < n ? scalar::residual_energy_u8(a + i, b + i, n - i) : 0);
}

double row_sum_f64(const float* p, int n)
{
    // Lanes 0..3 in acc0, lanes 4..7 in acc1 — the reference 8-lane shape.
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 x = _mm256_loadu_ps(p + i);
        acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(x)));
        acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(x, 1)));
    }
    alignas(32) double lane[8];
    _mm256_storeu_pd(lane, acc0);
    _mm256_storeu_pd(lane + 4, acc1);
    for (; i < n; ++i) lane[i & 7] += static_cast<double>(p[i]);
    return ((lane[0] + lane[1]) + (lane[2] + lane[3]))
           + ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

void vblur_accum(double* acc, const float* row, int n)
{
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 x = _mm_loadu_ps(row + i);
        _mm256_storeu_pd(acc + i,
                         _mm256_add_pd(_mm256_loadu_pd(acc + i), _mm256_cvtps_pd(x)));
    }
    for (; i < n; ++i) acc[i] += static_cast<double>(row[i]);
}

void vblur_update(double* acc, const float* enter, const float* leave, int n)
{
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 d = _mm_sub_ps(_mm_loadu_ps(enter + i), _mm_loadu_ps(leave + i));
        _mm256_storeu_pd(acc + i,
                         _mm256_add_pd(_mm256_loadu_pd(acc + i), _mm256_cvtps_pd(d)));
    }
    for (; i < n; ++i) acc[i] += static_cast<double>(enter[i] - leave[i]);
}

void vblur_store(const double* acc, float* out, int n, float norm)
{
    const __m128 vnorm = _mm_set1_ps(norm);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 f = _mm256_cvtpd_ps(_mm256_loadu_pd(acc + i));
        _mm_storeu_ps(out + i, _mm_mul_ps(f, vnorm));
    }
    for (; i < n; ++i) out[i] = static_cast<float>(acc[i]) * norm;
}

void box_blur_h(const float* const* src, float* const* dst, int lanes, int width, int stride,
                int radius)
{
    const float norm = 1.0f / static_cast<float>(2 * radius + 1);
    const __m256 vnorm = _mm256_set1_ps(norm);
    int lane = 0;
    for (; lane + 8 <= lanes; lane += 8) {
        const float* const* in = src + lane;
        float* const* out = dst + lane;
        auto gather = [&](int x) {
            const std::ptrdiff_t o = static_cast<std::ptrdiff_t>(x) * stride;
            return _mm256_set_ps(in[7][o], in[6][o], in[5][o], in[4][o], in[3][o], in[2][o],
                                 in[1][o], in[0][o]);
        };
        __m256d w03 = _mm256_setzero_pd();
        __m256d w47 = _mm256_setzero_pd();
        for (int i = -radius; i <= radius; ++i) {
            const __m256 f = gather(std::clamp(i, 0, width - 1));
            w03 = _mm256_add_pd(w03, _mm256_cvtps_pd(_mm256_castps256_ps128(f)));
            w47 = _mm256_add_pd(w47, _mm256_cvtps_pd(_mm256_extractf128_ps(f, 1)));
        }
        alignas(32) float result[8];
        for (int x = 0; x < width; ++x) {
            const __m256 f = _mm256_set_m128(_mm256_cvtpd_ps(w47), _mm256_cvtpd_ps(w03));
            _mm256_storeu_ps(result, _mm256_mul_ps(f, vnorm));
            const std::ptrdiff_t o = static_cast<std::ptrdiff_t>(x) * stride;
            for (int j = 0; j < 8; ++j) out[j][o] = result[j];
            const __m256 d = _mm256_sub_ps(gather(std::clamp(x + radius + 1, 0, width - 1)),
                                           gather(std::clamp(x - radius, 0, width - 1)));
            w03 = _mm256_add_pd(w03, _mm256_cvtps_pd(_mm256_castps256_ps128(d)));
            w47 = _mm256_add_pd(w47, _mm256_cvtps_pd(_mm256_extractf128_ps(d, 1)));
        }
    }
    if (lane < lanes) {
        // Remaining 1..7 streams: every level produces identical streams,
        // so delegating the tail to the reference is safe.
        scalar::box_blur_h(src + lane, dst + lane, lanes - lane, width, stride, radius);
    }
}

void bilinear_row(const float* row0, const float* row1, const std::int32_t* idx0,
                  const std::int32_t* idx1, const float* tx, float ty, float* out, int n)
{
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 vty = _mm256_set1_ps(ty);
    const __m256 vomty = _mm256_sub_ps(one, vty);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i vidx0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx0 + i));
        const __m256i vidx1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx1 + i));
        const __m256 t = _mm256_loadu_ps(tx + i);
        const __m256 omt = _mm256_sub_ps(one, t);
        const __m256 r00 = _mm256_i32gather_ps(row0, vidx0, 4);
        const __m256 r01 = _mm256_i32gather_ps(row0, vidx1, 4);
        const __m256 r10 = _mm256_i32gather_ps(row1, vidx0, 4);
        const __m256 r11 = _mm256_i32gather_ps(row1, vidx1, 4);
        const __m256 top = _mm256_add_ps(_mm256_mul_ps(r00, omt), _mm256_mul_ps(r01, t));
        const __m256 bottom = _mm256_add_ps(_mm256_mul_ps(r10, omt), _mm256_mul_ps(r11, t));
        _mm256_storeu_ps(out + i,
                         _mm256_add_ps(_mm256_mul_ps(top, vomty), _mm256_mul_ps(bottom, vty)));
    }
    for (; i < n; ++i) {
        const float t = tx[i];
        const float top = row0[idx0[i]] * (1.0f - t) + row0[idx1[i]] * t;
        const float bottom = row1[idx0[i]] * (1.0f - t) + row1[idx1[i]] * t;
        out[i] = top * (1.0f - ty) + bottom * ty;
    }
}

} // namespace avx2

namespace detail {

Kernels avx2_table(Kernels base)
{
#define INFRAME_SIMD_KERNEL(name, ret, args) base.name = avx2::name;
#include "simd/kernel_list.def"
#undef INFRAME_SIMD_KERNEL
    return base;
}

} // namespace detail
} // namespace inframe::simd

#else // no AVX2 at compile time: level never offered, keep the base table.

namespace inframe::simd::detail {
Kernels avx2_table(Kernels base) { return base; }
} // namespace inframe::simd::detail

#endif
