// Internal glue between dispatch.cpp and the per-level kernel files.
// Each level builds its table on top of the previous one (scalar -> sse2
// -> avx2 on x86-64; scalar -> neon on aarch64), so a level that does not
// re-implement a kernel inherits the best lower-level version.
#pragma once

#include "simd/simd.hpp"

namespace inframe::simd {

// The scalar reference implementations, visible to every level so vector
// files can delegate lane/element tails to the exact reference code.
namespace scalar {
#define INFRAME_SIMD_KERNEL(name, ret, args) ret name args;
#include "simd/kernel_list.def"
#undef INFRAME_SIMD_KERNEL
} // namespace scalar

} // namespace inframe::simd

namespace inframe::simd::detail {

Kernels scalar_table();

// Compiled on every platform; on a platform without the ISA they return
// `base` unchanged (dispatch.cpp never selects the level there anyway).
Kernels sse2_table(Kernels base);
Kernels avx2_table(Kernels base);
Kernels neon_table(Kernels base);

} // namespace inframe::simd::detail
