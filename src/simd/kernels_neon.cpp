// NEON kernels (aarch64). Built on top of the scalar table; the two
// structurally complex kernels (box_blur_h, bilinear_row) inherit the
// scalar version — NEON still covers every elementwise and reduction
// kernel. Bit-identity arguments mirror kernels_sse2.cpp; quantize_u8
// uses FCVTAS (vcvtaq_s32_f32, round-ties-away), which matches lround
// directly for in-range values.

#include "simd/kernels_internal.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>

namespace inframe::simd {
namespace neon {

void add_f32(const float* a, const float* b, float* out, int n)
{
    int i = 0;
    for (; i + 4 <= n; i += 4) vst1q_f32(out + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
    for (; i < n; ++i) out[i] = a[i] + b[i];
}

void sub_f32(const float* a, const float* b, float* out, int n)
{
    int i = 0;
    for (; i + 4 <= n; i += 4) vst1q_f32(out + i, vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
    for (; i < n; ++i) out[i] = a[i] - b[i];
}

void absdiff_f32(const float* a, const float* b, float* out, int n)
{
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        // |a-b| via subtract + abs (sign-bit clear): identical to
        // fabsf(a[i]-b[i]). vabdq_f32 computes the same value for finite
        // inputs but we keep the two-op form to mirror the reference.
        vst1q_f32(out + i, vabsq_f32(vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i))));
    }
    for (; i < n; ++i) out[i] = std::fabs(a[i] - b[i]);
}

void clamp_f32(float* x, int n, float lo, float hi)
{
    const float32x4_t vlo = vdupq_n_f32(lo);
    const float32x4_t vhi = vdupq_n_f32(hi);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        vst1q_f32(x + i, vminq_f32(vmaxq_f32(vld1q_f32(x + i), vlo), vhi));
    }
    for (; i < n; ++i) x[i] = std::min(std::max(x[i], lo), hi);
}

void masked_add_f32(float* dst, const std::uint32_t* mask, int n, float delta)
{
    const float32x4_t vdelta = vdupq_n_f32(delta);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t x = vld1q_f32(dst + i);
        const uint32x4_t m = vld1q_u32(mask + i);
        // Bitwise select keeps unset lanes untouched (no fp op on them).
        vst1q_f32(dst + i, vbslq_f32(m, vaddq_f32(x, vdelta), x));
    }
    for (; i < n; ++i) {
        if (mask[i]) dst[i] += delta;
    }
}

void quantize_u8(const float* in, std::uint8_t* out, int n)
{
    const float32x4_t vlo = vdupq_n_f32(0.0f);
    const float32x4_t vhi = vdupq_n_f32(255.0f);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const float32x4_t x0 = vminq_f32(vmaxq_f32(vld1q_f32(in + i), vlo), vhi);
        const float32x4_t x1 = vminq_f32(vmaxq_f32(vld1q_f32(in + i + 4), vlo), vhi);
        const int32x4_t i0 = vcvtaq_s32_f32(x0); // round-ties-away == lround
        const int32x4_t i1 = vcvtaq_s32_f32(x1);
        const uint16x8_t words =
            vcombine_u16(vqmovun_s32(i0), vqmovun_s32(i1));
        vst1_u8(out + i, vqmovn_u16(words));
    }
    for (; i < n; ++i) {
        const float v = std::min(std::max(in[i], 0.0f), 255.0f);
        out[i] = static_cast<std::uint8_t>(std::lround(v));
    }
}

void widen_u8(const std::uint8_t* in, float* out, int n)
{
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const uint16x8_t w = vmovl_u8(vld1_u8(in + i));
        vst1q_f32(out + i, vcvtq_f32_u32(vmovl_u16(vget_low_u16(w))));
        vst1q_f32(out + i + 4, vcvtq_f32_u32(vmovl_u16(vget_high_u16(w))));
    }
    for (; i < n; ++i) out[i] = static_cast<float>(in[i]);
}

void add_sat_u8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, int n)
{
    int i = 0;
    for (; i + 16 <= n; i += 16) vst1q_u8(out + i, vqaddq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
    if (i < n) scalar::add_sat_u8(a + i, b + i, out + i, n - i);
}

void sub_sat_u8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, int n)
{
    int i = 0;
    for (; i + 16 <= n; i += 16) vst1q_u8(out + i, vqsubq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
    if (i < n) scalar::sub_sat_u8(a + i, b + i, out + i, n - i);
}

void absdiff_u8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, int n)
{
    int i = 0;
    for (; i + 16 <= n; i += 16) vst1q_u8(out + i, vabdq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
    if (i < n) scalar::absdiff_u8(a + i, b + i, out + i, n - i);
}

std::uint64_t residual_energy_u8(const std::uint8_t* a, const std::uint8_t* b, int n)
{
    uint64x2_t acc = vdupq_n_u64(0);
    int i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t d = vabdq_u8(vld1q_u8(a + i), vld1q_u8(b + i));
        const uint16x8_t dlo = vmovl_u8(vget_low_u8(d));
        const uint16x8_t dhi = vmovl_u8(vget_high_u8(d));
        uint32x4_t sq = vmull_u16(vget_low_u16(dlo), vget_low_u16(dlo));
        sq = vmlal_u16(sq, vget_high_u16(dlo), vget_high_u16(dlo));
        sq = vmlal_u16(sq, vget_low_u16(dhi), vget_low_u16(dhi));
        sq = vmlal_u16(sq, vget_high_u16(dhi), vget_high_u16(dhi));
        acc = vpadalq_u32(acc, sq);
    }
    std::uint64_t sum = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
    return sum + (i < n ? scalar::residual_energy_u8(a + i, b + i, n - i) : 0);
}

double row_sum_f64(const float* p, int n)
{
    // Four float64x2 accumulators hold the reference's 8 lanes in order.
    float64x2_t acc01 = vdupq_n_f64(0.0);
    float64x2_t acc23 = vdupq_n_f64(0.0);
    float64x2_t acc45 = vdupq_n_f64(0.0);
    float64x2_t acc67 = vdupq_n_f64(0.0);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const float32x4_t lo = vld1q_f32(p + i);
        const float32x4_t hi = vld1q_f32(p + i + 4);
        acc01 = vaddq_f64(acc01, vcvt_f64_f32(vget_low_f32(lo)));
        acc23 = vaddq_f64(acc23, vcvt_f64_f32(vget_high_f32(lo)));
        acc45 = vaddq_f64(acc45, vcvt_f64_f32(vget_low_f32(hi)));
        acc67 = vaddq_f64(acc67, vcvt_f64_f32(vget_high_f32(hi)));
    }
    double lane[8];
    vst1q_f64(lane + 0, acc01);
    vst1q_f64(lane + 2, acc23);
    vst1q_f64(lane + 4, acc45);
    vst1q_f64(lane + 6, acc67);
    for (; i < n; ++i) lane[i & 7] += static_cast<double>(p[i]);
    return ((lane[0] + lane[1]) + (lane[2] + lane[3]))
           + ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

void vblur_accum(double* acc, const float* row, int n)
{
    int i = 0;
    for (; i + 2 <= n; i += 2) {
        const float32x2_t x = vld1_f32(row + i);
        vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), vcvt_f64_f32(x)));
    }
    for (; i < n; ++i) acc[i] += static_cast<double>(row[i]);
}

void vblur_update(double* acc, const float* enter, const float* leave, int n)
{
    int i = 0;
    for (; i + 2 <= n; i += 2) {
        const float32x2_t d = vsub_f32(vld1_f32(enter + i), vld1_f32(leave + i));
        vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), vcvt_f64_f32(d)));
    }
    for (; i < n; ++i) acc[i] += static_cast<double>(enter[i] - leave[i]);
}

void vblur_store(const double* acc, float* out, int n, float norm)
{
    const float32x2_t vnorm = vdup_n_f32(norm);
    int i = 0;
    for (; i + 2 <= n; i += 2) {
        vst1_f32(out + i, vmul_f32(vcvt_f32_f64(vld1q_f64(acc + i)), vnorm));
    }
    for (; i < n; ++i) out[i] = static_cast<float>(acc[i]) * norm;
}

} // namespace neon

namespace detail {

Kernels neon_table(Kernels base)
{
    // Explicit partial assignment: box_blur_h and bilinear_row stay on the
    // inherited (scalar) implementation.
    base.add_f32 = neon::add_f32;
    base.sub_f32 = neon::sub_f32;
    base.absdiff_f32 = neon::absdiff_f32;
    base.clamp_f32 = neon::clamp_f32;
    base.masked_add_f32 = neon::masked_add_f32;
    base.quantize_u8 = neon::quantize_u8;
    base.widen_u8 = neon::widen_u8;
    base.add_sat_u8 = neon::add_sat_u8;
    base.sub_sat_u8 = neon::sub_sat_u8;
    base.absdiff_u8 = neon::absdiff_u8;
    base.residual_energy_u8 = neon::residual_energy_u8;
    base.row_sum_f64 = neon::row_sum_f64;
    base.vblur_accum = neon::vblur_accum;
    base.vblur_update = neon::vblur_update;
    base.vblur_store = neon::vblur_store;
    return base;
}

} // namespace detail
} // namespace inframe::simd

#else // not aarch64: level never offered, keep the base table.

namespace inframe::simd::detail {
Kernels neon_table(Kernels base) { return base; }
} // namespace inframe::simd::detail

#endif
