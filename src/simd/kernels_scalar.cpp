// Scalar reference kernels: these DEFINE the semantics every vector level
// must reproduce bit for bit. This file is compiled with auto-vectorization
// disabled (see src/simd/CMakeLists.txt) so the "scalar" dispatch level —
// and the baseline of the bench_micro_kernels speedup table — is a true
// one-element-at-a-time reference rather than whatever the compiler's
// vectorizer produces for the host it happens to build on.

#include "simd/kernels_internal.hpp"

#include <algorithm>
#include <cmath>

namespace inframe::simd {
namespace scalar {

void add_f32(const float* a, const float* b, float* out, int n)
{
    for (int i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void sub_f32(const float* a, const float* b, float* out, int n)
{
    for (int i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void absdiff_f32(const float* a, const float* b, float* out, int n)
{
    for (int i = 0; i < n; ++i) out[i] = std::fabs(a[i] - b[i]);
}

void clamp_f32(float* x, int n, float lo, float hi)
{
    for (int i = 0; i < n; ++i) x[i] = std::min(std::max(x[i], lo), hi);
}

void masked_add_f32(float* dst, const std::uint32_t* mask, int n, float delta)
{
    for (int i = 0; i < n; ++i) {
        if (mask[i]) dst[i] += delta;
    }
}

void quantize_u8(const float* in, std::uint8_t* out, int n)
{
    for (int i = 0; i < n; ++i) {
        // Saturate before rounding: identical to clamp(lround(v), 0, 255)
        // for every finite v (lround is monotonic) and it keeps lround's
        // argument in-range, which the vector levels rely on too.
        const float v = std::min(std::max(in[i], 0.0f), 255.0f);
        out[i] = static_cast<std::uint8_t>(std::lround(v));
    }
}

void widen_u8(const std::uint8_t* in, float* out, int n)
{
    for (int i = 0; i < n; ++i) out[i] = static_cast<float>(in[i]);
}

void add_sat_u8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, int n)
{
    for (int i = 0; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(std::min(int(a[i]) + int(b[i]), 255));
    }
}

void sub_sat_u8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, int n)
{
    for (int i = 0; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(std::max(int(a[i]) - int(b[i]), 0));
    }
}

void absdiff_u8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, int n)
{
    for (int i = 0; i < n; ++i) {
        const int d = int(a[i]) - int(b[i]);
        out[i] = static_cast<std::uint8_t>(d < 0 ? -d : d);
    }
}

std::uint64_t residual_energy_u8(const std::uint8_t* a, const std::uint8_t* b, int n)
{
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
        const int d = int(a[i]) - int(b[i]);
        sum += static_cast<std::uint64_t>(d * d);
    }
    return sum;
}

double row_sum_f64(const float* p, int n)
{
    // Fixed 8-lane accumulation shape (see kernel_list.def): this IS the
    // reference order, not an approximation of a sequential sum.
    double lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (int i = 0; i < n; ++i) lane[i & 7] += static_cast<double>(p[i]);
    return ((lane[0] + lane[1]) + (lane[2] + lane[3]))
           + ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

void vblur_accum(double* acc, const float* row, int n)
{
    for (int i = 0; i < n; ++i) acc[i] += static_cast<double>(row[i]);
}

void vblur_update(double* acc, const float* enter, const float* leave, int n)
{
    // Float subtract first, then double add — the order box_blur has
    // always used; the vector levels replicate it with cvtps_pd.
    for (int i = 0; i < n; ++i) acc[i] += static_cast<double>(enter[i] - leave[i]);
}

void vblur_store(const double* acc, float* out, int n, float norm)
{
    for (int i = 0; i < n; ++i) out[i] = static_cast<float>(acc[i]) * norm;
}

void box_blur_h(const float* const* src, float* const* dst, int lanes, int width, int stride,
                int radius)
{
    for (int lane = 0; lane < lanes; ++lane) {
        const float* in = src[lane];
        float* out = dst[lane];
        double window = 0.0;
        for (int i = -radius; i <= radius; ++i) {
            const int x = std::clamp(i, 0, width - 1);
            window += in[static_cast<std::ptrdiff_t>(x) * stride];
        }
        const float norm = 1.0f / static_cast<float>(2 * radius + 1);
        for (int x = 0; x < width; ++x) {
            out[static_cast<std::ptrdiff_t>(x) * stride] = static_cast<float>(window) * norm;
            const int leaving = std::clamp(x - radius, 0, width - 1);
            const int entering = std::clamp(x + radius + 1, 0, width - 1);
            window += in[static_cast<std::ptrdiff_t>(entering) * stride]
                      - in[static_cast<std::ptrdiff_t>(leaving) * stride];
        }
    }
}

void bilinear_row(const float* row0, const float* row1, const std::int32_t* idx0,
                  const std::int32_t* idx1, const float* tx, float ty, float* out, int n)
{
    for (int i = 0; i < n; ++i) {
        const float t = tx[i];
        const float top = row0[idx0[i]] * (1.0f - t) + row0[idx1[i]] * t;
        const float bottom = row1[idx0[i]] * (1.0f - t) + row1[idx1[i]] * t;
        out[i] = top * (1.0f - ty) + bottom * ty;
    }
}

} // namespace scalar

namespace detail {

Kernels scalar_table()
{
    Kernels k;
#define INFRAME_SIMD_KERNEL(name, ret, args) k.name = scalar::name;
#include "simd/kernel_list.def"
#undef INFRAME_SIMD_KERNEL
    return k;
}

} // namespace detail
} // namespace inframe::simd
