// SSE2 kernels (x86-64 baseline ISA — always selectable on x86-64).
//
// Bit-identity with the scalar reference, kernel by kernel:
//  - elementwise float ops vectorize lane-for-lane (no reassociation);
//  - |x| is a sign-bit clear (andnot with -0.0f), exactly fabsf;
//  - masked_add selects bitwise between x and x+delta, so unset lanes are
//    untouched (no x += 0.0f, which would flip -0.0f to +0.0f);
//  - quantize_u8 clamps in float, widens to double, adds 0.5 and
//    truncates: floor(v + 0.5) in double is exact for v in [0, 255] and
//    equals lround's round-half-away for non-negative v;
//  - integer kernels are exact in any order;
//  - row_sum_f64 maps vector lanes onto the reference's fixed 8-lane
//    accumulation shape and merges them in the same order;
//  - the blur kernels widen with cvtps_pd / narrow with cvtpd_ps, the
//    same conversions the reference's casts perform;
//  - box_blur_h and bilinear_row put independent streams/pixels in lanes,
//    replaying the scalar op sequence per lane.
// Every claim above is enforced by the differential fuzzer in
// tests/simd/test_kernel_parity.cpp.

#include "simd/kernels_internal.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <emmintrin.h>

#include <algorithm>
#include <cmath>

namespace inframe::simd {
namespace sse2 {

namespace {

// Scalar tails reuse the reference implementations so remainder elements
// are by construction identical.
inline double lane8_merge(const double lane[8])
{
    return ((lane[0] + lane[1]) + (lane[2] + lane[3]))
           + ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

} // namespace

void add_f32(const float* a, const float* b, float* out, int n)
{
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        _mm_storeu_ps(out + i, _mm_add_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
    }
    for (; i < n; ++i) out[i] = a[i] + b[i];
}

void sub_f32(const float* a, const float* b, float* out, int n)
{
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        _mm_storeu_ps(out + i, _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
    }
    for (; i < n; ++i) out[i] = a[i] - b[i];
}

void absdiff_f32(const float* a, const float* b, float* out, int n)
{
    const __m128 sign = _mm_set1_ps(-0.0f);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 d = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
        _mm_storeu_ps(out + i, _mm_andnot_ps(sign, d));
    }
    for (; i < n; ++i) out[i] = std::fabs(a[i] - b[i]);
}

void clamp_f32(float* x, int n, float lo, float hi)
{
    const __m128 vlo = _mm_set1_ps(lo);
    const __m128 vhi = _mm_set1_ps(hi);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        _mm_storeu_ps(x + i, _mm_min_ps(_mm_max_ps(_mm_loadu_ps(x + i), vlo), vhi));
    }
    for (; i < n; ++i) x[i] = std::min(std::max(x[i], lo), hi);
}

void masked_add_f32(float* dst, const std::uint32_t* mask, int n, float delta)
{
    const __m128 vdelta = _mm_set1_ps(delta);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 x = _mm_loadu_ps(dst + i);
        const __m128 m =
            _mm_castsi128_ps(_mm_loadu_si128(reinterpret_cast<const __m128i*>(mask + i)));
        const __m128 sum = _mm_add_ps(x, vdelta);
        _mm_storeu_ps(dst + i, _mm_or_ps(_mm_and_ps(m, sum), _mm_andnot_ps(m, x)));
    }
    for (; i < n; ++i) {
        if (mask[i]) dst[i] += delta;
    }
}

void quantize_u8(const float* in, std::uint8_t* out, int n)
{
    const __m128 vlo = _mm_setzero_ps();
    const __m128 vhi = _mm_set1_ps(255.0f);
    const __m128d half = _mm_set1_pd(0.5);
    const __m128i zero = _mm_setzero_si128();
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128 x0 = _mm_min_ps(_mm_max_ps(_mm_loadu_ps(in + i), vlo), vhi);
        const __m128 x1 = _mm_min_ps(_mm_max_ps(_mm_loadu_ps(in + i + 4), vlo), vhi);
        const __m128i a0 = _mm_cvttpd_epi32(_mm_add_pd(_mm_cvtps_pd(x0), half));
        const __m128i a1 =
            _mm_cvttpd_epi32(_mm_add_pd(_mm_cvtps_pd(_mm_movehl_ps(x0, x0)), half));
        const __m128i b0 = _mm_cvttpd_epi32(_mm_add_pd(_mm_cvtps_pd(x1), half));
        const __m128i b1 =
            _mm_cvttpd_epi32(_mm_add_pd(_mm_cvtps_pd(_mm_movehl_ps(x1, x1)), half));
        const __m128i lo4 = _mm_unpacklo_epi64(a0, a1);
        const __m128i hi4 = _mm_unpacklo_epi64(b0, b1);
        const __m128i words = _mm_packs_epi32(lo4, hi4);
        _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i),
                         _mm_packus_epi16(words, zero));
    }
    for (; i < n; ++i) {
        const float v = std::min(std::max(in[i], 0.0f), 255.0f);
        out[i] = static_cast<std::uint8_t>(std::lround(v));
    }
}

void widen_u8(const std::uint8_t* in, float* out, int n)
{
    const __m128i zero = _mm_setzero_si128();
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i bytes = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + i));
        const __m128i words = _mm_unpacklo_epi8(bytes, zero);
        _mm_storeu_ps(out + i, _mm_cvtepi32_ps(_mm_unpacklo_epi16(words, zero)));
        _mm_storeu_ps(out + i + 4, _mm_cvtepi32_ps(_mm_unpackhi_epi16(words, zero)));
    }
    for (; i < n; ++i) out[i] = static_cast<float>(in[i]);
}

void add_sat_u8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, int n)
{
    int i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
        const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_adds_epu8(va, vb));
    }
    for (; i < n; ++i) out[i] = static_cast<std::uint8_t>(std::min(int(a[i]) + int(b[i]), 255));
}

void sub_sat_u8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, int n)
{
    int i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
        const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_subs_epu8(va, vb));
    }
    for (; i < n; ++i) out[i] = static_cast<std::uint8_t>(std::max(int(a[i]) - int(b[i]), 0));
}

void absdiff_u8(const std::uint8_t* a, const std::uint8_t* b, std::uint8_t* out, int n)
{
    int i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
        const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                         _mm_or_si128(_mm_subs_epu8(va, vb), _mm_subs_epu8(vb, va)));
    }
    for (; i < n; ++i) {
        const int d = int(a[i]) - int(b[i]);
        out[i] = static_cast<std::uint8_t>(d < 0 ? -d : d);
    }
}

std::uint64_t residual_energy_u8(const std::uint8_t* a, const std::uint8_t* b, int n)
{
    const __m128i zero = _mm_setzero_si128();
    __m128i acc64 = zero;
    int i = 0;
    while (i + 16 <= n) {
        // Drain the 32-bit accumulator before it can overflow: each step
        // adds at most 2 * 255^2 = 130050 per madd lane, two madds per
        // 16 pixels -> 2^31 / 260100 ~ 8256 steps; stay well under.
        const int block_end = std::min(n, i + 4096 * 16);
        __m128i acc32 = zero;
        for (; i + 16 <= block_end; i += 16) {
            const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
            const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
            const __m128i d = _mm_or_si128(_mm_subs_epu8(va, vb), _mm_subs_epu8(vb, va));
            const __m128i dlo = _mm_unpacklo_epi8(d, zero);
            const __m128i dhi = _mm_unpackhi_epi8(d, zero);
            acc32 = _mm_add_epi32(acc32, _mm_madd_epi16(dlo, dlo));
            acc32 = _mm_add_epi32(acc32, _mm_madd_epi16(dhi, dhi));
        }
        acc64 = _mm_add_epi64(acc64, _mm_unpacklo_epi32(acc32, zero));
        acc64 = _mm_add_epi64(acc64, _mm_unpackhi_epi32(acc32, zero));
    }
    alignas(16) std::uint64_t parts[2];
    _mm_storeu_si128(reinterpret_cast<__m128i*>(parts), acc64);
    std::uint64_t sum = parts[0] + parts[1];
    for (; i < n; ++i) {
        const int d = int(a[i]) - int(b[i]);
        sum += static_cast<std::uint64_t>(d * d);
    }
    return sum;
}

double row_sum_f64(const float* p, int n)
{
    __m128d acc[4] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd()};
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128 x0 = _mm_loadu_ps(p + i);
        const __m128 x1 = _mm_loadu_ps(p + i + 4);
        acc[0] = _mm_add_pd(acc[0], _mm_cvtps_pd(x0));
        acc[1] = _mm_add_pd(acc[1], _mm_cvtps_pd(_mm_movehl_ps(x0, x0)));
        acc[2] = _mm_add_pd(acc[2], _mm_cvtps_pd(x1));
        acc[3] = _mm_add_pd(acc[3], _mm_cvtps_pd(_mm_movehl_ps(x1, x1)));
    }
    alignas(16) double lane[8];
    for (int v = 0; v < 4; ++v) _mm_storeu_pd(lane + 2 * v, acc[v]);
    for (; i < n; ++i) lane[i & 7] += static_cast<double>(p[i]);
    return lane8_merge(lane);
}

void vblur_accum(double* acc, const float* row, int n)
{
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 x = _mm_loadu_ps(row + i);
        _mm_storeu_pd(acc + i, _mm_add_pd(_mm_loadu_pd(acc + i), _mm_cvtps_pd(x)));
        _mm_storeu_pd(acc + i + 2,
                      _mm_add_pd(_mm_loadu_pd(acc + i + 2), _mm_cvtps_pd(_mm_movehl_ps(x, x))));
    }
    for (; i < n; ++i) acc[i] += static_cast<double>(row[i]);
}

void vblur_update(double* acc, const float* enter, const float* leave, int n)
{
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 d = _mm_sub_ps(_mm_loadu_ps(enter + i), _mm_loadu_ps(leave + i));
        _mm_storeu_pd(acc + i, _mm_add_pd(_mm_loadu_pd(acc + i), _mm_cvtps_pd(d)));
        _mm_storeu_pd(acc + i + 2,
                      _mm_add_pd(_mm_loadu_pd(acc + i + 2), _mm_cvtps_pd(_mm_movehl_ps(d, d))));
    }
    for (; i < n; ++i) acc[i] += static_cast<double>(enter[i] - leave[i]);
}

void vblur_store(const double* acc, float* out, int n, float norm)
{
    const __m128 vnorm = _mm_set1_ps(norm);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 lo = _mm_cvtpd_ps(_mm_loadu_pd(acc + i));
        const __m128 hi = _mm_cvtpd_ps(_mm_loadu_pd(acc + i + 2));
        _mm_storeu_ps(out + i, _mm_mul_ps(_mm_movelh_ps(lo, hi), vnorm));
    }
    for (; i < n; ++i) out[i] = static_cast<float>(acc[i]) * norm;
}

void box_blur_h(const float* const* src, float* const* dst, int lanes, int width, int stride,
                int radius)
{
    const float norm = 1.0f / static_cast<float>(2 * radius + 1);
    const __m128 vnorm = _mm_set1_ps(norm);
    int lane = 0;
    for (; lane + 4 <= lanes; lane += 4) {
        const float* in0 = src[lane];
        const float* in1 = src[lane + 1];
        const float* in2 = src[lane + 2];
        const float* in3 = src[lane + 3];
        float* out0 = dst[lane];
        float* out1 = dst[lane + 1];
        float* out2 = dst[lane + 2];
        float* out3 = dst[lane + 3];
        auto gather = [&](int x) {
            const std::ptrdiff_t o = static_cast<std::ptrdiff_t>(x) * stride;
            return _mm_set_ps(in3[o], in2[o], in1[o], in0[o]);
        };
        __m128d w01 = _mm_setzero_pd();
        __m128d w23 = _mm_setzero_pd();
        for (int i = -radius; i <= radius; ++i) {
            const __m128 f = gather(std::clamp(i, 0, width - 1));
            w01 = _mm_add_pd(w01, _mm_cvtps_pd(f));
            w23 = _mm_add_pd(w23, _mm_cvtps_pd(_mm_movehl_ps(f, f)));
        }
        alignas(16) float result[4];
        for (int x = 0; x < width; ++x) {
            const __m128 f = _mm_movelh_ps(_mm_cvtpd_ps(w01), _mm_cvtpd_ps(w23));
            _mm_storeu_ps(result, _mm_mul_ps(f, vnorm));
            const std::ptrdiff_t o = static_cast<std::ptrdiff_t>(x) * stride;
            out0[o] = result[0];
            out1[o] = result[1];
            out2[o] = result[2];
            out3[o] = result[3];
            const __m128 d = _mm_sub_ps(gather(std::clamp(x + radius + 1, 0, width - 1)),
                                        gather(std::clamp(x - radius, 0, width - 1)));
            w01 = _mm_add_pd(w01, _mm_cvtps_pd(d));
            w23 = _mm_add_pd(w23, _mm_cvtps_pd(_mm_movehl_ps(d, d)));
        }
    }
    if (lane < lanes) {
        scalar::box_blur_h(src + lane, dst + lane, lanes - lane, width, stride, radius);
    }
}

void bilinear_row(const float* row0, const float* row1, const std::int32_t* idx0,
                  const std::int32_t* idx1, const float* tx, float ty, float* out, int n)
{
    const __m128 one = _mm_set1_ps(1.0f);
    const __m128 vty = _mm_set1_ps(ty);
    const __m128 vomty = _mm_sub_ps(one, vty);
    int i = 0;
    auto gather = [](const float* row, const std::int32_t* idx) {
        return _mm_set_ps(row[idx[3]], row[idx[2]], row[idx[1]], row[idx[0]]);
    };
    for (; i + 4 <= n; i += 4) {
        const __m128 t = _mm_loadu_ps(tx + i);
        const __m128 omt = _mm_sub_ps(one, t);
        const __m128 top = _mm_add_ps(_mm_mul_ps(gather(row0, idx0 + i), omt),
                                      _mm_mul_ps(gather(row0, idx1 + i), t));
        const __m128 bottom = _mm_add_ps(_mm_mul_ps(gather(row1, idx0 + i), omt),
                                         _mm_mul_ps(gather(row1, idx1 + i), t));
        _mm_storeu_ps(out + i,
                      _mm_add_ps(_mm_mul_ps(top, vomty), _mm_mul_ps(bottom, vty)));
    }
    for (; i < n; ++i) {
        const float t = tx[i];
        const float top = row0[idx0[i]] * (1.0f - t) + row0[idx1[i]] * t;
        const float bottom = row1[idx0[i]] * (1.0f - t) + row1[idx1[i]] * t;
        out[i] = top * (1.0f - ty) + bottom * ty;
    }
}

} // namespace sse2

namespace detail {

Kernels sse2_table(Kernels base)
{
#define INFRAME_SIMD_KERNEL(name, ret, args) base.name = sse2::name;
#include "simd/kernel_list.def"
#undef INFRAME_SIMD_KERNEL
    return base;
}

} // namespace detail
} // namespace inframe::simd

#else // non-x86: the sse2 level is never offered, keep the base table.

namespace inframe::simd::detail {
Kernels sse2_table(Kernels base) { return base; }
} // namespace inframe::simd::detail

#endif
