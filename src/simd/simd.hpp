// Runtime-dispatched SIMD kernel layer.
//
// Every per-pixel hot path in the pipeline (chessboard embed, box blur,
// per-block residual accumulation, elementwise image ops, bilinear
// interpolation, uint8 quantization) funnels through the function-pointer
// table below. A scalar reference implementation is always built; on
// x86-64 the SSE2 and (hardware permitting) AVX2 tables are built too, on
// aarch64 the NEON table. The active table is chosen once, at first use:
//
//   INFRAME_SIMD=scalar|sse2|avx2|neon   overrides auto-detection (a level
//                                        the host cannot run clamps down
//                                        to the best supported one)
//
// Determinism contract: every vector kernel is bit-identical to the
// scalar reference for finite inputs (integer kernels exactly; float
// kernels because they are elementwise or replicate the reference's fixed
// accumulation shape — see kernel_list.def). Decoded payload bits are
// therefore identical at every SIMD level, which
// tests/core/test_parallel_determinism.cpp pins end to end and
// tests/simd/test_kernel_parity.cpp pins kernel by kernel with a seeded
// differential fuzzer. That harness is the acceptance gate for every new
// kernel: a kernel added to kernel_list.def without a parity adapter
// fails the build at configure time (tests/CMakeLists.txt guard).
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace inframe::simd {

enum class Level : int { scalar = 0, sse2 = 1, avx2 = 2, neon = 3 };

const char* to_string(Level level);

// Dispatch table: one function pointer per kernel in kernel_list.def.
struct Kernels {
#define INFRAME_SIMD_KERNEL(name, ret, args) ret(*name) args = nullptr;
#include "simd/kernel_list.def"
#undef INFRAME_SIMD_KERNEL
};

// Highest level this host can execute (scalar is always supported).
Level best_supported();

// Every level this host can execute, ascending (always starts at scalar).
std::span<const Level> available_levels();

// The level in effect: INFRAME_SIMD override (read once) or
// best_supported(), unless set_active_level() replaced it.
Level active_level();

// The dispatch table for the active level. Cheap (one atomic load); hot
// loops should still hoist the reference out of per-pixel code.
const Kernels& kernels();

// Table for a specific level; `level` must be in available_levels().
const Kernels& kernels_for(Level level);

// Test/bench hook: force a level (must be supported). Returns the
// previous level. Not safe to call concurrently with running kernels.
Level set_active_level(Level level);

// Parses "scalar" | "sse2" | "avx2" | "neon" (case-insensitive); throws
// Contract_violation on anything else.
Level level_from_name(const std::string& name);

} // namespace inframe::simd
