#include "telemetry/json.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace inframe::telemetry::json {

namespace {

const Value& null_value()
{
    static const Value v;
    return v;
}

const Array& empty_array()
{
    static const Array a;
    return a;
}

const Object& empty_object()
{
    static const Object o;
    return o;
}

struct Parser {
    const std::string& text;
    std::size_t pos = 0;
    std::string error;

    bool fail(const std::string& message)
    {
        std::ostringstream os;
        os << message << " at offset " << pos;
        error = os.str();
        return false;
    }

    void skip_ws()
    {
        while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool literal(const char* word, Value v, Value& out)
    {
        std::size_t n = std::string(word).size();
        if (text.compare(pos, n, word) != 0) return fail("invalid literal");
        pos += n;
        out = std::move(v);
        return true;
    }

    bool parse_string(std::string& out)
    {
        if (pos >= text.size() || text[pos] != '"') return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"') return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size()) return fail("unterminated escape");
            char esc = text[pos++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos + 4 > text.size()) return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                    else return fail("bad hex digit in \\u escape");
                }
                // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parse_number(Value& out)
    {
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-') ++pos;
        while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
            while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
        }
        if (pos == start || (pos == start + 1 && text[start] == '-')) return fail("invalid number");
        out = Value(std::strtod(text.c_str() + start, nullptr));
        return true;
    }

    bool parse_value(Value& out, int depth)
    {
        if (depth > 64) return fail("nesting too deep");
        skip_ws();
        if (pos >= text.size()) return fail("unexpected end of input");
        char c = text[pos];
        switch (c) {
        case 'n': return literal("null", Value(), out);
        case 't': return literal("true", Value(true), out);
        case 'f': return literal("false", Value(false), out);
        case '"': {
            std::string s;
            if (!parse_string(s)) return false;
            out = Value(std::move(s));
            return true;
        }
        case '[': {
            ++pos;
            Array array;
            skip_ws();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                out = Value(std::move(array));
                return true;
            }
            while (true) {
                Value element;
                if (!parse_value(element, depth + 1)) return false;
                array.push_back(std::move(element));
                skip_ws();
                if (pos >= text.size()) return fail("unterminated array");
                if (text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (text[pos] == ']') {
                    ++pos;
                    out = Value(std::move(array));
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        case '{': {
            ++pos;
            Object object;
            skip_ws();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                out = Value(std::move(object));
                return true;
            }
            while (true) {
                skip_ws();
                std::string key;
                if (!parse_string(key)) return false;
                skip_ws();
                if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
                ++pos;
                Value value;
                if (!parse_value(value, depth + 1)) return false;
                object.emplace(std::move(key), std::move(value));
                skip_ws();
                if (pos >= text.size()) return fail("unterminated object");
                if (text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (text[pos] == '}') {
                    ++pos;
                    out = Value(std::move(object));
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        default: return parse_number(out);
        }
    }
};

} // namespace

const Array& Value::as_array() const { return array_ ? *array_ : empty_array(); }
const Object& Value::as_object() const { return object_ ? *object_ : empty_object(); }

const Value& Value::operator[](const std::string& key) const
{
    if (!is_object()) return null_value();
    auto it = object_->find(key);
    return it == object_->end() ? null_value() : it->second;
}

bool Value::has(const std::string& key) const
{
    return is_object() && object_->count(key) > 0;
}

double Value::number_or(const std::string& key, double fallback) const
{
    const Value& v = (*this)[key];
    return v.is_number() ? v.as_number() : fallback;
}

std::string Value::string_or(const std::string& key, const std::string& fallback) const
{
    const Value& v = (*this)[key];
    return v.is_string() ? v.as_string() : fallback;
}

bool parse(const std::string& text, Value& out, std::string* error)
{
    Parser parser{text, 0, {}};
    if (!parser.parse_value(out, 0)) {
        if (error) *error = parser.error;
        return false;
    }
    parser.skip_ws();
    if (parser.pos != text.size()) {
        if (error) *error = "trailing characters after document";
        return false;
    }
    return true;
}

bool parse_lines(const std::string& text, std::vector<Value>& out, std::string* error)
{
    std::size_t line_start = 0;
    int line_number = 0;
    while (line_start <= text.size()) {
        std::size_t line_end = text.find('\n', line_start);
        if (line_end == std::string::npos) line_end = text.size();
        ++line_number;
        std::string line = text.substr(line_start, line_end - line_start);
        line_start = line_end + 1;
        bool blank = line.find_first_not_of(" \t\r") == std::string::npos;
        if (!blank) {
            Value value;
            std::string line_error;
            if (!parse(line, value, &line_error)) {
                if (error) {
                    std::ostringstream os;
                    os << "line " << line_number << ": " << line_error;
                    *error = os.str();
                }
                return false;
            }
            out.push_back(std::move(value));
        }
        if (line_end == text.size()) break;
    }
    return true;
}

} // namespace inframe::telemetry::json
