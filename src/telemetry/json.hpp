// Minimal recursive-descent JSON reader: just enough to load the files
// telemetry itself writes (trace.json, frames.jsonl, metrics.json) back
// into telemetry_report and the smoke tests. Not a general-purpose
// parser — no streaming, no \uXXXX surrogate pairs beyond Latin-1, and
// the whole document lives in memory.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace inframe::telemetry::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

enum class Type { null, boolean, number, string, array, object };

class Value {
public:
    Value() = default;
    explicit Value(bool b) : type_(Type::boolean), bool_(b) {}
    explicit Value(double d) : type_(Type::number), number_(d) {}
    explicit Value(std::string s) : type_(Type::string), string_(std::move(s)) {}
    explicit Value(Array a) : type_(Type::array), array_(std::make_shared<Array>(std::move(a))) {}
    explicit Value(Object o) : type_(Type::object), object_(std::make_shared<Object>(std::move(o))) {}

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::null; }
    bool is_number() const { return type_ == Type::number; }
    bool is_string() const { return type_ == Type::string; }
    bool is_array() const { return type_ == Type::array; }
    bool is_object() const { return type_ == Type::object; }

    bool as_bool() const { return bool_; }
    double as_number() const { return number_; }
    const std::string& as_string() const { return string_; }
    const Array& as_array() const;
    const Object& as_object() const;

    // Object member access; returns a shared null Value when absent or
    // when this value is not an object.
    const Value& operator[](const std::string& key) const;
    bool has(const std::string& key) const;

    // Convenience: member as number/string with a default.
    double number_or(const std::string& key, double fallback) const;
    std::string string_or(const std::string& key, const std::string& fallback) const;

private:
    Type type_ = Type::null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::shared_ptr<Array> array_;
    std::shared_ptr<Object> object_;
};

// Parses one JSON document. Returns false (and fills `error` with a
// message + offset) on malformed input, including trailing garbage.
bool parse(const std::string& text, Value& out, std::string* error = nullptr);

// Parses one JSON value per non-empty line (JSONL). Stops at the first
// malformed line and reports its line number in `error`.
bool parse_lines(const std::string& text, std::vector<Value>& out, std::string* error = nullptr);

} // namespace inframe::telemetry::json
