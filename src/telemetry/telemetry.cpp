#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_map>

namespace inframe::telemetry {

namespace detail {
std::atomic<Registry*> g_registry{nullptr};
std::atomic<std::uint64_t> g_epoch{0};
} // namespace detail

// --- metric name interning ------------------------------------------------

namespace {

struct Name_table {
    std::mutex mutex;
    std::vector<Metric_name> names;
    std::unordered_map<std::string, int> index;
};

Name_table& name_table()
{
    static Name_table table;
    return table;
}

std::string json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

// JSON has no NaN/Inf literals; clamp to null-adjacent sentinels.
std::string json_number(double v)
{
    if (!std::isfinite(v)) return "0";
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
}

} // namespace

int intern_metric(const char* name, Metric_kind kind)
{
    Name_table& table = name_table();
    std::lock_guard<std::mutex> lock(table.mutex);
    auto it = table.index.find(name);
    if (it != table.index.end()) return it->second;
    int id = static_cast<int>(table.names.size());
    table.names.push_back(Metric_name{name, kind});
    table.index.emplace(name, id);
    return id;
}

std::vector<Metric_name> metric_names()
{
    Name_table& table = name_table();
    std::lock_guard<std::mutex> lock(table.mutex);
    return table.names;
}

// --- histogram ------------------------------------------------------------

int Histogram_data::bucket_of(double value)
{
    if (!(value > 0.0)) return 0;
    // Quarter-octave buckets starting at 2^-8; bucket 1 holds [2^-8, 2^-7.75).
    double pos = (std::log2(value) + 8.0) * 4.0;
    int bucket = 1 + static_cast<int>(std::floor(pos));
    return std::clamp(bucket, 1, bucket_count - 1);
}

double Histogram_data::bucket_lower_bound(int bucket)
{
    if (bucket <= 0) return 0.0;
    return std::exp2((bucket - 1) / 4.0 - 8.0);
}

void Histogram_data::record(double value)
{
    ++buckets[static_cast<std::size_t>(bucket_of(value))];
    if (count == 0) {
        min = max = value;
    } else {
        min = std::min(min, value);
        max = std::max(max, value);
    }
    ++count;
    sum += value;
}

void Histogram_data::merge(const Histogram_data& other)
{
    if (other.count == 0) return;
    for (int i = 0; i < bucket_count; ++i) buckets[static_cast<std::size_t>(i)] += other.buckets[static_cast<std::size_t>(i)];
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
}

int Frame_record::margin_bucket(double relative_margin)
{
    if (!(relative_margin > 0.0)) return 0;
    int bucket = static_cast<int>(std::floor(std::log2(relative_margin))) + 8;
    return std::clamp(bucket, 0, margin_buckets - 1);
}

// --- registry internals ---------------------------------------------------

struct Span_record {
    static constexpr std::size_t name_capacity = 40;
    char name[name_capacity];
    std::uint64_t start_us;
    std::uint64_t dur_us;
};

struct Gauge_slot {
    double value = 0.0;
    std::uint64_t seq = 0; // 0 = never set; otherwise global set order
};

struct Registry::Shard {
    std::vector<std::uint64_t> counters;
    std::vector<Gauge_slot> gauges;
    std::vector<Histogram_data> histograms;
    std::vector<Span_record> spans;
};

struct Registry::Impl {
    std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();

    // Shards are created once per (thread, registry) pair and owned here;
    // only the owning thread writes to a shard's data, so flush-time
    // merging is the only cross-thread access (guarded by the install
    // contract: no instrumented work runs during export).
    mutable std::mutex shard_mutex;
    std::vector<std::unique_ptr<Shard>> shards;

    // Global gauge-set order so "last write wins" is well defined across
    // shards. Relaxed: ordering between racing sets is inherently
    // arbitrary; we only need distinct, monotone tickets.
    std::atomic<std::uint64_t> gauge_seq{0};

    // Frame records and events are rare (one per data frame / impairment
    // firing), so a mutex-guarded vector keeps their order deterministic
    // without touching the hot path.
    mutable std::mutex record_mutex;
    std::vector<Frame_record> frames;
    struct Event_record {
        std::string category;
        std::string name;
        std::int64_t index;
        double value;
    };
    std::vector<Event_record> events;

    std::uint64_t now_us() const
    {
        return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                              std::chrono::steady_clock::now() - t0)
                                              .count());
    }
};

namespace {

// Thread-local pointer to this thread's shard in the installed registry,
// revalidated against the install epoch. Pool worker threads outlive
// registries, so a stale cache entry must never be dereferenced — the
// epoch check guarantees that without locking.
struct Shard_cache {
    Registry* registry = nullptr;
    std::uint64_t epoch = 0;
    void* shard = nullptr; // Registry::Shard*, opaque (Shard is private)
};
thread_local Shard_cache t_shard_cache;

} // namespace

Registry::Shard& Registry::shard()
{
    Shard_cache& cache = t_shard_cache;
    std::uint64_t epoch = detail::g_epoch.load(std::memory_order_acquire);
    if (cache.registry == this && cache.epoch == epoch) return *static_cast<Shard*>(cache.shard);
    std::lock_guard<std::mutex> lock(impl_->shard_mutex);
    impl_->shards.push_back(std::make_unique<Shard>());
    cache = Shard_cache{this, epoch, impl_->shards.back().get()};
    return *impl_->shards.back();
}

namespace detail {

void counter_add_slow(Registry* registry, int metric, std::uint64_t delta)
{
    auto& counters = registry->shard().counters;
    if (counters.size() <= static_cast<std::size_t>(metric)) counters.resize(static_cast<std::size_t>(metric) + 1, 0);
    counters[static_cast<std::size_t>(metric)] += delta;
}

void gauge_set_slow(Registry* registry, int metric, double value)
{
    auto& gauges = registry->shard().gauges;
    if (gauges.size() <= static_cast<std::size_t>(metric)) gauges.resize(static_cast<std::size_t>(metric) + 1);
    Gauge_slot& slot = gauges[static_cast<std::size_t>(metric)];
    slot.value = value;
    slot.seq = 1 + registry->impl_->gauge_seq.fetch_add(1, std::memory_order_relaxed);
}

void histogram_record_slow(Registry* registry, int metric, double value)
{
    auto& histograms = registry->shard().histograms;
    if (histograms.size() <= static_cast<std::size_t>(metric)) histograms.resize(static_cast<std::size_t>(metric) + 1);
    histograms[static_cast<std::size_t>(metric)].record(value);
}

} // namespace detail

// --- spans ----------------------------------------------------------------

Scoped_span::Scoped_span(const char* name)
{
    Registry* registry = current();
    if (!registry) return;
    registry_ = registry;
    epoch_ = detail::g_epoch.load(std::memory_order_acquire);
    start_us_ = registry->impl_->now_us();
    name_ = name;
}

Scoped_span::~Scoped_span()
{
    if (!registry_) return;
    // The registry may have been uninstalled (and even destroyed) while
    // this span was open; the epoch ticket tells us whether the cached
    // pointer is still the live installation.
    if (detail::g_epoch.load(std::memory_order_acquire) != epoch_) return;
    if (detail::g_registry.load(std::memory_order_acquire) != registry_) return;
    std::uint64_t end_us = registry_->impl_->now_us();
    Span_record record{};
    std::strncpy(record.name, name_ ? name_ : "", Span_record::name_capacity - 1);
    record.name[Span_record::name_capacity - 1] = '\0';
    record.start_us = start_us_;
    record.dur_us = end_us >= start_us_ ? end_us - start_us_ : 0;
    registry_->shard().spans.push_back(record);
}

// --- frame records and events ---------------------------------------------

void emit_frame(const Frame_record& record)
{
    Registry* registry = current();
    if (!registry) return;
    std::lock_guard<std::mutex> lock(registry->impl_->record_mutex);
    registry->impl_->frames.push_back(record);
}

void emit_event(const Event& event)
{
    Registry* registry = current();
    if (!registry) return;
    Registry::Impl::Event_record record{event.category ? event.category : "",
                                        event.name ? event.name : "", event.index, event.value};
    std::lock_guard<std::mutex> lock(registry->impl_->record_mutex);
    registry->impl_->events.push_back(std::move(record));
}

// --- registry -------------------------------------------------------------

Registry::Registry() : impl_(std::make_unique<Impl>()) {}

Registry::~Registry()
{
    // Defensive: never leave a dangling installation behind.
    if (detail::g_registry.load(std::memory_order_acquire) == this) install(nullptr);
}

void install(Registry* registry)
{
    detail::g_registry.store(registry, std::memory_order_release);
    detail::g_epoch.fetch_add(1, std::memory_order_acq_rel);
}

Snapshot Registry::snapshot() const
{
    std::vector<Metric_name> names = metric_names();
    Snapshot snap;
    snap.counters.resize(names.size());
    snap.gauges.resize(names.size());
    snap.histograms.resize(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        snap.counters[i].name = names[i].name;
        snap.gauges[i].name = names[i].name;
        snap.histograms[i].name = names[i].name;
    }
    std::vector<std::uint64_t> gauge_seq(names.size(), 0);

    std::lock_guard<std::mutex> shard_lock(impl_->shard_mutex);
    for (const auto& shard : impl_->shards) {
        for (std::size_t i = 0; i < shard->counters.size() && i < names.size(); ++i)
            snap.counters[i].value += shard->counters[i];
        for (std::size_t i = 0; i < shard->gauges.size() && i < names.size(); ++i) {
            const Gauge_slot& slot = shard->gauges[i];
            if (slot.seq > gauge_seq[i]) {
                gauge_seq[i] = slot.seq;
                snap.gauges[i].value = slot.value;
                snap.gauges[i].set = true;
            }
        }
        for (std::size_t i = 0; i < shard->histograms.size() && i < names.size(); ++i)
            snap.histograms[i].data.merge(shard->histograms[i]);
        snap.span_count += shard->spans.size();
    }

    // Drop metrics of the wrong kind / never touched so exports only show
    // real instruments.
    std::vector<Counter_value> counters;
    std::vector<Gauge_value> gauges;
    std::vector<Histogram_value> histograms;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i].kind == Metric_kind::counter && snap.counters[i].value > 0)
            counters.push_back(snap.counters[i]);
        if (names[i].kind == Metric_kind::gauge && snap.gauges[i].set)
            gauges.push_back(snap.gauges[i]);
        if (names[i].kind == Metric_kind::histogram && snap.histograms[i].data.count > 0)
            histograms.push_back(snap.histograms[i]);
    }
    snap.counters = std::move(counters);
    snap.gauges = std::move(gauges);
    snap.histograms = std::move(histograms);

    std::lock_guard<std::mutex> record_lock(impl_->record_mutex);
    snap.frame_count = impl_->frames.size();
    snap.event_count = impl_->events.size();
    return snap;
}

void Registry::write_chrome_trace(std::ostream& out) const
{
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    std::lock_guard<std::mutex> lock(impl_->shard_mutex);
    for (std::size_t tid = 0; tid < impl_->shards.size(); ++tid) {
        for (const Span_record& span : impl_->shards[tid]->spans) {
            if (!first) out << ",";
            first = false;
            out << "\n{\"name\":\"" << json_escape(span.name)
                << "\",\"cat\":\"inframe\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
                << ",\"ts\":" << span.start_us << ",\"dur\":" << span.dur_us << "}";
        }
    }
    out << "\n]}\n";
}

void Registry::write_frames_jsonl(std::ostream& out) const
{
    std::lock_guard<std::mutex> lock(impl_->record_mutex);
    for (const Frame_record& f : impl_->frames) {
        out << "{\"type\":\"frame\",\"data_frame_index\":" << f.data_frame_index
            << ",\"time_s\":" << json_number(f.time_s)
            << ",\"captures_used\":" << f.captures_used
            << ",\"threshold\":" << json_number(f.threshold)
            << ",\"blocks_total\":" << f.blocks_total
            << ",\"blocks_unknown\":" << f.blocks_unknown
            << ",\"blocks_erased\":" << f.blocks_erased
            << ",\"blocks_occluded\":" << f.blocks_occluded
            << ",\"gobs_total\":" << f.gobs_total
            << ",\"gobs_available\":" << f.gobs_available
            << ",\"gobs_parity_ok\":" << f.gobs_parity_ok
            << ",\"gobs_recovered\":" << f.gobs_recovered
            << ",\"sync_locked\":" << f.sync_locked
            << ",\"sync_offset_s\":" << json_number(f.sync_offset_s)
            << ",\"margin_hist\":[";
        for (int b = 0; b < Frame_record::margin_buckets; ++b) {
            if (b) out << ",";
            out << f.margin_hist[static_cast<std::size_t>(b)];
        }
        out << "]}\n";
    }
    for (const Registry::Impl::Event_record& e : impl_->events) {
        out << "{\"type\":\"event\",\"category\":\"" << json_escape(e.category)
            << "\",\"name\":\"" << json_escape(e.name) << "\",\"index\":" << e.index
            << ",\"value\":" << json_number(e.value) << "}\n";
    }
}

void Registry::write_metrics_json(std::ostream& out) const
{
    Snapshot snap = snapshot();
    out << "{\n  \"counters\": {";
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
        out << (i ? "," : "") << "\n    \"" << json_escape(snap.counters[i].name)
            << "\": " << snap.counters[i].value;
    }
    out << "\n  },\n  \"gauges\": {";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
        out << (i ? "," : "") << "\n    \"" << json_escape(snap.gauges[i].name)
            << "\": " << json_number(snap.gauges[i].value);
    }
    out << "\n  },\n  \"histograms\": {";
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
        const Histogram_data& h = snap.histograms[i].data;
        out << (i ? "," : "") << "\n    \"" << json_escape(snap.histograms[i].name)
            << "\": {\"count\": " << h.count << ", \"sum\": " << json_number(h.sum)
            << ", \"min\": " << json_number(h.min) << ", \"max\": " << json_number(h.max)
            << ", \"buckets\": [";
        bool first = true;
        for (int b = 0; b < Histogram_data::bucket_count; ++b) {
            if (h.buckets[static_cast<std::size_t>(b)] == 0) continue;
            if (!first) out << ", ";
            first = false;
            out << "[" << json_number(Histogram_data::bucket_lower_bound(b)) << ", "
                << h.buckets[static_cast<std::size_t>(b)] << "]";
        }
        out << "]}";
    }
    out << "\n  },\n  \"span_count\": " << snap.span_count
        << ",\n  \"frame_count\": " << snap.frame_count
        << ",\n  \"event_count\": " << snap.event_count << "\n}\n";
}

bool Registry::write_all(const std::string& dir) const
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return false;
    bool ok = true;
    {
        std::ofstream out(std::filesystem::path(dir) / "trace.json");
        if (out) write_chrome_trace(out);
        ok = ok && bool(out);
    }
    {
        std::ofstream out(std::filesystem::path(dir) / "frames.jsonl");
        if (out) write_frames_jsonl(out);
        ok = ok && bool(out);
    }
    {
        std::ofstream out(std::filesystem::path(dir) / "metrics.json");
        if (out) write_metrics_json(out);
        ok = ok && bool(out);
    }
    return ok;
}

// --- session --------------------------------------------------------------

Config config_from_args(int argc, char** argv)
{
    Config config;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0) config.trace_dir = argv[i + 1];
    }
    return config;
}

Session::Session(const Config& config)
{
    if (!config.enabled()) return;
    if (current() != nullptr) return; // outermost session wins
    registry_ = std::make_unique<Registry>();
    dir_ = config.trace_dir;
    install(registry_.get());
}

Session::~Session()
{
    if (!registry_) return;
    install(nullptr);
    registry_->write_all(dir_);
}

} // namespace inframe::telemetry
