// Telemetry: out-of-band observability for the simulation pipeline.
//
// Three instruments share one Registry:
//
//   1. Metrics — named counters, gauges and log-bucketed histograms.
//      Hot-path updates land in per-thread shards (no locks, no atomics
//      on the data path) that are merged once at flush, so stage threads
//      never contend on a telemetry cache line.
//   2. Trace spans — begin/end pairs recorded per stage push/flush, per
//      thread-pool task batch, per impairment-stage draw, ... exported as
//      Chrome trace-event JSON (load trace.json in Perfetto or
//      chrome://tracing).
//   3. Per-frame decode diagnostics — one Frame_record per finalized data
//      frame (threshold, unknown/erasure/occlusion counts, GOB
//      availability and parity fills, confidence-margin histogram, sync
//      lock state) plus free-form events (impairment firings, sync
//      lock/loss), streamed to frames.jsonl.
//
// Determinism contract: telemetry is pure observation. It draws no random
// numbers, reorders no work and mutates no pipeline state, so decoded
// payload bits are identical with telemetry on, off, or at any thread
// count (tests/telemetry/test_telemetry.cpp pins this). When no registry
// is installed every hook reduces to one relaxed atomic load and a
// predicted-not-taken branch.
//
// Threading contract: install/uninstall (Session construction and
// destruction) must not race with instrumented work. The drivers satisfy
// this naturally — the Session brackets Pipeline::run, which joins its
// stage threads, and ambient thread-pool workers only touch telemetry
// while executing a parallel_for that completes inside the run.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace inframe::telemetry {

class Registry;

namespace detail {
// Installed registry + its install epoch. The epoch increments on every
// install/uninstall, so a cached Registry* is known-valid exactly while
// the epoch it was cached under is still current (no A-B-A on address
// reuse).
extern std::atomic<Registry*> g_registry;
extern std::atomic<std::uint64_t> g_epoch;

void counter_add_slow(Registry* registry, int metric, std::uint64_t delta);
void gauge_set_slow(Registry* registry, int metric, double value);
void histogram_record_slow(Registry* registry, int metric, double value);
} // namespace detail

// The registry currently receiving telemetry; nullptr = disabled.
inline Registry* current()
{
    return detail::g_registry.load(std::memory_order_acquire);
}

inline bool enabled() { return current() != nullptr; }

// --- metric names ---------------------------------------------------------

enum class Metric_kind : std::uint8_t { counter, gauge, histogram };

// Interns a metric name into the process-global table and returns its id.
// Ids are stable for the process lifetime, so call sites cache them in
// function-local statics — interning is the cold path, updates are hot.
// Re-interning an existing name returns the existing id (first kind wins).
int intern_metric(const char* name, Metric_kind kind);

struct Metric_name {
    std::string name;
    Metric_kind kind = Metric_kind::counter;
};

// Snapshot of the interned-name table (export and validation).
std::vector<Metric_name> metric_names();

// --- metric update hooks (hot path) ---------------------------------------

inline void counter_add(int metric, std::uint64_t delta = 1)
{
    if (Registry* registry = current()) detail::counter_add_slow(registry, metric, delta);
}

inline void gauge_set(int metric, double value)
{
    if (Registry* registry = current()) detail::gauge_set_slow(registry, metric, value);
}

inline void histogram_record(int metric, double value)
{
    if (Registry* registry = current()) detail::histogram_record_slow(registry, metric, value);
}

// --- histograms -----------------------------------------------------------

// Quarter-octave log2 buckets: bucket 0 collects v <= 0, buckets 1..63
// cover 2^-8 .. 2^7.75 (values outside clamp to the end buckets).
struct Histogram_data {
    static constexpr int bucket_count = 64;
    std::array<std::uint64_t, bucket_count> buckets{};
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    static int bucket_of(double value);
    static double bucket_lower_bound(int bucket);

    void record(double value);
    void merge(const Histogram_data& other);
};

// --- trace spans ----------------------------------------------------------

// RAII span: times the enclosed scope and records one Chrome trace "X"
// event into the calling thread's shard. The name is copied at record
// time, so any lifetime (including a Function_stage's owned string) is
// safe. Inert when no registry is installed.
class Scoped_span {
public:
    explicit Scoped_span(const char* name);
    ~Scoped_span();
    Scoped_span(const Scoped_span&) = delete;
    Scoped_span& operator=(const Scoped_span&) = delete;

private:
    Registry* registry_ = nullptr;
    std::uint64_t epoch_ = 0;
    std::uint64_t start_us_ = 0;
    const char* name_ = nullptr;
};

// --- per-frame decode diagnostics -----------------------------------------

// One record per finalized data frame, emitted by Inframe_decoder and
// streamed to frames.jsonl as {"type":"frame",...}.
struct Frame_record {
    std::int64_t data_frame_index = 0;
    double time_s = 0.0; // data-frame start on the decoder clock
    int captures_used = 0;
    double threshold = 0.0;

    int blocks_total = 0;
    int blocks_unknown = 0;   // no confident decision (includes erasures)
    int blocks_erased = 0;    // flagged as erasures (erasure-aware mode)
    int blocks_occluded = 0;  // erased by the occlusion mask

    int gobs_total = 0;
    int gobs_available = 0;
    int gobs_parity_ok = 0;
    int gobs_recovered = 0;   // single-erasure GOBs filled via parity

    // Lock state of the phase-sync layer feeding this decoder:
    // -1 = sync assumed/unknown (the paper's strawman), 0 = searching,
    // 1 = locked at sync_offset_s.
    int sync_locked = -1;
    double sync_offset_s = 0.0;

    // Confidence margins |metric - threshold| / threshold of every block
    // that saw a threshold, in log2 buckets: bucket 0 collects margins
    // below 2^-7, bucket b covers [2^(b-8), 2^(b-7)), bucket 15 collects
    // margins >= 2^7. Blocks drifting toward the decision boundary pile
    // up in the low buckets.
    static constexpr int margin_buckets = 16;
    std::array<std::uint32_t, margin_buckets> margin_hist{};

    static int margin_bucket(double relative_margin);
};

void emit_frame(const Frame_record& record);

// Free-form event, streamed to frames.jsonl as {"type":"event",...}.
// Impairment firings (drop/duplicate/tear/occlusion) and sync lock/loss
// transitions use this; `index` is the capture or frame index the event
// belongs to.
struct Event {
    const char* category = "";
    const char* name = "";
    std::int64_t index = -1;
    double value = 0.0;
};

void emit_event(const Event& event);

// --- registry -------------------------------------------------------------

struct Counter_value {
    std::string name;
    std::uint64_t value = 0;
};
struct Gauge_value {
    std::string name;
    double value = 0.0;
    bool set = false;
};
struct Histogram_value {
    std::string name;
    Histogram_data data;
};

// Merged view of every shard, taken at export time (or on demand in
// tests). Not meaningful while instrumented threads are still running.
struct Snapshot {
    std::vector<Counter_value> counters;
    std::vector<Gauge_value> gauges;
    std::vector<Histogram_value> histograms;
    std::size_t span_count = 0;
    std::size_t frame_count = 0;
    std::size_t event_count = 0;
};

class Registry {
public:
    Registry();
    ~Registry();
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    Snapshot snapshot() const;

    // Chrome trace-event JSON: {"traceEvents":[{"ph":"X",...},...]}.
    void write_chrome_trace(std::ostream& out) const;
    // One JSON object per line: frame records then events.
    void write_frames_jsonl(std::ostream& out) const;
    // Counters/gauges/histograms as one JSON object.
    void write_metrics_json(std::ostream& out) const;

    // Writes trace.json, frames.jsonl and metrics.json into `dir`
    // (created if missing). Returns false if any file could not be
    // written.
    bool write_all(const std::string& dir) const;

private:
    friend void detail::counter_add_slow(Registry*, int, std::uint64_t);
    friend void detail::gauge_set_slow(Registry*, int, double);
    friend void detail::histogram_record_slow(Registry*, int, double);
    friend class Scoped_span;
    friend void emit_frame(const Frame_record&);
    friend void emit_event(const Event&);

    struct Shard;
    struct Impl;
    Shard& shard();

    std::unique_ptr<Impl> impl_;
};

// Installs `registry` as the telemetry sink (nullptr uninstalls). Must
// not race with instrumented work; see the threading contract above.
void install(Registry* registry);

// --- session --------------------------------------------------------------

// Driver-facing configuration: a non-empty trace_dir enables telemetry
// for the scope of a Session and names the export directory.
struct Config {
    std::string trace_dir;

    bool enabled() const { return !trace_dir.empty(); }
};

// Parses `--trace <dir>` out of argv (examples and benches).
Config config_from_args(int argc, char** argv);

// RAII scope: owns a Registry, installs it on construction and, on
// destruction, writes trace.json / frames.jsonl / metrics.json into the
// configured directory and uninstalls. Inert when the config is disabled
// or another session is already active (the outermost session wins, so a
// driver-level session composes with run_link_experiment's own).
class Session {
public:
    Session() = default;
    explicit Session(const Config& config);
    ~Session();
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    bool active() const { return registry_ != nullptr; }
    const std::string& dir() const { return dir_; }
    Registry* registry() { return registry_.get(); }

private:
    std::unique_ptr<Registry> registry_;
    std::string dir_;
};

} // namespace inframe::telemetry
