#include "util/bitstream.hpp"

#include "util/contract.hpp"

namespace inframe::util {

void Bit_writer::put_bit(int bit)
{
    const std::size_t byte_index = bit_count_ / 8;
    const int bit_index = static_cast<int>(bit_count_ % 8);
    if (byte_index >= bytes_.size()) bytes_.push_back(0);
    if (bit != 0) bytes_[byte_index] |= static_cast<std::uint8_t>(0x80u >> bit_index);
    ++bit_count_;
}

void Bit_writer::put_bits(std::uint64_t value, int count)
{
    expects(count >= 0 && count <= 64, "Bit_writer::put_bits count out of range");
    for (int i = count - 1; i >= 0; --i) put_bit(static_cast<int>((value >> i) & 1u));
}

void Bit_writer::put_byte(std::uint8_t byte)
{
    put_bits(byte, 8);
}

void Bit_writer::put_bytes(std::span<const std::uint8_t> bytes)
{
    for (const auto byte : bytes) put_byte(byte);
}

std::vector<std::uint8_t> Bit_writer::to_bit_vector() const
{
    return unpack_bits(bytes_, bit_count_);
}

Bit_reader::Bit_reader(std::span<const std::uint8_t> bytes, std::size_t bit_count)
    : bytes_(bytes), bit_count_(bit_count)
{
    expects(bit_count <= bytes.size() * 8, "Bit_reader bit_count exceeds buffer");
}

Bit_reader::Bit_reader(std::span<const std::uint8_t> bytes)
    : Bit_reader(bytes, bytes.size() * 8)
{
}

int Bit_reader::get_bit()
{
    expects(position_ < bit_count_, "Bit_reader read past end");
    const std::size_t byte_index = position_ / 8;
    const int bit_index = static_cast<int>(position_ % 8);
    ++position_;
    return (bytes_[byte_index] >> (7 - bit_index)) & 1;
}

std::uint64_t Bit_reader::get_bits(int count)
{
    expects(count >= 0 && count <= 64, "Bit_reader::get_bits count out of range");
    std::uint64_t value = 0;
    for (int i = 0; i < count; ++i) value = (value << 1) | static_cast<std::uint64_t>(get_bit());
    return value;
}

std::uint8_t Bit_reader::get_byte()
{
    return static_cast<std::uint8_t>(get_bits(8));
}

std::vector<std::uint8_t> pack_bits(std::span<const std::uint8_t> bits)
{
    Bit_writer writer;
    for (const auto bit : bits) writer.put_bit(bit);
    return writer.bytes();
}

std::vector<std::uint8_t> unpack_bits(std::span<const std::uint8_t> bytes, std::size_t bit_count)
{
    expects(bit_count <= bytes.size() * 8, "unpack_bits bit_count exceeds buffer");
    std::vector<std::uint8_t> bits(bit_count);
    for (std::size_t i = 0; i < bit_count; ++i) {
        bits[i] = (bytes[i / 8] >> (7 - i % 8)) & 1;
    }
    return bits;
}

} // namespace inframe::util
