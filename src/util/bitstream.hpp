// Bit-granular serialization used by the coding layer: payload bytes are
// flattened to bits for block mapping, and decoded bits are reassembled
// into bytes. Bits are packed MSB-first within each byte.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace inframe::util {

class Bit_writer {
public:
    // Appends a single bit (0 or 1; any nonzero value counts as 1).
    void put_bit(int bit);

    // Appends the `count` least-significant bits of `value`, MSB first.
    // count must be in [0, 64].
    void put_bits(std::uint64_t value, int count);

    // Appends a whole byte (8 bits).
    void put_byte(std::uint8_t byte);

    // Appends a byte buffer.
    void put_bytes(std::span<const std::uint8_t> bytes);

    // Number of bits written so far.
    std::size_t bit_count() const { return bit_count_; }

    // Finished buffer; trailing bits of the last byte are zero-padded.
    const std::vector<std::uint8_t>& bytes() const { return bytes_; }

    // The written bits as individual 0/1 values.
    std::vector<std::uint8_t> to_bit_vector() const;

private:
    std::vector<std::uint8_t> bytes_;
    std::size_t bit_count_ = 0;
};

class Bit_reader {
public:
    explicit Bit_reader(std::span<const std::uint8_t> bytes, std::size_t bit_count);
    explicit Bit_reader(std::span<const std::uint8_t> bytes);

    // Reads one bit; throws Contract_violation past the end.
    int get_bit();

    // Reads `count` bits (MSB first) into the low bits of the result.
    std::uint64_t get_bits(int count);

    std::uint8_t get_byte();

    std::size_t bits_remaining() const { return bit_count_ - position_; }
    bool at_end() const { return position_ >= bit_count_; }

private:
    std::span<const std::uint8_t> bytes_;
    std::size_t bit_count_;
    std::size_t position_ = 0;
};

// Packs a vector of 0/1 values into bytes (MSB-first).
std::vector<std::uint8_t> pack_bits(std::span<const std::uint8_t> bits);

// Unpacks bytes into `bit_count` 0/1 values (MSB-first).
std::vector<std::uint8_t> unpack_bits(std::span<const std::uint8_t> bytes, std::size_t bit_count);

} // namespace inframe::util
