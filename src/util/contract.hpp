// Lightweight contract checking in the spirit of the Core Guidelines
// Expects()/Ensures(). Violations throw so that tests can assert on them
// and callers can recover at a subsystem boundary.
#pragma once

#include <stdexcept>
#include <string>

namespace inframe::util {

class Contract_violation : public std::logic_error {
public:
    explicit Contract_violation(const std::string& what) : std::logic_error(what) {}
};

// Precondition check: call at function entry to validate arguments/state.
inline void expects(bool condition, const char* message)
{
    if (!condition) throw Contract_violation(std::string("precondition violated: ") + message);
}

// Postcondition check: call before returning to validate produced state.
inline void ensures(bool condition, const char* message)
{
    if (!condition) throw Contract_violation(std::string("postcondition violated: ") + message);
}

} // namespace inframe::util
