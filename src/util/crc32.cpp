#include "util/crc32.hpp"

#include <array>

namespace inframe::util {

namespace {

constexpr std::array<std::uint32_t, 256> make_table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) ? 0xedb8'8320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

constexpr auto crc_table = make_table();

} // namespace

void Crc32::update(std::uint8_t byte)
{
    state_ = crc_table[(state_ ^ byte) & 0xffu] ^ (state_ >> 8);
}

void Crc32::update(std::span<const std::uint8_t> data)
{
    for (const auto byte : data) update(byte);
}

std::uint32_t Crc32::value() const
{
    return state_ ^ 0xffff'ffffu;
}

void Crc32::reset()
{
    state_ = 0xffff'ffffu;
}

std::uint32_t crc32(std::span<const std::uint8_t> data)
{
    Crc32 crc;
    crc.update(data);
    return crc.value();
}

} // namespace inframe::util
