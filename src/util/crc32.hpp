// CRC-32 (IEEE 802.3 polynomial, reflected) used by the payload framing
// layer to detect residual errors that slip past GOB parity / RS decoding.
#pragma once

#include <cstdint>
#include <span>

namespace inframe::util {

// One-shot CRC-32 of a buffer.
std::uint32_t crc32(std::span<const std::uint8_t> data);

// Incremental interface for streaming payloads.
class Crc32 {
public:
    void update(std::span<const std::uint8_t> data);
    void update(std::uint8_t byte);
    std::uint32_t value() const;
    void reset();

private:
    std::uint32_t state_ = 0xffff'ffffu;
};

} // namespace inframe::util
