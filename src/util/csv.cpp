#include "util/csv.hpp"

#include "util/contract.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace inframe::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns))
{
    expects(!columns_.empty(), "Table needs at least one column");
}

Table& Table::add_row(std::vector<Cell> cells)
{
    expects(cells.size() == columns_.size(), "Table row arity mismatch");
    rows_.push_back(std::move(cells));
    return *this;
}

std::string Table::to_string(const Cell& cell)
{
    if (const auto* s = std::get_if<std::string>(&cell)) return *s;
    if (const auto* d = std::get_if<double>(&cell)) return format_fixed(*d, 3);
    return std::to_string(std::get<long long>(cell));
}

void Table::print(std::ostream& out) const
{
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
    std::vector<std::vector<std::string>> rendered;
    rendered.reserve(rows_.size());
    for (const auto& row : rows_) {
        std::vector<std::string> cells;
        cells.reserve(row.size());
        for (std::size_t c = 0; c < row.size(); ++c) {
            cells.push_back(to_string(row[c]));
            widths[c] = std::max(widths[c], cells.back().size());
        }
        rendered.push_back(std::move(cells));
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
        }
        out << "\n";
    };
    print_row(columns_);
    std::size_t total = 0;
    for (const auto w : widths) total += w + 2;
    out << std::string(total, '-') << "\n";
    for (const auto& cells : rendered) print_row(cells);
}

namespace {

std::string escape_csv(const std::string& s)
{
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (const char ch : s) {
        if (ch == '"') quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

} // namespace

void Table::write_csv(std::ostream& out) const
{
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        if (c) out << ",";
        out << escape_csv(columns_[c]);
    }
    out << "\n";
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) out << ",";
            out << escape_csv(to_string(row[c]));
        }
        out << "\n";
    }
}

void Table::write_csv_file(const std::string& path) const
{
    std::ofstream file(path);
    expects(file.good(), "Table::write_csv_file could not open output file");
    write_csv(file);
}

std::string format_fixed(double value, int decimals)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(decimals) << value;
    return out.str();
}

} // namespace inframe::util
