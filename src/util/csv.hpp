// Minimal CSV/table emitter so bench binaries can both pretty-print the
// paper's figures to stdout and dump machine-readable series for plotting.
#pragma once

#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace inframe::util {

class Table {
public:
    using Cell = std::variant<std::string, double, long long>;

    explicit Table(std::vector<std::string> columns);

    Table& add_row(std::vector<Cell> cells);

    std::size_t row_count() const { return rows_.size(); }
    const std::vector<std::string>& columns() const { return columns_; }

    // Renders an aligned, human-readable table.
    void print(std::ostream& out) const;

    // Renders RFC-4180-ish CSV (quotes cells containing separators).
    void write_csv(std::ostream& out) const;
    void write_csv_file(const std::string& path) const;

private:
    static std::string to_string(const Cell& cell);

    std::vector<std::string> columns_;
    std::vector<std::vector<Cell>> rows_;
};

// Formats a double with fixed precision (helper for bench output).
std::string format_fixed(double value, int decimals);

} // namespace inframe::util
