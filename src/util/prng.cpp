#include "util/prng.hpp"

#include "util/contract.hpp"

#include <cmath>
#include <limits>
#include <numbers>

namespace inframe::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x)
{
    x += 0x9e37'79b9'7f4a'7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58'476d'1ce4'e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d0'49bb'1331'11ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Prng::Prng(std::uint64_t seed)
{
    // splitmix64 expansion guarantees a non-degenerate xoshiro state even
    // for seed == 0.
    for (auto& word : state_) word = splitmix64(seed);
}

std::uint64_t Prng::next_u64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t Prng::next_below(std::uint64_t bound)
{
    expects(bound > 0, "Prng::next_below bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next_u64();
        if (r >= threshold) return r % bound;
    }
}

std::int64_t Prng::next_int(std::int64_t lo, std::int64_t hi)
{
    expects(lo <= hi, "Prng::next_int requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64()); // full 64-bit range
    return lo + static_cast<std::int64_t>(next_below(span));
}

double Prng::next_double()
{
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Prng::next_double(double lo, double hi)
{
    expects(lo <= hi, "Prng::next_double requires lo <= hi");
    return lo + (hi - lo) * next_double();
}

double Prng::next_gaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    // Box-Muller on (0,1] deviates; u1 strictly positive for the log.
    double u1 = 0.0;
    do {
        u1 = next_double();
    } while (u1 <= std::numeric_limits<double>::min());
    const double u2 = next_double();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_gaussian_ = radius * std::sin(angle);
    has_cached_gaussian_ = true;
    return radius * std::cos(angle);
}

double Prng::next_gaussian(double mean, double stddev)
{
    expects(stddev >= 0.0, "Prng::next_gaussian stddev must be non-negative");
    return mean + stddev * next_gaussian();
}

bool Prng::next_bernoulli(double p)
{
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
}

void Prng::fill_bytes(std::span<std::uint8_t> out)
{
    std::size_t i = 0;
    while (i + 8 <= out.size()) {
        std::uint64_t word = next_u64();
        for (int b = 0; b < 8; ++b) {
            out[i++] = static_cast<std::uint8_t>(word & 0xff);
            word >>= 8;
        }
    }
    if (i < out.size()) {
        std::uint64_t word = next_u64();
        while (i < out.size()) {
            out[i++] = static_cast<std::uint8_t>(word & 0xff);
            word >>= 8;
        }
    }
}

std::vector<std::uint8_t> Prng::next_bits(std::size_t n)
{
    std::vector<std::uint8_t> bits(n);
    for (auto& bit : bits) bit = static_cast<std::uint8_t>(next_u64() >> 63);
    return bits;
}

Prng Prng::split()
{
    return Prng(next_u64());
}

} // namespace inframe::util
