// Deterministic pseudo-random number generation.
//
// The paper drives its experiments from "a pseudo-random data generator with
// a pre-set seed" (§4). Every stochastic component in this reproduction
// (payload bits, sensor noise, observer panels) draws from an explicitly
// seeded Prng so that runs are reproducible bit-for-bit.
//
// The generator is xoshiro256** (public domain, Blackman & Vigna), seeded
// through splitmix64 so that small consecutive seeds yield uncorrelated
// streams.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace inframe::util {

class Prng {
public:
    // Seeds the generator; equal seeds give equal streams.
    explicit Prng(std::uint64_t seed = default_seed);

    // Default seed used throughout the experiments ("pre-set seed", §4).
    static constexpr std::uint64_t default_seed = 0x1f2a'3e5c'7b9d'0846ULL;

    // Raw 64 random bits.
    std::uint64_t next_u64();

    // Uniform in [0, bound). bound must be > 0.
    std::uint64_t next_below(std::uint64_t bound);

    // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t next_int(std::int64_t lo, std::int64_t hi);

    // Uniform double in [0, 1).
    double next_double();

    // Uniform double in [lo, hi).
    double next_double(double lo, double hi);

    // Standard normal via Box-Muller (cached second deviate).
    double next_gaussian();

    // Normal with given mean and standard deviation.
    double next_gaussian(double mean, double stddev);

    // True with probability p (clamped to [0,1]).
    bool next_bernoulli(double p);

    // Fills a byte buffer with random data.
    void fill_bytes(std::span<std::uint8_t> out);

    // Convenience: n random bits as a vector<uint8_t> of 0/1 values.
    std::vector<std::uint8_t> next_bits(std::size_t n);

    // Derives an independent child generator (for per-component streams).
    Prng split();

private:
    std::uint64_t state_[4];
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

} // namespace inframe::util
