// Bounded single-producer/single-consumer queue for the stage-graph
// pipeline (core::Pipeline).
//
// Each edge of the stage graph is one Spsc_queue: the upstream stage
// thread pushes, the downstream stage thread pops, and the bounded
// capacity is the frames-in-flight window — a full queue blocks the
// producer (backpressure), an empty queue blocks the consumer. Tokens
// move through; nothing is copied.
//
// The implementation is mutex + condition variables rather than a
// lock-free ring: tokens flow at display-frame rate (one token per
// multi-millisecond stage invocation), so queue overhead is noise, and
// the mutex keeps the close/teardown semantics easy to prove correct.
//
// The queue also counts what the pipeline's observability taps report:
// how often each side blocked, and the occupancy the consumer saw.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace inframe::util {

template <typename T>
class Spsc_queue {
public:
    explicit Spsc_queue(std::size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

    Spsc_queue(const Spsc_queue&) = delete;
    Spsc_queue& operator=(const Spsc_queue&) = delete;

    // Blocks while the queue is full. Returns false (and drops nothing
    // into the queue) once the queue is closed — the producer's signal
    // that the consumer has gone away.
    bool push(T&& value)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (items_.size() >= capacity_ && !closed_) {
            ++full_waits_;
            not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
        }
        if (closed_) return false;
        items_.push_back(std::move(value));
        not_empty_.notify_one();
        return true;
    }

    // Blocks while the queue is empty. Returns nullopt once the queue is
    // closed *and* drained — in-flight items are always delivered.
    std::optional<T> pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (items_.empty() && !closed_) {
            ++empty_waits_;
            not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
        }
        if (items_.empty()) return std::nullopt;
        depth_sum_ += static_cast<std::int64_t>(items_.size());
        ++pops_;
        std::optional<T> value(std::move(items_.front()));
        items_.pop_front();
        not_full_.notify_one();
        return value;
    }

    // No more pushes will be accepted; wakes both sides. Idempotent.
    // Either side may close (the producer when its stream ends, the
    // consumer when it aborts).
    void close()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    std::size_t capacity() const { return capacity_; }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    // --- observability -----------------------------------------------
    // Times push() blocked on a full queue (downstream is the bottleneck).
    std::int64_t full_waits() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return full_waits_;
    }

    // Times pop() blocked on an empty queue (upstream is the bottleneck).
    std::int64_t empty_waits() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return empty_waits_;
    }

    // Mean occupancy observed at pop time (including the popped item).
    double mean_depth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return pops_ > 0 ? static_cast<double>(depth_sum_) / static_cast<double>(pops_) : 0.0;
    }

private:
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    std::size_t capacity_;
    bool closed_ = false;
    std::int64_t full_waits_ = 0;
    std::int64_t empty_waits_ = 0;
    std::int64_t pops_ = 0;
    std::int64_t depth_sum_ = 0;
};

} // namespace inframe::util
