#include "util/stats.hpp"

#include "util/contract.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace inframe::util {

void Running_stats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void Running_stats::add(std::span<const double> xs)
{
    for (const double x : xs) add(x);
}

double Running_stats::mean() const
{
    return count_ > 0 ? mean_ : 0.0;
}

double Running_stats::variance() const
{
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double Running_stats::stddev() const
{
    return std::sqrt(variance());
}

double Running_stats::min() const
{
    return count_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double Running_stats::max() const
{
    return count_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
}

double Running_stats::ci95_halfwidth() const
{
    if (count_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void Running_stats::reset()
{
    *this = Running_stats{};
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    expects(hi > lo, "Histogram range must be non-empty");
    expects(bins > 0, "Histogram needs at least one bin");
}

void Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const auto bin = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
    ++counts_[std::min(bin, counts_.size() - 1)];
}

double Histogram::bin_center(std::size_t i) const
{
    expects(i < counts_.size(), "Histogram bin index out of range");
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + (static_cast<double>(i) + 0.5) * width;
}

double Histogram::quantile(double q) const
{
    expects(q >= 0.0 && q <= 1.0, "Histogram quantile must be in [0,1]");
    if (total_ == 0) return lo_;
    const double target = q * static_cast<double>(total_);
    double cumulative = static_cast<double>(underflow_);
    if (cumulative >= target) return lo_;
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double next = cumulative + static_cast<double>(counts_[i]);
        if (next >= target && counts_[i] > 0) {
            const double frac = (target - cumulative) / static_cast<double>(counts_[i]);
            return lo_ + (static_cast<double>(i) + frac) * width;
        }
        cumulative = next;
    }
    return hi_;
}

std::string Histogram::to_string(int width) const
{
    std::ostringstream out;
    std::size_t peak = 1;
    for (const auto c : counts_) peak = std::max(peak, c);
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar = static_cast<int>(static_cast<double>(counts_[i]) / static_cast<double>(peak) * width);
        out << bin_center(i) << "\t" << counts_[i] << "\t" << std::string(static_cast<std::size_t>(bar), '#')
            << "\n";
    }
    return out.str();
}

double median(std::vector<double> values)
{
    expects(!values.empty(), "median of empty set");
    const auto mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid), values.end());
    double hi = values[mid];
    if (values.size() % 2 == 1) return hi;
    const auto lo_it = std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
    return (*lo_it + hi) / 2.0;
}

} // namespace inframe::util
