// Streaming statistics used by the evaluation harness: Fig. 6 reports mean
// and standard deviation over an observer panel; Fig. 7 reports ratios with
// run-to-run spread. Welford's algorithm keeps the accumulators stable.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace inframe::util {

class Running_stats {
public:
    void add(double x);
    void add(std::span<const double> xs);

    std::size_t count() const { return count_; }
    double mean() const;
    // Sample variance (n-1 denominator); 0 for fewer than two samples.
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

    // Half-width of the normal-approximation 95% confidence interval.
    double ci95_halfwidth() const;

    void reset();

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

// Fixed-range histogram for distribution summaries (noise levels, scores).
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    std::size_t total() const { return total_; }
    std::size_t bin_count() const { return counts_.size(); }
    std::size_t count_in_bin(std::size_t i) const { return counts_.at(i); }
    double bin_center(std::size_t i) const;
    // Value below which `q` (0..1) of the mass lies, linearly interpolated.
    double quantile(double q) const;
    std::string to_string(int width = 40) const;

private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

// Median of a copy of the data (handy for robust thresholds).
double median(std::vector<double> values);

} // namespace inframe::util
