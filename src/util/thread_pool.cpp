#include "util/thread_pool.hpp"

#include "telemetry/telemetry.hpp"
#include "util/contract.hpp"

#include <atomic>
#include <exception>

namespace inframe::util {

namespace {

// Set while a pool worker (or the caller inside parallel_for) is executing
// chunks. Nested parallel_for calls from kernel code then degrade to the
// serial inline path instead of deadlocking on the pool.
thread_local bool in_parallel_region = false;

} // namespace

struct Thread_pool::Job {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t grain = 1;
    std::int64_t chunk_count = 0;
    const Range_fn* fn = nullptr;
    std::atomic<std::int64_t> next{0};
    std::atomic<std::int64_t> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
};

int Thread_pool::hardware_threads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

Thread_pool::Thread_pool(int threads)
{
    if (threads <= 0) threads = hardware_threads();
    workers_.reserve(static_cast<std::size_t>(threads - 1));
    for (int i = 1; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

Thread_pool::~Thread_pool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
}

void Thread_pool::worker_loop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
            if (stop_) return;
            seen = generation_;
            job = job_;
        }
        if (!job) continue;
        in_parallel_region = true;
        run_chunks(*job);
        in_parallel_region = false;
    }
}

void Thread_pool::run_chunks(Job& job)
{
    // One span per participation in a job (not per chunk — chunks are too
    // fine to trace without distorting the timings being measured).
    telemetry::Scoped_span span("pool.batch");
    for (;;) {
        const std::int64_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= job.chunk_count) return;
        if (!job.failed.load(std::memory_order_acquire)) {
            const std::int64_t b = job.begin + chunk * job.grain;
            const std::int64_t e = std::min<std::int64_t>(job.end, b + job.grain);
            try {
                (*job.fn)(b, e);
            } catch (...) {
                std::lock_guard<std::mutex> lock(job.error_mutex);
                if (!job.error) job.error = std::current_exception();
                job.failed.store(true, std::memory_order_release);
            }
        }
        // Every claimed chunk counts as done even when skipped after a
        // failure, so the completion count always reaches chunk_count.
        const std::int64_t finished = job.done.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (finished == job.chunk_count) {
            // Wake the caller blocked in parallel_for. Taking the pool
            // mutex pairs this notify with the caller's predicate check.
            std::lock_guard<std::mutex> lock(mutex_);
            done_.notify_all();
        }
    }
}

void Thread_pool::parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                               const Range_fn& fn)
{
    if (end <= begin) return;
    if (grain < 1) grain = 1;
    const std::int64_t chunk_count = (end - begin + grain - 1) / grain;

    // Serial path: one lane, a single chunk, or already inside a parallel
    // region. Chunks still execute in ascending order, which together with
    // the merge-in-chunk-order reduction contract makes the serial and
    // threaded paths bit-identical.
    if (thread_count() == 1 || chunk_count == 1 || in_parallel_region) {
        for (std::int64_t chunk = 0; chunk < chunk_count; ++chunk) {
            const std::int64_t b = begin + chunk * grain;
            const std::int64_t e = std::min<std::int64_t>(end, b + grain);
            fn(b, e);
        }
        return;
    }

    auto job = std::make_shared<Job>();
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->chunk_count = chunk_count;
    job->fn = &fn;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = job;
        ++generation_;
    }
    wake_.notify_all();

    in_parallel_region = true;
    run_chunks(*job);
    in_parallel_region = false;

    if (job->done.load(std::memory_order_acquire) != chunk_count) {
        // Workers are still draining their claimed chunks; done_ is
        // notified by the last finisher below via the shared mutex.
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] {
            return job->done.load(std::memory_order_acquire) == chunk_count;
        });
    }
    {
        // Drop the pool's reference so the job dies with this call.
        std::lock_guard<std::mutex> lock(mutex_);
        if (job_ == job) job_.reset();
    }
    if (job->error) std::rethrow_exception(job->error);
}

// --- Ambient context ------------------------------------------------------

namespace {

std::atomic<int> g_requested_threads{1};

// Guards pool construction/replacement: the stage-graph executor
// (core::Pipeline) calls ambient parallel_for from several stage threads
// at once, and the first calls may race to build the pool.
std::mutex g_pool_mutex;
std::unique_ptr<Thread_pool> g_pool;

Thread_pool* ambient_pool()
{
    const int requested = g_requested_threads.load(std::memory_order_relaxed);
    if (requested <= 1) return nullptr;
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (!g_pool || g_pool->thread_count() != requested) {
        g_pool.reset(); // join old workers before spawning the new pool
        g_pool = std::make_unique<Thread_pool>(requested);
    }
    return g_pool.get();
}

} // namespace

int resolve_threads(int requested)
{
    expects(requested >= 0, "thread count must be >= 0 (0 = hardware concurrency)");
    if (requested == 0) return Thread_pool::hardware_threads();
    return requested;
}

void set_parallel_threads(int threads)
{
    g_requested_threads.store(resolve_threads(threads), std::memory_order_relaxed);
}

int parallel_threads()
{
    return g_requested_threads.load(std::memory_order_relaxed);
}

Parallel_scope::Parallel_scope(int threads)
    : previous_(g_requested_threads.load(std::memory_order_relaxed))
{
    set_parallel_threads(threads);
}

Parallel_scope::~Parallel_scope()
{
    g_requested_threads.store(previous_, std::memory_order_relaxed);
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain, const Range_fn& fn)
{
    Thread_pool* pool = ambient_pool();
    if (pool == nullptr) {
        if (end <= begin) return;
        if (grain < 1) grain = 1;
        // Same chunked traversal as the pool's serial path.
        for (std::int64_t b = begin; b < end; b += grain) {
            fn(b, std::min<std::int64_t>(end, b + grain));
        }
        return;
    }
    pool->parallel_for(begin, end, grain, fn);
}

} // namespace inframe::util
