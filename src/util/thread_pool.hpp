// Deterministic fork-join parallelism for the simulation hot path.
//
// Design contract (see DESIGN.md, "Threading model & determinism"): work is
// split into contiguous chunks whose boundaries depend only on the range and
// the grain — never on the thread count — and chunks either write disjoint
// outputs (parallel_for) or produce per-chunk partials that are merged
// serially in chunk order (parallel_reduce). Which thread executes which
// chunk is scheduling noise; the numeric result is bit-identical whether the
// pool has 1 thread or 64. That is what lets the determinism tests assert
// threads=7 reproduces threads=1 exactly.
//
// There is deliberately no work stealing and no dynamic load balancing
// beyond threads pulling the next fixed chunk off a shared counter: the
// kernels here are regular (rows of the same width), so static chunking
// loses nothing and buys reproducibility.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace inframe::util {

// A reference to a callable taking a half-open index range. Using
// std::function at the chunk granularity (tens of rows) keeps the ABI simple;
// the indirection is amortized over the chunk body.
using Range_fn = std::function<void(std::int64_t begin, std::int64_t end)>;

class Thread_pool {
public:
    // threads = 0 picks std::thread::hardware_concurrency(); threads = 1 is
    // a serial pool (no worker threads, parallel_for runs inline).
    explicit Thread_pool(int threads = 0);
    ~Thread_pool();

    Thread_pool(const Thread_pool&) = delete;
    Thread_pool& operator=(const Thread_pool&) = delete;

    // Total execution lanes including the calling thread.
    int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

    // Runs fn over [begin, end) in chunks of `grain` indices. The calling
    // thread participates; returns once every chunk has run. Exceptions
    // thrown by fn are captured (first wins) and rethrown on the caller.
    // Chunk boundaries depend only on (begin, end, grain).
    //
    // Calls from inside a worker (nested parallelism) run serially inline —
    // the outer parallel_for already owns the lanes.
    //
    // Concurrent top-level calls from *different* threads are supported:
    // each caller always executes its own job to completion (workers are
    // opportunistic helpers that drain whichever job was posted last), so
    // the stage-graph executor's stage threads can share one pool. Chunk
    // boundaries stay scheduling-independent, so outputs are unaffected.
    void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                      const Range_fn& fn);

    static int hardware_threads();

private:
    struct Job;
    void worker_loop();
    void run_chunks(Job& job);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::shared_ptr<Job> job_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

// --- Ambient execution context -------------------------------------------
//
// The kernels (imgproc, channel, coding, core) call the free functions below
// instead of carrying a pool through every signature. The ambient thread
// count is process-global; because results are thread-count-invariant it
// only affects speed, never output. Default is 1 (serial) so library users
// opt in explicitly — run_link_experiment and friends install the configured
// count via Parallel_scope.

// Resolves a user-facing knob: 0 -> hardware concurrency, otherwise
// clamped to >= 1.
int resolve_threads(int requested);

// Sets the ambient thread count (resolve_threads applied). The pool is
// (re)built lazily on first use after a change. Not safe to call
// concurrently with in-flight parallel work.
void set_parallel_threads(int threads);

// Current ambient thread count (after resolution).
int parallel_threads();

// RAII guard: installs a thread count, restores the previous one.
class Parallel_scope {
public:
    explicit Parallel_scope(int threads);
    ~Parallel_scope();
    Parallel_scope(const Parallel_scope&) = delete;
    Parallel_scope& operator=(const Parallel_scope&) = delete;

private:
    int previous_;
};

// parallel_for over the ambient pool.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const Range_fn& fn);

// Deterministic reduction: [begin, end) is cut into fixed slices of `grain`
// indices; map(slice_begin, slice_end) produces one partial per slice, and
// the partials are folded into `init` serially in slice order via
// merge(acc, partial). Slice boundaries — and therefore floating-point
// association — depend only on the range and grain, so the result is
// bit-identical for every thread count.
template <typename T, typename Map, typename Merge>
T parallel_reduce(std::int64_t begin, std::int64_t end, std::int64_t grain, T init,
                  Map&& map, Merge&& merge)
{
    if (end <= begin) return init;
    if (grain < 1) grain = 1;
    const std::int64_t slices = (end - begin + grain - 1) / grain;
    std::vector<T> partials(static_cast<std::size_t>(slices));
    parallel_for(0, slices, 1, [&](std::int64_t s0, std::int64_t s1) {
        for (std::int64_t s = s0; s < s1; ++s) {
            const std::int64_t b = begin + s * grain;
            const std::int64_t e = std::min<std::int64_t>(end, b + grain);
            partials[static_cast<std::size_t>(s)] = map(b, e);
        }
    });
    for (auto& partial : partials) init = merge(std::move(init), std::move(partial));
    return init;
}

} // namespace inframe::util
