#include "video/playback.hpp"

#include "util/contract.hpp"

#include <cmath>

namespace inframe::video {

int Playback_schedule::repeats_per_video_frame() const
{
    util::expects(display_fps > 0.0 && video_fps > 0.0, "playback rates must be positive");
    const double ratio = display_fps / video_fps;
    const int repeats = static_cast<int>(std::lround(ratio));
    util::expects(std::fabs(ratio - repeats) < 1e-9 && repeats >= 1,
                  "display rate must be an integer multiple of the video rate");
    return repeats;
}

std::int64_t Playback_schedule::video_frame_for_display(std::int64_t display_index) const
{
    util::expects(display_index >= 0, "display index must be non-negative");
    util::expects(display_fps > 0.0 && video_fps > 0.0, "playback rates must be positive");
    const double ratio = display_fps / video_fps;
    const int repeats = static_cast<int>(std::lround(ratio));
    if (std::fabs(ratio - repeats) < 1e-9 && repeats >= 1) {
        // Integer ratio (the paper's 120/30 rig): exact division, no
        // floating-point drift at any index.
        return display_index / repeats;
    }
    // Non-integer ratio (e.g. 120 Hz display showing 23.976 fps film):
    // show the video frame whose presentation interval contains this
    // refresh — the 3:2-pulldown generalization. The epsilon absorbs
    // cases where j * video_fps / display_fps lands a hair under an
    // integer boundary (j * 23.976 / 120 style rationals).
    return static_cast<std::int64_t>(
        std::floor(static_cast<double>(display_index) * video_fps / display_fps + 1e-9));
}

double Playback_schedule::display_time(std::int64_t display_index) const
{
    util::expects(display_index >= 0, "display index must be non-negative");
    return static_cast<double>(display_index) / display_fps;
}

namespace {

std::shared_ptr<const Video_source> cached(std::shared_ptr<const Video_source> source)
{
    return std::make_shared<Cached_video>(std::move(source));
}

} // namespace

std::shared_ptr<const Video_source> make_gray_video(int width, int height)
{
    // "Pure light gray": RGB (180, 180, 180) in the paper's setup.
    return cached(std::make_shared<Solid_video>(width, height, 180.0f));
}

std::shared_ptr<const Video_source> make_dark_gray_video(int width, int height)
{
    // "Pure dark gray": RGB (127, 127, 127).
    return cached(std::make_shared<Solid_video>(width, height, 127.0f));
}

std::shared_ptr<const Video_source> make_sunrise_video(int width, int height, std::uint64_t seed)
{
    return cached(std::make_shared<Sunrise_video>(width, height, 30.0, seed));
}

} // namespace inframe::video
