// Display scheduling: mapping between video frames (30 FPS in the paper)
// and display refreshes (120 Hz). Each video frame is shown for
// refresh_rate / video_fps consecutive display frames — the "duplicate each
// video frame four times" step of Fig. 2.
#pragma once

#include "video/source.hpp"

#include <cstdint>

namespace inframe::video {

struct Playback_schedule {
    double display_fps = 120.0;
    double video_fps = 30.0;

    // Display frames per video frame (must divide evenly; the paper's rig
    // is 120/30 = 4). Throws for non-integer ratios — callers that need a
    // fixed repeat count (the encoder's tau cadence) require one.
    int repeats_per_video_frame() const;

    // Video frame shown during the given display frame. Supports
    // non-integer ratios (e.g. 120 Hz display, 23.976 fps film) by
    // holding each video frame for its presentation interval, so
    // repeat counts alternate 3:2-pulldown style.
    std::int64_t video_frame_for_display(std::int64_t display_index) const;

    // Display timestamp in seconds.
    double display_time(std::int64_t display_index) const;
};

// The paper's standard library of evaluation inputs (4): light gray
// (RGB 180), dark gray (RGB 127) and the sunrise clip, at the given size.
std::shared_ptr<const Video_source> make_gray_video(int width, int height);
std::shared_ptr<const Video_source> make_dark_gray_video(int width, int height);
std::shared_ptr<const Video_source> make_sunrise_video(int width, int height,
                                                       std::uint64_t seed = 1);

} // namespace inframe::video
