#include "video/source.hpp"

#include "imgproc/draw.hpp"
#include "imgproc/image_ops.hpp"
#include "imgproc/io.hpp"
#include "util/contract.hpp"
#include "util/prng.hpp"

#include <cmath>
#include <sstream>

namespace inframe::video {

namespace {

// Integer lattice hash -> [0, 1). Mixes coordinates and seed through the
// splitmix64 finalizer so neighbouring lattice points decorrelate.
double lattice_value(std::int64_t ix, std::int64_t iy, std::uint64_t seed)
{
    std::uint64_t h = seed;
    h ^= static_cast<std::uint64_t>(ix) * 0x9e37'79b9'7f4a'7c15ULL;
    h ^= static_cast<std::uint64_t>(iy) * 0xc2b2'ae3d'27d4'eb4fULL;
    h = (h ^ (h >> 30)) * 0xbf58'476d'1ce4'e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d0'49bb'1331'11ebULL;
    h ^= h >> 31;
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double smoothstep(double t)
{
    return t * t * (3.0 - 2.0 * t);
}

} // namespace

double value_noise(double x, double y, std::uint64_t seed)
{
    const double fx = std::floor(x);
    const double fy = std::floor(y);
    const auto ix = static_cast<std::int64_t>(fx);
    const auto iy = static_cast<std::int64_t>(fy);
    const double tx = smoothstep(x - fx);
    const double ty = smoothstep(y - fy);
    const double v00 = lattice_value(ix, iy, seed);
    const double v10 = lattice_value(ix + 1, iy, seed);
    const double v01 = lattice_value(ix, iy + 1, seed);
    const double v11 = lattice_value(ix + 1, iy + 1, seed);
    const double top = v00 + (v10 - v00) * tx;
    const double bottom = v01 + (v11 - v01) * tx;
    return top + (bottom - top) * ty;
}

double fractal_noise(double x, double y, std::uint64_t seed, int octaves)
{
    util::expects(octaves >= 1, "fractal_noise needs at least one octave");
    double amplitude = 0.5;
    double total = 0.0;
    double norm = 0.0;
    for (int o = 0; o < octaves; ++o) {
        total += amplitude * value_noise(x, y, seed + static_cast<std::uint64_t>(o) * 7919);
        norm += amplitude;
        x *= 2.0;
        y *= 2.0;
        amplitude *= 0.5;
    }
    return total / norm;
}

Solid_video::Solid_video(int width, int height, float level, double fps)
    : width_(width), height_(height), level_(level), fps_(fps)
{
    util::expects(width > 0 && height > 0, "Solid_video dimensions must be positive");
    util::expects(fps > 0.0, "Solid_video fps must be positive");
}

img::Imagef Solid_video::frame(std::int64_t index) const
{
    util::expects(index >= 0, "frame index must be non-negative");
    return img::Imagef(width_, height_, 1, level_);
}

std::string Solid_video::name() const
{
    std::ostringstream out;
    out << "solid-" << static_cast<int>(level_);
    return out.str();
}

Still_video::Still_video(img::Imagef image, std::string name, double fps)
    : image_(std::move(image)), name_(std::move(name)), fps_(fps)
{
    util::expects(!image_.empty(), "Still_video requires a non-empty image");
    util::expects(fps > 0.0, "Still_video fps must be positive");
}

img::Imagef Still_video::frame(std::int64_t index) const
{
    util::expects(index >= 0, "frame index must be non-negative");
    return image_;
}

Sunrise_video::Sunrise_video(int width, int height, double fps, std::uint64_t seed)
    : width_(width), height_(height), fps_(fps), seed_(seed)
{
    util::expects(width > 0 && height > 0, "Sunrise_video dimensions must be positive");
    util::expects(fps > 0.0, "Sunrise_video fps must be positive");
}

img::Imagef Sunrise_video::frame(std::int64_t index) const
{
    util::expects(index >= 0, "frame index must be non-negative");
    const double t = static_cast<double>(index) / fps_; // seconds
    img::Imagef out(width_, height_, 1);

    // The sun climbs from below the horizon over ~40 s and the whole sky
    // brightens with it, sweeping the luminance range the paper's clip has.
    const double progress = std::min(t / 40.0, 1.0);
    const double horizon = 0.62 * height_;
    const double sun_x = 0.5 * width_ + 0.06 * width_ * std::sin(t * 0.1);
    const double sun_y = horizon + (0.25 - 0.55 * progress) * height_;
    const double sun_radius = 0.055 * std::min(width_, height_);

    const double sky_top = 28.0 + 90.0 * progress;     // zenith level
    const double sky_horizon = 90.0 + 120.0 * progress; // glow near horizon

    for (int y = 0; y < height_; ++y) {
        const double rel = std::clamp(static_cast<double>(y) / horizon, 0.0, 1.0);
        const double sky = sky_top + (sky_horizon - sky_top) * rel * rel;
        for (int x = 0; x < width_; ++x) {
            double level;
            if (static_cast<double>(y) < horizon) {
                level = sky;
                // Drifting clouds: smooth fractal noise, moving slowly.
                const double cloud = fractal_noise(static_cast<double>(x) / 96.0 + t * 0.25,
                                                   static_cast<double>(y) / 64.0, seed_, 3);
                level += (cloud - 0.5) * 46.0;
                // Sun glow and disc.
                const double dx = static_cast<double>(x) - sun_x;
                const double dy = static_cast<double>(y) - sun_y;
                const double dist = std::sqrt(dx * dx + dy * dy);
                if (dist < sun_radius) {
                    level = 235.0 + 20.0 * progress;
                } else {
                    level += 160.0 * std::exp(-dist / (sun_radius * 4.0)) * (0.4 + 0.6 * progress);
                }
            } else {
                // Foreground hills: dark with high-frequency texture, the
                // "high-texture areas" the decoder's de-meaning targets.
                const double ground = 18.0 + 26.0 * progress;
                const double texture =
                    fractal_noise(static_cast<double>(x) / 7.0, static_cast<double>(y) / 7.0,
                                  seed_ + 17, 4);
                level = ground + (texture - 0.5) * 38.0;
            }
            out(x, y) = static_cast<float>(std::clamp(level, 0.0, 255.0));
        }
    }
    return out;
}

Moving_bars_video::Moving_bars_video(int width, int height, int bar_width,
                                     float speed_px_per_frame, double fps, float lo, float hi)
    : width_(width), height_(height), bar_width_(bar_width), speed_(speed_px_per_frame),
      fps_(fps), lo_(lo), hi_(hi)
{
    util::expects(width > 0 && height > 0, "Moving_bars_video dimensions must be positive");
    util::expects(bar_width > 0, "Moving_bars_video bar width must be positive");
    util::expects(fps > 0.0, "Moving_bars_video fps must be positive");
}

img::Imagef Moving_bars_video::frame(std::int64_t index) const
{
    util::expects(index >= 0, "frame index must be non-negative");
    img::Imagef out(width_, height_, 1);
    const double offset = static_cast<double>(index) * speed_;
    for (int x = 0; x < width_; ++x) {
        const auto phase =
            static_cast<std::int64_t>(std::floor((static_cast<double>(x) + offset) / bar_width_));
        const float level = (phase % 2 + 2) % 2 == 0 ? lo_ : hi_;
        for (int y = 0; y < height_; ++y) out(x, y) = level;
    }
    return out;
}

Noise_video::Noise_video(int width, int height, float mean_level, float stddev, double fps,
                         std::uint64_t seed)
    : width_(width), height_(height), mean_level_(mean_level), stddev_(stddev), fps_(fps),
      seed_(seed)
{
    util::expects(width > 0 && height > 0, "Noise_video dimensions must be positive");
    util::expects(stddev >= 0.0f, "Noise_video stddev must be non-negative");
    util::expects(fps > 0.0, "Noise_video fps must be positive");
}

img::Imagef Noise_video::frame(std::int64_t index) const
{
    util::expects(index >= 0, "frame index must be non-negative");
    // Seed mixes the frame index so every frame is fresh but reproducible.
    util::Prng prng(seed_ ^ (static_cast<std::uint64_t>(index) * 0x2545'f491'4f6c'dd1dULL));
    img::Imagef out(width_, height_, 1);
    for (auto& v : out.values()) {
        v = static_cast<float>(
            std::clamp(prng.next_gaussian(mean_level_, stddev_), 0.0, 255.0));
    }
    return out;
}

Slideshow_video::Slideshow_video(int width, int height, int hold_frames, double fps,
                                 std::uint64_t seed)
    : width_(width), height_(height), hold_frames_(hold_frames), fps_(fps), seed_(seed)
{
    util::expects(width > 0 && height > 0, "Slideshow_video dimensions must be positive");
    util::expects(hold_frames >= 1, "Slideshow_video must hold each slide >= 1 frame");
    util::expects(fps > 0.0, "Slideshow_video fps must be positive");
}

img::Imagef Slideshow_video::frame(std::int64_t index) const
{
    util::expects(index >= 0, "frame index must be non-negative");
    const auto slide = static_cast<std::uint64_t>(index / hold_frames_);
    util::Prng prng(seed_ ^ (slide * 0x517c'c1b7'2722'0a95ULL));
    // Each slide is a distinct composition: background level, a few
    // rectangles and a disc, plus a gradient band.
    img::Imagef out(width_, height_, 1,
                    static_cast<float>(prng.next_double(40.0, 210.0)));
    const int panels = static_cast<int>(prng.next_int(2, 5));
    for (int i = 0; i < panels; ++i) {
        const int w = static_cast<int>(prng.next_int(width_ / 8, width_ / 2));
        const int h = static_cast<int>(prng.next_int(height_ / 8, height_ / 2));
        img::fill_rect(out, static_cast<int>(prng.next_int(0, width_ - 1)),
                       static_cast<int>(prng.next_int(0, height_ - 1)), w, h,
                       static_cast<float>(prng.next_double(20.0, 235.0)));
    }
    img::fill_disc(out, static_cast<float>(prng.next_double(0.0, width_)),
                   static_cast<float>(prng.next_double(0.0, height_)),
                   static_cast<float>(prng.next_double(8.0, height_ / 3.0)),
                   static_cast<float>(prng.next_double(20.0, 235.0)));
    return out;
}

Ticker_video::Ticker_video(int width, int height, std::string text, float speed_px_per_frame,
                           double fps, float background, float ink)
    : width_(width), height_(height), text_(std::move(text)), speed_(speed_px_per_frame),
      fps_(fps), background_(background), ink_(ink)
{
    util::expects(width > 0 && height > 0, "Ticker_video dimensions must be positive");
    util::expects(!text_.empty(), "Ticker_video needs text");
    util::expects(fps > 0.0, "Ticker_video fps must be positive");
    // 5x7 glyphs with 1-column gaps at scale 2.
    text_width_px_ = static_cast<int>(text_.size()) * 12;
}

img::Imagef Ticker_video::frame(std::int64_t index) const
{
    util::expects(index >= 0, "frame index must be non-negative");
    img::Imagef out(width_, height_, 1, background_);
    const int cycle = width_ + text_width_px_;
    const double travel = static_cast<double>(index) * speed_;
    const int x0 = width_ - static_cast<int>(std::fmod(travel, cycle));
    const int y0 = height_ / 2 - 7;
    img::draw_text(out, x0, y0, text_.c_str(), ink_, 2);
    // Second copy so the band never goes empty on wide frames.
    img::draw_text(out, x0 + cycle, y0, text_.c_str(), ink_, 2);
    return out;
}

Tinted_video::Tinted_video(std::shared_ptr<const Video_source> inner, Tint dark, Tint light)
    : inner_(std::move(inner)), dark_(dark), light_(light)
{
    util::expects(inner_ != nullptr, "Tinted_video requires a source");
}

img::Imagef Tinted_video::frame(std::int64_t index) const
{
    const img::Imagef gray = img::to_gray(inner_->frame(index));
    img::Imagef out(gray.width(), gray.height(), 3);
    for (int y = 0; y < gray.height(); ++y) {
        for (int x = 0; x < gray.width(); ++x) {
            const float t = std::clamp(gray(x, y) / 255.0f, 0.0f, 1.0f);
            out(x, y, 0) = dark_.r + (light_.r - dark_.r) * t;
            out(x, y, 1) = dark_.g + (light_.g - dark_.g) * t;
            out(x, y, 2) = dark_.b + (light_.b - dark_.b) * t;
        }
    }
    return out;
}

Image_sequence_video::Image_sequence_video(std::vector<std::string> paths, double fps)
    : fps_(fps)
{
    util::expects(!paths.empty(), "Image_sequence_video needs at least one frame");
    util::expects(fps > 0.0, "Image_sequence_video fps must be positive");
    frames_.reserve(paths.size());
    for (const auto& path : paths) {
        frames_.push_back(img::to_float(img::read_pnm(path)));
        util::expects(frames_.back().same_shape(frames_.front()),
                      "Image_sequence_video frames must share one shape");
    }
    width_ = frames_.front().width();
    height_ = frames_.front().height();
}

img::Imagef Image_sequence_video::frame(std::int64_t index) const
{
    util::expects(index >= 0, "frame index must be non-negative");
    return frames_[static_cast<std::size_t>(index) % frames_.size()];
}

Cached_video::Cached_video(std::shared_ptr<const Video_source> inner, std::size_t capacity)
    : inner_(std::move(inner)), cache_(capacity)
{
    util::expects(inner_ != nullptr, "Cached_video requires a source");
    util::expects(capacity >= 1, "Cached_video capacity must be >= 1");
}

img::Imagef Cached_video::frame(std::int64_t index) const
{
    for (const auto& entry : cache_) {
        if (entry.index == index) return entry.frame;
    }
    Entry& slot = cache_[next_slot_];
    next_slot_ = (next_slot_ + 1) % cache_.size();
    slot.index = index;
    slot.frame = inner_->frame(index);
    return slot.frame;
}

} // namespace inframe::video
