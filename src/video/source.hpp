// Procedural video sources.
//
// The paper evaluates with three inputs: a pure light-gray video, a pure
// dark-gray video (RGB 180 and 127 — the exact levels from 4), and a
// natural "sun-rising" clip. We do not have the authors' clip, so
// Sunrise_video synthesizes a scene with the properties that matter to the
// decoder: a wide luminance range (dark foreground to bright sun), smooth
// sky gradients, slow global change, local motion, and textured regions.
//
// All sources are deterministic functions of (frame index, seed): the same
// index always yields the same frame, which the reproduction relies on.
// Frames are single-channel luminance in the [0, 255] float domain — the
// paper's coding operates on pixel values, not chromaticity.
#pragma once

#include "imgproc/image.hpp"

#include <cstdint>
#include <memory>
#include <string>

namespace inframe::video {

class Video_source {
public:
    virtual ~Video_source() = default;

    // Frame at the source's native rate. index >= 0; sources are
    // infinitely long (generators extend/loop deterministically).
    virtual img::Imagef frame(std::int64_t index) const = 0;

    virtual int width() const = 0;
    virtual int height() const = 0;
    virtual double fps() const = 0;
    virtual std::string name() const = 0;
};

// Constant-color frames ("pure gray" / "pure dark gray" in the paper).
class Solid_video final : public Video_source {
public:
    Solid_video(int width, int height, float level, double fps = 30.0);

    img::Imagef frame(std::int64_t index) const override;
    int width() const override { return width_; }
    int height() const override { return height_; }
    double fps() const override { return fps_; }
    std::string name() const override;
    float level() const { return level_; }

private:
    int width_;
    int height_;
    float level_;
    double fps_;
};

// Static image repeated forever (e.g., a gradient test card).
class Still_video final : public Video_source {
public:
    Still_video(img::Imagef image, std::string name, double fps = 30.0);

    img::Imagef frame(std::int64_t index) const override;
    int width() const override { return image_.width(); }
    int height() const override { return image_.height(); }
    double fps() const override { return fps_; }
    std::string name() const override { return name_; }

private:
    img::Imagef image_;
    std::string name_;
    double fps_;
};

// Procedural sunrise scene: brightening sky gradient, rising sun disc,
// drifting value-noise clouds, dark textured foreground hills.
class Sunrise_video final : public Video_source {
public:
    Sunrise_video(int width, int height, double fps = 30.0, std::uint64_t seed = 1);

    img::Imagef frame(std::int64_t index) const override;
    int width() const override { return width_; }
    int height() const override { return height_; }
    double fps() const override { return fps_; }
    std::string name() const override { return "sunrise"; }

private:
    int width_;
    int height_;
    double fps_;
    std::uint64_t seed_;
};

// Vertical bars scrolling horizontally: a motion/edge stress input.
class Moving_bars_video final : public Video_source {
public:
    Moving_bars_video(int width, int height, int bar_width, float speed_px_per_frame,
                      double fps = 30.0, float lo = 64.0f, float hi = 192.0f);

    img::Imagef frame(std::int64_t index) const override;
    int width() const override { return width_; }
    int height() const override { return height_; }
    double fps() const override { return fps_; }
    std::string name() const override { return "moving-bars"; }

private:
    int width_;
    int height_;
    int bar_width_;
    float speed_;
    double fps_;
    float lo_;
    float hi_;
};

// Independent per-frame noise around a mid level: the decoder's worst-case
// texture input.
class Noise_video final : public Video_source {
public:
    Noise_video(int width, int height, float mean_level, float stddev, double fps = 30.0,
                std::uint64_t seed = 2);

    img::Imagef frame(std::int64_t index) const override;
    int width() const override { return width_; }
    int height() const override { return height_; }
    double fps() const override { return fps_; }
    std::string name() const override { return "noise"; }

private:
    int width_;
    int height_;
    float mean_level_;
    float stddev_;
    double fps_;
    std::uint64_t seed_;
};

// Plays back recorded frames (PGM/PPM files) from disk, looping. The
// bridge for feeding *real* footage through the pipeline: drop numbered
// frames in a directory and point this at them.
class Image_sequence_video final : public Video_source {
public:
    // paths: ordered frame files; all must share one size/channel count.
    Image_sequence_video(std::vector<std::string> paths, double fps = 30.0);

    img::Imagef frame(std::int64_t index) const override;
    int width() const override { return width_; }
    int height() const override { return height_; }
    double fps() const override { return fps_; }
    std::string name() const override { return "image-sequence"; }

    std::size_t frame_count() const { return frames_.size(); }

private:
    std::vector<img::Imagef> frames_;
    int width_ = 0;
    int height_ = 0;
    double fps_;
};

// Memoizes the most recent frames of a wrapped source. The encoder asks for
// each video frame refresh_rate/video_fps times in a row; generators are
// expensive enough that caching matters.
class Cached_video final : public Video_source {
public:
    explicit Cached_video(std::shared_ptr<const Video_source> inner, std::size_t capacity = 4);

    img::Imagef frame(std::int64_t index) const override;
    int width() const override { return inner_->width(); }
    int height() const override { return inner_->height(); }
    double fps() const override { return inner_->fps(); }
    std::string name() const override { return inner_->name(); }

private:
    struct Entry {
        std::int64_t index = -1;
        img::Imagef frame;
    };

    std::shared_ptr<const Video_source> inner_;
    mutable std::vector<Entry> cache_;
    mutable std::size_t next_slot_ = 0;
};

// Slideshow with hard cuts: cycles through a set of distinct test cards,
// switching instantly every `hold_frames` frames. Scene cuts invalidate
// the encoder's per-video-frame statistics and stress the decoder's
// temporal grouping — the harshest kind of legitimate video content.
class Slideshow_video final : public Video_source {
public:
    Slideshow_video(int width, int height, int hold_frames, double fps = 30.0,
                    std::uint64_t seed = 3);

    img::Imagef frame(std::int64_t index) const override;
    int width() const override { return width_; }
    int height() const override { return height_; }
    double fps() const override { return fps_; }
    std::string name() const override { return "slideshow"; }

    int hold_frames() const { return hold_frames_; }

private:
    int width_;
    int height_;
    int hold_frames_;
    double fps_;
    std::uint64_t seed_;
};

// Scrolling text ticker over a flat background: thin high-contrast glyph
// strokes moving horizontally — text is exactly the content a broadcaster
// overlays on live video, and its sharp edges probe the decoder's texture
// rejection.
class Ticker_video final : public Video_source {
public:
    Ticker_video(int width, int height, std::string text, float speed_px_per_frame,
                 double fps = 30.0, float background = 110.0f, float ink = 235.0f);

    img::Imagef frame(std::int64_t index) const override;
    int width() const override { return width_; }
    int height() const override { return height_; }
    double fps() const override { return fps_; }
    std::string name() const override { return "ticker"; }

private:
    int width_;
    int height_;
    std::string text_;
    float speed_;
    double fps_;
    float background_;
    float ink_;
    int text_width_px_;
};

// Colourizes a grayscale source by mapping luminance through a two-point
// gradient (dark tint -> light tint, both RGB in [0, 255]). Keeps the
// luminance ramp of the wrapped source while producing genuine 3-channel
// frames — e.g. a warm-tinted sunrise for the colour pipeline.
class Tinted_video final : public Video_source {
public:
    struct Tint {
        float r = 0.0f;
        float g = 0.0f;
        float b = 0.0f;
    };

    Tinted_video(std::shared_ptr<const Video_source> inner, Tint dark, Tint light);

    img::Imagef frame(std::int64_t index) const override;
    int width() const override { return inner_->width(); }
    int height() const override { return inner_->height(); }
    double fps() const override { return inner_->fps(); }
    std::string name() const override { return inner_->name() + "-tinted"; }

private:
    std::shared_ptr<const Video_source> inner_;
    Tint dark_;
    Tint light_;
};

// Smooth 2-D value noise in [0, 1]: random lattice values, bilinear
// interpolation with a smoothstep fade. Deterministic in (x, y, seed).
double value_noise(double x, double y, std::uint64_t seed);

// Sum of `octaves` value-noise layers with halving amplitude, in [0, 1].
double fractal_noise(double x, double y, std::uint64_t seed, int octaves);

} // namespace inframe::video
