#include "baseline/barcode.hpp"

#include "imgproc/resize.hpp"
#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe;
using namespace inframe::baseline;
using inframe::img::Imagef;
using inframe::util::Prng;

Barcode_config small_config()
{
    Barcode_config config;
    config.geometry = coding::paper_geometry(480, 270);
    return config;
}

TEST(Barcode, RenderLevels)
{
    const auto config = small_config();
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(config.geometry.block_count()), 0);
    bits[0] = 1;
    const Imagef frame = render_barcode(config, bits);
    const auto rect = config.geometry.block_rect(0, 0);
    EXPECT_FLOAT_EQ(frame(rect.x0, rect.y0), config.white_level);
    const auto rect1 = config.geometry.block_rect(1, 0);
    EXPECT_FLOAT_EQ(frame(rect1.x0, rect1.y0), config.black_level);
}

TEST(Barcode, PristineRoundTrip)
{
    const auto config = small_config();
    Prng prng(1);
    const auto bits = prng.next_bits(static_cast<std::size_t>(config.geometry.block_count()));
    const Imagef frame = render_barcode(config, bits);
    const auto decoded = decode_barcode(config, frame);
    EXPECT_EQ(decoded, bits);
}

TEST(Barcode, SurvivesDownscaledNoisyCapture)
{
    const auto config = small_config();
    Prng prng(2);
    const auto bits = prng.next_bits(static_cast<std::size_t>(config.geometry.block_count()));
    Imagef frame = render_barcode(config, bits);
    // Simulate capture: downscale to 2/3 and add noise.
    Imagef capture = img::resize_area(frame, 320, 180);
    Prng noise(3);
    for (auto& v : capture.values()) v += static_cast<float>(noise.next_gaussian(0.0, 4.0));
    const auto decoded = decode_barcode(config, capture);
    EXPECT_EQ(decoded, bits);
}

TEST(Barcode, RawRateAccounting)
{
    auto config = small_config();
    config.hold_refreshes = 4;
    // 1500 blocks x 30 frames/s = 45 kbps raw: the capacity advantage of
    // an exclusive screen.
    EXPECT_NEAR(config.raw_bit_rate(), 45000.0, 1e-9);
}

TEST(Barcode, EndToEndOverCleanChannel)
{
    auto config = small_config();
    channel::Display_params display;
    display.response_persistence = 0.0;
    display.black_level = 0.0;
    channel::Camera_params camera;
    camera.fps = 30.0;
    camera.sensor_width = 480;
    camera.sensor_height = 270;
    camera.exposure_s = 1.0 / 120.0;
    camera.readout_s = 0.0;
    camera.optical_blur_sigma = 0.0;
    camera.offset_x_px = 0.0;
    camera.offset_y_px = 0.0;
    camera.shot_noise_scale = 0.0;
    camera.read_noise_sigma = 0.0;
    camera.quantize = false;
    const auto result = run_barcode_experiment(config, display, camera, 0.5);
    EXPECT_GT(result.barcode_frames, 5);
    EXPECT_LT(result.block_error_rate, 0.01);
    EXPECT_GT(result.goodput_kbps, 40.0);
}

TEST(Barcode, Validation)
{
    auto config = small_config();
    config.hold_refreshes = 0;
    EXPECT_THROW(config.validate(), inframe::util::Contract_violation);
    config = small_config();
    config.black_level = 240.0f; // above white
    EXPECT_THROW(config.validate(), inframe::util::Contract_violation);
    config = small_config();
    const std::vector<std::uint8_t> wrong(3, 0);
    EXPECT_THROW(render_barcode(config, wrong), inframe::util::Contract_violation);
}

} // namespace
