#include "baseline/naive.hpp"

#include "core/link_runner.hpp"
#include "imgproc/metrics.hpp"
#include "util/contract.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe;
using namespace inframe::baseline;
using inframe::img::Imagef;

coding::Code_geometry geometry()
{
    return coding::paper_geometry(480, 270);
}

TEST(Naive, NormalSchemeIsPassThrough)
{
    Naive_multiplexer mux(Naive_scheme::normal, geometry(), 40.0f);
    const Imagef video(480, 270, 1, 127.0f);
    for (int j = 0; j < 8; ++j) {
        EXPECT_LT(img::mae(mux.frame(video, j), video), 1e-4);
    }
}

TEST(Naive, DataSlotPatternPerScheme)
{
    const Imagef video(480, 270, 1, 127.0f);
    auto altered = [&](Naive_scheme scheme, int slot) {
        Naive_multiplexer mux(scheme, geometry(), 40.0f);
        return img::mae(mux.frame(video, slot), video) > 1.0;
    };
    // (c) V D D D: slots 1..3 are data.
    EXPECT_FALSE(altered(Naive_scheme::v_ddd, 0));
    EXPECT_TRUE(altered(Naive_scheme::v_ddd, 1));
    EXPECT_TRUE(altered(Naive_scheme::v_ddd, 3));
    // (d) V D V D.
    EXPECT_FALSE(altered(Naive_scheme::alternate_vd, 0));
    EXPECT_TRUE(altered(Naive_scheme::alternate_vd, 1));
    EXPECT_FALSE(altered(Naive_scheme::alternate_vd, 2));
    // 2:2.
    EXPECT_FALSE(altered(Naive_scheme::vvdd, 1));
    EXPECT_TRUE(altered(Naive_scheme::vvdd, 2));
    // 3:1.
    EXPECT_FALSE(altered(Naive_scheme::vvvd, 2));
    EXPECT_TRUE(altered(Naive_scheme::vvvd, 3));
}

TEST(Naive, DataFramesAreDistinctPerSlot)
{
    Naive_multiplexer mux(Naive_scheme::v_ddd, geometry(), 40.0f);
    const Imagef video(480, 270, 1, 127.0f);
    const Imagef d1 = mux.frame(video, 1);
    const Imagef d2 = mux.frame(video, 2);
    EXPECT_GT(img::mae(d1, d2), 10.0);
}

TEST(Naive, FramesAreDeterministic)
{
    Naive_multiplexer a(Naive_scheme::v_ddd, geometry(), 40.0f, 7);
    Naive_multiplexer b(Naive_scheme::v_ddd, geometry(), 40.0f, 7);
    const Imagef video(480, 270, 1, 127.0f);
    EXPECT_DOUBLE_EQ(img::mae(a.frame(video, 1), b.frame(video, 1)), 0.0);
}

TEST(Naive, AmplitudeValidation)
{
    EXPECT_THROW(Naive_multiplexer(Naive_scheme::v_ddd, geometry(), 0.0f),
                 inframe::util::Contract_violation);
}

TEST(Naive, NaiveSchemesFlickerWhereInframeDoesNot)
{
    // The Fig. 3 result at test scale: every naive insertion scheme scores
    // clearly worse than both plain playback and InFrame.
    core::Flicker_experiment_config config;
    config.video = video::make_dark_gray_video(480, 270);
    config.inframe = core::paper_config(480, 270);
    config.duration_s = 1.0;
    config.observers = 3;
    config.options.max_sites = 256;

    const auto inframe_score = core::run_flicker_experiment(config).mean_score;

    Naive_multiplexer naive(Naive_scheme::v_ddd, geometry(), 40.0f);
    config.frame_producer = naive.producer();
    const auto naive_score = core::run_flicker_experiment(config).mean_score;

    Naive_multiplexer normal(Naive_scheme::normal, geometry(), 40.0f);
    config.frame_producer = normal.producer();
    const auto normal_score = core::run_flicker_experiment(config).mean_score;

    EXPECT_LT(normal_score, 0.5);
    EXPECT_LT(inframe_score, 1.5);
    EXPECT_GT(naive_score, 2.5);
    EXPECT_GT(naive_score, inframe_score + 1.0);
}

TEST(Naive, SchemeNames)
{
    EXPECT_STREQ(to_string(Naive_scheme::normal), "normal");
    EXPECT_STREQ(to_string(Naive_scheme::v_ddd), "V:D=1:3");
    EXPECT_STREQ(to_string(Naive_scheme::alternate_vd), "V:D=1:1");
    EXPECT_STREQ(to_string(Naive_scheme::vvdd), "V:D=2:2");
    EXPECT_STREQ(to_string(Naive_scheme::vvvd), "V:D=3:1");
}

} // namespace
