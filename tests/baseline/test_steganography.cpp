#include "baseline/steganography.hpp"

#include "channel/link.hpp"
#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe;
using namespace inframe::baseline;
using inframe::img::Imagef;
using inframe::util::Prng;

TEST(Lsb, RoundTripOnDigitalPath)
{
    Prng prng(1);
    Imagef frame(64, 48, 1);
    for (auto& v : frame.values()) v = static_cast<float>(prng.next_double(0, 255));
    const auto bits = prng.next_bits(1000);
    const auto stego = lsb_embed(frame, bits);
    const auto extracted = lsb_extract(stego, bits.size());
    EXPECT_EQ(extracted, bits);
}

TEST(Lsb, EmbeddingIsVisuallyNegligible)
{
    Prng prng(2);
    Imagef frame(64, 48, 1);
    for (auto& v : frame.values()) v = static_cast<float>(prng.next_double(1, 254));
    const auto bits = prng.next_bits(frame.pixel_count());
    const auto stego = lsb_embed(frame, bits);
    const Imagef stego_f = img::to_float(stego);
    // LSB changes a pixel by at most 1 level beyond rounding.
    double max_diff = 0.0;
    for (std::size_t i = 0; i < frame.values().size(); ++i) {
        max_diff = std::max(
            max_diff, std::abs(static_cast<double>(stego_f.values()[i])
                               - std::round(frame.values()[i])));
    }
    EXPECT_LE(max_diff, 1.0);
}

TEST(Lsb, CapacityValidation)
{
    const Imagef frame(8, 8, 1, 100.0f);
    const std::vector<std::uint8_t> too_many(65, 0);
    EXPECT_THROW(lsb_embed(frame, too_many), inframe::util::Contract_violation);
    const auto stego = lsb_embed(frame, std::vector<std::uint8_t>(64, 1));
    EXPECT_THROW(lsb_extract(stego, 65), inframe::util::Contract_violation);
}

TEST(Lsb, CollapsesOverTheScreenCameraChannel)
{
    // The motivating negative result: even a mild camera path randomizes
    // LSBs, so watermark-style embedding cannot serve a screen-camera
    // link.
    Prng prng(3);
    Imagef frame(240, 135, 1);
    for (auto& v : frame.values()) v = static_cast<float>(prng.next_double(40, 215));
    const auto bits = prng.next_bits(frame.pixel_count() / 4);
    const auto stego = lsb_embed(frame, bits);

    channel::Display_params display;
    channel::Camera_params camera;
    camera.fps = 30.0;
    camera.sensor_width = 240;
    camera.sensor_height = 135;
    camera.readout_s = 0.0;
    camera.exposure_s = 1.0 / 120.0;
    const std::vector<Imagef> frames(8, img::to_float(stego));
    const auto captures = channel::run_link(display, camera, frames);
    ASSERT_FALSE(captures.empty());
    const auto received = lsb_extract(captures[0].image, bits.size());
    const double ber = bit_error_rate(bits, received);
    EXPECT_GT(ber, 0.35); // indistinguishable from coin flips
}

TEST(Lsb, BitErrorRateHelper)
{
    const std::vector<std::uint8_t> a = {0, 1, 1, 0};
    const std::vector<std::uint8_t> b = {0, 1, 0, 1};
    EXPECT_DOUBLE_EQ(bit_error_rate(a, b), 0.5);
    EXPECT_THROW(bit_error_rate(a, std::vector<std::uint8_t>(3, 0)),
                 inframe::util::Contract_violation);
}

} // namespace
