#include "channel/camera.hpp"

#include "imgproc/draw.hpp"
#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::channel;
using inframe::img::Imagef;
using inframe::util::Contract_violation;
using inframe::util::Prng;

Camera_params clean_camera(int sw, int sh)
{
    Camera_params params;
    params.sensor_width = sw;
    params.sensor_height = sh;
    params.optical_blur_sigma = 0.0;
    params.offset_x_px = 0.0;
    params.offset_y_px = 0.0;
    params.shot_noise_scale = 0.0;
    params.read_noise_sigma = 0.0;
    params.quantize = false;
    return params;
}

TEST(CameraOptics, DownsamplesToSensorResolution)
{
    const auto params = clean_camera(32, 18);
    Camera_optics optics(params, 64, 36);
    const Imagef sensor = optics.to_sensor(Imagef(64, 36, 1, 99.0f));
    EXPECT_EQ(sensor.width(), 32);
    EXPECT_EQ(sensor.height(), 18);
    for (const float v : sensor.values()) EXPECT_NEAR(v, 99.0f, 1e-3f);
}

TEST(CameraOptics, PreservesMeanThroughResample)
{
    const auto params = clean_camera(40, 24);
    Camera_optics optics(params, 120, 72);
    const Imagef screen = inframe::img::checkerboard(120, 72, 6, 50.0f, 150.0f);
    const Imagef sensor = optics.to_sensor(screen);
    EXPECT_NEAR(inframe::img::mean(sensor), inframe::img::mean(screen), 1.0);
}

TEST(CameraOptics, BlurSoftensEdges)
{
    auto params = clean_camera(64, 36);
    params.optical_blur_sigma = 1.5;
    Camera_optics optics(params, 64, 36);
    Imagef screen(64, 36, 1, 0.0f);
    inframe::img::fill_rect(screen, 32, 0, 32, 36, 200.0f);
    const Imagef sensor = optics.to_sensor(screen);
    // The hard edge becomes a ramp: value at the edge is mid-level.
    EXPECT_GT(sensor(31, 18), 20.0f);
    EXPECT_LT(sensor(31, 18), 180.0f);
}

TEST(CameraOptics, MisalignmentShiftsImage)
{
    auto params = clean_camera(64, 36);
    params.offset_x_px = 3.0;
    Camera_optics optics(params, 64, 36);
    Imagef screen(64, 36, 1, 0.0f);
    inframe::img::fill_rect(screen, 10, 0, 4, 36, 100.0f);
    const Imagef sensor = optics.to_sensor(screen);
    EXPECT_NEAR(sensor(14, 18), 100.0f, 1.0f);
    EXPECT_NEAR(sensor(10, 18), 0.0f, 1.0f);
}

TEST(CameraOptics, RejectsWrongScreenSize)
{
    const auto params = clean_camera(32, 18);
    Camera_optics optics(params, 64, 36);
    EXPECT_THROW(optics.to_sensor(Imagef(60, 36)), Contract_violation);
}

TEST(CameraOptics, ParameterValidation)
{
    auto params = clean_camera(32, 18);
    params.exposure_s = 0.0;
    EXPECT_THROW(Camera_optics(params, 64, 36), Contract_violation);

    params = clean_camera(32, 18);
    params.exposure_s = 0.05; // exceeds 1/30 with readout
    params.readout_s = 0.0;
    EXPECT_THROW(Camera_optics(params, 64, 36), Contract_violation);

    params = clean_camera(32, 18);
    params.readout_s = -0.1;
    EXPECT_THROW(Camera_optics(params, 64, 36), Contract_violation);

    params = clean_camera(0, 18);
    EXPECT_THROW(Camera_optics(params, 64, 36), Contract_violation);

    params = clean_camera(32, 18);
    params.gain = 0.0;
    EXPECT_THROW(Camera_optics(params, 64, 36), Contract_violation);
}

TEST(SensorNoise, CleanConfigurationIsIdentity)
{
    auto params = clean_camera(8, 8);
    Imagef image(8, 8, 1, 77.25f);
    Prng prng(1);
    apply_sensor_noise(image, params, prng);
    for (const float v : image.values()) EXPECT_FLOAT_EQ(v, 77.25f);
}

TEST(SensorNoise, QuantizationRounds)
{
    auto params = clean_camera(8, 8);
    params.quantize = true;
    Imagef image(8, 8, 1, 77.25f);
    Prng prng(1);
    apply_sensor_noise(image, params, prng);
    for (const float v : image.values()) EXPECT_FLOAT_EQ(v, 77.0f);
}

TEST(SensorNoise, ReadNoiseHasConfiguredSpread)
{
    auto params = clean_camera(64, 64);
    params.read_noise_sigma = 3.0;
    params.quantize = false;
    Imagef image(64, 64, 1, 128.0f);
    Prng prng(2);
    apply_sensor_noise(image, params, prng);
    inframe::util::Running_stats stats;
    for (const float v : image.values()) stats.add(v);
    EXPECT_NEAR(stats.mean(), 128.0, 0.5);
    EXPECT_NEAR(stats.stddev(), 3.0, 0.4);
}

TEST(SensorNoise, ShotNoiseGrowsWithLevel)
{
    auto params = clean_camera(64, 64);
    params.shot_noise_scale = 0.5;
    params.quantize = false;
    Imagef dim(64, 64, 1, 20.0f);
    Imagef bright(64, 64, 1, 220.0f);
    Prng prng_a(3);
    Prng prng_b(3);
    apply_sensor_noise(dim, params, prng_a);
    apply_sensor_noise(bright, params, prng_b);
    inframe::util::Running_stats s_dim;
    inframe::util::Running_stats s_bright;
    for (const float v : dim.values()) s_dim.add(v);
    for (const float v : bright.values()) s_bright.add(v);
    EXPECT_GT(s_bright.stddev(), 2.0 * s_dim.stddev());
}

TEST(AutoExpose, BrightSceneGetsReferenceExposure)
{
    const Camera_params metered = auto_expose(Camera_params{}, 180.0);
    EXPECT_NEAR(metered.exposure_s, 1.0 / 480.0, 1e-9);
    EXPECT_DOUBLE_EQ(metered.gain, 1.0);
}

TEST(AutoExpose, DarkerSceneStretchesExposure)
{
    const Camera_params metered = auto_expose(Camera_params{}, 90.0);
    EXPECT_NEAR(metered.exposure_s, 2.0 / 480.0, 1e-9);
    EXPECT_DOUBLE_EQ(metered.gain, 1.0);
}

TEST(AutoExpose, VeryDarkSceneCapsExposureAndRaisesGain)
{
    const Camera_params metered = auto_expose(Camera_params{}, 20.0);
    // Target would be 9x the reference: capped at max_exposure (1/180 s),
    // shortfall becomes gain.
    EXPECT_NEAR(metered.exposure_s, 1.0 / 180.0, 1e-9);
    EXPECT_GT(metered.gain, 2.0);
}

TEST(AutoExpose, ExposureNeverExceedsFrameInterval)
{
    Camera_params params;
    params.fps = 30.0;
    params.readout_s = 0.02; // large skew leaves ~13 ms for exposure
    const Camera_params metered = auto_expose(params, 1.0);
    EXPECT_LE(metered.exposure_s + metered.readout_s, 1.0 / params.fps + 1e-12);
}

TEST(AutoExpose, BrighterThanReferenceDoesNotReduceGain)
{
    const Camera_params metered = auto_expose(Camera_params{}, 250.0);
    EXPECT_GE(metered.gain, 1.0);
    EXPECT_LT(metered.exposure_s, 1.0 / 480.0);
}

TEST(AutoExpose, Validation)
{
    EXPECT_THROW(auto_expose(Camera_params{}, -1.0), Contract_violation);
    EXPECT_THROW(auto_expose(Camera_params{}, 100.0, 0.0), Contract_violation);
}

TEST(SensorNoise, GainScalesAndClamps)
{
    auto params = clean_camera(4, 4);
    params.gain = 2.0;
    Imagef image(4, 4, 1, 150.0f);
    Prng prng(4);
    apply_sensor_noise(image, params, prng);
    for (const float v : image.values()) EXPECT_FLOAT_EQ(v, 255.0f);
}

} // namespace
