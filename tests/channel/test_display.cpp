#include "channel/display.hpp"

#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::channel;
using inframe::img::Imagef;
using inframe::util::Contract_violation;

TEST(Display, IdealPanelPassesFrameThrough)
{
    Display_params params;
    params.response_persistence = 0.0;
    params.black_level = 0.0;
    Display_model display(params);
    const Imagef frame(16, 9, 1, 100.0f);
    const Imagef out = display.emit(frame);
    for (const float v : out.values()) EXPECT_FLOAT_EQ(v, 100.0f);
}

TEST(Display, BrightnessScalesOutput)
{
    Display_params params;
    params.brightness = 0.5;
    params.response_persistence = 0.0;
    params.black_level = 0.0;
    Display_model display(params);
    const Imagef out = display.emit(Imagef(8, 8, 1, 200.0f));
    for (const float v : out.values()) EXPECT_FLOAT_EQ(v, 100.0f);
}

TEST(Display, BlackLevelLeaks)
{
    Display_params params;
    params.response_persistence = 0.0;
    params.black_level = 2.0;
    Display_model display(params);
    const Imagef out = display.emit(Imagef(8, 8, 1, 0.0f));
    for (const float v : out.values()) EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST(Display, PixelResponseBlendsWithPreviousFrame)
{
    Display_params params;
    params.response_persistence = 0.25;
    params.black_level = 0.0;
    Display_model display(params);
    display.emit(Imagef(4, 4, 1, 0.0f));
    const Imagef out = display.emit(Imagef(4, 4, 1, 100.0f));
    // 25% of the old black persists.
    for (const float v : out.values()) EXPECT_FLOAT_EQ(v, 75.0f);
}

TEST(Display, ResponseConvergesOverRefreshes)
{
    Display_params params;
    params.response_persistence = 0.5;
    params.black_level = 0.0;
    Display_model display(params);
    display.emit(Imagef(4, 4, 1, 0.0f));
    Imagef out(4, 4);
    for (int i = 0; i < 12; ++i) out = display.emit(Imagef(4, 4, 1, 100.0f));
    for (const float v : out.values()) EXPECT_NEAR(v, 100.0f, 0.1f);
}

TEST(Display, ResetForgetsHistory)
{
    Display_params params;
    params.response_persistence = 0.5;
    params.black_level = 0.0;
    Display_model display(params);
    display.emit(Imagef(4, 4, 1, 0.0f));
    display.reset();
    const Imagef out = display.emit(Imagef(4, 4, 1, 100.0f));
    for (const float v : out.values()) EXPECT_FLOAT_EQ(v, 100.0f);
}

TEST(Display, OutputIsClampedTo8BitRange)
{
    Display_params params;
    params.response_persistence = 0.0;
    params.black_level = 10.0;
    Display_model display(params);
    const Imagef out = display.emit(Imagef(4, 4, 1, 250.0f));
    for (const float v : out.values()) EXPECT_FLOAT_EQ(v, 255.0f);
}

TEST(Display, ParameterValidation)
{
    Display_params params;
    params.refresh_hz = 0.0;
    EXPECT_THROW(Display_model{params}, Contract_violation);
    params = {};
    params.brightness = 0.0;
    EXPECT_THROW(Display_model{params}, Contract_violation);
    params = {};
    params.response_persistence = 1.0;
    EXPECT_THROW(Display_model{params}, Contract_violation);
    params = {};
    params.black_level = -1.0;
    EXPECT_THROW(Display_model{params}, Contract_violation);
}

TEST(Display, RefreshPeriod)
{
    Display_model display(Display_params{});
    EXPECT_DOUBLE_EQ(display.refresh_period(), 1.0 / 120.0);
}

} // namespace
