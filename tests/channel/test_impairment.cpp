// Fault-injection impairment stages: determinism, statistics, and the
// link integration (drops leave gaps, everything is seed-reproducible).

#include "channel/impairment.hpp"

#include "channel/link.hpp"
#include "imgproc/image_ops.hpp"
#include "imgproc/metrics.hpp"
#include "util/contract.hpp"
#include "util/crc32.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace {

using namespace inframe;
using namespace inframe::channel;

img::Imagef gradient_image(int w = 64, int h = 48)
{
    img::Imagef image(w, h, 1);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) image(x, y) = static_cast<float>((x + 2 * y) % 200);
    }
    return image;
}

std::uint32_t image_crc(const img::Imagef& image)
{
    const auto values = image.values();
    return util::crc32({reinterpret_cast<const std::uint8_t*>(values.data()),
                        values.size() * sizeof(float)});
}

TEST(Impairment, DrawSeedIsPureFunction)
{
    const auto a = impairment_draw_seed(1, 2, 3);
    EXPECT_EQ(a, impairment_draw_seed(1, 2, 3));
    EXPECT_NE(a, impairment_draw_seed(1, 2, 4));
    EXPECT_NE(a, impairment_draw_seed(1, 3, 3));
    EXPECT_NE(a, impairment_draw_seed(2, 2, 3));
}

TEST(Impairment, EmptyConfigBuildsEmptyChain)
{
    EXPECT_FALSE(Impairment_config{}.any());
    EXPECT_TRUE(make_impairment_chain(Impairment_config{}).empty());
}

TEST(Impairment, ConfigValidationRejectsBadProbabilities)
{
    Impairment_config config;
    config.drop_probability = 1.5;
    EXPECT_THROW(make_impairment_chain(config), util::Contract_violation);
    config = {};
    config.occlusion_fraction = 1.0;
    EXPECT_THROW(make_impairment_chain(config), util::Contract_violation);
}

TEST(Impairment, TimingDropsAllAtProbabilityOne)
{
    Timing_impairment timing(7, 1.0, 0.0);
    auto image = gradient_image();
    for (int k = 0; k < 20; ++k) {
        EXPECT_EQ(timing.apply(image, k), Capture_fate::dropped);
    }
}

TEST(Impairment, TimingDropRateIsRoughlyNominal)
{
    Timing_impairment timing(7, 0.3, 0.0);
    auto image = gradient_image(8, 8);
    int dropped = 0;
    const int n = 2000;
    for (int k = 0; k < n; ++k) {
        if (timing.apply(image, k) == Capture_fate::dropped) ++dropped;
    }
    EXPECT_NEAR(static_cast<double>(dropped) / n, 0.3, 0.05);
}

TEST(Impairment, DuplicationDeliversStaleFrame)
{
    Timing_impairment timing(7, 0.0, 1.0);
    auto first = gradient_image();
    const auto first_crc = image_crc(first);
    ASSERT_EQ(timing.apply(first, 0), Capture_fate::delivered); // nothing to duplicate yet
    EXPECT_EQ(image_crc(first), first_crc);

    img::Imagef second(first.width(), first.height(), 1, 99.0f);
    ASSERT_EQ(timing.apply(second, 1), Capture_fate::delivered);
    // Every later capture repeats the first delivered frame.
    EXPECT_EQ(image_crc(second), first_crc);
}

TEST(Impairment, ExposureDriftScalesMeanAndIsDeterministic)
{
    Exposure_drift_impairment drift(0.2, 8.0, 0.0);
    // Peak of the sine: k = period / 4.
    EXPECT_NEAR(drift.gain_at(2), 1.2, 1e-12);
    auto image = gradient_image();
    const double before = img::mean(image);
    ASSERT_EQ(drift.apply(image, 2), Capture_fate::delivered);
    EXPECT_NEAR(img::mean(image), before * 1.2, 0.5);

    // Same capture index, same transform.
    auto again = gradient_image();
    Exposure_drift_impairment drift2(0.2, 8.0, 0.0);
    ASSERT_EQ(drift2.apply(again, 2), Capture_fate::delivered);
    EXPECT_EQ(image_crc(again), image_crc(image));
}

TEST(Impairment, ShakeTranslatesImage)
{
    Shake_impairment shake(11, 1.5, 6.0);
    double dx = 0.0;
    double dy = 0.0;
    shake.jitter_at(0, dx, dy);
    EXPECT_LE(std::abs(dx), 6.0);
    EXPECT_LE(std::abs(dy), 6.0);

    auto image = gradient_image();
    const auto original = gradient_image();
    ASSERT_EQ(shake.apply(image, 0), Capture_fate::delivered);
    if (dx != 0.0 || dy != 0.0) {
        EXPECT_GT(img::mae(image, original), 0.0);
    }
}

TEST(Impairment, TearShiftsRowsBelowSeamOnly)
{
    Tear_impairment tear(13, 1.0, 4.0);
    auto image = gradient_image();
    const auto original = gradient_image();
    const int seam = tear.tear_row_at(0, image.height());
    ASSERT_GE(seam, 0);
    ASSERT_EQ(tear.apply(image, 0), Capture_fate::delivered);
    for (int y = 0; y < seam; ++y) {
        EXPECT_EQ(0, std::memcmp(image.row(y).data(), original.row(y).data(),
                                 image.row(y).size() * sizeof(float)))
            << "row " << y << " above the seam must be untouched";
    }
    // Below the seam: shifted copy (spot-check one interior row).
    const int y = seam;
    for (int x = 8; x < image.width(); ++x) {
        EXPECT_EQ(image(x, y), original(x - 4, y)) << "x " << x;
    }
}

TEST(Impairment, OcclusionCoversRequestedFraction)
{
    Impairment_config config;
    config.occlusion_fraction = 0.2;
    config.occlusion_count = 2;
    config.occlusion_level = 3.0f;
    auto chain = make_impairment_chain(config);
    img::Imagef image(200, 150, 1, 128.0f);
    ASSERT_EQ(chain.apply(image, 0), Capture_fate::delivered);
    std::size_t covered = 0;
    for (const auto v : image.values()) covered += v == 3.0f;
    const double fraction = static_cast<double>(covered) / image.pixel_count();
    // Rectangles can clip at the border or overlap; allow slack below,
    // (almost) none above — they can never exceed their combined area.
    EXPECT_GT(fraction, 0.04);
    EXPECT_LE(fraction, 0.21);
}

TEST(Impairment, ChainIsBitDeterministicAcrossRunsAndThreadCounts)
{
    Impairment_config config;
    config.drop_probability = 0.15;
    config.duplicate_probability = 0.1;
    config.gain_drift_amplitude = 0.1;
    config.shake_sigma_px = 0.8;
    config.tear_probability = 0.5;
    config.occlusion_fraction = 0.1;

    const auto run = [&](int threads) {
        const util::Parallel_scope scope(threads);
        auto chain = make_impairment_chain(config);
        std::vector<std::uint32_t> crcs;
        for (int k = 0; k < 24; ++k) {
            auto image = gradient_image(96, 72);
            if (chain.apply(image, k) == Capture_fate::delivered) {
                crcs.push_back(image_crc(image));
            } else {
                crcs.push_back(0);
            }
        }
        return crcs;
    };

    const auto serial = run(1);
    EXPECT_EQ(serial, run(1)) << "same seed, same stream";
    EXPECT_EQ(serial, run(4)) << "thread count must not change the impaired stream";
}

TEST(Impairment, LinkDropsCapturesAndCounts)
{
    Display_params display;
    Camera_params camera;
    camera.sensor_width = 64;
    camera.sensor_height = 48;
    camera.shot_noise_scale = 0.0;
    camera.read_noise_sigma = 0.0;
    camera.quantize = false;

    Impairment_config config;
    config.drop_probability = 1.0;

    Screen_camera_link link(display, camera, 64, 48, config);
    const img::Imagef frame(64, 48, 1, 100.0f);
    int delivered = 0;
    for (int j = 0; j < 48; ++j) delivered += static_cast<int>(link.push_display_frame(frame).size());
    EXPECT_EQ(delivered, 0);
    EXPECT_GT(link.captures_dropped(), 0);
}

TEST(Impairment, LinkWithEmptyConfigMatchesPlainLink)
{
    Display_params display;
    Camera_params camera;
    camera.sensor_width = 64;
    camera.sensor_height = 48;

    const img::Imagef frame(64, 48, 1, 100.0f);
    Screen_camera_link plain(display, camera, 64, 48);
    Screen_camera_link impaired(display, camera, 64, 48, Impairment_config{});
    for (int j = 0; j < 24; ++j) {
        auto a = plain.push_display_frame(frame);
        auto b = impaired.push_display_frame(frame);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(image_crc(a[i].image), image_crc(b[i].image));
        }
    }
}

} // namespace
