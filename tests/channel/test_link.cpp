#include "channel/link.hpp"

#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace inframe::channel;
using inframe::img::Imagef;

constexpr int screen_w = 48;
constexpr int screen_h = 27;

Display_params ideal_display()
{
    Display_params d;
    d.response_persistence = 0.0;
    d.black_level = 0.0;
    return d;
}

Camera_params ideal_camera()
{
    Camera_params c;
    c.fps = 30.0; // locked to the display for deterministic timing tests
    c.sensor_width = 24;
    c.sensor_height = 12;
    c.exposure_s = 1.0 / 120.0;
    c.readout_s = 0.0;
    c.optical_blur_sigma = 0.0;
    c.offset_x_px = 0.0;
    c.offset_y_px = 0.0;
    c.shot_noise_scale = 0.0;
    c.read_noise_sigma = 0.0;
    c.quantize = false;
    return c;
}

std::vector<Imagef> solid_frames(int count, float level)
{
    return std::vector<Imagef>(static_cast<std::size_t>(count),
                               Imagef(screen_w, screen_h, 1, level));
}

TEST(Link, CaptureRateIsCameraFps)
{
    // 120 display frames = 1 second -> 30 captures (the 30th completes
    // exactly at t = 29/30 + exposure < 1 s).
    const auto captures = run_link(ideal_display(), ideal_camera(), solid_frames(120, 100.0f));
    EXPECT_EQ(captures.size(), 30u);
    for (std::size_t k = 0; k < captures.size(); ++k) {
        EXPECT_EQ(captures[k].index, static_cast<std::int64_t>(k));
        EXPECT_NEAR(captures[k].start_time, static_cast<double>(k) / 30.0, 1e-12);
    }
}

TEST(Link, AlignedShortExposureSamplesOneDisplayFrame)
{
    // Phase-aligned 1/120 s exposure: capture k sees exactly display frame
    // 4k. Mark each display frame with its index as a level.
    std::vector<Imagef> frames;
    for (int i = 0; i < 48; ++i) frames.emplace_back(screen_w, screen_h, 1, static_cast<float>(i));
    const auto captures = run_link(ideal_display(), ideal_camera(), frames);
    ASSERT_GE(captures.size(), 3u);
    for (std::size_t k = 0; k < captures.size(); ++k) {
        const double expected = static_cast<double>(4 * k);
        EXPECT_NEAR(inframe::img::mean(captures[k].image), expected, 1e-3);
    }
}

TEST(Link, TwoFrameExposureAveragesComplementaryPair)
{
    // Exposure spanning a +D/-D pair cancels the data: the integrated
    // level is the plain video level. This is why InFrame needs a short
    // exposure (3.2, rolling shutter discussion).
    auto camera = ideal_camera();
    camera.exposure_s = 2.0 / 120.0;
    std::vector<Imagef> frames;
    for (int i = 0; i < 24; ++i) {
        const float level = 127.0f + (i % 2 == 0 ? 20.0f : -20.0f);
        frames.emplace_back(screen_w, screen_h, 1, level);
    }
    const auto captures = run_link(ideal_display(), camera, frames);
    ASSERT_GE(captures.size(), 2u);
    for (const auto& capture : captures) {
        EXPECT_NEAR(inframe::img::mean(capture.image), 127.0, 1e-3);
    }
}

TEST(Link, ShortExposureKeepsComplementaryAmplitude)
{
    auto camera = ideal_camera();
    std::vector<Imagef> frames;
    for (int i = 0; i < 24; ++i) {
        const float level = 127.0f + (i % 2 == 0 ? 20.0f : -20.0f);
        frames.emplace_back(screen_w, screen_h, 1, level);
    }
    const auto captures = run_link(ideal_display(), camera, frames);
    ASSERT_GE(captures.size(), 1u);
    EXPECT_NEAR(inframe::img::mean(captures[0].image), 147.0, 1e-3);
}

TEST(Link, RollingShutterMixesFramesAcrossRows)
{
    // Display alternates black/white every refresh; readout skew of one
    // refresh period makes top rows see a different frame mix than bottom
    // rows -> strong vertical gradient/banding inside a single capture.
    auto camera = ideal_camera();
    camera.sensor_height = 24;
    camera.readout_s = 1.0 / 120.0;
    std::vector<Imagef> frames;
    for (int i = 0; i < 24; ++i) {
        frames.emplace_back(screen_w, screen_h, 1, i % 2 == 0 ? 0.0f : 200.0f);
    }
    const auto captures = run_link(ideal_display(), camera, frames);
    ASSERT_GE(captures.size(), 1u);
    const auto& image = captures[0].image;
    const double top = inframe::img::mean_region(image, 0, 0, image.width(), 2);
    const double bottom =
        inframe::img::mean_region(image, 0, image.height() - 2, image.width(), 2);
    EXPECT_GT(std::abs(top - bottom), 100.0);
}

TEST(Link, GlobalShutterHasNoBanding)
{
    auto camera = ideal_camera();
    camera.sensor_height = 24;
    camera.readout_s = 0.0;
    std::vector<Imagef> frames;
    for (int i = 0; i < 24; ++i) {
        frames.emplace_back(screen_w, screen_h, 1, i % 2 == 0 ? 0.0f : 200.0f);
    }
    const auto captures = run_link(ideal_display(), camera, frames);
    ASSERT_GE(captures.size(), 1u);
    const auto& image = captures[0].image;
    const double top = inframe::img::mean_region(image, 0, 0, image.width(), 2);
    const double bottom =
        inframe::img::mean_region(image, 0, image.height() - 2, image.width(), 2);
    EXPECT_NEAR(top, bottom, 1e-3);
}

TEST(Link, PhaseOffsetShiftsCaptureTimes)
{
    auto camera = ideal_camera();
    camera.phase_offset_s = 0.01;
    const auto captures = run_link(ideal_display(), camera, solid_frames(120, 50.0f));
    ASSERT_GE(captures.size(), 1u);
    EXPECT_NEAR(captures[0].start_time, 0.01, 1e-12);
}

TEST(Link, MisalignedPhaseBlendsAdjacentFrames)
{
    // Exposure starting halfway into a display frame sees half of each
    // neighbour.
    auto camera = ideal_camera();
    camera.phase_offset_s = 0.5 / 120.0;
    std::vector<Imagef> frames;
    for (int i = 0; i < 12; ++i) frames.emplace_back(screen_w, screen_h, 1, static_cast<float>(10 * i));
    const auto captures = run_link(ideal_display(), camera, frames);
    ASSERT_GE(captures.size(), 1u);
    EXPECT_NEAR(inframe::img::mean(captures[0].image), 5.0, 1e-3);
}

TEST(Link, NoiseIsDeterministicPerSeed)
{
    auto camera = ideal_camera();
    camera.read_noise_sigma = 2.0;
    camera.seed = 555;
    const auto a = run_link(ideal_display(), camera, solid_frames(24, 100.0f));
    const auto b = run_link(ideal_display(), camera, solid_frames(24, 100.0f));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
        const auto va = a[k].image.values();
        const auto vb = b[k].image.values();
        for (std::size_t i = 0; i < va.size(); ++i) EXPECT_EQ(va[i], vb[i]);
    }
}

TEST(Link, StreamingMatchesBatch)
{
    auto camera = ideal_camera();
    Screen_camera_link link(ideal_display(), camera, screen_w, screen_h);
    std::vector<Capture> streamed;
    const auto frames = solid_frames(60, 80.0f);
    for (const auto& frame : frames) {
        for (auto& c : link.push_display_frame(frame)) streamed.push_back(std::move(c));
    }
    const auto batch = run_link(ideal_display(), camera, frames);
    ASSERT_EQ(streamed.size(), batch.size());
    for (std::size_t k = 0; k < batch.size(); ++k) {
        EXPECT_EQ(streamed[k].index, batch[k].index);
        EXPECT_DOUBLE_EQ(inframe::img::mean(streamed[k].image),
                         inframe::img::mean(batch[k].image));
    }
}

TEST(Link, EmptySequenceRejected)
{
    EXPECT_THROW(run_link(ideal_display(), ideal_camera(), {}),
                 inframe::util::Contract_violation);
}

} // namespace
