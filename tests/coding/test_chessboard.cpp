#include "coding/chessboard.hpp"

#include "imgproc/filter.hpp"
#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::coding;
using inframe::img::Imagef;
using inframe::util::Contract_violation;

Code_geometry small_geometry()
{
    // 4 x 2 blocks of 3x3 Pixels at p = 2 on a 28x16 screen (24x12 active).
    Code_geometry g;
    g.screen_width = 28;
    g.screen_height = 16;
    g.pixel_size = 2;
    g.block_pixels = 3;
    g.gob_size = 2;
    g.blocks_x = 4;
    g.blocks_y = 2;
    g.validate();
    return g;
}

TEST(Chessboard, ZeroBitsRenderNothing)
{
    const auto g = small_geometry();
    const std::vector<std::uint8_t> bits(static_cast<std::size_t>(g.block_count()), 0);
    const Imagef frame = render_data_frame(g, bits, 20.0f);
    for (const float v : frame.values()) EXPECT_EQ(v, 0.0f);
}

TEST(Chessboard, OneBitsRaiseOddPixelsOnly)
{
    const auto g = small_geometry();
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(g.block_count()), 0);
    bits[0] = 1;
    const Imagef frame = render_data_frame(g, bits, 20.0f);
    const auto rect = g.block_rect(0, 0);
    // Pixel (0,0) of the block: i+j even -> 0.
    EXPECT_EQ(frame(rect.x0, rect.y0), 0.0f);
    // Pixel (1,0): i+j odd -> delta, and the whole 2x2 Element area shares it.
    EXPECT_EQ(frame(rect.x0 + 2, rect.y0), 20.0f);
    EXPECT_EQ(frame(rect.x0 + 3, rect.y0 + 1), 20.0f);
    // Pixel (1,1): even again.
    EXPECT_EQ(frame(rect.x0 + 2, rect.y0 + 2), 0.0f);
}

TEST(Chessboard, PatternConfinedToItsBlock)
{
    const auto g = small_geometry();
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(g.block_count()), 0);
    bits[static_cast<std::size_t>(g.block_index(1, 0))] = 1;
    const Imagef frame = render_data_frame(g, bits, 20.0f);
    const auto rect0 = g.block_rect(0, 0);
    for (int y = rect0.y0; y < rect0.y0 + rect0.size; ++y) {
        for (int x = rect0.x0; x < rect0.x0 + rect0.size; ++x) {
            EXPECT_EQ(frame(x, y), 0.0f);
        }
    }
}

TEST(Chessboard, BlockMeanIsNearHalfDelta)
{
    const auto g = small_geometry();
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(g.block_count()), 1);
    const Imagef frame = render_data_frame(g, bits, 20.0f);
    const auto rect = g.block_rect(2, 1);
    const double m = inframe::img::mean_region(frame, rect.x0, rect.y0, rect.size, rect.size);
    // 3x3 Pixels: 4 of 9 odd -> mean = delta * 4/9.
    EXPECT_NEAR(m, 20.0 * 4.0 / 9.0, 1e-4);
    EXPECT_NEAR(chessboard_block_mean(20.0f), 10.0f, 1e-4f);
}

TEST(Chessboard, SmoothingRemovesThePattern)
{
    // The decoder's premise: box blur at the Pixel scale flattens the
    // chessboard, leaving a large |original - smoothed| residual.
    const auto g = small_geometry();
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(g.block_count()), 1);
    const Imagef frame = render_data_frame(g, bits, 20.0f);
    const Imagef smoothed = inframe::img::box_blur(frame, g.pixel_size);
    const auto rect = g.block_rect(1, 1);
    const Imagef diff = inframe::img::abs_diff(frame, smoothed);
    const double residual =
        inframe::img::mean_region(diff, rect.x0, rect.y0, rect.size, rect.size);
    EXPECT_GT(residual, 5.0);
}

TEST(Chessboard, BitCountValidation)
{
    const auto g = small_geometry();
    const std::vector<std::uint8_t> wrong(3, 0);
    EXPECT_THROW(render_data_frame(g, wrong, 20.0f), Contract_violation);
}

TEST(Chessboard, AddBlockRequiresMatchingFrame)
{
    const auto g = small_geometry();
    Imagef wrong(10, 10, 1, 0.0f);
    EXPECT_THROW(add_chessboard_block(wrong, g, 0, 0, 20.0f), Contract_violation);
}

TEST(Chessboard, AccumulatesOnExistingContent)
{
    const auto g = small_geometry();
    Imagef frame(g.screen_width, g.screen_height, 1, 100.0f);
    add_chessboard_block(frame, g, 0, 0, 15.0f);
    const auto rect = g.block_rect(0, 0);
    EXPECT_EQ(frame(rect.x0, rect.y0), 100.0f);
    EXPECT_EQ(frame(rect.x0 + 2, rect.y0), 115.0f);
}

TEST(Chessboard, NegativeDeltaSubtracts)
{
    const auto g = small_geometry();
    Imagef frame(g.screen_width, g.screen_height, 1, 100.0f);
    add_chessboard_block(frame, g, 0, 0, -15.0f);
    EXPECT_EQ(frame(g.block_rect(0, 0).x0 + 2, g.block_rect(0, 0).y0), 85.0f);
}

} // namespace
