// Erasure-aware decoding properties: RS errors-and-erasures capability
// (2e + s <= n - k) and GOB parity erasure fill (one unknown block per
// GOB is reconstructed from the XOR parity equation).

#include "coding/geometry.hpp"
#include "coding/parity.hpp"
#include "coding/reed_solomon.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace {

using namespace inframe;
using namespace inframe::coding;

std::vector<std::uint8_t> random_symbols(util::Prng& prng, int count)
{
    std::vector<std::uint8_t> data(static_cast<std::size_t>(count));
    for (auto& symbol : data) symbol = static_cast<std::uint8_t>(prng.next_below(256));
    return data;
}

// Picks `count` distinct positions in [0, n).
std::vector<int> distinct_positions(util::Prng& prng, int count, int n)
{
    std::vector<int> all(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
    for (int i = 0; i < count; ++i) {
        const int j = i + static_cast<int>(prng.next_below(static_cast<std::uint64_t>(n - i)));
        std::swap(all[static_cast<std::size_t>(i)], all[static_cast<std::size_t>(j)]);
    }
    all.resize(static_cast<std::size_t>(count));
    return all;
}

TEST(RsErasures, FullErasureBudgetCorrects)
{
    // s = n - k erasures, zero errors: double the plain-error capability.
    const Reed_solomon code(32, 24);
    util::Prng prng(0xe5a5u);
    const auto data = random_symbols(prng, code.k());
    auto received = code.encode(data);

    const auto positions = distinct_positions(prng, code.parity_symbols(), code.n());
    for (const int pos : positions) received[static_cast<std::size_t>(pos)] ^= 0x5a;

    const auto decoded = code.decode_with_erasures(received, positions);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->data, data);
    EXPECT_EQ(decoded->corrected_errors, 0);
    // Erasures whose symbol was actually corrupted.
    EXPECT_GT(decoded->corrected_erasures, 0);
}

TEST(RsErasures, TooManyErasuresRejected)
{
    const Reed_solomon code(32, 24);
    util::Prng prng(0xe5a6u);
    const auto data = random_symbols(prng, code.k());
    const auto received = code.encode(data);
    const auto positions = distinct_positions(prng, code.parity_symbols() + 1, code.n());
    EXPECT_FALSE(code.decode_with_erasures(received, positions).has_value());
}

TEST(RsErasures, MixedErrorsAndErasuresWithinBound)
{
    // Property over random draws: any (e, s) with 2e + s <= n - k decodes
    // back to the transmitted data.
    const Reed_solomon code(48, 32);
    util::Prng prng(0xbeefu);
    for (int trial = 0; trial < 200; ++trial) {
        const auto data = random_symbols(prng, code.k());
        auto received = code.encode(data);

        const int budget = code.parity_symbols();
        const int errors = static_cast<int>(prng.next_below(
            static_cast<std::uint64_t>(budget / 2 + 1)));
        const int erasures = static_cast<int>(prng.next_below(
            static_cast<std::uint64_t>(budget - 2 * errors + 1)));

        const auto positions = distinct_positions(prng, errors + erasures, code.n());
        for (int i = 0; i < errors + erasures; ++i) {
            // Errors must actually differ; erased symbols may or may not.
            const auto pos = static_cast<std::size_t>(positions[static_cast<std::size_t>(i)]);
            if (i < errors) {
                received[pos] ^= static_cast<std::uint8_t>(1 + prng.next_below(255));
            } else if (prng.next_double() < 0.7) {
                received[pos] = static_cast<std::uint8_t>(prng.next_below(256));
            }
        }
        const std::vector<int> erased(positions.begin() + errors, positions.end());

        const auto decoded = code.decode_with_erasures(received, erased);
        ASSERT_TRUE(decoded.has_value())
            << "trial " << trial << ": e=" << errors << " s=" << erasures;
        EXPECT_EQ(decoded->data, data) << "trial " << trial;
    }
}

TEST(RsErasures, ErasuresDoubleTheCorrectionPower)
{
    // An error pattern of n - k corrupted symbols defeats plain decoding
    // (e > (n-k)/2) but is fully handled once every position is declared.
    const Reed_solomon code(20, 12);
    util::Prng prng(0x1234u);
    const auto data = random_symbols(prng, code.k());
    auto received = code.encode(data);
    const auto positions = distinct_positions(prng, code.parity_symbols(), code.n());
    for (const int pos : positions) received[static_cast<std::size_t>(pos)] ^= 0x77;

    const auto plain = code.decode(received);
    const bool plain_correct = plain.has_value() && plain->data == data;
    EXPECT_FALSE(plain_correct) << "8 errors must defeat a 4-error code";

    const auto with_erasures = code.decode_with_erasures(received, positions);
    ASSERT_TRUE(with_erasures.has_value());
    EXPECT_EQ(with_erasures->data, data);
}

// --- GOB parity erasure fill ------------------------------------------

Code_geometry small_geometry()
{
    // 4x4 blocks of 2x2 GOBs -> 4 GOBs, 3 payload bits each.
    Code_geometry geometry;
    geometry.screen_width = 64;
    geometry.screen_height = 64;
    geometry.pixel_size = 2;
    geometry.block_pixels = 8;
    geometry.blocks_x = 4;
    geometry.blocks_y = 4;
    geometry.gob_size = 2;
    geometry.validate();
    return geometry;
}

std::vector<Block_decision> to_decisions(std::span<const std::uint8_t> block_bits)
{
    std::vector<Block_decision> decisions(block_bits.size());
    std::transform(block_bits.begin(), block_bits.end(), decisions.begin(),
                   [](std::uint8_t bit) {
                       return bit ? Block_decision::one : Block_decision::zero;
                   });
    return decisions;
}

TEST(ParityErasureFill, SingleErasedBlockIsReconstructed)
{
    const auto geometry = small_geometry();
    util::Prng prng(0xabcdu);
    const auto payload =
        prng.next_bits(static_cast<std::size_t>(geometry.payload_bits_per_frame()));
    const auto block_bits = encode_gob_parity(geometry, payload);

    // Erase one data block in every GOB (the top-left block).
    auto decisions = to_decisions(block_bits);
    const int m = geometry.gob_size;
    for (int gy = 0; gy < geometry.gobs_y(); ++gy) {
        for (int gx = 0; gx < geometry.gobs_x(); ++gx) {
            decisions[static_cast<std::size_t>(geometry.block_index(gx * m, gy * m))] =
                Block_decision::unknown;
        }
    }

    const auto hard = decode_gob_parity(geometry, decisions, 0, false);
    EXPECT_EQ(hard.available_ratio, 0.0) << "hard decisions cannot use a half-known GOB";
    EXPECT_EQ(hard.recovered_gobs, 0u);

    const auto soft = decode_gob_parity(geometry, decisions, 0, true);
    EXPECT_EQ(soft.available_ratio, 1.0);
    EXPECT_EQ(soft.recovered_gobs, static_cast<std::size_t>(geometry.gob_count()));
    ASSERT_EQ(soft.payload_bits.size(), payload.size());
    EXPECT_EQ(soft.payload_bits, payload) << "XOR fill must reproduce the erased bits exactly";
    for (const auto& gob : soft.gobs) {
        EXPECT_TRUE(gob.available);
        EXPECT_TRUE(gob.parity_ok);
        EXPECT_TRUE(gob.recovered);
    }
    EXPECT_TRUE(std::all_of(soft.payload_bit_trusted.begin(), soft.payload_bit_trusted.end(),
                            [](std::uint8_t t) { return t == 1; }));
}

TEST(ParityErasureFill, ErasedParityBlockLeavesPayloadIntact)
{
    const auto geometry = small_geometry();
    util::Prng prng(0x7777u);
    const auto payload =
        prng.next_bits(static_cast<std::size_t>(geometry.payload_bits_per_frame()));
    auto decisions = to_decisions(encode_gob_parity(geometry, payload));

    // Erase the parity (bottom-right) block of GOB (0, 0) only.
    const int m = geometry.gob_size;
    decisions[static_cast<std::size_t>(geometry.block_index(m - 1, m - 1))] =
        Block_decision::unknown;

    const auto soft = decode_gob_parity(geometry, decisions, 0, true);
    EXPECT_EQ(soft.recovered_gobs, 1u);
    EXPECT_EQ(soft.payload_bits, payload)
        << "losing the parity block loses the check, not the payload";
    EXPECT_TRUE(soft.gobs.front().recovered);
}

TEST(ParityErasureFill, TwoErasuresStayUnavailable)
{
    const auto geometry = small_geometry();
    util::Prng prng(0x2222u);
    const auto payload =
        prng.next_bits(static_cast<std::size_t>(geometry.payload_bits_per_frame()));
    auto decisions = to_decisions(encode_gob_parity(geometry, payload));

    decisions[static_cast<std::size_t>(geometry.block_index(0, 0))] = Block_decision::unknown;
    decisions[static_cast<std::size_t>(geometry.block_index(1, 0))] = Block_decision::unknown;

    const auto soft = decode_gob_parity(geometry, decisions, 0, true);
    EXPECT_EQ(soft.recovered_gobs, 0u);
    EXPECT_FALSE(soft.gobs.front().available)
        << "one parity equation cannot fill two erasures";
    // The other three GOBs are untouched and still decode.
    EXPECT_NEAR(soft.available_ratio, 3.0 / 4.0, 1e-12);
}

TEST(ParityErasureFill, ErasureFillCatchesWhatHardDecisionMisreads)
{
    // The motivating scenario: an occluded block read as a *confident
    // wrong* bit defeats parity (detected, GOB lost); the same block
    // flagged as an erasure is reconstructed. Property over random
    // payloads and positions.
    const auto geometry = small_geometry();
    util::Prng prng(0x9999u);
    for (int trial = 0; trial < 100; ++trial) {
        const auto payload =
            prng.next_bits(static_cast<std::size_t>(geometry.payload_bits_per_frame()));
        const auto block_bits = encode_gob_parity(geometry, payload);

        const auto victim =
            static_cast<std::size_t>(prng.next_below(block_bits.size()));

        auto wrong = to_decisions(block_bits);
        wrong[victim] = block_bits[victim] ? Block_decision::zero : Block_decision::one;
        const auto hard = decode_gob_parity(geometry, wrong, 0, true);
        EXPECT_EQ(hard.good_payload_bits,
                  static_cast<std::size_t>(3 * geometry.payload_bits_per_gob()))
            << "flipped block must fail its GOB's parity check";

        auto erased = to_decisions(block_bits);
        erased[victim] = Block_decision::unknown;
        const auto soft = decode_gob_parity(geometry, erased, 0, true);
        EXPECT_EQ(soft.payload_bits, payload) << "trial " << trial;
        EXPECT_EQ(soft.recovered_gobs, 1u);
    }
}

} // namespace
