#include "coding/framing.hpp"

#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using namespace inframe::coding;
using inframe::util::Contract_violation;
using inframe::util::Prng;

std::vector<std::uint8_t> bytes_of(const std::string& s)
{
    return {s.begin(), s.end()};
}

TEST(Framer, RoundTrip)
{
    const Payload_framer framer(1125);
    const auto payload = bytes_of("coupon: SUNRISE-20-OFF");
    const auto bits = framer.build(7, payload);
    ASSERT_EQ(bits.size(), 1125u);
    const auto parsed = framer.parse(bits);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->sequence, 7u);
    EXPECT_EQ(parsed->payload, payload);
}

TEST(Framer, CapacityAccounting)
{
    const Payload_framer framer(1125);
    EXPECT_EQ(framer.max_payload_bytes(), (1125 - 96) / 8);
    const std::vector<std::uint8_t> too_big(
        static_cast<std::size_t>(framer.max_payload_bytes()) + 1, 0);
    EXPECT_THROW(framer.build(0, too_big), Contract_violation);
}

TEST(Framer, EmptyPayload)
{
    const Payload_framer framer(500);
    const auto bits = framer.build(3, {});
    const auto parsed = framer.parse(bits);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->payload.empty());
}

TEST(Framer, CorruptedHeaderRejected)
{
    const Payload_framer framer(1125);
    auto bits = framer.build(1, bytes_of("payload"));
    bits[0] ^= 1; // magic bit
    EXPECT_FALSE(framer.parse(bits).has_value());
}

TEST(Framer, CorruptedPayloadRejectedByCrc)
{
    const Payload_framer framer(1125);
    auto bits = framer.build(1, bytes_of("payload"));
    bits[100] ^= 1; // inside payload bytes
    EXPECT_FALSE(framer.parse(bits).has_value());
}

TEST(Framer, WrongSizeRejected)
{
    const Payload_framer framer(1125);
    const std::vector<std::uint8_t> short_bits(1000, 0);
    EXPECT_FALSE(framer.parse(short_bits).has_value());
}

TEST(Framer, FillerIsDeterministicPerSequence)
{
    const Payload_framer framer(1125);
    const auto a = framer.build(9, bytes_of("x"));
    const auto b = framer.build(9, bytes_of("x"));
    EXPECT_EQ(a, b);
    const auto c = framer.build(10, bytes_of("x"));
    EXPECT_NE(a, c);
}

TEST(Framer, TooSmallCapacityRejected)
{
    EXPECT_THROW(Payload_framer(96), Contract_violation);
}

TEST(ChunkMessage, SplitsAndPreservesOrder)
{
    const auto message = bytes_of("abcdefghij");
    const auto chunks = chunk_message(message, 4);
    ASSERT_EQ(chunks.size(), 3u);
    EXPECT_EQ(chunks[0], bytes_of("abcd"));
    EXPECT_EQ(chunks[1], bytes_of("efgh"));
    EXPECT_EQ(chunks[2], bytes_of("ij"));
}

TEST(ChunkMessage, EmptyMessageYieldsOneEmptyChunk)
{
    const auto chunks = chunk_message({}, 4);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_TRUE(chunks[0].empty());
}

TEST(ChunkMessage, Validation)
{
    EXPECT_THROW(chunk_message(bytes_of("x"), 0), Contract_violation);
}

TEST(RsFramer, RoundTripClean)
{
    const Rs_framer framer(1125, 64, 40);
    const auto payload = bytes_of("rs protected payload");
    const auto bits = framer.build(5, payload);
    ASSERT_EQ(bits.size(), 1125u);
    const auto parsed = framer.parse(bits);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->sequence, 5u);
    EXPECT_EQ(parsed->payload, payload);
    EXPECT_EQ(parsed->corrected_symbols, 0);
}

TEST(RsFramer, CorrectsScatteredBitErrors)
{
    const Rs_framer framer(1125, 64, 40); // t = 12 symbols
    const auto payload = bytes_of("resilient");
    auto bits = framer.build(5, payload);
    // Flip bits in 6 different symbols.
    for (const std::size_t pos : {3u, 77u, 150u, 222u, 301u, 410u}) bits[pos] ^= 1;
    const auto parsed = framer.parse(bits);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->payload, payload);
    EXPECT_GT(parsed->corrected_symbols, 0);
}

TEST(RsFramer, GivesUpBeyondCapacity)
{
    const Rs_framer framer(1125, 32, 26); // t = 3 symbols
    auto bits = framer.build(5, bytes_of("x"));
    Prng prng(8);
    // Corrupt ~10 symbols.
    for (int i = 0; i < 80; ++i) bits[prng.next_below(32 * 8)] ^= 1;
    const auto parsed = framer.parse(bits);
    if (parsed.has_value()) {
        // Miscorrection is possible but must not reproduce the original.
        EXPECT_NE(parsed->payload, bytes_of("x"));
    }
}

TEST(RsFramer, CapacityValidation)
{
    EXPECT_THROW(Rs_framer(100, 64, 40), Contract_violation);
    const Rs_framer framer(1125, 64, 40);
    EXPECT_EQ(framer.max_payload_bytes(), 28);
    const std::vector<std::uint8_t> too_big(29, 0);
    EXPECT_THROW(framer.build(0, too_big), Contract_violation);
}

} // namespace
