#include "coding/geometry.hpp"

#include "util/contract.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::coding;
using inframe::util::Contract_violation;

TEST(Geometry, PaperLayoutAt1080p)
{
    const auto g = paper_geometry(1920, 1080);
    EXPECT_EQ(g.pixel_size, 4);
    EXPECT_EQ(g.block_pixels, 9);
    EXPECT_EQ(g.blocks_x, 50);
    EXPECT_EQ(g.blocks_y, 30);
    EXPECT_EQ(g.block_px(), 36);
    EXPECT_EQ(g.gobs_x(), 25);
    EXPECT_EQ(g.gobs_y(), 15);
    EXPECT_EQ(g.gob_count(), 375);
    // The paper's capacity: 1125 bits per data frame.
    EXPECT_EQ(g.payload_bits_per_frame(), 1125);
}

TEST(Geometry, HalfResolutionScalesPixelSizeOnly)
{
    const auto g = paper_geometry(960, 540);
    EXPECT_EQ(g.pixel_size, 2);
    EXPECT_EQ(g.blocks_x, 50);
    EXPECT_EQ(g.blocks_y, 30);
    EXPECT_EQ(g.payload_bits_per_frame(), 1125);
    EXPECT_EQ(g.active_height(), 540);
}

TEST(Geometry, QuarterResolution)
{
    const auto g = paper_geometry(480, 270);
    EXPECT_EQ(g.pixel_size, 1);
    EXPECT_EQ(g.payload_bits_per_frame(), 1125);
}

TEST(Geometry, TinyScreenShrinksGrid)
{
    const auto g = paper_geometry(180, 120);
    EXPECT_NO_THROW(g.validate());
    EXPECT_LE(g.active_width(), 180);
    EXPECT_LE(g.active_height(), 120);
    EXPECT_EQ(g.blocks_x % g.gob_size, 0);
    EXPECT_EQ(g.blocks_y % g.gob_size, 0);
}

TEST(Geometry, ActiveAreaIsCentered)
{
    const auto g = paper_geometry(1920, 1080);
    EXPECT_EQ(g.origin_x(), (1920 - 1800) / 2);
    EXPECT_EQ(g.origin_y(), 0);
}

TEST(Geometry, BlockRects)
{
    const auto g = paper_geometry(1920, 1080);
    const auto first = g.block_rect(0, 0);
    EXPECT_EQ(first.x0, 60);
    EXPECT_EQ(first.y0, 0);
    EXPECT_EQ(first.size, 36);
    const auto last = g.block_rect(49, 29);
    EXPECT_EQ(last.x0 + last.size, 60 + 1800);
    EXPECT_EQ(last.y0 + last.size, 1080);
    EXPECT_THROW(g.block_rect(50, 0), Contract_violation);
    EXPECT_THROW(g.block_rect(0, -1), Contract_violation);
}

TEST(Geometry, BlockIndexIsRasterOrder)
{
    const auto g = paper_geometry(1920, 1080);
    EXPECT_EQ(g.block_index(0, 0), 0);
    EXPECT_EQ(g.block_index(1, 0), 1);
    EXPECT_EQ(g.block_index(0, 1), 50);
    EXPECT_EQ(g.block_index(49, 29), 1499);
}

TEST(Geometry, ValidationCatchesBadLayouts)
{
    Code_geometry g = paper_geometry(1920, 1080);
    g.blocks_x = 51; // not divisible by gob_size
    EXPECT_THROW(g.validate(), Contract_violation);

    g = paper_geometry(1920, 1080);
    g.blocks_y = 40; // 40 * 36 = 1440 > 1080
    EXPECT_THROW(g.validate(), Contract_violation);

    g = paper_geometry(1920, 1080);
    g.block_pixels = 1; // no room for a chessboard
    EXPECT_THROW(g.validate(), Contract_violation);

    g = paper_geometry(1920, 1080);
    g.gob_size = 1;
    EXPECT_THROW(g.validate(), Contract_violation);
}

TEST(Geometry, PayloadBitsPerGob)
{
    Code_geometry g = paper_geometry(1920, 1080);
    EXPECT_EQ(g.payload_bits_per_gob(), 3);
    g.gob_size = 3;
    g.blocks_x = 48;
    g.blocks_y = 30;
    g.validate();
    EXPECT_EQ(g.payload_bits_per_gob(), 8);
}

} // namespace
