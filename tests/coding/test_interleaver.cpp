#include "coding/interleaver.hpp"

#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::coding;
using inframe::util::Contract_violation;
using inframe::util::Prng;

TEST(Interleaver, RoundTrip)
{
    const Interleaver il(7, 13);
    Prng prng(1);
    const auto input = prng.next_bits(il.size());
    EXPECT_EQ(il.deinterleave(il.interleave(input)), input);
}

TEST(Interleaver, KnownSmallPattern)
{
    const Interleaver il(2, 3);
    const std::vector<std::uint8_t> input = {1, 2, 3, 4, 5, 6};
    // Row-wise write [[1,2,3],[4,5,6]], column-wise read -> 1,4,2,5,3,6.
    const std::vector<std::uint8_t> expected = {1, 4, 2, 5, 3, 6};
    EXPECT_EQ(il.interleave(input), expected);
}

TEST(Interleaver, SpreadsBursts)
{
    // A burst of b consecutive corrupted positions in the interleaved
    // stream lands in b different rows after deinterleaving, i.e. the
    // damaged original positions are at least `cols` apart.
    const Interleaver il(8, 16);
    std::vector<std::uint8_t> marks(il.size(), 0);
    auto interleaved = il.interleave(marks);
    for (std::size_t i = 40; i < 46; ++i) interleaved[i] = 1; // 6-burst
    const auto restored = il.deinterleave(interleaved);
    std::vector<std::size_t> damaged;
    for (std::size_t i = 0; i < restored.size(); ++i) {
        if (restored[i]) damaged.push_back(i);
    }
    ASSERT_EQ(damaged.size(), 6u);
    for (std::size_t i = 1; i < damaged.size(); ++i) {
        EXPECT_GE(damaged[i] - damaged[i - 1], 15u);
    }
}

TEST(Interleaver, DegenerateSingleRow)
{
    const Interleaver il(1, 5);
    const std::vector<std::uint8_t> input = {9, 8, 7, 6, 5};
    EXPECT_EQ(il.interleave(input), input);
}

TEST(Interleaver, Validation)
{
    EXPECT_THROW(Interleaver(0, 4), Contract_violation);
    EXPECT_THROW(Interleaver(4, 0), Contract_violation);
    const Interleaver il(2, 2);
    const std::vector<std::uint8_t> wrong(3, 0);
    EXPECT_THROW(il.interleave(wrong), Contract_violation);
    EXPECT_THROW(il.deinterleave(wrong), Contract_violation);
}

} // namespace
