#include "coding/parity.hpp"

#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::coding;
using inframe::util::Contract_violation;
using inframe::util::Prng;

Code_geometry test_geometry()
{
    Code_geometry g;
    g.screen_width = 200;
    g.screen_height = 120;
    g.pixel_size = 2;
    g.block_pixels = 3;
    g.gob_size = 2;
    g.blocks_x = 8;
    g.blocks_y = 4;
    g.validate();
    return g;
}

std::vector<Block_decision> to_decisions(std::span<const std::uint8_t> bits)
{
    std::vector<Block_decision> decisions;
    decisions.reserve(bits.size());
    for (const auto bit : bits) {
        decisions.push_back(bit ? Block_decision::one : Block_decision::zero);
    }
    return decisions;
}

TEST(Parity, EncodeProducesOneBlockPerBit)
{
    const auto g = test_geometry();
    Prng prng(1);
    const auto payload = prng.next_bits(static_cast<std::size_t>(g.payload_bits_per_frame()));
    const auto blocks = encode_gob_parity(g, payload);
    EXPECT_EQ(blocks.size(), static_cast<std::size_t>(g.block_count()));
}

TEST(Parity, ParityBlockIsXorOfGob)
{
    const auto g = test_geometry();
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(g.payload_bits_per_frame()), 0);
    payload[0] = 1;
    payload[1] = 1;
    payload[2] = 0;
    const auto blocks = encode_gob_parity(g, payload);
    // First GOB covers blocks (0,0), (1,0), (0,1), (1,1); last is parity.
    EXPECT_EQ(blocks[static_cast<std::size_t>(g.block_index(0, 0))], 1);
    EXPECT_EQ(blocks[static_cast<std::size_t>(g.block_index(1, 0))], 1);
    EXPECT_EQ(blocks[static_cast<std::size_t>(g.block_index(0, 1))], 0);
    EXPECT_EQ(blocks[static_cast<std::size_t>(g.block_index(1, 1))], 0); // 1^1^0
}

TEST(Parity, RoundTripRecoversPayload)
{
    const auto g = test_geometry();
    Prng prng(2);
    const auto payload = prng.next_bits(static_cast<std::size_t>(g.payload_bits_per_frame()));
    const auto blocks = encode_gob_parity(g, payload);
    const auto result = decode_gob_parity(g, to_decisions(blocks));
    EXPECT_DOUBLE_EQ(result.available_ratio, 1.0);
    EXPECT_DOUBLE_EQ(result.error_rate, 0.0);
    ASSERT_EQ(result.payload_bits.size(), payload.size());
    EXPECT_EQ(result.payload_bits, payload);
    EXPECT_EQ(result.good_payload_bits, payload.size());
}

TEST(Parity, SingleBlockFlipIsDetected)
{
    const auto g = test_geometry();
    Prng prng(3);
    const auto payload = prng.next_bits(static_cast<std::size_t>(g.payload_bits_per_frame()));
    auto blocks = encode_gob_parity(g, payload);
    blocks[5] ^= 1;
    const auto result = decode_gob_parity(g, to_decisions(blocks));
    EXPECT_DOUBLE_EQ(result.available_ratio, 1.0);
    // Exactly one of the GOBs fails parity.
    EXPECT_NEAR(result.error_rate, 1.0 / g.gob_count(), 1e-9);
}

TEST(Parity, DoubleFlipInOneGobEscapesParity)
{
    // XOR parity detects odd numbers of errors only — the known limitation
    // the paper accepts for the strawman.
    const auto g = test_geometry();
    Prng prng(4);
    const auto payload = prng.next_bits(static_cast<std::size_t>(g.payload_bits_per_frame()));
    auto blocks = encode_gob_parity(g, payload);
    blocks[static_cast<std::size_t>(g.block_index(0, 0))] ^= 1;
    blocks[static_cast<std::size_t>(g.block_index(1, 0))] ^= 1;
    const auto result = decode_gob_parity(g, to_decisions(blocks));
    EXPECT_DOUBLE_EQ(result.error_rate, 0.0); // undetected
    EXPECT_NE(result.payload_bits, payload);  // but wrong
}

TEST(Parity, UnknownBlockMakesGobUnavailable)
{
    const auto g = test_geometry();
    Prng prng(5);
    const auto payload = prng.next_bits(static_cast<std::size_t>(g.payload_bits_per_frame()));
    const auto blocks = encode_gob_parity(g, payload);
    auto decisions = to_decisions(blocks);
    decisions[static_cast<std::size_t>(g.block_index(0, 0))] = Block_decision::unknown;
    const auto result = decode_gob_parity(g, decisions);
    EXPECT_NEAR(result.available_ratio, 1.0 - 1.0 / g.gob_count(), 1e-9);
    EXPECT_FALSE(result.gobs[0].available);
    // Unavailable GOB contributes fill bits.
    EXPECT_EQ(result.good_payload_bits,
              payload.size() - static_cast<std::size_t>(g.payload_bits_per_gob()));
}

TEST(Parity, FillBitAppliedToUntrustedGobs)
{
    const auto g = test_geometry();
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(g.payload_bits_per_frame()), 1);
    const auto blocks = encode_gob_parity(g, payload);
    auto decisions = to_decisions(blocks);
    decisions[static_cast<std::size_t>(g.block_index(0, 0))] = Block_decision::unknown;
    const auto result = decode_gob_parity(g, decisions, 0);
    for (int b = 0; b < g.payload_bits_per_gob(); ++b) {
        EXPECT_EQ(result.payload_bits[static_cast<std::size_t>(b)], 0);
    }
    EXPECT_EQ(result.payload_bits.back(), 1);
}

TEST(Parity, SizeValidation)
{
    const auto g = test_geometry();
    const std::vector<std::uint8_t> short_payload(3, 0);
    EXPECT_THROW(encode_gob_parity(g, short_payload), Contract_violation);
    const std::vector<Block_decision> short_decisions(3, Block_decision::zero);
    EXPECT_THROW(decode_gob_parity(g, short_decisions), Contract_violation);
}

TEST(Parity, LargerGobGeometry)
{
    Code_geometry g = test_geometry();
    g.gob_size = 2;
    g.blocks_x = 4;
    g.blocks_y = 4;
    g.validate();
    Prng prng(6);
    const auto payload = prng.next_bits(static_cast<std::size_t>(g.payload_bits_per_frame()));
    const auto blocks = encode_gob_parity(g, payload);
    const auto result = decode_gob_parity(g, to_decisions(blocks));
    EXPECT_EQ(result.payload_bits, payload);
}

} // namespace
