#include "coding/reed_solomon.hpp"

#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using namespace inframe::coding;
using inframe::util::Contract_violation;
using inframe::util::Prng;

TEST(Gf256, FieldAxiomsSpotChecks)
{
    EXPECT_EQ(gf256::add(0x53, 0x53), 0);
    EXPECT_EQ(gf256::mul(1, 0x7b), 0x7b);
    EXPECT_EQ(gf256::mul(0, 0x7b), 0);
    // Known product in the 0x11d field (QR standard): 0x53 * 0xca = 0x01.
    EXPECT_EQ(gf256::mul(0x53, gf256::inverse(0x53)), 1);
}

TEST(Gf256, MulDivInverse)
{
    Prng prng(1);
    for (int i = 0; i < 200; ++i) {
        const auto a = static_cast<std::uint8_t>(prng.next_below(255) + 1);
        const auto b = static_cast<std::uint8_t>(prng.next_below(255) + 1);
        EXPECT_EQ(gf256::div(gf256::mul(a, b), b), a);
    }
    EXPECT_THROW(gf256::div(1, 0), Contract_violation);
    EXPECT_THROW(gf256::inverse(0), Contract_violation);
}

TEST(Gf256, PowMatchesRepeatedMul)
{
    std::uint8_t acc = 1;
    for (int e = 0; e < 10; ++e) {
        EXPECT_EQ(gf256::pow(3, e), acc);
        acc = gf256::mul(acc, 3);
    }
    EXPECT_EQ(gf256::pow(0, 0), 1);
    EXPECT_EQ(gf256::pow(0, 5), 0);
}

TEST(ReedSolomon, ConstructionValidation)
{
    EXPECT_THROW(Reed_solomon(256, 10), Contract_violation);
    EXPECT_THROW(Reed_solomon(10, 10), Contract_violation);
    EXPECT_THROW(Reed_solomon(10, 0), Contract_violation);
    const Reed_solomon rs(255, 223);
    EXPECT_EQ(rs.parity_symbols(), 32);
    EXPECT_EQ(rs.max_correctable(), 16);
}

TEST(ReedSolomon, EncodeIsSystematic)
{
    const Reed_solomon rs(15, 11);
    Prng prng(2);
    std::vector<std::uint8_t> data(11);
    prng.fill_bytes(data);
    const auto codeword = rs.encode(data);
    ASSERT_EQ(codeword.size(), 15u);
    EXPECT_TRUE(std::equal(data.begin(), data.end(), codeword.begin()));
}

TEST(ReedSolomon, CleanCodewordDecodes)
{
    const Reed_solomon rs(31, 23);
    Prng prng(3);
    std::vector<std::uint8_t> data(23);
    prng.fill_bytes(data);
    const auto codeword = rs.encode(data);
    const auto decoded = rs.decode(codeword);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->data, data);
    EXPECT_EQ(decoded->corrected_errors, 0);
}

TEST(ReedSolomon, CorrectsUpToTErrors)
{
    const Reed_solomon rs(31, 23); // t = 4
    Prng prng(4);
    std::vector<std::uint8_t> data(23);
    prng.fill_bytes(data);
    const auto codeword = rs.encode(data);
    for (int errors = 1; errors <= rs.max_correctable(); ++errors) {
        auto corrupted = codeword;
        for (int e = 0; e < errors; ++e) {
            const auto pos = static_cast<std::size_t>(7 * e + 2); // distinct positions
            corrupted[pos] ^= static_cast<std::uint8_t>(0x5a + e);
        }
        const auto decoded = rs.decode(corrupted);
        ASSERT_TRUE(decoded.has_value()) << errors << " errors";
        EXPECT_EQ(decoded->data, data) << errors << " errors";
        EXPECT_EQ(decoded->corrected_errors, errors);
    }
}

TEST(ReedSolomon, ErrorsInParityRegionAlsoCorrected)
{
    const Reed_solomon rs(31, 23);
    Prng prng(5);
    std::vector<std::uint8_t> data(23);
    prng.fill_bytes(data);
    auto corrupted = rs.encode(data);
    corrupted[25] ^= 0xff; // parity symbol
    corrupted[30] ^= 0x01;
    const auto decoded = rs.decode(corrupted);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->data, data);
}

TEST(ReedSolomon, RejectsBeyondCapacity)
{
    const Reed_solomon rs(31, 27); // t = 2
    Prng prng(6);
    std::vector<std::uint8_t> data(27);
    prng.fill_bytes(data);
    auto corrupted = rs.encode(data);
    int failures = 0;
    for (int trial = 0; trial < 20; ++trial) {
        auto word = corrupted;
        // 5 random errors: far beyond t = 2.
        for (int e = 0; e < 5; ++e) {
            const auto pos = prng.next_below(word.size());
            word[pos] ^= static_cast<std::uint8_t>(prng.next_below(255) + 1);
        }
        const auto decoded = rs.decode(word);
        // Either refused, or (rare miscorrection) produced *something*; it
        // must never claim success with the original data intact while
        // reporting <= t corrections of a 5-error pattern.
        if (!decoded.has_value() || decoded->data != data) ++failures;
    }
    EXPECT_GT(failures, 15);
}

TEST(ReedSolomon, RandomizedRoundTripSweep)
{
    Prng prng(7);
    for (const auto& [n, k] : {std::pair{255, 223}, {63, 45}, {15, 9}}) {
        const Reed_solomon rs(n, k);
        std::vector<std::uint8_t> data(static_cast<std::size_t>(k));
        prng.fill_bytes(data);
        auto corrupted = rs.encode(data);
        // Corrupt exactly t distinct random positions.
        std::vector<std::size_t> positions;
        while (static_cast<int>(positions.size()) < rs.max_correctable()) {
            const auto pos = prng.next_below(corrupted.size());
            if (std::find(positions.begin(), positions.end(), pos) == positions.end()) {
                positions.push_back(pos);
            }
        }
        for (const auto pos : positions) {
            corrupted[pos] ^= static_cast<std::uint8_t>(prng.next_below(255) + 1);
        }
        const auto decoded = rs.decode(corrupted);
        ASSERT_TRUE(decoded.has_value()) << "RS(" << n << "," << k << ")";
        EXPECT_EQ(decoded->data, data) << "RS(" << n << "," << k << ")";
    }
}

TEST(ReedSolomon, SizeValidationOnUse)
{
    const Reed_solomon rs(15, 11);
    const std::vector<std::uint8_t> wrong(10, 0);
    EXPECT_THROW(rs.encode(wrong), Contract_violation);
    EXPECT_THROW(rs.decode(wrong), Contract_violation);
}

TEST(ReedSolomonErasures, CorrectsTwiceAsManyErasuresAsErrors)
{
    // RS(31, 23): t = 4 errors, but up to 8 declared erasures.
    const Reed_solomon rs(31, 23);
    Prng prng(11);
    std::vector<std::uint8_t> data(23);
    prng.fill_bytes(data);
    const auto codeword = rs.encode(data);

    auto corrupted = codeword;
    std::vector<int> erasures;
    for (int e = 0; e < rs.parity_symbols(); ++e) {
        const int pos = 3 * e + 1;
        corrupted[static_cast<std::size_t>(pos)] ^= static_cast<std::uint8_t>(0x11 + e);
        erasures.push_back(pos);
    }
    // 8 errors is far beyond t = 4 without the erasure information...
    EXPECT_FALSE(rs.decode(corrupted).has_value());
    // ...but decodes exactly with it.
    const auto decoded = rs.decode_with_erasures(corrupted, erasures);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->data, data);
    EXPECT_EQ(decoded->corrected_erasures, rs.parity_symbols());
    EXPECT_EQ(decoded->corrected_errors, 0);
}

TEST(ReedSolomonErasures, MixedErrorsAndErasures)
{
    // 2 errors + 4 erasures: 2*2 + 4 = 8 = n - k exactly.
    const Reed_solomon rs(31, 23);
    Prng prng(12);
    std::vector<std::uint8_t> data(23);
    prng.fill_bytes(data);
    auto corrupted = rs.encode(data);
    corrupted[2] ^= 0x40;  // undeclared error
    corrupted[17] ^= 0x08; // undeclared error
    const std::vector<int> erasures = {5, 9, 22, 28};
    for (const int pos : erasures) corrupted[static_cast<std::size_t>(pos)] ^= 0xff;
    const auto decoded = rs.decode_with_erasures(corrupted, erasures);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->data, data);
    EXPECT_EQ(decoded->corrected_errors, 2);
}

TEST(ReedSolomonErasures, DeclaredButUncorruptedErasuresAreHarmless)
{
    const Reed_solomon rs(31, 23);
    Prng prng(13);
    std::vector<std::uint8_t> data(23);
    prng.fill_bytes(data);
    auto corrupted = rs.encode(data);
    corrupted[4] ^= 0x01;
    // Declare three positions as suspect even though only one is wrong.
    const std::vector<int> erasures = {4, 10, 20};
    const auto decoded = rs.decode_with_erasures(corrupted, erasures);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->data, data);
}

TEST(ReedSolomonErasures, TooManyErasuresRefused)
{
    const Reed_solomon rs(15, 9); // 6 parity symbols
    Prng prng(14);
    std::vector<std::uint8_t> data(9);
    prng.fill_bytes(data);
    auto corrupted = rs.encode(data);
    std::vector<int> erasures;
    for (int pos = 0; pos < 7; ++pos) {
        corrupted[static_cast<std::size_t>(pos)] ^= 0x55;
        erasures.push_back(pos);
    }
    EXPECT_FALSE(rs.decode_with_erasures(corrupted, erasures).has_value());
}

TEST(ReedSolomonErasures, PositionValidation)
{
    const Reed_solomon rs(15, 9);
    const std::vector<std::uint8_t> word(15, 1);
    const std::vector<int> out_of_range = {15};
    EXPECT_THROW(rs.decode_with_erasures(word, out_of_range), Contract_violation);
    const std::vector<int> duplicated = {3, 3};
    EXPECT_THROW(rs.decode_with_erasures(word, duplicated), Contract_violation);
}

TEST(ReedSolomonErasures, CleanWordWithErasureDeclarations)
{
    const Reed_solomon rs(15, 9);
    Prng prng(15);
    std::vector<std::uint8_t> data(9);
    prng.fill_bytes(data);
    const auto codeword = rs.encode(data);
    const std::vector<int> erasures = {0, 7};
    const auto decoded = rs.decode_with_erasures(codeword, erasures);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->data, data);
    EXPECT_EQ(decoded->corrected_erasures, 0);
}

TEST(ReedSolomonErasures, RandomizedSweep)
{
    Prng prng(16);
    const Reed_solomon rs(63, 39); // 24 parity
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::uint8_t> data(39);
        prng.fill_bytes(data);
        auto corrupted = rs.encode(data);
        const int erasure_count = static_cast<int>(prng.next_int(0, 12));
        const int error_count =
            static_cast<int>(prng.next_int(0, (24 - erasure_count) / 2));
        std::vector<int> positions;
        while (static_cast<int>(positions.size()) < erasure_count + error_count) {
            const int pos = static_cast<int>(prng.next_below(63));
            if (std::find(positions.begin(), positions.end(), pos) == positions.end()) {
                positions.push_back(pos);
            }
        }
        for (const int pos : positions) {
            corrupted[static_cast<std::size_t>(pos)] ^=
                static_cast<std::uint8_t>(prng.next_below(255) + 1);
        }
        const std::vector<int> erasures(positions.begin(), positions.begin() + erasure_count);
        const auto decoded = rs.decode_with_erasures(corrupted, erasures);
        ASSERT_TRUE(decoded.has_value())
            << "trial " << trial << " e=" << erasure_count << " v=" << error_count;
        EXPECT_EQ(decoded->data, data) << "trial " << trial;
    }
}

} // namespace
