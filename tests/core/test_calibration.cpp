#include "core/calibration.hpp"

#include "channel/link.hpp"
#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/session.hpp"
#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace inframe;
using namespace inframe::core;
using inframe::img::Homography;
using inframe::img::Imagef;
using inframe::util::Prng;

constexpr int screen_w = 480;
constexpr int screen_h = 270;

coding::Code_geometry test_geometry()
{
    return coding::fitted_geometry(screen_w, screen_h, 2);
}

Homography keystone()
{
    const std::array<double, 8> quad_on_sensor = {22.0, 12.0, 452.0, 18.0,
                                                  448.0, 250.0, 16.0, 256.0};
    return Homography::rect_to_quad(screen_w, screen_h, quad_on_sensor).inverse();
}

channel::Camera_params perspective_camera(bool noisy)
{
    channel::Camera_params c;
    c.fps = 30.0;
    c.sensor_width = screen_w;
    c.sensor_height = screen_h;
    c.exposure_s = 1.0 / 120.0;
    c.readout_s = 0.0;
    c.optical_blur_sigma = noisy ? 0.5 : 0.0;
    c.shot_noise_scale = noisy ? 0.12 : 0.0;
    c.read_noise_sigma = noisy ? 0.8 : 0.0;
    c.quantize = noisy;
    c.sensor_to_screen = keystone();
    return c;
}

// Captures one calibration frame through the perspective camera.
Imagef captured_calibration_frame(bool noisy)
{
    channel::Display_params display;
    display.response_persistence = 0.0;
    display.black_level = 0.0;
    channel::Screen_camera_link link(display, perspective_camera(noisy), screen_w, screen_h);
    const auto frame = render_calibration_frame(test_geometry());
    Imagef capture;
    for (int j = 0; j < 8 && capture.empty(); ++j) {
        for (auto& c : link.push_display_frame(frame)) capture = std::move(c.image);
    }
    return capture;
}

TEST(Calibration, FrameHasFourMarkers)
{
    const auto frame = render_calibration_frame(test_geometry());
    const auto centers = calibration_marker_centers(test_geometry());
    for (int m = 0; m < 4; ++m) {
        const int cx = static_cast<int>(centers[static_cast<std::size_t>(2 * m)]);
        const int cy = static_cast<int>(centers[static_cast<std::size_t>(2 * m + 1)]);
        EXPECT_GT(frame(cx, cy), 200.0f) << "marker " << m;
    }
    EXPECT_LT(frame(screen_w / 2, screen_h / 2), 10.0f); // background
}

TEST(Calibration, DetectsMarkersOnThePristineFrame)
{
    const auto geometry = test_geometry();
    const auto frame = render_calibration_frame(geometry);
    const auto detected = detect_calibration_markers(frame);
    ASSERT_TRUE(detected.has_value());
    const auto expected = calibration_marker_centers(geometry);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_NEAR((*detected)[i], expected[i], 1.0) << "coordinate " << i;
    }
}

TEST(Calibration, RejectsFlatCaptures)
{
    EXPECT_FALSE(detect_calibration_markers(Imagef(64, 36, 1, 127.0f)).has_value());
}

TEST(Calibration, EstimatesTheViewingHomography)
{
    const auto capture = captured_calibration_frame(/*noisy=*/false);
    ASSERT_FALSE(capture.empty());
    const auto estimated = estimate_sensor_to_screen(capture, test_geometry());
    ASSERT_TRUE(estimated.has_value());
    // Compare against the true homography at probe points.
    const auto truth = keystone();
    for (double x = 60.0; x < screen_w; x += 120.0) {
        for (double y = 40.0; y < screen_h; y += 80.0) {
            double ex = 0.0, ey = 0.0, tx = 0.0, ty = 0.0;
            estimated->apply(x, y, ex, ey);
            truth.apply(x, y, tx, ty);
            EXPECT_NEAR(ex, tx, 2.5) << "at " << x << "," << y;
            EXPECT_NEAR(ey, ty, 2.5) << "at " << x << "," << y;
        }
    }
}

TEST(Calibration, SelfCalibratedDecoderDeliversData)
{
    // The full bootstrap: calibrate from one flashed frame, then decode a
    // data frame through the same (noisy) perspective camera.
    const auto capture = captured_calibration_frame(/*noisy=*/true);
    ASSERT_FALSE(capture.empty());
    auto config = paper_config(screen_w, screen_h);
    config.geometry = test_geometry();
    config.tau = 8;
    const auto estimated = estimate_sensor_to_screen(capture, config.geometry);
    ASSERT_TRUE(estimated.has_value());

    Inframe_encoder encoder(config);
    Prng prng(5);
    const auto payload =
        prng.next_bits(static_cast<std::size_t>(config.geometry.payload_bits_per_frame()));
    encoder.queue_payload(payload);
    const auto truth = coding::encode_gob_parity(config.geometry, payload);

    channel::Display_params display;
    channel::Screen_camera_link link(display, perspective_camera(true), screen_w, screen_h);
    auto params = make_decoder_params(config, screen_w, screen_h);
    params.detector = Detector::matched;
    params.capture_to_screen = estimated;
    Inframe_decoder decoder(params);

    std::vector<Data_frame_result> results;
    for (int j = 0; j < 2 * config.tau; ++j) {
        const auto frame = encoder.next_display_frame(Imagef(screen_w, screen_h, 1, 140.0f));
        for (const auto& c : link.push_display_frame(frame)) {
            for (auto& r : decoder.push_capture(c.image, c.start_time)) {
                results.push_back(std::move(r));
            }
        }
    }
    ASSERT_FALSE(results.empty());
    const auto& r0 = results.front();
    EXPECT_GT(r0.gob.available_ratio, 0.7);
    int wrong = 0;
    int confident = 0;
    for (std::size_t b = 0; b < truth.size(); ++b) {
        if (r0.decisions[b] == coding::Block_decision::unknown) continue;
        ++confident;
        wrong += (r0.decisions[b] == coding::Block_decision::one ? 1 : 0) != truth[b];
    }
    EXPECT_GT(confident, 200);
    EXPECT_LT(static_cast<double>(wrong) / confident, 0.02);
}

TEST(Calibration, ParameterValidation)
{
    Calibration_params bad;
    bad.marker_fraction = 0.6;
    EXPECT_THROW(render_calibration_frame(test_geometry(), bad),
                 inframe::util::Contract_violation);
}

} // namespace
