// Colour-pipeline coverage: the paper's displays show colour video; the
// embedding is a per-channel luminance modulation that must survive an RGB
// path end to end.

#include "channel/link.hpp"
#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/session.hpp"
#include "imgproc/image_ops.hpp"
#include "imgproc/metrics.hpp"
#include "util/prng.hpp"
#include "video/source.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe;
using namespace inframe::core;
using inframe::coding::Block_decision;
using inframe::img::Imagef;
using inframe::util::Prng;

Inframe_config small_config()
{
    auto config = paper_config(480, 270);
    config.tau = 8;
    return config;
}

Imagef warm_video_frame()
{
    Imagef frame(480, 270, 3);
    for (int y = 0; y < 270; ++y) {
        for (int x = 0; x < 480; ++x) {
            frame(x, y, 0) = 160.0f;
            frame(x, y, 1) = 120.0f;
            frame(x, y, 2) = 90.0f;
        }
    }
    return frame;
}

TEST(Color, ComplementaryPairPreservesChromaticity)
{
    const auto config = small_config();
    Prng prng(1);
    const auto bits = prng.next_bits(static_cast<std::size_t>(config.geometry.block_count()));
    const Imagef video = warm_video_frame();
    const auto pair = make_complementary_pair(config, video, bits);
    ASSERT_EQ(pair.plus.channels(), 3);
    // The average cancels on every channel.
    Imagef average = img::add(pair.plus, pair.minus);
    average = img::affine(average, 0.5f, 0.0f);
    EXPECT_LT(img::mae(average, video), 1e-4);
    // Inside a raised Pixel, all channels shift by the same amount: the
    // R-G difference is invariant.
    for (int y = 0; y < video.height(); y += 17) {
        for (int x = 0; x < video.width(); x += 13) {
            const float rg_video = video(x, y, 0) - video(x, y, 1);
            const float rg_plus = pair.plus(x, y, 0) - pair.plus(x, y, 1);
            EXPECT_NEAR(rg_plus, rg_video, 1e-4);
        }
    }
}

TEST(Color, EncoderAcceptsRgbVideo)
{
    const auto config = small_config();
    Inframe_encoder encoder(config);
    Prng prng(2);
    encoder.queue_payload(
        prng.next_bits(static_cast<std::size_t>(config.geometry.payload_bits_per_frame())));
    const Imagef out = encoder.next_display_frame(warm_video_frame());
    EXPECT_EQ(out.channels(), 3);
}

TEST(Color, EndToEndRgbRoundTrip)
{
    const auto config = small_config();
    Inframe_encoder encoder(config);
    Prng prng(3);
    const auto payload =
        prng.next_bits(static_cast<std::size_t>(config.geometry.payload_bits_per_frame()));
    encoder.queue_payload(payload);
    encoder.queue_payload(
        prng.next_bits(static_cast<std::size_t>(config.geometry.payload_bits_per_frame())));
    const auto truth = coding::encode_gob_parity(config.geometry, payload);

    // RGB captures go straight to the decoder, which demodulates on
    // luminance.
    Inframe_decoder decoder(make_decoder_params(config, 480, 270));
    const Imagef video = warm_video_frame();
    std::vector<Data_frame_result> results;
    for (int j = 0; j < 2 * config.tau; ++j) {
        const Imagef frame = encoder.next_display_frame(video);
        if (j % 4 == 0) {
            for (auto& r : decoder.push_capture(frame, j / 120.0)) {
                results.push_back(std::move(r));
            }
        }
    }
    ASSERT_FALSE(results.empty());
    const auto& r0 = results.front();
    EXPECT_DOUBLE_EQ(r0.gob.available_ratio, 1.0);
    for (std::size_t b = 0; b < truth.size(); ++b) {
        const auto expected = truth[b] ? Block_decision::one : Block_decision::zero;
        EXPECT_EQ(r0.decisions[b], expected);
    }
}

TEST(Color, RgbSurvivesTheCameraPath)
{
    const auto config = small_config();
    Inframe_encoder encoder(config);
    Prng prng(4);
    const auto payload =
        prng.next_bits(static_cast<std::size_t>(config.geometry.payload_bits_per_frame()));
    encoder.queue_payload(payload);
    const auto truth = coding::encode_gob_parity(config.geometry, payload);

    channel::Display_params display;
    display.response_persistence = 0.0;
    display.black_level = 0.0;
    channel::Camera_params camera;
    camera.fps = 30.0;
    camera.sensor_width = 480;
    camera.sensor_height = 270;
    camera.exposure_s = 1.0 / 120.0;
    camera.readout_s = 0.0;
    camera.optical_blur_sigma = 0.0;
    camera.offset_x_px = 0.0;
    camera.offset_y_px = 0.0;
    camera.shot_noise_scale = 0.0;
    camera.read_noise_sigma = 0.0;
    camera.quantize = false;
    channel::Screen_camera_link link(display, camera, 480, 270);
    Inframe_decoder decoder(make_decoder_params(config, 480, 270));

    const Imagef video = warm_video_frame();
    std::vector<Data_frame_result> results;
    for (int j = 0; j < 2 * config.tau; ++j) {
        const Imagef frame = encoder.next_display_frame(video);
        for (const auto& capture : link.push_display_frame(frame)) {
            EXPECT_EQ(capture.image.channels(), 3);
            for (auto& r : decoder.push_capture(capture.image, capture.start_time)) {
                results.push_back(std::move(r));
            }
        }
    }
    ASSERT_FALSE(results.empty());
    EXPECT_DOUBLE_EQ(results.front().gob.available_ratio, 1.0);
    int wrong = 0;
    for (std::size_t b = 0; b < truth.size(); ++b) {
        if (results.front().decisions[b] == Block_decision::unknown) continue;
        const std::uint8_t bit =
            results.front().decisions[b] == Block_decision::one ? 1 : 0;
        wrong += bit != truth[b];
    }
    EXPECT_EQ(wrong, 0);
}

TEST(Color, TintedVideoProducesRgbWithPreservedRamp)
{
    auto gray = std::make_shared<video::Sunrise_video>(96, 54, 30.0, 5);
    video::Tinted_video tinted(gray, {10.0f, 5.0f, 30.0f}, {255.0f, 220.0f, 180.0f});
    const Imagef frame = tinted.frame(300);
    EXPECT_EQ(frame.channels(), 3);
    EXPECT_EQ(tinted.name(), "sunrise-tinted");
    // Bright gray areas map near the light tint, dark near the dark tint.
    const Imagef source = gray->frame(300);
    const auto [lo, hi] = img::min_max(source);
    for (int y = 0; y < frame.height(); y += 9) {
        for (int x = 0; x < frame.width(); x += 11) {
            if (source(x, y) >= hi - 1.0f) {
                EXPECT_GT(frame(x, y, 0), 200.0f);
            }
            if (source(x, y) <= lo + 1.0f) {
                EXPECT_LT(frame(x, y, 0), 60.0f);
            }
        }
    }
}

TEST(Color, TintedVideoValidation)
{
    EXPECT_THROW(video::Tinted_video(nullptr, {}, {}), inframe::util::Contract_violation);
}

} // namespace
