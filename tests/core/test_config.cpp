#include "core/config.hpp"

#include "util/contract.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::core;
using inframe::util::Contract_violation;

TEST(Config, PaperConfigMatchesPaperNumbers)
{
    const auto config = paper_config(1920, 1080);
    EXPECT_EQ(config.geometry.payload_bits_per_frame(), 1125);
    EXPECT_FLOAT_EQ(config.delta, 20.0f);
    EXPECT_EQ(config.tau, 12);
    EXPECT_EQ(config.video_repeat(), 4);
    EXPECT_DOUBLE_EQ(config.data_frame_rate(), 10.0);
    EXPECT_DOUBLE_EQ(config.raw_payload_rate(), 11250.0);
}

TEST(Config, Tau10GivesThePaperHeadlineRawRate)
{
    auto config = paper_config(1920, 1080);
    config.tau = 10;
    // 1125 bits x 12 data frames/s = 13.5 kbps raw; the paper measures
    // 12.6-12.8 kbps after channel losses.
    EXPECT_DOUBLE_EQ(config.raw_payload_rate(), 13500.0);
}

TEST(Config, ValidationRejectsBadParameters)
{
    auto config = paper_config(1920, 1080);
    config.tau = 11; // odd
    EXPECT_THROW(config.validate(), Contract_violation);
    config = paper_config(1920, 1080);
    config.delta = 0.0f;
    EXPECT_THROW(config.validate(), Contract_violation);
    config = paper_config(1920, 1080);
    config.delta = 200.0f;
    EXPECT_THROW(config.validate(), Contract_violation);
    config = paper_config(1920, 1080);
    config.display_fps = 100.0; // not an integer multiple of 30
    EXPECT_THROW(config.validate(), Contract_violation);
}

TEST(Config, VideoRepeatForSixtyHz)
{
    auto config = paper_config(1920, 1080);
    config.display_fps = 60.0;
    config.validate();
    EXPECT_EQ(config.video_repeat(), 2);
}

} // namespace
