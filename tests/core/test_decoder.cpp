#include "core/decoder.hpp"

#include "core/encoder.hpp"
#include "core/session.hpp"
#include "imgproc/draw.hpp"
#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::core;
using inframe::coding::Block_decision;
using inframe::img::Imagef;
using inframe::util::Contract_violation;
using inframe::util::Prng;

Inframe_config small_config()
{
    auto config = paper_config(480, 270);
    config.tau = 8;
    return config;
}

Decoder_params small_decoder(const Inframe_config& config)
{
    // Same-resolution "camera" for unit tests: geometry mapping is 1:1.
    return make_decoder_params(config, 480, 270);
}

std::vector<std::uint8_t> random_blocks(const Inframe_config& config, std::uint64_t seed)
{
    Prng prng(seed);
    return prng.next_bits(static_cast<std::size_t>(config.geometry.block_count()));
}

TEST(Decoder, MetricsSeparateBitOneFromBitZero)
{
    const auto config = small_config();
    const auto bits = random_blocks(config, 1);
    const Imagef video(480, 270, 1, 127.0f);
    const auto pair = make_complementary_pair(config, video, bits);

    Inframe_decoder decoder(small_decoder(config));
    const auto metrics = decoder.block_metrics(pair.plus);
    double max_zero = 0.0;
    double min_one = 1e9;
    for (std::size_t b = 0; b < bits.size(); ++b) {
        if (bits[b]) {
            min_one = std::min(min_one, metrics[b]);
        } else {
            max_zero = std::max(max_zero, metrics[b]);
        }
    }
    EXPECT_GT(min_one, 2.0 * max_zero + 1.0);
}

TEST(Decoder, MetricsWorkOnTheMinusFrameToo)
{
    const auto config = small_config();
    const auto bits = random_blocks(config, 2);
    const Imagef video(480, 270, 1, 127.0f);
    const auto pair = make_complementary_pair(config, video, bits);
    Inframe_decoder decoder(small_decoder(config));
    const auto plus_metrics = decoder.block_metrics(pair.plus);
    const auto minus_metrics = decoder.block_metrics(pair.minus);
    for (std::size_t b = 0; b < bits.size(); ++b) {
        EXPECT_NEAR(plus_metrics[b], minus_metrics[b], 0.5);
    }
}

TEST(Decoder, SplitDetectsBimodalMetrics)
{
    const auto config = small_config();
    Inframe_decoder decoder(small_decoder(config));
    std::vector<double> metrics;
    for (int i = 0; i < 50; ++i) metrics.push_back(0.5 + 0.01 * i);
    for (int i = 0; i < 50; ++i) metrics.push_back(8.0 + 0.01 * i);
    const auto split = decoder.split_metrics(metrics);
    EXPECT_TRUE(split.bimodal);
    EXPECT_GT(split.value, 1.0);
    EXPECT_LT(split.value, 8.0);
}

TEST(Decoder, SplitFlagsUnimodalMetrics)
{
    const auto config = small_config();
    Inframe_decoder decoder(small_decoder(config));
    std::vector<double> metrics;
    for (int i = 0; i < 100; ++i) metrics.push_back(1.0 + 0.005 * i);
    EXPECT_FALSE(decoder.split_metrics(metrics).bimodal);
}

TEST(Decoder, FixedThresholdUsedWhenAutoDisabled)
{
    auto params = small_decoder(small_config());
    params.auto_threshold = false;
    params.fixed_threshold = 3.5;
    Inframe_decoder decoder(params);
    const std::vector<double> metrics(100, 1.0);
    EXPECT_DOUBLE_EQ(decoder.select_threshold(metrics), 3.5);
}

TEST(Decoder, EndToEndCleanCaptureDecodesExactly)
{
    const auto config = small_config();
    Inframe_encoder encoder(config);
    Prng prng(3);
    const auto payload_bits =
        prng.next_bits(static_cast<std::size_t>(config.geometry.payload_bits_per_frame()));
    encoder.queue_payload(payload_bits);
    encoder.queue_payload(
        prng.next_bits(static_cast<std::size_t>(config.geometry.payload_bits_per_frame())));
    const auto bits = inframe::coding::encode_gob_parity(config.geometry, payload_bits);
    const Imagef video(480, 270, 1, 127.0f);

    Inframe_decoder decoder(small_decoder(config));
    std::vector<Data_frame_result> results;
    // Display frames 0..7 are data frame 0; feed every 4th frame as a
    // clean "capture" (30 FPS camera, perfectly aligned, no noise).
    for (int j = 0; j < 2 * config.tau; ++j) {
        const Imagef frame = encoder.next_display_frame(video);
        if (j % 4 == 0) {
            for (auto& r : decoder.push_capture(frame, j / 120.0)) results.push_back(std::move(r));
        }
    }
    if (auto last = decoder.flush()) results.push_back(std::move(*last));

    ASSERT_GE(results.size(), 1u);
    const auto& r0 = results[0];
    EXPECT_EQ(r0.data_frame_index, 0);
    EXPECT_DOUBLE_EQ(r0.gob.available_ratio, 1.0);
    EXPECT_DOUBLE_EQ(r0.gob.error_rate, 0.0);
    for (std::size_t b = 0; b < bits.size(); ++b) {
        const auto expected = bits[b] ? Block_decision::one : Block_decision::zero;
        EXPECT_EQ(r0.decisions[b], expected) << "block " << b;
    }
}

TEST(Decoder, TransitionRegionCapturesDoNotVote)
{
    const auto config = small_config(); // tau = 8: stable phase < 0.5 => frames 0..3
    Inframe_decoder decoder(small_decoder(config));
    const Imagef capture(480, 270, 1, 127.0f);
    // Captures at display frames 5 and 7 (phases 0.625, 0.875): ignored.
    decoder.push_capture(capture, 5.0 / 120.0);
    decoder.push_capture(capture, 7.0 / 120.0);
    const auto result = decoder.flush();
    EXPECT_FALSE(result.has_value());
}

TEST(Decoder, UniformCaptureYieldsUnknownRows)
{
    // A capture with no pattern at all (e.g. total rolling-shutter
    // cancellation): rows are unimodal, so everything stays unknown
    // rather than reading confident zeros.
    const auto config = small_config();
    Inframe_decoder decoder(small_decoder(config));
    Prng prng(5);
    Imagef capture(480, 270, 1, 127.0f);
    for (auto& v : capture.values()) v += static_cast<float>(prng.next_gaussian(0.0, 1.0));
    decoder.push_capture(capture, 0.0);
    const auto result = decoder.flush();
    ASSERT_TRUE(result.has_value());
    for (const auto d : result->decisions) EXPECT_EQ(d, Block_decision::unknown);
    EXPECT_DOUBLE_EQ(result->gob.available_ratio, 0.0);
}

TEST(Decoder, PartialCancellationBandGoesUnknownNotWrong)
{
    // Top 2/3 of the capture carries the pattern, bottom 1/3 lost it
    // (simulated rolling-shutter seam). Bottom rows must come back
    // unknown; top rows decode correctly.
    const auto config = small_config();
    const auto bits = random_blocks(config, 6);
    const Imagef video(480, 270, 1, 127.0f);
    auto pair = make_complementary_pair(config, video, bits);
    inframe::img::fill_rect(pair.plus, 0, 180, 480, 90, 127.0f);

    Inframe_decoder decoder(small_decoder(config));
    decoder.push_capture(pair.plus, 0.0);
    const auto result = decoder.flush();
    ASSERT_TRUE(result.has_value());
    const auto& g = config.geometry;
    int wrong = 0;
    int unknown_bottom = 0;
    int bottom = 0;
    for (int by = 0; by < g.blocks_y; ++by) {
        for (int bx = 0; bx < g.blocks_x; ++bx) {
            const auto rect = g.block_rect(bx, by);
            const auto index = static_cast<std::size_t>(g.block_index(bx, by));
            const auto decision = result->decisions[index];
            if (rect.y0 >= 180) {
                ++bottom;
                unknown_bottom += decision == Block_decision::unknown;
                continue;
            }
            if (decision == Block_decision::unknown) continue;
            const auto expected = bits[index] ? Block_decision::one : Block_decision::zero;
            wrong += decision != expected;
        }
    }
    EXPECT_EQ(wrong, 0);
    EXPECT_GT(bottom, 0);
    // The wiped band must be dominated by unknowns (not confident zeros).
    EXPECT_GT(static_cast<double>(unknown_bottom) / bottom, 0.9);
}

TEST(Decoder, CaptureSizeMismatchThrows)
{
    const auto config = small_config();
    Inframe_decoder decoder(small_decoder(config));
    EXPECT_THROW(decoder.block_metrics(Imagef(100, 100)), Contract_violation);
}

TEST(Decoder, ParamsValidation)
{
    auto params = small_decoder(small_config());
    params.tau = 7;
    EXPECT_THROW(Inframe_decoder{params}, Contract_violation);
    params = small_decoder(small_config());
    params.hysteresis = 1.5;
    EXPECT_THROW(Inframe_decoder{params}, Contract_violation);
    params = small_decoder(small_config());
    params.stable_fraction = 0.0;
    EXPECT_THROW(Inframe_decoder{params}, Contract_violation);
    params = small_decoder(small_config());
    params.capture_width = 0;
    EXPECT_THROW(Inframe_decoder{params}, Contract_violation);
}

TEST(Decoder, LaterCaptureFinalizesEarlierFrames)
{
    const auto config = small_config(); // tau = 8 -> frame period 1/15 s
    const auto bits = random_blocks(config, 7);
    const Imagef video(480, 270, 1, 127.0f);
    const auto pair = make_complementary_pair(config, video, bits);

    Inframe_decoder decoder(small_decoder(config));
    EXPECT_TRUE(decoder.push_capture(pair.plus, 0.0).empty());
    // A capture two data-frame periods later finalizes frames 0 and 1.
    const auto finalized = decoder.push_capture(pair.plus, 2.0 * 8.0 / 120.0);
    ASSERT_EQ(finalized.size(), 2u);
    EXPECT_EQ(finalized[0].data_frame_index, 0);
    EXPECT_EQ(finalized[0].captures_used, 1);
    EXPECT_EQ(finalized[1].data_frame_index, 1);
    EXPECT_EQ(finalized[1].captures_used, 0);
}

} // namespace
