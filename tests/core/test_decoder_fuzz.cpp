// Fuzz-style decoder hardening: garbage in, graceful degradation out.
//
// The decoder sits at the trust boundary of the receive path — whatever
// the camera pipeline delivers, it must never crash, hang, or emit
// malformed results. These tests throw pathological capture streams at
// it (pure noise, saturated frames, truncated sequences, hostile
// timestamps, wrong-size images) and assert well-formed output or a
// clean Contract_violation, never UB.

#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/session.hpp"
#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace {

using namespace inframe::core;
using inframe::img::Imagef;
using inframe::util::Prng;

constexpr int width = 480;
constexpr int height = 270;

Decoder_params fuzz_params(bool erasure_aware)
{
    auto config = paper_config(width, height);
    config.geometry = inframe::coding::fitted_geometry(width, height, 2);
    auto params = make_decoder_params(config, width, height);
    params.erasure_aware = erasure_aware;
    return params;
}

// Every result the decoder hands out must be internally consistent,
// whatever it was fed.
void expect_well_formed(const Data_frame_result& result, const Decoder_params& params)
{
    const auto blocks = static_cast<std::size_t>(params.geometry.block_count());
    ASSERT_EQ(result.decisions.size(), blocks);
    if (params.erasure_aware) {
        ASSERT_EQ(result.erasures.size(), blocks);
        for (std::size_t b = 0; b < blocks; ++b) {
            if (result.erasures[b]) {
                EXPECT_EQ(result.decisions[b], inframe::coding::Block_decision::unknown)
                    << "an erased block must not carry a confident decision";
            }
        }
    }
    ASSERT_EQ(result.gob.gobs.size(), static_cast<std::size_t>(params.geometry.gob_count()));
    ASSERT_EQ(result.gob.payload_bits.size(),
              static_cast<std::size_t>(params.geometry.payload_bits_per_frame()));
    ASSERT_EQ(result.gob.payload_bit_trusted.size(), result.gob.payload_bits.size());
    EXPECT_GE(result.gob.available_ratio, 0.0);
    EXPECT_LE(result.gob.available_ratio, 1.0);
    EXPECT_GE(result.gob.error_rate, 0.0);
    EXPECT_LE(result.gob.error_rate, 1.0);
    EXPECT_GE(result.occluded_blocks, 0);
    EXPECT_LE(result.occluded_blocks, static_cast<int>(blocks));
}

TEST(DecoderFuzz, PureNoiseCapturesProduceWellFormedResults)
{
    for (const bool erasure_aware : {false, true}) {
        const auto params = fuzz_params(erasure_aware);
        Inframe_decoder decoder(params);
        Prng prng(0xf022u + (erasure_aware ? 1u : 0u));
        std::vector<Data_frame_result> results;
        for (int j = 0; j < 40; ++j) {
            Imagef capture(width, height, 1);
            for (auto& v : capture.values()) {
                v = static_cast<float>(prng.next_double(0.0, 255.0));
            }
            for (auto& r : decoder.push_capture(capture, j / 120.0)) {
                results.push_back(std::move(r));
            }
        }
        if (auto last = decoder.flush()) results.push_back(std::move(*last));
        ASSERT_FALSE(results.empty());
        for (const auto& result : results) expect_well_formed(result, params);
    }
}

TEST(DecoderFuzz, SaturatedFramesDecodeToUnknownNotGarbage)
{
    for (const float level : {0.0f, 255.0f}) {
        for (const bool erasure_aware : {false, true}) {
            const auto params = fuzz_params(erasure_aware);
            Inframe_decoder decoder(params);
            const Imagef capture(width, height, 1, level);
            std::vector<Data_frame_result> results;
            for (int j = 0; j < 30; ++j) {
                for (auto& r : decoder.push_capture(capture, j / 120.0)) {
                    results.push_back(std::move(r));
                }
            }
            if (auto last = decoder.flush()) results.push_back(std::move(*last));
            ASSERT_FALSE(results.empty());
            for (const auto& result : results) {
                expect_well_formed(result, params);
                // A constant field carries no chessboard: nothing may
                // decode as a confident bit.
                for (const auto decision : result.decisions) {
                    EXPECT_EQ(decision, inframe::coding::Block_decision::unknown);
                }
            }
        }
    }
}

TEST(DecoderFuzz, TruncatedCaptureSequencesFlushCleanly)
{
    // 0, 1, or a handful of captures — far fewer than a full tau cycle.
    for (const int captures : {0, 1, 3}) {
        const auto params = fuzz_params(true);
        Inframe_decoder decoder(params);
        Prng prng(static_cast<std::uint64_t>(captures) + 77);
        for (int j = 0; j < captures; ++j) {
            Imagef capture(width, height, 1);
            for (auto& v : capture.values()) {
                v = static_cast<float>(prng.next_double(0.0, 255.0));
            }
            EXPECT_TRUE(decoder.push_capture(capture, j / 120.0).empty());
        }
        const auto last = decoder.flush();
        if (captures == 0) {
            EXPECT_FALSE(last.has_value()) << "nothing pushed, nothing to flush";
        } else {
            ASSERT_TRUE(last.has_value());
            expect_well_formed(*last, params);
        }
        // Flushing twice must not double-emit.
        EXPECT_FALSE(decoder.flush().has_value());
    }
}

TEST(DecoderFuzz, HostileTimestampsAreCappedNotAmplified)
{
    const auto params = fuzz_params(true);
    Inframe_decoder decoder(params);
    const Imagef capture(width, height, 1, 127.0f);
    ASSERT_TRUE(decoder.push_capture(capture, 0.0).empty());

    // A timestamp billions of frames in the future must finalize at most
    // one in-progress frame, not emit millions of idle results (and the
    // double -> int64 conversion must saturate, not overflow).
    for (const double hostile :
         {1.0e12, 1.0e300, std::numeric_limits<double>::max()}) {
        const auto results = decoder.push_capture(capture, hostile);
        EXPECT_LE(results.size(),
                  static_cast<std::size_t>(params.max_frame_gap) + 1)
            << "timestamp " << hostile;
    }

    // Negative time violates the decoder's stated precondition.
    EXPECT_THROW(decoder.push_capture(capture, -1.0), inframe::util::Contract_violation);
}

TEST(DecoderFuzz, WrongSizeCaptureIsRejectedLoudly)
{
    Inframe_decoder decoder(fuzz_params(true));
    const Imagef wrong(width / 2, height / 2, 1, 127.0f);
    EXPECT_THROW(decoder.push_capture(wrong, 0.0), inframe::util::Contract_violation);
    // The decoder survives the rejection and keeps working.
    const Imagef right(width, height, 1, 127.0f);
    EXPECT_NO_THROW(decoder.push_capture(right, 0.0));
}

TEST(DecoderFuzz, ThreeChannelGarbageIsAccepted)
{
    // Color captures route through the luminance conversion; fuzz that
    // path too.
    const auto params = fuzz_params(true);
    Inframe_decoder decoder(params);
    Prng prng(0xc0103u);
    std::vector<Data_frame_result> results;
    for (int j = 0; j < 30; ++j) {
        Imagef capture(width, height, 3);
        for (auto& v : capture.values()) {
            v = static_cast<float>(prng.next_double(0.0, 255.0));
        }
        for (auto& r : decoder.push_capture(capture, j / 120.0)) {
            results.push_back(std::move(r));
        }
    }
    if (auto last = decoder.flush()) results.push_back(std::move(*last));
    ASSERT_FALSE(results.empty());
    for (const auto& result : results) expect_well_formed(result, params);
}

} // namespace
