#include "core/encoder.hpp"

#include "imgproc/image_ops.hpp"
#include "imgproc/metrics.hpp"
#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::core;
using inframe::img::Imagef;
using inframe::util::Contract_violation;
using inframe::util::Prng;

Inframe_config small_config()
{
    auto config = paper_config(480, 270); // p = 1, 50x30 blocks, 1125 bits
    config.tau = 8;
    return config;
}

std::vector<std::uint8_t> random_payload(const Inframe_config& config, std::uint64_t seed)
{
    Prng prng(seed);
    return prng.next_bits(static_cast<std::size_t>(config.geometry.payload_bits_per_frame()));
}

TEST(Encoder, ComplementaryPairAveragesBackToVideo)
{
    const auto config = small_config();
    Inframe_encoder encoder(config);
    encoder.queue_payload(random_payload(config, 1));
    const Imagef video(480, 270, 1, 127.0f);
    const Imagef plus = encoder.next_display_frame(video);
    const Imagef minus = encoder.next_display_frame(video);
    // (V+D) + (V-D) == 2V exactly (no clamping at mid gray).
    Imagef sum = inframe::img::add(plus, minus);
    const Imagef twice = inframe::img::affine(video, 2.0f, 0.0f);
    EXPECT_LT(inframe::img::mae(sum, twice), 1e-4);
}

TEST(Encoder, FirstFrameCarriesTheChessboard)
{
    const auto config = small_config();
    Inframe_encoder encoder(config);
    auto payload = random_payload(config, 2);
    encoder.queue_payload(payload);
    const Imagef video(480, 270, 1, 127.0f);
    const Imagef plus = encoder.next_display_frame(video);
    // Identify a bit-1 block from the recorded truth and check amplitude.
    const auto* truth = encoder.transmitted_block_bits(0);
    ASSERT_NE(truth, nullptr);
    bool checked_one = false;
    bool checked_zero = false;
    const auto& g = config.geometry;
    for (int by = 0; by < g.blocks_y && !(checked_one && checked_zero); ++by) {
        for (int bx = 0; bx < g.blocks_x; ++bx) {
            const auto rect = g.block_rect(bx, by);
            const double deviation = inframe::img::mean_abs_region(
                inframe::img::abs_diff(plus, video), rect.x0, rect.y0, rect.size, rect.size);
            if ((*truth)[static_cast<std::size_t>(g.block_index(bx, by))]) {
                // ~half the Pixels raised by delta.
                EXPECT_NEAR(deviation, config.delta * 4.0 / 9.0, 1.0);
                checked_one = true;
            } else {
                EXPECT_NEAR(deviation, 0.0, 1e-4);
                checked_zero = true;
            }
        }
    }
    EXPECT_TRUE(checked_one);
    EXPECT_TRUE(checked_zero);
}

TEST(Encoder, IdlesWithPlainVideoWhenQueueEmpty)
{
    const auto config = small_config();
    Inframe_encoder encoder(config);
    const Imagef video(480, 270, 1, 127.0f);
    const Imagef out = encoder.next_display_frame(video);
    EXPECT_LT(inframe::img::mae(out, video), 1e-4);
}

TEST(Encoder, AmplitudeHoldsInFirstHalfOfCycle)
{
    const auto config = small_config(); // tau = 8
    Inframe_encoder encoder(config);
    encoder.queue_payload(random_payload(config, 3));
    encoder.queue_payload(random_payload(config, 4));
    const Imagef video(480, 270, 1, 127.0f);
    // Frames 0 and 2 are both +D at full amplitude.
    const Imagef f0 = encoder.next_display_frame(video);
    encoder.next_display_frame(video);
    const Imagef f2 = encoder.next_display_frame(video);
    EXPECT_LT(inframe::img::mae(f0, f2), 1e-4);
}

TEST(Encoder, TransitionRampsWhenBitsFlip)
{
    auto config = small_config(); // tau = 8, transition in frames 4..7
    Inframe_encoder encoder(config);
    const auto count = static_cast<std::size_t>(config.geometry.block_count());
    encoder.queue_block_bits(std::vector<std::uint8_t>(count, 1));
    encoder.queue_block_bits(std::vector<std::uint8_t>(count, 0));
    encoder.queue_block_bits(std::vector<std::uint8_t>(count, 0));
    const Imagef video(480, 270, 1, 127.0f);
    std::vector<double> amplitude;
    for (int j = 0; j < 16; ++j) {
        const Imagef out = encoder.next_display_frame(video);
        amplitude.push_back(inframe::img::mean(inframe::img::abs_diff(out, video)));
    }
    // Full amplitude while holding, strictly decaying through the
    // transition, zero in the second data frame.
    EXPECT_NEAR(amplitude[0], amplitude[3], 1e-4);
    EXPECT_GT(amplitude[3], amplitude[5]);
    EXPECT_GT(amplitude[5], amplitude[6]);
    EXPECT_NEAR(amplitude[8], 0.0, 1e-4);
    EXPECT_NEAR(amplitude[15], 0.0, 1e-4);
}

TEST(Encoder, LocalCapPreventsClippingAndKeepsComplementarity)
{
    auto config = small_config();
    Inframe_encoder encoder(config);
    const auto count = static_cast<std::size_t>(config.geometry.block_count());
    encoder.queue_block_bits(std::vector<std::uint8_t>(count, 1));
    // Nearly white video: headroom is only 5 levels.
    const Imagef video(480, 270, 1, 250.0f);
    const Imagef plus = encoder.next_display_frame(video);
    const Imagef minus = encoder.next_display_frame(video);
    const auto [lo_p, hi_p] = inframe::img::min_max(plus);
    EXPECT_LE(hi_p, 255.0f);
    // Amplitude capped at 5, not delta = 20.
    EXPECT_NEAR(hi_p, 255.0f, 1e-3f);
    EXPECT_GE(lo_p, 249.9f);
    // The pair still averages to the video.
    const Imagef sum = inframe::img::add(plus, minus);
    EXPECT_LT(inframe::img::mae(sum, inframe::img::affine(video, 2.0f, 0.0f)), 1e-3);
}

TEST(Encoder, CapDisabledClipsInstead)
{
    auto config = small_config();
    config.local_amplitude_cap = false;
    Inframe_encoder encoder(config);
    const auto count = static_cast<std::size_t>(config.geometry.block_count());
    encoder.queue_block_bits(std::vector<std::uint8_t>(count, 1));
    const Imagef video(480, 270, 1, 250.0f);
    const Imagef plus = encoder.next_display_frame(video);
    const Imagef minus = encoder.next_display_frame(video);
    // Clipping breaks complementarity: the average is biased dark.
    const Imagef sum = inframe::img::add(plus, minus);
    EXPECT_GT(inframe::img::mae(sum, inframe::img::affine(video, 2.0f, 0.0f)), 1.0);
}

TEST(Encoder, TracksTransmittedBits)
{
    const auto config = small_config();
    Inframe_encoder encoder(config);
    auto bits_a = random_payload(config, 5);
    encoder.queue_payload(bits_a);
    const Imagef video(480, 270, 1, 127.0f);
    EXPECT_EQ(encoder.transmitted_block_bits(0), nullptr); // nothing on air yet
    encoder.next_display_frame(video);
    ASSERT_NE(encoder.transmitted_block_bits(0), nullptr);
    EXPECT_EQ(encoder.display_index(), 1);
    EXPECT_EQ(encoder.data_frame_index(), 0);
}

TEST(Encoder, RejectsWrongVideoSize)
{
    const auto config = small_config();
    Inframe_encoder encoder(config);
    EXPECT_THROW(encoder.next_display_frame(Imagef(100, 100)), Contract_violation);
}

TEST(Encoder, RejectsWrongBlockBitCount)
{
    const auto config = small_config();
    Inframe_encoder encoder(config);
    EXPECT_THROW(encoder.queue_block_bits(std::vector<std::uint8_t>(10, 0)),
                 Contract_violation);
}

TEST(ComplementaryPair, AveragesToVideoAndDiffers)
{
    const auto config = small_config();
    Prng prng(6);
    const auto bits = prng.next_bits(static_cast<std::size_t>(config.geometry.block_count()));
    const Imagef video(480, 270, 1, 127.0f);
    const auto pair = make_complementary_pair(config, video, bits);
    const Imagef sum = inframe::img::add(pair.plus, pair.minus);
    EXPECT_LT(inframe::img::mae(sum, inframe::img::affine(video, 2.0f, 0.0f)), 1e-4);
    EXPECT_GT(inframe::img::mae(pair.plus, pair.minus), 1.0);
    // Each frame alone has visible artifacts (low PSNR vs video), the
    // average does not — Fig. 4's point.
    EXPECT_LT(inframe::img::psnr(pair.plus, video), 35.0);
}

TEST(Encoder, PauseRampsOutSmoothlyAndRendersPlainVideo)
{
    const auto config = small_config(); // tau = 8
    Inframe_encoder encoder(config);
    const auto count = static_cast<std::size_t>(config.geometry.block_count());
    for (int i = 0; i < 6; ++i) encoder.queue_block_bits(std::vector<std::uint8_t>(count, 1));
    const Imagef video(480, 270, 1, 127.0f);

    // Air most of the first data frame, then pause.
    for (int j = 0; j < 3; ++j) encoder.next_display_frame(video);
    encoder.pause();
    EXPECT_TRUE(encoder.paused());
    EXPECT_FALSE(encoder.idle());

    std::vector<double> amplitude;
    for (int j = 3; j < 3 * config.tau; ++j) {
        const Imagef out = encoder.next_display_frame(video);
        amplitude.push_back(inframe::img::mean(inframe::img::abs_diff(out, video)));
    }
    // The current cycle finishes with a ramp (no abrupt cut): amplitude
    // still present mid-transition (the ramp reaches exactly zero on the
    // cycle's final frame).
    EXPECT_GT(amplitude[0], 0.0);
    const auto half = static_cast<std::size_t>(config.tau / 2);
    EXPECT_GT(amplitude[half - 1], 0.0);
    // ...and everything after the cycle boundary is plain video.
    for (std::size_t i = static_cast<std::size_t>(config.tau) - 3; i < amplitude.size(); ++i) {
        EXPECT_NEAR(amplitude[i], 0.0, 1e-4) << "frame " << i;
    }
    EXPECT_TRUE(encoder.idle());

    // Resume: queued data continues with a smooth ramp back in.
    encoder.resume();
    EXPECT_FALSE(encoder.paused());
    bool data_returned = false;
    for (int j = 0; j < 3 * config.tau; ++j) {
        const Imagef out = encoder.next_display_frame(video);
        data_returned |= inframe::img::mean(inframe::img::abs_diff(out, video)) > 1.0;
    }
    EXPECT_TRUE(data_returned);
}

TEST(Encoder, PauseBeforeFirstFrameIsImmediatelyIdle)
{
    const auto config = small_config();
    Inframe_encoder encoder(config);
    const auto count = static_cast<std::size_t>(config.geometry.block_count());
    encoder.queue_block_bits(std::vector<std::uint8_t>(count, 1));
    encoder.pause();
    const Imagef video(480, 270, 1, 127.0f);
    const Imagef out = encoder.next_display_frame(video);
    EXPECT_LT(inframe::img::mae(out, video), 1e-4);
    EXPECT_TRUE(encoder.idle());
}

TEST(Encoder, PauseDoesNotLoseQueuedData)
{
    const auto config = small_config();
    Inframe_encoder encoder(config);
    Prng prng(9);
    const auto bits_a = prng.next_bits(static_cast<std::size_t>(config.geometry.block_count()));
    const auto bits_b = prng.next_bits(static_cast<std::size_t>(config.geometry.block_count()));
    encoder.queue_block_bits(bits_a);
    encoder.queue_block_bits(bits_b);
    const Imagef video(480, 270, 1, 127.0f);
    encoder.next_display_frame(video); // airs frame 0 (bits_a), peeks bits_b
    encoder.pause();
    for (int j = 1; j < 2 * config.tau; ++j) encoder.next_display_frame(video);
    encoder.resume();
    // bits_b must air after resume.
    bool found = false;
    for (int j = 0; j < 3 * config.tau && !found; ++j) {
        encoder.next_display_frame(video);
        const auto index = encoder.data_frame_index();
        const auto* bits = encoder.transmitted_block_bits(index);
        found = bits != nullptr && *bits == bits_b;
    }
    EXPECT_TRUE(found);
}

TEST(ComplementaryPair, SizeValidation)
{
    const auto config = small_config();
    const Imagef wrong(100, 100);
    const std::vector<std::uint8_t> bits(
        static_cast<std::size_t>(config.geometry.block_count()), 0);
    EXPECT_THROW(make_complementary_pair(config, wrong, bits), Contract_violation);
}

} // namespace
