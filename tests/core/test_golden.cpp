// Golden regression vectors: CRC32 fingerprints of the encoder's display
// frames and of the decoded payload for two frozen reference configs.
//
// These pin the *exact* bit-level behaviour of the whole encode path
// (chessboard embed, complementary pair, GOB parity) and of the clean
// channel decode. Any intentional change to the modulation or coding
// layers will trip them; when that happens, verify the change is wanted,
// then refresh the constants from the values the failing test prints
// (run: test_core --gtest_filter='Golden*').

#include "coding/parity.hpp"
#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/session.hpp"
#include "util/crc32.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace inframe::core;
using inframe::img::Imagef;
using inframe::util::Prng;

struct Golden_case {
    const char* name;
    int pixel_size;
    int tau;
    float delta;
    float video_level;
    std::uint64_t payload_seed;
    std::uint32_t display_crc; // CRC32 over all tau quantized display frames
    std::uint32_t payload_crc; // CRC32 over the decoded payload bits
};

// Frozen reference fingerprints. Regenerate only for an intentional
// modulation/coding change (see header comment).
constexpr Golden_case golden_cases[] = {
    {"p2_tau12", 2, 12, 20.0f, 127.0f, 0x00d5'eed5'eed5'eed5ULL, 0xa88f30d9u, 0xfc0d280au},
    {"p1_tau8", 1, 8, 40.0f, 180.0f, 0x1bad'b002'0000'0001ULL, 0x19d91409u, 0x80ea58ccu},
};

class Golden : public ::testing::TestWithParam<Golden_case> {};

TEST_P(Golden, DisplayFramesAndDecodedPayloadMatchFrozenCrcs)
{
    const auto& g = GetParam();
    auto config = paper_config(480, 270);
    config.geometry = inframe::coding::fitted_geometry(480, 270, g.pixel_size);
    config.tau = g.tau;
    config.delta = g.delta;

    Inframe_encoder encoder(config);
    Prng prng(g.payload_seed);
    const auto payload =
        prng.next_bits(static_cast<std::size_t>(config.geometry.payload_bits_per_frame()));
    encoder.queue_payload(payload);
    encoder.queue_payload(
        prng.next_bits(static_cast<std::size_t>(config.geometry.payload_bits_per_frame())));
    const auto truth = inframe::coding::encode_gob_parity(config.geometry, payload);

    Inframe_decoder decoder(make_decoder_params(config, 480, 270));
    const Imagef video(480, 270, 1, g.video_level);

    std::vector<std::uint8_t> display_bytes;
    std::vector<Data_frame_result> results;
    for (int j = 0; j < 2 * g.tau; ++j) {
        const Imagef frame = encoder.next_display_frame(video);
        if (j < g.tau) {
            // Fingerprint what the panel would show: the quantized frame.
            const auto u8 = inframe::img::to_u8(frame);
            display_bytes.insert(display_bytes.end(), u8.values().begin(), u8.values().end());
        }
        if (j % 2 == 0) {
            for (auto& r : decoder.push_capture(frame, j / 120.0)) {
                results.push_back(std::move(r));
            }
        }
    }
    if (auto last = decoder.flush()) results.push_back(std::move(*last));

    ASSERT_FALSE(results.empty());
    const auto& r0 = results.front();
    ASSERT_DOUBLE_EQ(r0.gob.available_ratio, 1.0)
        << g.name << ": golden configs decode cleanly by construction";
    const std::uint32_t display_crc = inframe::util::crc32(display_bytes);
    const std::uint32_t payload_crc = inframe::util::crc32(r0.gob.payload_bits);

    EXPECT_EQ(display_crc, g.display_crc)
        << g.name << ": display frame stream changed; new CRC 0x" << std::hex << display_crc;
    EXPECT_EQ(payload_crc, g.payload_crc)
        << g.name << ": decoded payload changed; new CRC 0x" << std::hex << payload_crc;

    // The frozen payload CRC must agree with the transmitted payload —
    // golden vectors pin behaviour, not bugs.
    std::size_t mismatches = 0;
    for (std::size_t b = 0; b < payload.size(); ++b) {
        mismatches += r0.gob.payload_bits[b] != payload[b];
    }
    EXPECT_EQ(mismatches, 0u) << g.name;
}

INSTANTIATE_TEST_SUITE_P(ReferenceConfigs, Golden, ::testing::ValuesIn(golden_cases),
                         [](const auto& info) { return info.param.name; });

} // namespace
