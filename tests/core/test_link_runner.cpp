#include "core/link_runner.hpp"

#include "util/contract.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe;
using namespace inframe::core;

// Small, fast rig: 480x270 screen, same-resolution sensor, clean optics.
Link_experiment_config clean_rig(std::shared_ptr<const video::Video_source> source)
{
    Link_experiment_config config;
    config.video = std::move(source);
    config.inframe = paper_config(480, 270);
    config.inframe.tau = 8;
    config.camera.sensor_width = 480;
    config.camera.sensor_height = 270;
    config.camera.fps = 30.0;
    config.camera.exposure_s = 1.0 / 120.0;
    config.camera.readout_s = 0.0;
    config.camera.optical_blur_sigma = 0.0;
    config.camera.offset_x_px = 0.0;
    config.camera.offset_y_px = 0.0;
    config.camera.shot_noise_scale = 0.0;
    config.camera.read_noise_sigma = 0.0;
    config.camera.quantize = false;
    config.display.response_persistence = 0.0;
    config.display.black_level = 0.0;
    config.auto_exposure = false;
    config.duration_s = 0.5;
    return config;
}

TEST(LinkRunner, CleanChannelIsLossless)
{
    const auto config = clean_rig(video::make_dark_gray_video(480, 270));
    const auto result = run_link_experiment(config);
    EXPECT_GT(result.data_frames, 0);
    EXPECT_DOUBLE_EQ(result.available_gob_ratio, 1.0);
    EXPECT_DOUBLE_EQ(result.gob_error_rate, 0.0);
    EXPECT_DOUBLE_EQ(result.block_error_rate, 0.0);
    EXPECT_DOUBLE_EQ(result.trusted_bit_error_rate, 0.0);
    EXPECT_NEAR(result.goodput_kbps, result.raw_rate_kbps, 0.01);
}

TEST(LinkRunner, RawRateMatchesConfig)
{
    const auto config = clean_rig(video::make_dark_gray_video(480, 270));
    const auto result = run_link_experiment(config);
    // 1125 bits x 120/8 = 16.875 kbps.
    EXPECT_NEAR(result.raw_rate_kbps, 16.875, 1e-9);
}

TEST(LinkRunner, SensorNoiseDegradesGracefullyNotWrongly)
{
    auto config = clean_rig(video::make_dark_gray_video(480, 270));
    config.camera.shot_noise_scale = 0.3;
    config.camera.read_noise_sigma = 2.0;
    config.camera.quantize = true;
    const auto result = run_link_experiment(config);
    // Noise may cost availability, but trusted bits stay correct.
    EXPECT_GT(result.available_gob_ratio, 0.5);
    EXPECT_LT(result.trusted_bit_error_rate, 0.01);
}

TEST(LinkRunner, LongExposureCancelsThePattern)
{
    auto config = clean_rig(video::make_dark_gray_video(480, 270));
    // Exposure spanning a complete +D/-D pair: data cancels, nothing
    // decodes (but nothing decodes *wrongly* either).
    config.camera.exposure_s = 2.0 / 120.0;
    const auto result = run_link_experiment(config);
    EXPECT_LT(result.available_gob_ratio, 0.05);
    EXPECT_LT(result.block_error_rate, 0.05);
}

TEST(LinkRunner, SmallerTauRaisesRawAndGoodput)
{
    auto fast = clean_rig(video::make_dark_gray_video(480, 270));
    fast.inframe.tau = 8;
    auto slow = clean_rig(video::make_dark_gray_video(480, 270));
    slow.inframe.tau = 16;
    const auto fast_result = run_link_experiment(fast);
    const auto slow_result = run_link_experiment(slow);
    EXPECT_NEAR(fast_result.goodput_kbps / slow_result.goodput_kbps, 2.0, 0.2);
}

TEST(LinkRunner, ValidatesInputs)
{
    auto config = clean_rig(video::make_dark_gray_video(480, 270));
    config.video = nullptr;
    EXPECT_THROW(run_link_experiment(config), util::Contract_violation);

    config = clean_rig(video::make_dark_gray_video(480, 270));
    config.duration_s = 0.0;
    EXPECT_THROW(run_link_experiment(config), util::Contract_violation);

    config = clean_rig(video::make_dark_gray_video(960, 540)); // size mismatch
    EXPECT_THROW(run_link_experiment(config), util::Contract_violation);
}

TEST(LinkRunner, DeterministicForFixedSeeds)
{
    auto config = clean_rig(video::make_dark_gray_video(480, 270));
    config.camera.shot_noise_scale = 0.2;
    const auto a = run_link_experiment(config);
    const auto b = run_link_experiment(config);
    EXPECT_DOUBLE_EQ(a.goodput_kbps, b.goodput_kbps);
    EXPECT_DOUBLE_EQ(a.available_gob_ratio, b.available_gob_ratio);
}

TEST(FlickerRunner, InframeEncodingIsNearInvisible)
{
    Flicker_experiment_config config;
    config.video = video::make_dark_gray_video(480, 270);
    config.inframe = paper_config(480, 270);
    config.inframe.tau = 12;
    config.duration_s = 1.0;
    config.observers = 4;
    config.options.max_sites = 256;
    const auto result = run_flicker_experiment(config);
    ASSERT_EQ(result.scores.size(), 4u);
    EXPECT_LT(result.mean_score, 1.5);
}

TEST(FlickerRunner, CustomProducerOverridesEncoder)
{
    // A producer that flashes the whole screen at 30 Hz must score far
    // worse than the InFrame encoder on the same video.
    Flicker_experiment_config config;
    config.video = video::make_dark_gray_video(480, 270);
    config.inframe = paper_config(480, 270);
    config.duration_s = 1.0;
    config.observers = 4;
    config.options.max_sites = 256;
    config.frame_producer = [](const img::Imagef& video_frame, std::int64_t j) {
        img::Imagef out = video_frame;
        const float offset = (j % 4 < 2) ? 25.0f : -25.0f;
        out.transform([&](float v) { return std::clamp(v + offset, 0.0f, 255.0f); });
        return out;
    };
    const auto flashing = run_flicker_experiment(config);
    EXPECT_GT(flashing.mean_score, 2.0);
}

TEST(FlickerRunner, Validation)
{
    Flicker_experiment_config config;
    config.video = nullptr;
    EXPECT_THROW(run_flicker_experiment(config), util::Contract_violation);
}

} // namespace
