// Thread-count invariance of the whole pipeline.
//
// The parallel execution layer promises bit-identical output for every
// thread count (DESIGN.md, "Threading model & determinism"): chunk
// boundaries depend only on range and grain, per-row sensor noise is seeded
// per row, and reductions merge fixed slices in order. These tests pin that
// contract end to end: encoder display frames, channel captures, and the
// decoded experiment results must match threads=1 exactly — not within a
// tolerance — at 2, 4 and 7 threads.
#include "core/link_runner.hpp"

#include "channel/link.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/image_ops.hpp"
#include "imgproc/resize.hpp"
#include "imgproc/warp.hpp"
#include "simd/simd.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace inframe;
using namespace inframe::core;
using inframe::util::Parallel_scope;

constexpr int thread_counts[] = {2, 4, 7};

bool bit_identical(const img::Imagef& a, const img::Imagef& b)
{
    if (!a.same_shape(b)) return false;
    const auto va = a.values();
    const auto vb = b.values();
    for (std::size_t i = 0; i < va.size(); ++i) {
        if (va[i] != vb[i]) return false;
    }
    return true;
}

Link_experiment_config noisy_rig(Detector detector)
{
    Link_experiment_config config;
    config.video = video::make_sunrise_video(480, 270, 7);
    config.inframe = paper_config(480, 270);
    config.inframe.tau = 8;
    config.camera.sensor_width = 480;
    config.camera.sensor_height = 270;
    config.camera.fps = 30.0;
    config.camera.exposure_s = 1.0 / 120.0;
    // Noise on: the per-row PRNG streams are exactly what could go
    // scheduling-dependent, so the determinism test must exercise them.
    config.camera.shot_noise_scale = 0.2;
    config.camera.read_noise_sigma = 1.5;
    config.camera.quantize = true;
    config.detector = detector;
    config.duration_s = 0.4;
    return config;
}

std::vector<img::Imagef> encode_frames(int threads, int count)
{
    const Parallel_scope scope(threads);
    Inframe_config config = paper_config(480, 270);
    config.tau = 8;
    Inframe_encoder encoder(config);
    util::Prng data_prng(7);
    for (int i = 0; i < count / config.tau + 2; ++i) {
        encoder.queue_payload(data_prng.next_bits(
            static_cast<std::size_t>(config.geometry.payload_bits_per_frame())));
    }
    const auto video = video::make_sunrise_video(480, 270, 7);
    std::vector<img::Imagef> frames;
    for (int j = 0; j < count; ++j) {
        frames.push_back(encoder.next_display_frame(video->frame(j / 4)));
    }
    return frames;
}

TEST(ParallelDeterminism, EncoderDisplayFramesAreBitIdentical)
{
    const auto serial = encode_frames(1, 16);
    for (const int threads : thread_counts) {
        const auto parallel = encode_frames(threads, 16);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t j = 0; j < serial.size(); ++j) {
            EXPECT_TRUE(bit_identical(parallel[j], serial[j]))
                << "threads=" << threads << " frame " << j;
        }
    }
}

TEST(ParallelDeterminism, ChannelCapturesAreBitIdentical)
{
    const auto config = noisy_rig(Detector::noise_level);
    auto capture_with = [&](int threads) {
        const Parallel_scope scope(threads);
        channel::Screen_camera_link link(config.display, config.camera, 480, 270);
        const auto video = video::make_sunrise_video(480, 270, 7);
        std::vector<img::Imagef> captures;
        for (int j = 0; j < 24; ++j) {
            for (auto& capture : link.push_display_frame(video->frame(j / 4))) {
                captures.push_back(std::move(capture.image));
            }
        }
        return captures;
    };
    const auto serial = capture_with(1);
    ASSERT_FALSE(serial.empty());
    for (const int threads : thread_counts) {
        const auto parallel = capture_with(threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t k = 0; k < serial.size(); ++k) {
            EXPECT_TRUE(bit_identical(parallel[k], serial[k]))
                << "threads=" << threads << " capture " << k;
        }
    }
}

TEST(ParallelDeterminism, ImgprocKernelsAreBitIdentical)
{
    // A capture-sized frame with smooth structure plus per-pixel variation.
    img::Imagef src(480, 270, 1);
    for (int y = 0; y < src.height(); ++y) {
        for (int x = 0; x < src.width(); ++x) {
            src(x, y) = static_cast<float>((x * 13 + y * 31) % 251)
                        + 0.25f * static_cast<float>((x * 7919 + y * 104729) % 97);
        }
    }
    const img::Homography h = img::Homography::rect_to_quad(
        480.0, 270.0, {4.0, 6.0, 470.0, 2.0, 476.0, 260.0, 8.0, 266.0});
    auto run = [&](int threads) {
        const Parallel_scope scope(threads);
        std::vector<img::Imagef> out;
        out.push_back(img::box_blur(src, 3));
        out.push_back(img::gaussian_blur(src, 1.7));
        out.push_back(img::resize_area(src, 213, 131));
        out.push_back(img::resize_bilinear(src, 601, 333));
        out.push_back(img::warp_perspective(src, h, 480, 270));
        out.push_back(img::abs_diff(src, img::box_blur(src, 2)));
        return out;
    };
    const auto serial = run(1);
    for (const int threads : thread_counts) {
        const auto parallel = run(threads);
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_TRUE(bit_identical(parallel[i], serial[i]))
                << "threads=" << threads << " kernel " << i;
        }
    }
}

void expect_identical_results(const Link_experiment_result& a, const Link_experiment_result& b,
                              int threads)
{
    EXPECT_EQ(a.data_frames, b.data_frames) << "threads=" << threads;
    EXPECT_EQ(a.captures, b.captures) << "threads=" << threads;
    // Bitwise double equality: the decoded bits and every metric derived
    // from them must match exactly, not approximately.
    EXPECT_EQ(a.available_gob_ratio, b.available_gob_ratio) << "threads=" << threads;
    EXPECT_EQ(a.gob_error_rate, b.gob_error_rate) << "threads=" << threads;
    EXPECT_EQ(a.goodput_kbps, b.goodput_kbps) << "threads=" << threads;
    EXPECT_EQ(a.block_error_rate, b.block_error_rate) << "threads=" << threads;
    EXPECT_EQ(a.unknown_block_ratio, b.unknown_block_ratio) << "threads=" << threads;
    EXPECT_EQ(a.trusted_bit_error_rate, b.trusted_bit_error_rate) << "threads=" << threads;
}

TEST(ParallelDeterminism, NoiseLevelDecodeIsThreadCountInvariant)
{
    auto config = noisy_rig(Detector::noise_level);
    config.threads = 1;
    const auto serial = run_link_experiment(config);
    EXPECT_GT(serial.data_frames, 0);
    for (const int threads : thread_counts) {
        config.threads = threads;
        expect_identical_results(run_link_experiment(config), serial, threads);
    }
}

TEST(ParallelDeterminism, MatchedDecodeIsThreadCountInvariant)
{
    auto config = noisy_rig(Detector::matched);
    config.threads = 1;
    const auto serial = run_link_experiment(config);
    EXPECT_GT(serial.data_frames, 0);
    for (const int threads : thread_counts) {
        config.threads = threads;
        expect_identical_results(run_link_experiment(config), serial, threads);
    }
}

TEST(ParallelDeterminism, ThreadsZeroMeansHardwareConcurrency)
{
    auto config = noisy_rig(Detector::noise_level);
    config.threads = 1;
    const auto serial = run_link_experiment(config);
    config.threads = 0; // hardware concurrency — still identical
    expect_identical_results(run_link_experiment(config), serial, 0);
}

// RAII pin of the SIMD dispatch level, restoring the previous level even
// if an assertion throws mid-test.
class Scoped_simd_level {
public:
    explicit Scoped_simd_level(simd::Level level) : previous_(simd::set_active_level(level)) {}
    ~Scoped_simd_level() { simd::set_active_level(previous_); }
    Scoped_simd_level(const Scoped_simd_level&) = delete;
    Scoped_simd_level& operator=(const Scoped_simd_level&) = delete;

private:
    simd::Level previous_;
};

// The SIMD layer's end-to-end contract (src/simd/simd.hpp): decoded
// payload bits — and every metric derived from them — are bit-identical
// at every dispatch level, in every threads x frames_in_flight
// configuration. The scalar reference run is the anchor; each available
// vector level must reproduce it exactly, so INFRAME_SIMD only ever
// changes speed, never results.
TEST(ParallelDeterminism, DecodeIsSimdLevelInvariant)
{
    auto config = noisy_rig(Detector::noise_level);

    config.threads = 1;
    config.frames_in_flight = 1;
    Link_experiment_result scalar_result;
    {
        const Scoped_simd_level pin(simd::Level::scalar);
        scalar_result = run_link_experiment(config);
    }
    EXPECT_GT(scalar_result.data_frames, 0);

    for (const simd::Level level : simd::available_levels()) {
        const Scoped_simd_level pin(level);
        for (const int threads : {1, 4}) {
            for (const int frames_in_flight : {1, 4}) {
                config.threads = threads;
                config.frames_in_flight = frames_in_flight;
                const auto result = run_link_experiment(config);
                SCOPED_TRACE(std::string("level=") + simd::to_string(level)
                             + " threads=" + std::to_string(threads)
                             + " frames_in_flight=" + std::to_string(frames_in_flight));
                expect_identical_results(result, scalar_result, threads);
                EXPECT_EQ(result.payload_bit_error_rate,
                          scalar_result.payload_bit_error_rate);
            }
        }
    }
}

} // namespace
