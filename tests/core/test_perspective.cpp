// Perspective viewing: the paper's rig films the screen head-on; a real
// phone sees a keystoned quad. With a calibrated homography shared by the
// camera model and the (matched-filter) decoder, the channel must still
// deliver data.

#include "channel/link.hpp"
#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/session.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe;
using namespace inframe::core;
using inframe::coding::Block_decision;
using inframe::img::Homography;
using inframe::img::Imagef;
using inframe::util::Prng;

constexpr int screen_w = 480;
constexpr int screen_h = 270;

Inframe_config test_config()
{
    auto config = paper_config(screen_w, screen_h);
    config.geometry = coding::fitted_geometry(screen_w, screen_h, 2);
    config.tau = 8;
    return config;
}

// Viewing homography: the screen fills most of the sensor as a mild
// keystone (camera slightly to the left of the screen axis).
Homography keystone_sensor_to_screen()
{
    // Where the screen's corners land on the sensor...
    const std::array<double, 8> quad_on_sensor = {18.0, 10.0, 455.0, 16.0,
                                                  452.0, 252.0, 14.0, 258.0};
    const auto screen_to_sensor =
        Homography::rect_to_quad(screen_w, screen_h, quad_on_sensor);
    // ...and the inverse view: sensor coordinates -> screen coordinates.
    return screen_to_sensor.inverse();
}

struct Perspective_rig {
    Inframe_encoder encoder;
    channel::Screen_camera_link link;
    Inframe_decoder decoder;

    static channel::Display_params display()
    {
        channel::Display_params d;
        d.response_persistence = 0.0;
        d.black_level = 0.0;
        return d;
    }

    static channel::Camera_params camera(bool noisy)
    {
        channel::Camera_params c;
        c.fps = 30.0;
        c.sensor_width = screen_w;
        c.sensor_height = screen_h;
        c.exposure_s = 1.0 / 120.0;
        c.readout_s = 0.0;
        c.optical_blur_sigma = noisy ? 0.4 : 0.0;
        c.shot_noise_scale = noisy ? 0.1 : 0.0;
        c.read_noise_sigma = noisy ? 0.8 : 0.0;
        c.quantize = noisy;
        c.sensor_to_screen = keystone_sensor_to_screen();
        return c;
    }

    static Decoder_params decoder_params(const Inframe_config& config)
    {
        auto params = make_decoder_params(config, screen_w, screen_h);
        params.detector = Detector::matched;
        params.capture_to_screen = keystone_sensor_to_screen();
        return params;
    }

    explicit Perspective_rig(const Inframe_config& config, bool noisy)
        : encoder(config), link(display(), camera(noisy), screen_w, screen_h),
          decoder(decoder_params(config))
    {
    }
};

TEST(Perspective, KeystonedCaptureDecodes)
{
    const auto config = test_config();
    Perspective_rig rig(config, /*noisy=*/false);
    Prng prng(1);
    const auto payload =
        prng.next_bits(static_cast<std::size_t>(config.geometry.payload_bits_per_frame()));
    rig.encoder.queue_payload(payload);
    const auto truth = coding::encode_gob_parity(config.geometry, payload);

    const Imagef video(screen_w, screen_h, 1, 140.0f);
    std::vector<Data_frame_result> results;
    for (int j = 0; j < 2 * config.tau; ++j) {
        const auto frame = rig.encoder.next_display_frame(video);
        for (const auto& capture : rig.link.push_display_frame(frame)) {
            for (auto& r : rig.decoder.push_capture(capture.image, capture.start_time)) {
                results.push_back(std::move(r));
            }
        }
    }
    ASSERT_FALSE(results.empty());
    const auto& r0 = results.front();
    EXPECT_GT(r0.gob.available_ratio, 0.9);
    int wrong = 0;
    for (std::size_t b = 0; b < truth.size(); ++b) {
        if (r0.decisions[b] == Block_decision::unknown) continue;
        const std::uint8_t bit = r0.decisions[b] == Block_decision::one ? 1 : 0;
        wrong += bit != truth[b];
    }
    EXPECT_EQ(wrong, 0);
}

TEST(Perspective, SurvivesRealisticSensor)
{
    const auto config = test_config();
    Perspective_rig rig(config, /*noisy=*/true);
    Prng prng(2);
    const auto payload =
        prng.next_bits(static_cast<std::size_t>(config.geometry.payload_bits_per_frame()));
    rig.encoder.queue_payload(payload);
    const auto truth = coding::encode_gob_parity(config.geometry, payload);

    const Imagef video(screen_w, screen_h, 1, 140.0f);
    std::vector<Data_frame_result> results;
    for (int j = 0; j < 2 * config.tau; ++j) {
        const auto frame = rig.encoder.next_display_frame(video);
        for (const auto& capture : rig.link.push_display_frame(frame)) {
            for (auto& r : rig.decoder.push_capture(capture.image, capture.start_time)) {
                results.push_back(std::move(r));
            }
        }
    }
    ASSERT_FALSE(results.empty());
    const auto& r0 = results.front();
    EXPECT_GT(r0.gob.available_ratio, 0.7);
    int wrong = 0;
    int confident = 0;
    for (std::size_t b = 0; b < truth.size(); ++b) {
        if (r0.decisions[b] == Block_decision::unknown) continue;
        ++confident;
        const std::uint8_t bit = r0.decisions[b] == Block_decision::one ? 1 : 0;
        wrong += bit != truth[b];
    }
    EXPECT_GT(confident, 200);
    EXPECT_LT(static_cast<double>(wrong) / confident, 0.02);
}

TEST(Perspective, MiscalibratedHomographyFailsSafe)
{
    // A receiver calibrated against the WRONG quad reads a phase-shifted
    // pattern: some blocks decode as their neighbours' bits. The decoder
    // loses availability, and — decisively — the framing layer must
    // reject every such frame rather than deliver shifted garbage.
    const auto config = test_config();
    Inframe_encoder encoder(config);
    const Frame_codec codec(config.geometry.payload_bits_per_frame(), Session_options{});
    Prng prng(3);
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(codec.max_payload_bytes()));
    prng.fill_bytes(payload);
    encoder.queue_payload(codec.build(0, payload));

    channel::Screen_camera_link link(Perspective_rig::display(),
                                     Perspective_rig::camera(false), screen_w, screen_h);
    auto params = Perspective_rig::decoder_params(config);
    // Calibration off by a large margin (shifted quad).
    const std::array<double, 8> wrong_quad = {60.0, 40.0, 470.0, 50.0, 460.0, 260.0, 55.0,
                                              255.0};
    params.capture_to_screen =
        img::Homography::rect_to_quad(screen_w, screen_h, wrong_quad).inverse();
    Inframe_decoder decoder(params);

    const Imagef video(screen_w, screen_h, 1, 140.0f);
    std::vector<Data_frame_result> results;
    for (int j = 0; j < 2 * config.tau; ++j) {
        const auto frame = encoder.next_display_frame(video);
        for (const auto& capture : link.push_display_frame(frame)) {
            for (auto& r : decoder.push_capture(capture.image, capture.start_time)) {
                results.push_back(std::move(r));
            }
        }
    }
    ASSERT_FALSE(results.empty());
    EXPECT_LT(results.front().gob.available_ratio, 0.8); // degraded...
    for (const auto& result : results) {                  // ...and rejected.
        EXPECT_FALSE(
            codec.parse(result.gob.payload_bits, result.gob.payload_bit_trusted).has_value());
    }
}

TEST(Perspective, NoiseLevelDetectorIsRejected)
{
    auto params = Perspective_rig::decoder_params(test_config());
    params.detector = Detector::noise_level;
    EXPECT_THROW(Inframe_decoder{params}, inframe::util::Contract_violation);
}

} // namespace
