// Stage-graph runtime: executor semantics (composition, fan-out, flush
// cascade, early stop, error propagation) and the determinism contract —
// the decoded output of a full link experiment is bit-identical for every
// frames_in_flight window and kernel thread count.

#include "core/link_runner.hpp"
#include "core/pipeline.hpp"
#include "core/stages.hpp"
#include "imgproc/pool.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "video/source.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

namespace {

using namespace inframe;
using core::Frame_token;
using core::Function_stage;
using core::Pipeline;
using core::Pipeline_options;

// --- executor semantics -------------------------------------------------

TEST(Pipeline, SinkSeesTokensInOrder)
{
    for (const int fif : {1, 4}) {
        Pipeline pipeline;
        std::vector<std::int64_t> seen;
        pipeline.emplace_stage<Function_stage>("sink", [&seen](Frame_token token) {
            seen.push_back(token.index);
            std::vector<Frame_token> out;
            out.push_back(std::move(token));
            return out;
        });
        Pipeline_options options;
        options.frames_in_flight = fif;
        const auto metrics = pipeline.run(32, options);
        EXPECT_EQ(metrics.head_tokens, 32);
        ASSERT_EQ(seen.size(), 32u) << "fif=" << fif;
        for (std::int64_t i = 0; i < 32; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
    }
}

TEST(Pipeline, FanOutBufferingAndFlushCascadeInOrder)
{
    // Stage A doubles each token (fan-out) and emits one trailing token at
    // flush; stage B buffers pairs and re-emits them (0 outputs now, 2
    // later); the sink must still see one ordered stream, and the flush
    // cascade must run A before B. Identical across serial and overlap.
    auto run_with = [](int fif) {
        Pipeline pipeline;
        pipeline.emplace_stage<Function_stage>(
            "double",
            [](Frame_token token) {
                std::vector<Frame_token> out;
                Frame_token copy;
                copy.index = token.index * 2;
                out.push_back(std::move(copy));
                Frame_token second;
                second.index = token.index * 2 + 1;
                out.push_back(std::move(second));
                img::Frame_pool::instance().recycle(std::move(token.image));
                img::Frame_pool::instance().recycle(std::move(token.reference));
                return out;
            },
            [] {
                std::vector<Frame_token> out;
                Frame_token trailer;
                trailer.index = 1000;
                out.push_back(std::move(trailer));
                return out;
            });
        auto held = std::make_shared<std::vector<Frame_token>>();
        pipeline.emplace_stage<Function_stage>(
            "pair",
            [held](Frame_token token) {
                held->push_back(std::move(token));
                std::vector<Frame_token> out;
                if (held->size() == 2) {
                    out.push_back(std::move((*held)[0]));
                    out.push_back(std::move((*held)[1]));
                    held->clear();
                }
                return out;
            },
            [held] {
                auto out = std::move(*held);
                held->clear();
                return out;
            });
        std::vector<std::int64_t> seen;
        pipeline.emplace_stage<Function_stage>("sink", [&seen](Frame_token token) {
            seen.push_back(token.index);
            std::vector<Frame_token> out;
            out.push_back(std::move(token));
            return out;
        });
        Pipeline_options options;
        options.frames_in_flight = fif;
        pipeline.run(5, options);
        return seen;
    };

    const auto serial = run_with(1);
    // 5 inputs -> 10 doubled tokens + the flush trailer from stage A.
    const std::vector<std::int64_t> expected = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 1000};
    EXPECT_EQ(serial, expected);
    EXPECT_EQ(run_with(4), serial);
}

TEST(Pipeline, EarlyStopSerialIsExact)
{
    Pipeline pipeline;
    int consumed = 0;
    pipeline.emplace_stage<Function_stage>("sink", [&consumed](Frame_token token) {
        ++consumed;
        std::vector<Frame_token> out;
        out.push_back(std::move(token));
        return out;
    });
    Pipeline_options options;
    options.stop_when = [&consumed] { return consumed >= 5; };
    const auto metrics = pipeline.run(100, options);
    // Serial mode checks the probe before each head token: exactly 5 run.
    EXPECT_EQ(metrics.head_tokens, 5);
    EXPECT_EQ(consumed, 5);
}

TEST(Pipeline, EarlyStopOverlappedStopsPromptly)
{
    Pipeline pipeline;
    pipeline.emplace_stage<Function_stage>("pass", [](Frame_token token) {
        std::vector<Frame_token> out;
        out.push_back(std::move(token));
        return out;
    });
    int consumed = 0;
    pipeline.emplace_stage<Function_stage>("sink", [&consumed](Frame_token token) {
        ++consumed;
        std::vector<Frame_token> out;
        out.push_back(std::move(token));
        return out;
    });
    Pipeline_options options;
    options.frames_in_flight = 4;
    options.stop_when = [&consumed] { return consumed >= 5; };
    const auto metrics = pipeline.run(1000, options);
    EXPECT_GE(consumed, 5);
    // The head may overrun by the tokens already in flight (one window per
    // edge) but must not run anywhere near the full schedule.
    EXPECT_LE(metrics.head_tokens, 5 + 2 * 4 + 2);
}

TEST(Pipeline, ExceptionInOverlappedStagePropagates)
{
    Pipeline pipeline;
    pipeline.emplace_stage<Function_stage>("pass", [](Frame_token token) {
        std::vector<Frame_token> out;
        out.push_back(std::move(token));
        return out;
    });
    pipeline.emplace_stage<Function_stage>("boom", [](Frame_token token) -> std::vector<Frame_token> {
        if (token.index == 3) throw std::runtime_error("stage failure");
        std::vector<Frame_token> out;
        out.push_back(std::move(token));
        return out;
    });
    pipeline.emplace_stage<Function_stage>("sink", [](Frame_token token) {
        std::vector<Frame_token> out;
        out.push_back(std::move(token));
        return out;
    });
    Pipeline_options options;
    options.frames_in_flight = 4;
    EXPECT_THROW(pipeline.run(100, options), std::runtime_error);
}

TEST(Pipeline, MetricsCountTokensPerStage)
{
    Pipeline pipeline;
    pipeline.emplace_stage<Function_stage>("drop-odd", [](Frame_token token) {
        std::vector<Frame_token> out;
        if (token.index % 2 == 0) {
            out.push_back(std::move(token));
        } else {
            img::Frame_pool::instance().recycle(std::move(token.image));
            img::Frame_pool::instance().recycle(std::move(token.reference));
        }
        return out;
    });
    pipeline.emplace_stage<Function_stage>("sink", [](Frame_token token) {
        std::vector<Frame_token> out;
        out.push_back(std::move(token));
        return out;
    });
    const auto metrics = pipeline.run(10);
    ASSERT_EQ(metrics.stages.size(), 2u);
    EXPECT_EQ(metrics.stages[0].name, "drop-odd");
    EXPECT_EQ(metrics.stages[0].tokens_in, 10);
    EXPECT_EQ(metrics.stages[0].tokens_out, 5);
    EXPECT_EQ(metrics.stages[1].tokens_in, 5);
}

TEST(Pipeline, QueueMetricsUseSentinelsWhereNoQueueExists)
{
    // Stage_metrics queue fields are -1 wherever no queue exists: serial
    // mode has no queues at all; in overlapped mode the head has no input
    // queue and the sink has no output queue. Consumers gate on >= 0.
    auto make = [](Pipeline& pipeline) {
        for (const char* name : {"head", "middle", "sink"}) {
            pipeline.emplace_stage<Function_stage>(name, [](Frame_token token) {
                std::vector<Frame_token> out;
                out.push_back(std::move(token));
                return out;
            });
        }
    };

    {
        Pipeline pipeline;
        make(pipeline);
        const auto metrics = pipeline.run(8);
        ASSERT_EQ(metrics.stages.size(), 3u);
        for (const auto& stage : metrics.stages) {
            EXPECT_EQ(stage.mean_input_queue_depth, -1.0) << stage.name << " (serial)";
            EXPECT_EQ(stage.input_waits, -1) << stage.name << " (serial)";
            EXPECT_EQ(stage.output_waits, -1) << stage.name << " (serial)";
        }
    }

    {
        Pipeline pipeline;
        make(pipeline);
        Pipeline_options options;
        options.frames_in_flight = 4;
        const auto metrics = pipeline.run(8, options);
        ASSERT_EQ(metrics.stages.size(), 3u);
        const auto& head = metrics.stages[0];
        const auto& middle = metrics.stages[1];
        const auto& sink = metrics.stages[2];
        EXPECT_EQ(head.mean_input_queue_depth, -1.0);
        EXPECT_EQ(head.input_waits, -1);
        EXPECT_GE(head.output_waits, 0);
        EXPECT_GE(middle.mean_input_queue_depth, 0.0);
        EXPECT_GE(middle.input_waits, 0);
        EXPECT_GE(middle.output_waits, 0);
        EXPECT_GE(sink.mean_input_queue_depth, 0.0);
        EXPECT_GE(sink.input_waits, 0);
        EXPECT_EQ(sink.output_waits, -1);
    }
}

TEST(Pipeline, TokenAccountingConsistentUnderEarlyStop)
{
    // stop_when cuts the schedule short at an arbitrary point; the metrics
    // must still balance: the head stage consumed exactly head_tokens, and
    // every downstream stage consumed exactly what its upstream emitted —
    // in both execution modes, at several stop points.
    for (const int fif : {1, 4}) {
        for (const int stop_at : {1, 5, 17}) {
            Pipeline pipeline;
            for (const char* name : {"head", "middle", "sink"}) {
                pipeline.emplace_stage<Function_stage>(name, [](Frame_token token) {
                    std::vector<Frame_token> out;
                    out.push_back(std::move(token));
                    return out;
                });
            }
            int polls = 0;
            Pipeline_options options;
            options.frames_in_flight = fif;
            options.stop_when = [&polls, stop_at] { return ++polls > stop_at; };
            const auto metrics = pipeline.run(1000, options);
            const std::string label =
                "fif=" + std::to_string(fif) + " stop=" + std::to_string(stop_at);
            ASSERT_EQ(metrics.stages.size(), 3u) << label;
            EXPECT_GT(metrics.head_tokens, 0) << label;
            EXPECT_LT(metrics.head_tokens, 1000) << label;
            EXPECT_EQ(metrics.stages[0].tokens_in, metrics.head_tokens) << label;
            for (std::size_t i = 0; i + 1 < metrics.stages.size(); ++i) {
                EXPECT_EQ(metrics.stages[i].tokens_out, metrics.stages[i].tokens_in)
                    << label << " stage " << metrics.stages[i].name;
                EXPECT_EQ(metrics.stages[i + 1].tokens_in, metrics.stages[i].tokens_out)
                    << label << " edge " << i;
            }
            EXPECT_GE(metrics.pool_hits, 0) << label;
            EXPECT_GE(metrics.pool_misses, 0) << label;
        }
    }
}

// --- lazy payload source ------------------------------------------------

TEST(Pipeline, LazyPayloadSourceMatchesUpfrontQueueing)
{
    // The Encode_stage pulls payloads just-in-time; the old harness queued
    // them all before the run. Both must put the same bits on air.
    constexpr int width = 480;
    constexpr int height = 270;
    auto config = core::paper_config(width, height);
    config.geometry = coding::fitted_geometry(width, height, 2);
    config.tau = 12;

    core::Inframe_encoder upfront(config);
    util::Prng prng(77);
    for (int i = 0; i < 4; ++i) {
        upfront.queue_payload(prng.next_bits(
            static_cast<std::size_t>(config.geometry.payload_bits_per_frame())));
    }

    core::Encode_stage::Options options;
    options.payloads =
        core::make_random_payload_source(77, config.geometry.payload_bits_per_frame());
    core::Encode_stage lazy(config, std::move(options));

    const img::Imagef video(width, height, 1, 127.0f);
    for (int j = 0; j < 2 * config.tau; ++j) {
        const auto expected = upfront.next_display_frame(video);
        auto actual = lazy.encode(video);
        ASSERT_EQ(actual.values().size(), expected.values().size());
        for (std::size_t i = 0; i < expected.values().size(); ++i) {
            ASSERT_EQ(actual.values()[i], expected.values()[i]) << "display frame " << j;
        }
        img::Frame_pool::instance().recycle(std::move(actual));
    }
}

// --- determinism across execution configurations ------------------------

// The noisy 480x270 rig: small enough for a sub-second run, noisy enough
// that any cross-configuration divergence (RNG stream, capture order,
// accounting order) shows up in the decoded metrics.
core::Link_experiment_config noisy_rig(int threads, int frames_in_flight)
{
    core::Link_experiment_config config;
    constexpr int width = 480;
    constexpr int height = 270;
    config.video = video::make_sunrise_video(width, height);
    config.inframe = core::paper_config(width, height);
    config.inframe.geometry = coding::fitted_geometry(width, height, 2);
    config.inframe.tau = 12;
    config.camera.sensor_width = width;
    config.camera.sensor_height = height;
    config.camera.shot_noise_scale = 0.25;
    config.camera.read_noise_sigma = 1.5;
    config.camera.quantize = true;
    config.detector = core::Detector::matched;
    config.duration_s = 0.4;
    config.threads = threads;
    config.frames_in_flight = frames_in_flight;
    return config;
}

void expect_identical(const core::Link_experiment_result& a,
                      const core::Link_experiment_result& b, const std::string& label)
{
    EXPECT_EQ(a.data_frames, b.data_frames) << label;
    EXPECT_EQ(a.captures, b.captures) << label;
    EXPECT_EQ(a.available_gob_ratio, b.available_gob_ratio) << label;
    EXPECT_EQ(a.gob_error_rate, b.gob_error_rate) << label;
    EXPECT_EQ(a.goodput_kbps, b.goodput_kbps) << label;
    EXPECT_EQ(a.block_error_rate, b.block_error_rate) << label;
    EXPECT_EQ(a.unknown_block_ratio, b.unknown_block_ratio) << label;
    EXPECT_EQ(a.trusted_bit_error_rate, b.trusted_bit_error_rate) << label;
    EXPECT_EQ(a.payload_bit_error_rate, b.payload_bit_error_rate) << label;
    EXPECT_EQ(a.captures_dropped, b.captures_dropped) << label;
}

TEST(Pipeline, LinkExperimentBitIdenticalAcrossFifAndThreads)
{
    const auto baseline = core::run_link_experiment(noisy_rig(1, 1));
    EXPECT_GT(baseline.data_frames, 0);
    EXPECT_GT(baseline.goodput_kbps, 0.0);
    for (const int threads : {1, 4}) {
        for (const int fif : {1, 2, 8}) {
            if (threads == 1 && fif == 1) continue;
            const auto result = core::run_link_experiment(noisy_rig(threads, fif));
            expect_identical(result, baseline,
                             "threads=" + std::to_string(threads)
                                 + " fif=" + std::to_string(fif));
            EXPECT_EQ(result.pipeline.frames_in_flight, fif);
        }
    }
}

TEST(Pipeline, FlickerExperimentBitIdenticalAcrossFif)
{
    core::Flicker_experiment_config config;
    constexpr int width = 480;
    constexpr int height = 270;
    config.video = video::make_sunrise_video(width, height);
    config.inframe = core::paper_config(width, height);
    config.inframe.geometry = coding::fitted_geometry(width, height, 2);
    config.observers = 3;
    config.duration_s = 0.8;
    config.threads = 1;

    config.frames_in_flight = 1;
    const auto serial = core::run_flicker_experiment(config);
    ASSERT_EQ(serial.scores.size(), 3u);
    for (const int fif : {2, 8}) {
        config.frames_in_flight = fif;
        const auto overlapped = core::run_flicker_experiment(config);
        EXPECT_EQ(overlapped.mean_score, serial.mean_score) << "fif=" << fif;
        EXPECT_EQ(overlapped.stddev_score, serial.stddev_score) << "fif=" << fif;
        EXPECT_EQ(overlapped.scores, serial.scores) << "fif=" << fif;
    }
}

} // namespace
