// Property-style parameterized sweeps over the protocol's invariants.
//
// Each suite states one invariant and grinds it across a grid of
// configurations (TEST_P / INSTANTIATE_TEST_SUITE_P): the encoder/decoder
// pair must round-trip exactly over a clean channel for *every* valid
// parameter combination, complementary pairs must always cancel, and the
// accounting identities of the GOB layer must hold for arbitrary inputs.

#include "coding/interleaver.hpp"
#include "coding/parity.hpp"
#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/session.hpp"
#include "imgproc/image_ops.hpp"
#include "imgproc/metrics.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace {

using namespace inframe::core;
using inframe::coding::Block_decision;
using inframe::img::Imagef;
using inframe::util::Prng;

// ---------------------------------------------------------------------
// Invariant 1: clean-channel round trip is exact for every (tau, delta,
// pixel size, video level) combination.
// ---------------------------------------------------------------------

using Roundtrip_params = std::tuple<int, float, int, float>; // tau, delta, p, level

class CleanRoundtrip : public ::testing::TestWithParam<Roundtrip_params> {};

TEST_P(CleanRoundtrip, DecodesEveryBlockExactly)
{
    const auto [tau, delta, pixel_size, level] = GetParam();
    auto config = paper_config(480, 270);
    config.geometry = inframe::coding::fitted_geometry(480, 270, pixel_size);
    config.tau = tau;
    config.delta = delta;

    Inframe_encoder encoder(config);
    Prng prng(static_cast<std::uint64_t>(tau) * 1000 + pixel_size);
    const auto payload =
        prng.next_bits(static_cast<std::size_t>(config.geometry.payload_bits_per_frame()));
    encoder.queue_payload(payload);
    encoder.queue_payload(
        prng.next_bits(static_cast<std::size_t>(config.geometry.payload_bits_per_frame())));
    const auto truth = inframe::coding::encode_gob_parity(config.geometry, payload);

    Inframe_decoder decoder(make_decoder_params(config, 480, 270));
    const Imagef video(480, 270, 1, level);
    std::vector<Data_frame_result> results;
    for (int j = 0; j < 2 * tau; ++j) {
        const Imagef frame = encoder.next_display_frame(video);
        if (j % 4 == 0) {
            for (auto& r : decoder.push_capture(frame, j / 120.0)) {
                results.push_back(std::move(r));
            }
        }
    }
    if (auto last = decoder.flush()) results.push_back(std::move(*last));

    ASSERT_FALSE(results.empty());
    const auto& r0 = results.front();
    EXPECT_DOUBLE_EQ(r0.gob.available_ratio, 1.0);
    EXPECT_DOUBLE_EQ(r0.gob.error_rate, 0.0);
    for (std::size_t b = 0; b < truth.size(); ++b) {
        const auto expected = truth[b] ? Block_decision::one : Block_decision::zero;
        EXPECT_EQ(r0.decisions[b], expected) << "block " << b;
    }
}

INSTANTIATE_TEST_SUITE_P(
    TauDeltaPixelLevelGrid, CleanRoundtrip,
    ::testing::Combine(::testing::Values(8, 12, 16),          // tau
                       ::testing::Values(12.0f, 20.0f, 40.0f), // delta
                       ::testing::Values(1, 2),                // pixel size
                       ::testing::Values(90.0f, 127.0f, 180.0f)) // video level
);

// ---------------------------------------------------------------------
// Invariant 2: the complementary pair always averages back to the video,
// for any content and any amplitude (with the local cap enabled).
// ---------------------------------------------------------------------

using Pair_params = std::tuple<float, int>; // delta, content seed

class ComplementaryCancellation : public ::testing::TestWithParam<Pair_params> {};

TEST_P(ComplementaryCancellation, PairAverageEqualsVideo)
{
    const auto [delta, seed] = GetParam();
    auto config = paper_config(480, 270);
    config.delta = delta;
    Prng prng(static_cast<std::uint64_t>(seed));
    // Arbitrary content, including values near both rails.
    Imagef video(480, 270, 1);
    for (auto& v : video.values()) v = static_cast<float>(prng.next_double(0.0, 255.0));
    const auto bits = prng.next_bits(static_cast<std::size_t>(config.geometry.block_count()));

    const auto pair = make_complementary_pair(config, video, bits);
    const Imagef sum = inframe::img::add(pair.plus, pair.minus);
    const Imagef twice = inframe::img::affine(video, 2.0f, 0.0f);
    EXPECT_LT(inframe::img::mae(sum, twice), 1e-3) << "delta " << delta << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(DeltaSeedGrid, ComplementaryCancellation,
                         ::testing::Combine(::testing::Values(5.0f, 20.0f, 60.0f, 120.0f),
                                            ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------
// Invariant 3: GOB parity accounting identities hold for arbitrary
// decision patterns: payload size, trusted-bit count vs available/ok GOBs.
// ---------------------------------------------------------------------

class GobAccounting : public ::testing::TestWithParam<int> {};

TEST_P(GobAccounting, IdentitiesHoldForRandomDecisionPatterns)
{
    const int seed = GetParam();
    const auto geometry = inframe::coding::paper_geometry(480, 270);
    Prng prng(static_cast<std::uint64_t>(seed));
    std::vector<inframe::coding::Block_decision> decisions(
        static_cast<std::size_t>(geometry.block_count()));
    for (auto& d : decisions) {
        const auto roll = prng.next_below(10);
        d = roll < 4   ? inframe::coding::Block_decision::zero
            : roll < 8 ? inframe::coding::Block_decision::one
                       : inframe::coding::Block_decision::unknown;
    }
    const auto result = inframe::coding::decode_gob_parity(geometry, decisions);

    ASSERT_EQ(result.gobs.size(), static_cast<std::size_t>(geometry.gob_count()));
    ASSERT_EQ(result.payload_bits.size(),
              static_cast<std::size_t>(geometry.payload_bits_per_frame()));
    ASSERT_EQ(result.payload_bit_trusted.size(), result.payload_bits.size());

    std::size_t available = 0;
    std::size_t ok = 0;
    for (const auto& gob : result.gobs) {
        available += gob.available;
        ok += gob.available && gob.parity_ok;
    }
    EXPECT_NEAR(result.available_ratio,
                static_cast<double>(available) / geometry.gob_count(), 1e-12);
    if (available > 0) {
        EXPECT_NEAR(result.error_rate,
                    static_cast<double>(available - ok) / static_cast<double>(available),
                    1e-12);
    }
    // Trusted bits = 3 per parity-OK GOB, and the mask agrees.
    EXPECT_EQ(result.good_payload_bits, ok * 3);
    std::size_t mask_count = 0;
    for (const auto t : result.payload_bit_trusted) mask_count += t;
    EXPECT_EQ(mask_count, result.good_payload_bits);
}

INSTANTIATE_TEST_SUITE_P(RandomPatterns, GobAccounting, ::testing::Range(1, 9));

// ---------------------------------------------------------------------
// Invariant 4: Frame_codec round-trips any payload size it admits, in
// both protection modes.
// ---------------------------------------------------------------------

using Codec_params = std::tuple<bool, int>; // use_rs, payload size

class CodecRoundtrip : public ::testing::TestWithParam<Codec_params> {};

TEST_P(CodecRoundtrip, BuildParseIdentity)
{
    const auto [use_rs, payload_bytes] = GetParam();
    Session_options options;
    options.use_rs = use_rs;
    const Frame_codec codec(1125, options);
    ASSERT_LE(payload_bytes, codec.max_payload_bytes());
    Prng prng(static_cast<std::uint64_t>(payload_bytes) + (use_rs ? 1000 : 0));
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(payload_bytes));
    prng.fill_bytes(payload);
    const auto bits = codec.build(42, payload);
    ASSERT_EQ(bits.size(), 1125u);
    const auto parsed = codec.parse(bits);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->sequence, 42u);
    EXPECT_EQ(parsed->payload, payload);
}

INSTANTIATE_TEST_SUITE_P(ModesAndSizes, CodecRoundtrip,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(0, 1, 17, 28)));

// ---------------------------------------------------------------------
// Invariant 5: erasure-aware parsing recovers frames whose untrusted
// regions carry arbitrary garbage, up to the parity budget.
// ---------------------------------------------------------------------

class ErasureRecovery : public ::testing::TestWithParam<int> {};

TEST_P(ErasureRecovery, GarbageInUntrustedBitsIsCorrected)
{
    const int lost_gobs = GetParam();
    const Frame_codec codec(1125, Session_options{});
    Prng prng(static_cast<std::uint64_t>(lost_gobs) * 31);
    std::vector<std::uint8_t> payload(16);
    prng.fill_bytes(payload);
    auto bits = codec.build(7, payload);
    std::vector<std::uint8_t> trusted(bits.size(), 1);
    // Each lost GOB wipes 3 consecutive payload bits.
    for (int g = 0; g < lost_gobs; ++g) {
        const auto start = static_cast<std::size_t>(g) * 9 + 2;
        for (std::size_t b = start; b < start + 3 && b < bits.size(); ++b) {
            bits[b] = static_cast<std::uint8_t>(prng.next_below(2));
            trusted[b] = 0;
        }
    }
    const auto parsed = codec.parse(bits, trusted);
    ASSERT_TRUE(parsed.has_value()) << lost_gobs << " lost GOBs";
    EXPECT_EQ(parsed->payload, payload);
}

INSTANTIATE_TEST_SUITE_P(LostGobCounts, ErasureRecovery,
                         ::testing::Values(0, 1, 5, 20, 60));

// ---------------------------------------------------------------------
// Invariant 6: randomized round trips over 500 seeded configurations.
// interleave -> GOB parity encode -> decode -> deinterleave is the
// identity on clean channels, and stays the identity under one erased
// block per GOB (the parity layer's exact correction bound).
// ---------------------------------------------------------------------

TEST(RandomizedRoundtrip, InterleaverParityIdentityOverFiveHundredSeeds)
{
    for (std::uint64_t seed = 1; seed <= 500; ++seed) {
        Prng prng(seed * 0x9e37'79b9'7f4a'7c15ULL);

        // Random small geometry: GOB side 2 or 3, 2..5 GOBs per axis.
        inframe::coding::Code_geometry geometry;
        geometry.gob_size = prng.next_below(2) == 0 ? 2 : 3;
        geometry.blocks_x =
            geometry.gob_size * (2 + static_cast<int>(prng.next_below(4)));
        geometry.blocks_y =
            geometry.gob_size * (2 + static_cast<int>(prng.next_below(4)));
        geometry.pixel_size = 1;
        geometry.block_pixels = 4;
        geometry.screen_width = geometry.blocks_x * 4;
        geometry.screen_height = geometry.blocks_y * 4;
        ASSERT_NO_THROW(geometry.validate()) << "seed " << seed;

        const auto payload = prng.next_bits(
            static_cast<std::size_t>(geometry.payload_bits_per_frame()));
        const inframe::coding::Interleaver interleaver(geometry.payload_bits_per_gob(),
                                                       geometry.gob_count());
        const auto interleaved = interleaver.interleave(payload);
        const auto block_bits =
            inframe::coding::encode_gob_parity(geometry, interleaved);

        std::vector<Block_decision> decisions(block_bits.size());
        for (std::size_t b = 0; b < block_bits.size(); ++b) {
            decisions[b] = block_bits[b] ? Block_decision::one : Block_decision::zero;
        }

        // Clean channel: both modes are the identity.
        for (const bool erasure_fill : {false, true}) {
            const auto decoded = inframe::coding::decode_gob_parity(geometry, decisions, 0,
                                                                    erasure_fill);
            ASSERT_DOUBLE_EQ(decoded.available_ratio, 1.0) << "seed " << seed;
            ASSERT_EQ(interleaver.deinterleave(decoded.payload_bits), payload)
                << "seed " << seed << " erasure_fill " << erasure_fill;
        }

        // Erasure channel at the exact correction bound: one erased block
        // in a random slot of each of a random subset of GOBs.
        auto erased = decisions;
        const int m = geometry.gob_size;
        for (int gy = 0; gy < geometry.gobs_y(); ++gy) {
            for (int gx = 0; gx < geometry.gobs_x(); ++gx) {
                if (prng.next_double() < 0.5) continue;
                const auto slot = static_cast<int>(
                    prng.next_below(static_cast<std::uint64_t>(m * m)));
                erased[static_cast<std::size_t>(geometry.block_index(
                    gx * m + slot % m, gy * m + slot / m))] = Block_decision::unknown;
            }
        }
        const auto recovered =
            inframe::coding::decode_gob_parity(geometry, erased, 0, true);
        ASSERT_DOUBLE_EQ(recovered.available_ratio, 1.0) << "seed " << seed;
        ASSERT_EQ(interleaver.deinterleave(recovered.payload_bits), payload)
            << "seed " << seed;
    }
}

TEST(RandomizedRoundtrip, RsFramingSurvivesBoundedErrorsAndErasures)
{
    // Frame_codec in RS mode (capacity 1125 bits -> RS(140, 63), error
    // budget n - k = 77 symbols). Each flipped bit corrupts at most one
    // symbol and each 24-bit untrusted run at most 4, so the injected
    // pattern below stays well inside 2e + s <= n - k for every draw.
    Session_options options;
    options.use_rs = true;
    const Frame_codec codec(1125, options);
    for (std::uint64_t seed = 1; seed <= 500; ++seed) {
        Prng prng(seed * 0xd1b5'4a32'd192'ed03ULL);
        std::vector<std::uint8_t> payload(prng.next_below(
            static_cast<std::uint64_t>(codec.max_payload_bytes()) + 1));
        prng.fill_bytes(payload);
        auto bits = codec.build(static_cast<std::uint32_t>(seed), payload);
        std::vector<std::uint8_t> trusted(bits.size(), 1);

        // Up to 10 isolated bit flips (undeclared errors)...
        const auto flips = prng.next_below(11);
        for (std::uint64_t f = 0; f < flips; ++f) {
            bits[static_cast<std::size_t>(prng.next_below(bits.size()))] ^= 1;
        }
        // ...plus up to 3 untrusted 24-bit bursts of garbage (erasures).
        const auto bursts = prng.next_below(4);
        for (std::uint64_t r = 0; r < bursts; ++r) {
            const auto start =
                static_cast<std::size_t>(prng.next_below(bits.size() - 24));
            for (std::size_t b = start; b < start + 24; ++b) {
                bits[b] = static_cast<std::uint8_t>(prng.next_below(2));
                trusted[b] = 0;
            }
        }

        const auto parsed = codec.parse(bits, trusted);
        ASSERT_TRUE(parsed.has_value()) << "seed " << seed << ": " << flips
                                        << " flips, " << bursts << " bursts";
        EXPECT_EQ(parsed->sequence, static_cast<std::uint32_t>(seed));
        EXPECT_EQ(parsed->payload, payload) << "seed " << seed;
    }
}

} // namespace
