#include "core/session.hpp"

#include "channel/link.hpp"
#include "util/contract.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using namespace inframe::core;
using inframe::img::Imagef;
using inframe::util::Contract_violation;

Inframe_config small_config()
{
    auto config = paper_config(480, 270);
    config.tau = 8;
    return config;
}

std::vector<std::uint8_t> bytes_of(const std::string& s)
{
    return {s.begin(), s.end()};
}

TEST(Session, MessageRoundTripOverCleanChannel)
{
    const auto config = small_config();
    const auto message =
        bytes_of("InFrame delivers data over ordinary video without anyone noticing. "
                 "This message spans several data frames to exercise reassembly.");
    Inframe_sender sender(config, message);
    Inframe_receiver receiver(make_decoder_params(config, 480, 270), sender.total_chunks());

    const Imagef video(480, 270, 1, 140.0f);
    // Clean, perfectly-synchronized 30 FPS "camera": every 4th display
    // frame. Enough display frames for one carousel pass plus slack.
    const auto frames_needed =
        static_cast<int>(sender.total_chunks() + 2) * config.tau;
    for (int j = 0; j < frames_needed; ++j) {
        const Imagef frame = sender.next_display_frame(video);
        if (j % 4 == 0) receiver.push_capture(frame, j / 120.0);
    }
    receiver.finish();
    EXPECT_TRUE(receiver.message_complete());
    EXPECT_EQ(receiver.message(), message);
    EXPECT_EQ(receiver.frames_rejected(), 0u);
}

TEST(Session, CarouselRepairsAMissedChunk)
{
    const auto config = small_config();
    const auto message = bytes_of(std::string(400, 'x') + "end marker");
    Inframe_sender sender(config, message, /*loop=*/true);
    ASSERT_GE(sender.total_chunks(), 3u);
    Inframe_receiver receiver(make_decoder_params(config, 480, 270), sender.total_chunks());

    const Imagef video(480, 270, 1, 140.0f);
    const auto pass_frames = static_cast<int>(sender.total_chunks()) * config.tau;
    // First pass: drop every capture of data frame 1 (a lost chunk).
    for (int j = 0; j < pass_frames; ++j) {
        const Imagef frame = sender.next_display_frame(video);
        const bool in_lost_frame = j / config.tau == 1;
        if (j % 4 == 0 && !in_lost_frame) receiver.push_capture(frame, j / 120.0);
    }
    EXPECT_FALSE(receiver.message_complete());
    // Second carousel pass retransmits everything.
    for (int j = pass_frames; j < 2 * pass_frames + config.tau; ++j) {
        const Imagef frame = sender.next_display_frame(video);
        if (j % 4 == 0) receiver.push_capture(frame, j / 120.0);
    }
    receiver.finish();
    EXPECT_TRUE(receiver.message_complete());
    EXPECT_EQ(receiver.message(), message);
}

TEST(Session, GarbageCapturesAreRejectedNotAccepted)
{
    const auto config = small_config();
    Inframe_receiver receiver(make_decoder_params(config, 480, 270), 1);
    inframe::util::Prng prng(9);
    Imagef junk(480, 270, 1, 0.0f);
    for (auto& v : junk.values()) v = static_cast<float>(prng.next_double(0.0, 255.0));
    receiver.push_capture(junk, 0.0);
    receiver.push_capture(junk, 8.0 / 120.0);
    receiver.finish();
    EXPECT_FALSE(receiver.message_complete());
    EXPECT_EQ(receiver.frames_decoded(), 0u);
}

TEST(Session, ExpectedChunksValidation)
{
    const auto config = small_config();
    EXPECT_THROW(Inframe_receiver(make_decoder_params(config, 480, 270), 0),
                 Contract_violation);
}

TEST(Session, MakeDecoderParamsCopiesLinkSettings)
{
    const auto config = small_config();
    const auto params = make_decoder_params(config, 320, 180);
    EXPECT_EQ(params.capture_width, 320);
    EXPECT_EQ(params.capture_height, 180);
    EXPECT_EQ(params.tau, config.tau);
    EXPECT_DOUBLE_EQ(params.display_fps, config.display_fps);
    EXPECT_EQ(params.geometry.blocks_x, config.geometry.blocks_x);
}

TEST(Session, SenderReportsChunkCount)
{
    const auto config = small_config();
    const Frame_codec framer(config.geometry.payload_bits_per_frame(), Session_options{});
    const auto message = bytes_of(std::string(
        static_cast<std::size_t>(framer.max_payload_bytes()) * 2 + 1, 'a'));
    Inframe_sender sender(config, message);
    EXPECT_EQ(sender.total_chunks(), 3u);
}

} // namespace
