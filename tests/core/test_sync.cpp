#include "core/sync.hpp"

#include "core/encoder.hpp"
#include "core/session.hpp"
#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace inframe::core;
using inframe::coding::Block_decision;
using inframe::img::Imagef;
using inframe::util::Prng;

Inframe_config small_config()
{
    auto config = paper_config(480, 270);
    config.tau = 8;
    return config;
}

// Generates clean "captures" (every 4th display frame) with the given
// unknown start offset applied to the receiver clock.
struct Offset_stream {
    Inframe_encoder encoder;
    Imagef video{480, 270, 1, 127.0f};
    double offset;
    std::int64_t display_index = 0;

    Offset_stream(const Inframe_config& config, double offset_s, std::uint64_t seed)
        : encoder(config), offset(offset_s)
    {
        Prng prng(seed);
        for (int i = 0; i < 64; ++i) {
            encoder.queue_payload(prng.next_bits(
                static_cast<std::size_t>(config.geometry.payload_bits_per_frame())));
        }
        // Transmitter has been running for `offset` seconds before the
        // receiver started its clock: skip those display frames.
        const auto skip = static_cast<std::int64_t>(std::llround(offset_s * 120.0));
        for (std::int64_t i = 0; i < skip; ++i) {
            encoder.next_display_frame(video);
            ++display_index;
        }
    }

    // Next (capture, receiver_time) pair at ~30 FPS.
    std::pair<Imagef, double> next_capture()
    {
        Imagef frame = encoder.next_display_frame(video);
        const double receiver_time =
            static_cast<double>(display_index) / 120.0 - offset;
        display_index += 4;
        for (int i = 0; i < 3; ++i) encoder.next_display_frame(video);
        return {std::move(frame), receiver_time};
    }
};

TEST(PhaseEstimator, NeedsEnoughCaptures)
{
    const auto config = small_config();
    Phase_estimator estimator(make_decoder_params(config, 480, 270));
    Offset_stream stream(config, 0.0, 1);
    for (int i = 0; i < 5; ++i) {
        auto [frame, time] = stream.next_capture();
        estimator.push_capture(frame, time);
    }
    EXPECT_FALSE(estimator.estimated_offset().has_value());
}

TEST(PhaseEstimator, LocksOnAlignedStream)
{
    const auto config = small_config();
    Phase_estimator estimator(make_decoder_params(config, 480, 270));
    Offset_stream stream(config, 0.0, 2);
    for (int i = 0; i < 30; ++i) {
        auto [frame, time] = stream.next_capture();
        estimator.push_capture(frame, time);
    }
    const auto offset = estimator.estimated_offset();
    ASSERT_TRUE(offset.has_value()) << "score " << estimator.lock_score();
    // Any offset equivalent under capture assignment is acceptable: the
    // aligned stream's captures sit at phases 0 and 0.5, so the offset
    // must keep phase-0 captures inside [0, 0.5).
    const double period = config.tau / 120.0;
    const double phase = std::fmod(period - *offset, period) / period;
    EXPECT_TRUE(phase < 0.5 || phase > 0.95) << "offset " << *offset;
}

class PhaseEstimatorOffsets : public ::testing::TestWithParam<int> {};

TEST_P(PhaseEstimatorOffsets, SyncedDecoderRecoversTruthForAnyStartOffset)
{
    // The transmitter started `k` display frames before the receiver; the
    // acceptance criterion is end-to-end: after phase lock, every decoded
    // confident block matches the transmitted bits of *some consistent*
    // data-frame alignment.
    const int k = GetParam();
    const auto config = small_config();
    Offset_stream stream(config, k / 120.0, 77 + static_cast<std::uint64_t>(k));
    Synced_decoder decoder(make_decoder_params(config, 480, 270));

    int matched_frames = 0;
    for (int i = 0; i < 60; ++i) {
        auto [frame, time] = stream.next_capture();
        for (const auto& result : decoder.push_capture(frame, time)) {
            if (result.captures_used == 0) continue;
            // Find the transmitted frame this decode corresponds to.
            bool found = false;
            for (std::int64_t tx = result.data_frame_index;
                 tx <= result.data_frame_index + 2 && !found; ++tx) {
                const auto* truth = stream.encoder.transmitted_block_bits(tx);
                if (truth == nullptr) continue;
                bool all_match = true;
                int confident = 0;
                for (std::size_t b = 0; b < result.decisions.size(); ++b) {
                    if (result.decisions[b] == Block_decision::unknown) continue;
                    ++confident;
                    const std::uint8_t bit =
                        result.decisions[b] == Block_decision::one ? 1 : 0;
                    all_match &= bit == (*truth)[b];
                }
                found = all_match && confident > 100;
            }
            matched_frames += found;
        }
    }
    EXPECT_TRUE(decoder.locked());
    EXPECT_GT(matched_frames, 5) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(VariousStartOffsets, PhaseEstimatorOffsets,
                         ::testing::Values(1, 2, 3, 5, 6, 7, 9, 12));

TEST(SyncedDecoder, DecodesDespiteUnknownOffset)
{
    const auto config = small_config();
    // Transmitter is 5 display frames ahead of the receiver clock.
    Offset_stream stream(config, 5.0 / 120.0, 99);

    Synced_decoder decoder(make_decoder_params(config, 480, 270));
    int correct_frames = 0;
    int wrong_blocks = 0;
    for (int i = 0; i < 60; ++i) {
        auto [frame, time] = stream.next_capture();
        for (const auto& result : decoder.push_capture(frame, time)) {
            // Map the decoder's frame index back to the transmitter's.
            const auto tx_index =
                result.data_frame_index + (5 + config.tau - 1) / config.tau;
            const auto* truth = stream.encoder.transmitted_block_bits(tx_index);
            if (truth == nullptr) continue;
            bool all_match = true;
            for (std::size_t b = 0; b < result.decisions.size(); ++b) {
                if (result.decisions[b] == Block_decision::unknown) continue;
                const std::uint8_t bit =
                    result.decisions[b] == Block_decision::one ? 1 : 0;
                if (bit != (*truth)[b]) {
                    all_match = false;
                    ++wrong_blocks;
                }
            }
            correct_frames += all_match;
        }
    }
    EXPECT_TRUE(decoder.locked());
    EXPECT_GT(correct_frames, 5);
    EXPECT_EQ(wrong_blocks, 0);
}

TEST(SyncedDecoder, StaysSilentBeforeLock)
{
    const auto config = small_config();
    Synced_decoder decoder(make_decoder_params(config, 480, 270));
    Offset_stream stream(config, 3.0 / 120.0, 5);
    auto [frame, time] = stream.next_capture();
    const auto results = decoder.push_capture(frame, time);
    EXPECT_TRUE(results.empty());
    EXPECT_FALSE(decoder.locked());
}

TEST(PhaseEstimator, ParameterValidation)
{
    const auto config = small_config();
    Sync_params bad;
    bad.candidates = 4;
    EXPECT_THROW(Phase_estimator(make_decoder_params(config, 480, 270), bad),
                 inframe::util::Contract_violation);
    bad = {};
    bad.min_captures = 2;
    EXPECT_THROW(Phase_estimator(make_decoder_params(config, 480, 270), bad),
                 inframe::util::Contract_violation);
    bad = {};
    bad.min_lock_score = -1.0;
    EXPECT_THROW(Phase_estimator(make_decoder_params(config, 480, 270), bad),
                 inframe::util::Contract_violation);
}

TEST(PhaseEstimator, NoLockOnIdleVideo)
{
    // Plain video without data: no metric structure, no (confident) lock.
    const auto config = small_config();
    Phase_estimator estimator(make_decoder_params(config, 480, 270));
    Prng prng(6);
    for (int i = 0; i < 30; ++i) {
        Imagef frame(480, 270, 1, 127.0f);
        for (auto& v : frame.values()) v += static_cast<float>(prng.next_gaussian(0.0, 1.0));
        estimator.push_capture(frame, i / 30.0);
    }
    EXPECT_FALSE(estimator.estimated_offset().has_value());
}

} // namespace
