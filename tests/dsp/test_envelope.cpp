#include "dsp/envelope.hpp"

#include "util/contract.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace inframe::dsp;
using inframe::util::Contract_violation;

TEST(TransitionGain, EndpointsForAllShapes)
{
    for (const auto shape :
         {Transition_shape::srrc, Transition_shape::linear, Transition_shape::stair}) {
        EXPECT_DOUBLE_EQ(transition_gain_01(shape, 0.0), 0.0) << to_string(shape);
        EXPECT_DOUBLE_EQ(transition_gain_01(shape, 1.0), 1.0) << to_string(shape);
        EXPECT_DOUBLE_EQ(transition_gain_10(shape, 0.0), 1.0) << to_string(shape);
        EXPECT_DOUBLE_EQ(transition_gain_10(shape, 1.0), 0.0) << to_string(shape);
    }
}

TEST(TransitionGain, SrrcIsHalfSquareRootRaisedCosine)
{
    // sin(pi t / 2) at t = 0.5 -> sin(pi/4) = sqrt(2)/2.
    EXPECT_NEAR(transition_gain_01(Transition_shape::srrc, 0.5), std::sqrt(0.5), 1e-12);
}

TEST(TransitionGain, MonotoneNonDecreasing)
{
    for (const auto shape :
         {Transition_shape::srrc, Transition_shape::linear, Transition_shape::stair}) {
        double prev = -1.0;
        for (int i = 0; i <= 20; ++i) {
            const double g = transition_gain_01(shape, i / 20.0);
            EXPECT_GE(g, prev) << to_string(shape);
            prev = g;
        }
    }
}

TEST(TransitionGain, SrrcIsSmootherThanLinearNearEnd)
{
    // SRRC flattens into the target level; linear does not.
    const double srrc_step =
        transition_gain_01(Transition_shape::srrc, 1.0) - transition_gain_01(Transition_shape::srrc, 0.9);
    const double linear_step =
        transition_gain_01(Transition_shape::linear, 1.0) - transition_gain_01(Transition_shape::linear, 0.9);
    EXPECT_LT(srrc_step, linear_step);
}

TEST(TransitionGain, RangeValidation)
{
    EXPECT_THROW(transition_gain_01(Transition_shape::srrc, -0.1), Contract_violation);
    EXPECT_THROW(transition_gain_01(Transition_shape::srrc, 1.1), Contract_violation);
}

TEST(SmoothingEnvelope, ConstantBitsHoldLevel)
{
    const std::uint8_t bits[] = {1, 1, 1};
    const auto envelope = smoothing_envelope(bits, 10);
    ASSERT_EQ(envelope.size(), 30u);
    for (const double g : envelope) EXPECT_DOUBLE_EQ(g, 1.0);
}

TEST(SmoothingEnvelope, ZeroBitsStayZero)
{
    const std::uint8_t bits[] = {0, 0};
    const auto envelope = smoothing_envelope(bits, 12);
    for (const double g : envelope) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(SmoothingEnvelope, TransitionStartsAtHalfCycle)
{
    const std::uint8_t bits[] = {1, 0};
    const int tau = 10;
    const auto envelope = smoothing_envelope(bits, tau);
    ASSERT_EQ(envelope.size(), 20u);
    // First half of the first period holds at 1.
    for (int k = 0; k < tau / 2; ++k) EXPECT_DOUBLE_EQ(envelope[static_cast<std::size_t>(k)], 1.0);
    // Second half descends strictly.
    for (int k = tau / 2; k < tau - 1; ++k) {
        EXPECT_GT(envelope[static_cast<std::size_t>(k)],
                  envelope[static_cast<std::size_t>(k + 1)]);
    }
    // Lands exactly on the new level at the period boundary.
    EXPECT_NEAR(envelope[static_cast<std::size_t>(tau - 1)], 0.0, 1e-12);
    // Second period holds at 0.
    for (int k = tau; k < 2 * tau; ++k) EXPECT_DOUBLE_EQ(envelope[static_cast<std::size_t>(k)], 0.0);
}

TEST(SmoothingEnvelope, RisingTransitionMirrorsFalling)
{
    // gain_10(t) == gain_01(1 - t): for SRRC this means the two envelopes
    // are sin/cos pairs (squares sum to 1); for linear they sum to 1.
    const std::uint8_t rise[] = {0, 1};
    const std::uint8_t fall[] = {1, 0};
    const int tau = 12;
    const auto up_srrc = smoothing_envelope(rise, tau, Transition_shape::srrc);
    const auto down_srrc = smoothing_envelope(fall, tau, Transition_shape::srrc);
    const auto up_lin = smoothing_envelope(rise, tau, Transition_shape::linear);
    const auto down_lin = smoothing_envelope(fall, tau, Transition_shape::linear);
    for (int k = tau / 2; k < tau; ++k) {
        const auto i = static_cast<std::size_t>(k);
        EXPECT_NEAR(up_srrc[i] * up_srrc[i] + down_srrc[i] * down_srrc[i], 1.0, 1e-12);
        EXPECT_NEAR(up_lin[i] + down_lin[i], 1.0, 1e-12);
    }
}

TEST(SmoothingEnvelope, LargerTauLowersPerFrameSlope)
{
    const std::uint8_t bits[] = {1, 0};
    for (const auto shape : {Transition_shape::srrc, Transition_shape::linear}) {
        double max_step_fast = 0.0;
        double max_step_slow = 0.0;
        const auto fast = smoothing_envelope(bits, 10, shape);
        const auto slow = smoothing_envelope(bits, 20, shape);
        for (std::size_t i = 1; i < fast.size(); ++i) {
            max_step_fast = std::max(max_step_fast, std::fabs(fast[i] - fast[i - 1]));
        }
        for (std::size_t i = 1; i < slow.size(); ++i) {
            max_step_slow = std::max(max_step_slow, std::fabs(slow[i] - slow[i - 1]));
        }
        EXPECT_LT(max_step_slow, max_step_fast) << to_string(shape);
    }
}

TEST(SmoothingEnvelope, StairKeepsFullStep)
{
    const std::uint8_t bits[] = {1, 0};
    const auto envelope = smoothing_envelope(bits, 12, Transition_shape::stair);
    double max_step = 0.0;
    for (std::size_t i = 1; i < envelope.size(); ++i) {
        max_step = std::max(max_step, std::fabs(envelope[i] - envelope[i - 1]));
    }
    EXPECT_DOUBLE_EQ(max_step, 1.0);
}

TEST(SmoothingEnvelope, TauValidation)
{
    const std::uint8_t bits[] = {1};
    EXPECT_THROW(smoothing_envelope(bits, 0), Contract_violation);
    EXPECT_THROW(smoothing_envelope(bits, 7), Contract_violation);
}

TEST(PixelWaveform, AlternatesSign)
{
    const std::uint8_t bits[] = {1, 1};
    const auto waveform = pixel_waveform(bits, 4);
    ASSERT_EQ(waveform.size(), 8u);
    for (std::size_t i = 0; i < waveform.size(); ++i) {
        EXPECT_DOUBLE_EQ(waveform[i], i % 2 == 0 ? 1.0 : -1.0);
    }
}

TEST(PixelWaveform, ComplementaryPairsCancelAtConstantEnvelope)
{
    const std::uint8_t bits[] = {1, 1, 1, 1};
    const auto waveform = pixel_waveform(bits, 10);
    for (std::size_t i = 0; i + 1 < waveform.size(); i += 2) {
        EXPECT_NEAR(waveform[i] + waveform[i + 1], 0.0, 1e-12);
    }
}

} // namespace
