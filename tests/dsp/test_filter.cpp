#include "dsp/filter.hpp"

#include "util/contract.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace {

using namespace inframe::dsp;
using inframe::util::Contract_violation;

std::vector<double> sine(double freq_hz, double sample_rate, double seconds, double amplitude = 1.0)
{
    std::vector<double> s(static_cast<std::size_t>(seconds * sample_rate));
    for (std::size_t i = 0; i < s.size(); ++i) {
        s[i] = amplitude
               * std::sin(2.0 * std::numbers::pi * freq_hz * static_cast<double>(i) / sample_rate);
    }
    return s;
}

// Peak over the third quarter of the signal: past the start-up transient
// and clear of the FIR's edge-replicated tail.
double steady_peak(std::span<const double> signal)
{
    double peak = 0.0;
    for (std::size_t i = signal.size() / 2; i < signal.size() * 3 / 4; ++i) {
        peak = std::max(peak, std::fabs(signal[i]));
    }
    return peak;
}

TEST(FirDesign, UnityDcGain)
{
    const auto kernel = design_lowpass_fir(40.0, 120.0, 31);
    double sum = 0.0;
    for (const double k : kernel) sum += k;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FirDesign, ParameterValidation)
{
    EXPECT_THROW(design_lowpass_fir(70.0, 120.0, 31), Contract_violation); // above Nyquist
    EXPECT_THROW(design_lowpass_fir(-1.0, 120.0, 31), Contract_violation);
    EXPECT_THROW(design_lowpass_fir(10.0, 120.0, 30), Contract_violation); // even taps
    EXPECT_THROW(design_lowpass_fir(10.0, 0.0, 31), Contract_violation);
}

TEST(FirFilter, PassesLowFrequency)
{
    const auto kernel = design_lowpass_fir(20.0, 120.0, 63);
    const auto in = sine(5.0, 120.0, 2.0);
    const auto out = fir_filter(in, kernel);
    EXPECT_NEAR(steady_peak(out), 1.0, 0.05);
}

TEST(FirFilter, AttenuatesHighFrequency)
{
    const auto kernel = design_lowpass_fir(20.0, 120.0, 63);
    const auto in = sine(55.0, 120.0, 2.0);
    const auto out = fir_filter(in, kernel);
    EXPECT_LT(steady_peak(out), 0.03);
}

TEST(FirFilter, PreservesConstant)
{
    const auto kernel = design_lowpass_fir(20.0, 120.0, 31);
    const std::vector<double> in(100, 3.0);
    const auto out = fir_filter(in, kernel);
    for (const double v : out) EXPECT_NEAR(v, 3.0, 1e-9);
}

TEST(FirFilter, EmptySignal)
{
    const auto kernel = design_lowpass_fir(20.0, 120.0, 31);
    EXPECT_TRUE(fir_filter({}, kernel).empty());
}

TEST(FirFilter, EvenKernelRejected)
{
    const std::vector<double> kernel = {0.5, 0.5};
    const std::vector<double> in(10, 1.0);
    EXPECT_THROW(fir_filter(in, kernel), Contract_violation);
}

TEST(Butterworth, PassesDc)
{
    Butterworth_lowpass lp(30.0, 120.0);
    const std::vector<double> in(200, 2.0);
    const auto out = lp.filter(in);
    EXPECT_NEAR(out.back(), 2.0, 1e-6);
}

TEST(Butterworth, CornerIsMinus3Db)
{
    Butterworth_lowpass lp(30.0, 480.0);
    const auto in = sine(30.0, 480.0, 3.0);
    const auto out = lp.filter(in);
    EXPECT_NEAR(steady_peak(out), 1.0 / std::sqrt(2.0), 0.03);
}

TEST(Butterworth, SecondOrderRolloff)
{
    Butterworth_lowpass lp(10.0, 480.0);
    // At 4x the corner a 2nd-order filter is ~1/16 (about -24 dB).
    const auto out = lp.filter(sine(40.0, 480.0, 3.0));
    EXPECT_NEAR(steady_peak(out), 1.0 / 16.0, 0.02);
}

TEST(Butterworth, ParameterValidation)
{
    EXPECT_THROW(Butterworth_lowpass(0.0, 120.0), Contract_violation);
    EXPECT_THROW(Butterworth_lowpass(60.0, 120.0), Contract_violation);
}

TEST(ExponentialCascade, GainFormulaMatchesSimulation)
{
    Exponential_cascade cascade(24.0, 6, 480.0);
    for (const double f : {6.0, 12.0, 24.0, 48.0}) {
        cascade.reset();
        const auto out = cascade.filter(sine(f, 480.0, 4.0));
        EXPECT_NEAR(steady_peak(out), cascade.gain_at(f), 0.03 * cascade.gain_at(f) + 0.001)
            << "f=" << f;
    }
}

TEST(ExponentialCascade, SteepRolloffSeparates30From60Hz)
{
    // This separation is the entire premise of InFrame: 60 Hz artifacts
    // fuse away, 30 Hz artifacts do not. Parameters mirror the HVS model
    // (10 stages, corner near CFF, oversampled internal rate).
    Exponential_cascade cascade(46.0, 10, 960.0);
    EXPECT_GT(cascade.gain_at(30.0) / cascade.gain_at(60.0), 15.0);
}

TEST(ExponentialCascade, MoreStagesRollOffFaster)
{
    Exponential_cascade shallow(24.0, 2, 120.0);
    Exponential_cascade steep(24.0, 8, 120.0);
    const double ratio_shallow = shallow.gain_at(60.0) / shallow.gain_at(30.0);
    const double ratio_steep = steep.gain_at(60.0) / steep.gain_at(30.0);
    EXPECT_LT(ratio_steep, ratio_shallow);
}

TEST(ExponentialCascade, PrimeEliminatesTransient)
{
    Exponential_cascade cascade(10.0, 4, 120.0);
    cascade.prime(5.0);
    EXPECT_NEAR(cascade.step(5.0), 5.0, 1e-9);
}

TEST(ExponentialCascade, ParameterValidation)
{
    EXPECT_THROW(Exponential_cascade(0.0, 4, 120.0), Contract_violation);
    EXPECT_THROW(Exponential_cascade(10.0, 0, 120.0), Contract_violation);
    EXPECT_THROW(Exponential_cascade(10.0, 4, 0.0), Contract_violation);
}

TEST(ExponentialCascade, DcGainIsUnity)
{
    Exponential_cascade cascade(24.0, 6, 120.0);
    EXPECT_DOUBLE_EQ(cascade.gain_at(0.0), 1.0);
    const std::vector<double> in(600, 7.0);
    const auto out = cascade.filter(in);
    EXPECT_NEAR(out.back(), 7.0, 1e-3);
}

} // namespace
