#include "dsp/spectrum.hpp"

#include "dsp/envelope.hpp"
#include "util/contract.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace {

using namespace inframe::dsp;
using inframe::util::Contract_violation;

std::vector<double> sine(double freq_hz, double sample_rate, int samples, double amplitude = 1.0)
{
    std::vector<double> s(static_cast<std::size_t>(samples));
    for (std::size_t i = 0; i < s.size(); ++i) {
        s[i] = amplitude
               * std::sin(2.0 * std::numbers::pi * freq_hz * static_cast<double>(i) / sample_rate);
    }
    return s;
}

TEST(Spectrum, SineConcentratesInOneBin)
{
    // 15 Hz sine at 120 Hz over 120 samples -> exactly bin 15.
    const auto s = sine(15.0, 120.0, 120);
    const auto spectrum = magnitude_spectrum(s);
    ASSERT_EQ(spectrum.size(), 61u);
    EXPECT_NEAR(spectrum[15], 0.5, 1e-9); // amplitude A appears as A/2
    EXPECT_NEAR(spectrum[14], 0.0, 1e-9);
    EXPECT_NEAR(spectrum[16], 0.0, 1e-9);
}

TEST(Spectrum, DcBinHoldsMean)
{
    const std::vector<double> s(64, 3.0);
    const auto spectrum = magnitude_spectrum(s);
    EXPECT_NEAR(spectrum[0], 3.0, 1e-9);
}

TEST(Spectrum, EmptySignalThrows)
{
    EXPECT_THROW(magnitude_spectrum({}), Contract_violation);
}

TEST(DominantFrequency, FindsTheTone)
{
    const auto s = sine(24.0, 120.0, 240);
    EXPECT_NEAR(dominant_frequency(s, 120.0), 24.0, 0.51);
}

TEST(DominantFrequency, ComplementaryAlternationSitsAtNyquistHalfRate)
{
    // The +D/-D alternation of InFrame is a 60 Hz square component on a
    // 120 Hz display.
    const std::uint8_t bits[] = {1, 1, 1, 1, 1, 1};
    const auto waveform = pixel_waveform(bits, 10);
    EXPECT_NEAR(dominant_frequency(waveform, 120.0), 60.0, 1.0);
}

TEST(BandEnergy, SplitsSpectrum)
{
    auto s = sine(10.0, 120.0, 240);
    const auto high = sine(50.0, 120.0, 240, 0.5);
    for (std::size_t i = 0; i < s.size(); ++i) s[i] += high[i];
    const double low_band = band_energy(s, 120.0, 5.0, 15.0);
    const double high_band = band_energy(s, 120.0, 45.0, 55.0);
    EXPECT_NEAR(low_band, 0.5, 0.02);
    EXPECT_NEAR(high_band, 0.25, 0.02);
}

TEST(BandEnergy, Validation)
{
    const auto s = sine(10.0, 120.0, 64);
    EXPECT_THROW(band_energy(s, 120.0, 20.0, 10.0), Contract_violation);
}

TEST(RemoveMean, CentersSignal)
{
    std::vector<double> s = {1.0, 2.0, 3.0};
    const double removed = remove_mean(s);
    EXPECT_DOUBLE_EQ(removed, 2.0);
    EXPECT_DOUBLE_EQ(s[0], -1.0);
    EXPECT_DOUBLE_EQ(s[2], 1.0);
}

TEST(RemoveMean, EmptyIsNoop)
{
    std::vector<double> s;
    EXPECT_DOUBLE_EQ(remove_mean(s), 0.0);
}

TEST(Spectrum, SmoothedTransitionHasLessLowFrequencyEnergyThanStair)
{
    // The design rationale of Fig. 5: SRRC smoothing moves transition
    // energy out of the visible band relative to an abrupt stair switch.
    const std::uint8_t bits[] = {1, 0, 1, 0, 1, 0, 1, 0};
    const auto srrc = pixel_waveform(bits, 12, Transition_shape::srrc);
    const auto stair = pixel_waveform(bits, 12, Transition_shape::stair);
    const double srrc_low = band_energy(srrc, 120.0, 2.0, 40.0);
    const double stair_low = band_energy(stair, 120.0, 2.0, 40.0);
    EXPECT_LT(srrc_low, stair_low);
}

} // namespace
