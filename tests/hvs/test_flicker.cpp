#include "hvs/flicker.hpp"

#include "imgproc/draw.hpp"
#include "util/contract.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace inframe::hvs;
using inframe::img::Imagef;
using inframe::util::Contract_violation;

constexpr int width = 96;
constexpr int height = 54;
constexpr double fps = 120.0;

std::vector<Imagef> steady_frames(float level, int count)
{
    return std::vector<Imagef>(static_cast<std::size_t>(count), Imagef(width, height, 1, level));
}

// Frames whose whole area modulates as level + amplitude * pattern(t).
std::vector<Imagef> modulated_frames(float level, float amplitude, int period_frames, int count)
{
    std::vector<Imagef> frames;
    frames.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        const float sign = (i % period_frames) < period_frames / 2 ? 1.0f : -1.0f;
        frames.emplace_back(width, height, 1, level + sign * amplitude);
    }
    return frames;
}

TEST(FlickerAssessor, SteadyVideoScoresZero)
{
    const auto frames = steady_frames(127.0f, 240);
    const auto r = assess_flicker(frames, fps, Vision_model_params{}, Observer{});
    EXPECT_EQ(r.frames_assessed, 240u);
    EXPECT_NEAR(r.score, 0.0, 1e-6);
    EXPECT_NEAR(r.peak_perceived_amplitude, 0.0, 1e-6);
    EXPECT_NEAR(r.adapt_luminance, 127.0, 0.5);
}

TEST(FlickerAssessor, SixtyHzAlternationIsInvisible)
{
    // Full-screen +-20 alternation every frame (60 Hz on a 120 Hz display):
    // the InFrame steady state, which must fuse away.
    const auto frames = modulated_frames(127.0f, 20.0f, 2, 240);
    const auto r = assess_flicker(frames, fps, Vision_model_params{}, Observer{});
    EXPECT_LT(r.score, 1.0);
}

TEST(FlickerAssessor, ThirtyHzAlternationIsClearlyVisible)
{
    // The same amplitude at 30 Hz (naive-design cadence) must flicker.
    const auto frames = modulated_frames(127.0f, 20.0f, 4, 240);
    const auto r = assess_flicker(frames, fps, Vision_model_params{}, Observer{});
    EXPECT_GT(r.score, 2.0);
}

TEST(FlickerAssessor, ScoreGrowsWithAmplitude)
{
    const auto small = modulated_frames(127.0f, 5.0f, 4, 240);
    const auto large = modulated_frames(127.0f, 40.0f, 4, 240);
    const auto r_small = assess_flicker(small, fps, Vision_model_params{}, Observer{});
    const auto r_large = assess_flicker(large, fps, Vision_model_params{}, Observer{});
    EXPECT_GT(r_large.visibility_ratio, r_small.visibility_ratio);
}

TEST(FlickerAssessor, LocalizedFlickerIsStillCaught)
{
    // Only a small patch flickers at 30 Hz; the panel verdict must follow
    // the worst region, not the average.
    std::vector<Imagef> frames;
    for (int i = 0; i < 240; ++i) {
        Imagef frame(width, height, 1, 127.0f);
        const float sign = (i % 4) < 2 ? 1.0f : -1.0f;
        inframe::img::fill_rect(frame, 10, 10, 20, 12, 127.0f + sign * 25.0f);
        frames.push_back(std::move(frame));
    }
    const auto r = assess_flicker(frames, fps, Vision_model_params{}, Observer{});
    EXPECT_GT(r.score, 1.5);
}

TEST(FlickerAssessor, FineCheckerboardFusesSpatially)
{
    // A 1-px checkerboard alternating phase at 30 Hz: spatial pooling
    // cancels most of it even at a flicker-friendly temporal rate,
    // unlike the full-field case. (Pixel-size rationale, 3.3.)
    std::vector<Imagef> checker_frames;
    std::vector<Imagef> solid_frames;
    for (int i = 0; i < 240; ++i) {
        const int phase = (i % 4) < 2 ? 0 : 1;
        checker_frames.push_back(
            inframe::img::checkerboard(width, height, 1, 107.0f, 147.0f, phase));
        const float sign = (i % 4) < 2 ? 1.0f : -1.0f;
        solid_frames.emplace_back(width, height, 1, 127.0f + sign * 20.0f);
    }
    // The test frames are tiny (96x54); scale the pooling aperture so it
    // covers the same *fraction* of the frame as the default does at the
    // paper's resolution (where one pooled aperture spans a super Pixel).
    Flicker_options options;
    options.pooling_sigma_540 = 10.0;
    const auto r_checker =
        assess_flicker(checker_frames, fps, Vision_model_params{}, Observer{}, options);
    const auto r_solid =
        assess_flicker(solid_frames, fps, Vision_model_params{}, Observer{}, options);
    EXPECT_LT(r_checker.visibility_ratio, 0.3 * r_solid.visibility_ratio);
}

TEST(FlickerAssessor, GazeDriftRevealsPhantomArray)
{
    // With steady gaze a +-delta 60 Hz checkerboard fuses; a drifting gaze
    // (saccade-like) breaks the complementary cancellation.
    std::vector<Imagef> frames;
    for (int i = 0; i < 240; ++i) {
        const int phase = i % 2;
        frames.push_back(inframe::img::checkerboard(width, height, 4, 107.0f, 147.0f, phase));
    }
    Flicker_options steady;
    Flicker_options moving;
    // 3 px/frame against 4 px cells: the retinal image beats the 60 Hz
    // alternation down to 15 Hz, squarely in the visible band.
    moving.gaze_velocity_x = 3.0;
    const auto r_steady =
        assess_flicker(frames, fps, Vision_model_params{}, Observer{}, steady);
    const auto r_moving =
        assess_flicker(frames, fps, Vision_model_params{}, Observer{}, moving);
    EXPECT_GT(r_moving.visibility_ratio, 2.0 * r_steady.visibility_ratio);
}

TEST(FlickerAssessor, SensitiveObserverScoresHigher)
{
    const auto frames = modulated_frames(127.0f, 8.0f, 4, 240);
    Observer expert;
    expert.amp_threshold = 0.6;
    Observer casual;
    casual.amp_threshold = 2.0;
    const auto r_expert = assess_flicker(frames, fps, Vision_model_params{}, expert);
    const auto r_casual = assess_flicker(frames, fps, Vision_model_params{}, casual);
    EXPECT_GT(r_expert.score, r_casual.score);
}

TEST(FlickerAssessor, FrameSizeMismatchThrows)
{
    Flicker_assessor assessor(width, height, fps, Vision_model_params{}, Observer{});
    EXPECT_THROW(assessor.push_frame(Imagef(width + 1, height)), Contract_violation);
}

TEST(FlickerAssessor, OptionValidation)
{
    Flicker_options bad;
    bad.max_sites = 0;
    EXPECT_THROW(Flicker_assessor(width, height, fps, Vision_model_params{}, Observer{}, bad),
                 Contract_violation);
    EXPECT_THROW(Flicker_assessor(0, height, fps, Vision_model_params{}, Observer{}),
                 Contract_violation);
    EXPECT_THROW(Flicker_assessor(width, height, 0.0, Vision_model_params{}, Observer{}),
                 Contract_violation);
}

TEST(FlickerAssessor, EmptySequenceThrows)
{
    EXPECT_THROW(assess_flicker({}, fps, Vision_model_params{}, Observer{}), Contract_violation);
}

TEST(FlickerAssessor, ResultBeforeFramesIsZero)
{
    Flicker_assessor assessor(width, height, fps, Vision_model_params{}, Observer{});
    const auto r = assessor.result();
    EXPECT_EQ(r.frames_assessed, 0u);
    EXPECT_EQ(r.score, 0.0);
}

TEST(FlickerAssessor, ComparativeModeIgnoresContentMotion)
{
    // A hard-cutting video scores as "flicker" in absolute mode but as a
    // perfect 0 in side-by-side mode when shown == reference — content
    // motion is not an artifact.
    std::vector<Imagef> frames;
    for (int i = 0; i < 200; ++i) {
        const float level = (i / 40) % 2 == 0 ? 90.0f : 170.0f; // cut every 1/3 s
        frames.emplace_back(width, height, 1, level);
    }
    Flicker_assessor absolute(width, height, fps, Vision_model_params{}, Observer{});
    Flicker_assessor comparative(width, height, fps, Vision_model_params{}, Observer{});
    for (const auto& frame : frames) {
        absolute.push_frame(frame);
        comparative.push_frame_pair(frame, frame);
    }
    EXPECT_GT(absolute.result().visibility_ratio, 1.0);
    EXPECT_NEAR(comparative.result().visibility_ratio, 0.0, 1e-9);
}

TEST(FlickerAssessor, ComparativeModeStillCatchesArtifactsOnMovingContent)
{
    // Same cutting video, but the shown version carries a 30 Hz full-field
    // artifact: the comparative assessor must flag it.
    Flicker_assessor comparative(width, height, fps, Vision_model_params{}, Observer{});
    for (int i = 0; i < 240; ++i) {
        const float level = (i / 40) % 2 == 0 ? 90.0f : 170.0f;
        const Imagef reference(width, height, 1, level);
        const float artifact = (i % 4) < 2 ? 15.0f : -15.0f;
        const Imagef shown(width, height, 1, level + artifact);
        comparative.push_frame_pair(shown, reference);
    }
    EXPECT_GT(comparative.result().score, 2.0);
}

TEST(FlickerAssessor, ReferenceSizeMismatchThrows)
{
    Flicker_assessor assessor(width, height, fps, Vision_model_params{}, Observer{});
    EXPECT_THROW(assessor.push_frame_pair(Imagef(width, height), Imagef(width + 2, height)),
                 Contract_violation);
}

TEST(FlickerPanel, ReportsMeanAndSpread)
{
    const auto frames = modulated_frames(127.0f, 12.0f, 4, 200);
    const auto panel = make_observer_panel(8, 42);
    const auto result =
        assess_flicker_panel(frames, fps, Vision_model_params{}, panel);
    ASSERT_EQ(result.scores.size(), 8u);
    EXPECT_GT(result.mean_score, 0.5);
    EXPECT_GE(result.stddev_score, 0.0);
    for (const double s : result.scores) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 4.0);
    }
}

TEST(FlickerPanel, EmptyPanelThrows)
{
    const auto frames = steady_frames(127.0f, 10);
    EXPECT_THROW(assess_flicker_panel(frames, fps, Vision_model_params{}, {}),
                 Contract_violation);
}

} // namespace
