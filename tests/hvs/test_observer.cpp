#include "hvs/observer.hpp"

#include "util/contract.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::hvs;

TEST(ObserverPanel, SizeAndDeterminism)
{
    const auto a = make_observer_panel(8, 42);
    const auto b = make_observer_panel(8, 42);
    ASSERT_EQ(a.size(), 8u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].cff_ref_hz, b[i].cff_ref_hz);
        EXPECT_DOUBLE_EQ(a[i].amp_threshold, b[i].amp_threshold);
    }
}

TEST(ObserverPanel, FirstObserverIsReference)
{
    const auto panel = make_observer_panel(4, 7);
    EXPECT_DOUBLE_EQ(panel[0].cff_ref_hz, Observer{}.cff_ref_hz);
    EXPECT_DOUBLE_EQ(panel[0].amp_threshold, Observer{}.amp_threshold);
}

TEST(ObserverPanel, CffWithinPhysiologicalRange)
{
    const auto panel = make_observer_panel(64, 3);
    for (const auto& o : panel) {
        EXPECT_GE(o.cff_ref_hz, 38.0);
        EXPECT_LE(o.cff_ref_hz, 52.0);
        EXPECT_GT(o.amp_threshold, 0.0);
    }
}

TEST(ObserverPanel, ContainsSensitiveExperts)
{
    const auto panel = make_observer_panel(8, 42);
    // Observers 1-2 are biased sensitive; on average they should sit below
    // the panel median threshold.
    double expert = (panel[1].amp_threshold + panel[2].amp_threshold) / 2.0;
    double rest = 0.0;
    for (std::size_t i = 3; i < panel.size(); ++i) rest += panel[i].amp_threshold;
    rest /= static_cast<double>(panel.size() - 3);
    EXPECT_LT(expert, rest);
}

TEST(ObserverPanel, SeedChangesPanel)
{
    const auto a = make_observer_panel(8, 1);
    const auto b = make_observer_panel(8, 2);
    bool differs = false;
    for (std::size_t i = 1; i < a.size(); ++i) {
        differs |= a[i].cff_ref_hz != b[i].cff_ref_hz;
    }
    EXPECT_TRUE(differs);
}

TEST(ObserverPanel, RejectsEmptyPanel)
{
    EXPECT_THROW(make_observer_panel(0, 1), inframe::util::Contract_violation);
}

TEST(ObserverPanel, LabelsAreUnique)
{
    const auto panel = make_observer_panel(8, 42);
    for (std::size_t i = 0; i < panel.size(); ++i) {
        EXPECT_EQ(panel[i].label, "observer-" + std::to_string(i));
    }
}

} // namespace
