#include "hvs/temporal_model.hpp"

#include "dsp/envelope.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace {

using namespace inframe::hvs;

std::vector<double> modulated(double mean, double amplitude, double freq_hz, double fps,
                              double seconds)
{
    std::vector<double> s(static_cast<std::size_t>(fps * seconds));
    for (std::size_t i = 0; i < s.size(); ++i) {
        s[i] = mean
               + amplitude
                     * std::sin(2.0 * std::numbers::pi * freq_hz * static_cast<double>(i) / fps);
    }
    return s;
}

TEST(TemporalModel, FerryPorterRaisesCffWithLuminance)
{
    const Vision_model_params params;
    const Observer observer;
    EXPECT_GT(cff_hz(params, observer, 200.0), cff_hz(params, observer, 60.0));
    // One decade of luminance ~ the configured slope.
    EXPECT_NEAR(cff_hz(params, observer, 100.0) - cff_hz(params, observer, 10.0),
                params.ferry_porter_slope_hz, 1e-9);
}

TEST(TemporalModel, CffIsClampedToPhysiologicalRange)
{
    const Vision_model_params params;
    const Observer observer;
    EXPECT_GE(cff_hz(params, observer, 0.0001), 20.0);
    EXPECT_LE(cff_hz(params, observer, 1e9), 70.0);
}

TEST(TemporalModel, ThresholdFallsWithLuminance)
{
    const Vision_model_params params;
    const Observer observer;
    EXPECT_GT(amplitude_threshold(params, observer, 60.0),
              amplitude_threshold(params, observer, 200.0));
}

TEST(TemporalModel, SensitiveObserverHasLowerThreshold)
{
    const Vision_model_params params;
    Observer expert;
    expert.amp_threshold = 0.4;
    const Observer casual;
    EXPECT_LT(amplitude_threshold(params, expert, 100.0),
              amplitude_threshold(params, casual, 100.0));
}

TEST(TemporalModel, PerceptualGainIsBandPass)
{
    const Vision_model_params params;
    const Observer observer;
    const double g_dc = perceptual_gain(params, observer, 100.0, 0.0);
    const double g_mid = perceptual_gain(params, observer, 100.0, 10.0);
    const double g_60 = perceptual_gain(params, observer, 100.0, 60.0);
    EXPECT_NEAR(g_dc, 0.0, 1e-9);
    EXPECT_GT(g_mid, 10.0 * g_60);
    EXPECT_GT(g_mid, 0.2);
}

TEST(TemporalModel, SixtyHzFusesThirtyHzDoesNot)
{
    // The core premise: equal-amplitude modulation at 60 Hz is far less
    // perceptible than at 30 Hz.
    const Vision_model_params params;
    const Observer observer;
    const double g30 = perceptual_gain(params, observer, 127.0, 30.0);
    const double g60 = perceptual_gain(params, observer, 127.0, 60.0);
    EXPECT_GT(g30 / g60, 8.0);
}

TEST(TemporalModel, PerceivedAmplitudeTracksAnalyticGain)
{
    const Vision_model_params params;
    const Observer observer;
    for (const double f : {8.0, 15.0, 30.0}) {
        const auto wave = modulated(127.0, 10.0, f, 120.0, 4.0);
        const double perceived =
            perceived_peak_amplitude(params, observer, wave, 120.0, 127.0, 1.0);
        const double expected = 10.0 * perceptual_gain(params, observer, 127.0, f);
        // Phase interaction between the two paths makes the time-domain
        // peak differ from the magnitude difference; same ballpark only.
        EXPECT_GT(perceived, 0.4 * expected) << "f=" << f;
        EXPECT_LT(perceived, 2.5 * expected + 0.2) << "f=" << f;
    }
}

TEST(TemporalModel, SteadyLuminanceIsInvisible)
{
    const Vision_model_params params;
    const Observer observer;
    const std::vector<double> wave(480, 127.0);
    EXPECT_NEAR(perceived_peak_amplitude(params, observer, wave, 120.0, 127.0), 0.0, 1e-9);
}

TEST(TemporalModel, ComplementaryAlternationIsNearInvisible)
{
    // +-delta alternation at 60 Hz (InFrame steady-state) vs. the same
    // amplitude at 30 Hz (naive design cadence).
    const Vision_model_params params;
    const Observer observer;
    std::vector<double> inframe_wave(480);
    std::vector<double> naive_wave(480);
    for (std::size_t i = 0; i < 480; ++i) {
        inframe_wave[i] = 127.0 + (i % 2 == 0 ? 20.0 : -20.0);
        naive_wave[i] = 127.0 + (i % 4 < 2 ? 20.0 : -20.0);
    }
    const double a_inframe =
        perceived_peak_amplitude(params, observer, inframe_wave, 120.0, 127.0);
    const double a_naive = perceived_peak_amplitude(params, observer, naive_wave, 120.0, 127.0);
    EXPECT_GT(a_naive / a_inframe, 5.0);
    EXPECT_LT(a_inframe, amplitude_threshold(params, observer, 127.0));
}

TEST(TemporalModel, BrighterAdaptationPassesMoreHighFrequency)
{
    // Ferry-Porter consequence that drives Fig. 6 (left): the same 60 Hz
    // ripple is perceived more strongly on a brighter background.
    const Vision_model_params params;
    const Observer observer;
    const auto dim = modulated(60.0, 20.0, 60.0, 120.0, 4.0);
    const auto bright = modulated(200.0, 20.0, 60.0, 120.0, 4.0);
    const double a_dim = perceived_peak_amplitude(params, observer, dim, 120.0, 60.0);
    const double a_bright = perceived_peak_amplitude(params, observer, bright, 120.0, 200.0);
    EXPECT_GT(a_bright, a_dim);
}

TEST(ScoreFromRatio, MapsThePaperScale)
{
    EXPECT_DOUBLE_EQ(score_from_ratio(0.0), 0.0);
    EXPECT_DOUBLE_EQ(score_from_ratio(0.5), 0.0);
    EXPECT_DOUBLE_EQ(score_from_ratio(1.0), 1.0);
    EXPECT_DOUBLE_EQ(score_from_ratio(2.0), 2.0);
    EXPECT_DOUBLE_EQ(score_from_ratio(4.0), 3.0);
    EXPECT_DOUBLE_EQ(score_from_ratio(8.0), 4.0);
    EXPECT_DOUBLE_EQ(score_from_ratio(100.0), 4.0);
}

TEST(ScoreFromRatio, MonotoneInRatio)
{
    double prev = -1.0;
    for (double r = 0.1; r < 20.0; r *= 1.3) {
        const double s = score_from_ratio(r);
        EXPECT_GE(s, prev);
        prev = s;
    }
}

TEST(TemporalModel, SmoothedTransitionLessVisibleThanStair)
{
    // Fig. 5 rationale at the perceptual level.
    const Vision_model_params params;
    const Observer observer;
    const std::uint8_t bits[] = {1, 0, 1, 0, 1, 0, 1, 0, 1, 0};
    for (const int tau : {10, 14}) {
        auto srrc = inframe::dsp::pixel_waveform(bits, tau, inframe::dsp::Transition_shape::srrc);
        auto stair =
            inframe::dsp::pixel_waveform(bits, tau, inframe::dsp::Transition_shape::stair);
        for (auto& v : srrc) v = 127.0 + 20.0 * v;
        for (auto& v : stair) v = 127.0 + 20.0 * v;
        const double a_srrc = perceived_peak_amplitude(params, observer, srrc, 120.0, 127.0);
        const double a_stair = perceived_peak_amplitude(params, observer, stair, 120.0, 127.0);
        EXPECT_LT(a_srrc, a_stair) << "tau=" << tau;
    }
}

TEST(TemporalModel, LongerSmoothingCycleReducesVisibility)
{
    // Fig. 6 (right): larger tau -> smoother transitions -> lower score.
    const Vision_model_params params;
    const Observer observer;
    const std::uint8_t bits[] = {1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0};
    auto perceived_for_tau = [&](int tau) {
        auto wave = inframe::dsp::pixel_waveform(bits, tau);
        for (auto& v : wave) v = 127.0 + 30.0 * v;
        return perceived_peak_amplitude(params, observer, wave, 120.0, 127.0);
    };
    EXPECT_GT(perceived_for_tau(10), perceived_for_tau(14));
    EXPECT_GT(perceived_for_tau(14), perceived_for_tau(20));
}

} // namespace
