#include "imgproc/draw.hpp"

#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::img;
using inframe::util::Contract_violation;

TEST(Draw, FillRectClipsToImage)
{
    Imagef a(4, 4, 1, 0.0f);
    fill_rect(a, 2, 2, 10, 10, 50.0f);
    EXPECT_EQ(a(3, 3), 50.0f);
    EXPECT_EQ(a(1, 1), 0.0f);
    fill_rect(a, -5, -5, 6, 6, 7.0f);
    EXPECT_EQ(a(0, 0), 7.0f);
}

TEST(Draw, FillRectRgbRequiresThreeChannels)
{
    Imagef gray(4, 4, 1);
    EXPECT_THROW(fill_rect_rgb(gray, 0, 0, 2, 2, 1, 2, 3), Contract_violation);
    Imagef rgb(4, 4, 3);
    fill_rect_rgb(rgb, 0, 0, 2, 2, 10.0f, 20.0f, 30.0f);
    EXPECT_EQ(rgb(1, 1, 0), 10.0f);
    EXPECT_EQ(rgb(1, 1, 1), 20.0f);
    EXPECT_EQ(rgb(1, 1, 2), 30.0f);
    EXPECT_EQ(rgb(3, 3, 0), 0.0f);
}

TEST(Draw, FillDiscRadiusAndClipping)
{
    Imagef a(9, 9, 1, 0.0f);
    fill_disc(a, 4.0f, 4.0f, 2.0f, 90.0f);
    EXPECT_EQ(a(4, 4), 90.0f);
    EXPECT_EQ(a(6, 4), 90.0f);
    EXPECT_EQ(a(7, 4), 0.0f);
    EXPECT_EQ(a(0, 0), 0.0f);
    EXPECT_THROW(fill_disc(a, 0, 0, -1.0f, 1.0f), Contract_violation);
}

TEST(Draw, CheckerboardAlternates)
{
    const Imagef board = checkerboard(4, 4, 1, 0.0f, 100.0f);
    EXPECT_EQ(board(0, 0), 0.0f);
    EXPECT_EQ(board(1, 0), 100.0f);
    EXPECT_EQ(board(0, 1), 100.0f);
    EXPECT_EQ(board(1, 1), 0.0f);
}

TEST(Draw, CheckerboardPhaseInverts)
{
    const Imagef a = checkerboard(4, 4, 1, 0.0f, 1.0f, 0);
    const Imagef b = checkerboard(4, 4, 1, 0.0f, 1.0f, 1);
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) EXPECT_NE(a(x, y), b(x, y));
    }
}

TEST(Draw, CheckerboardCellSize)
{
    const Imagef board = checkerboard(8, 8, 2, 0.0f, 1.0f);
    EXPECT_EQ(board(0, 0), board(1, 1));
    EXPECT_NE(board(0, 0), board(2, 0));
    EXPECT_THROW(checkerboard(4, 4, 0, 0.0f, 1.0f), Contract_violation);
}

TEST(Draw, CheckerboardMeanIsMidpoint)
{
    const Imagef board = checkerboard(16, 16, 1, 0.0f, 100.0f);
    EXPECT_NEAR(mean(board), 50.0, 1e-3);
}

TEST(Draw, HorizontalGradientEndpoints)
{
    const Imagef g = horizontal_gradient(5, 2, 10.0f, 50.0f);
    EXPECT_FLOAT_EQ(g(0, 0), 10.0f);
    EXPECT_FLOAT_EQ(g(4, 1), 50.0f);
    EXPECT_FLOAT_EQ(g(2, 0), 30.0f);
}

TEST(Draw, VerticalGradientEndpoints)
{
    const Imagef g = vertical_gradient(2, 5, 0.0f, 100.0f);
    EXPECT_FLOAT_EQ(g(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(g(1, 4), 100.0f);
    EXPECT_FLOAT_EQ(g(0, 2), 50.0f);
}

TEST(Draw, TextMarksPixels)
{
    Imagef a(64, 16, 1, 0.0f);
    draw_text(a, 1, 1, "A1", 200.0f);
    double marked = 0.0;
    for (const float v : a.values()) marked += v > 0.0f;
    EXPECT_GT(marked, 10.0); // both glyphs rendered something
}

TEST(Draw, TextScale)
{
    Imagef small(64, 16, 1, 0.0f);
    Imagef big(64, 32, 1, 0.0f);
    draw_text(small, 0, 0, "8", 1.0f, 1);
    draw_text(big, 0, 0, "8", 1.0f, 2);
    double small_count = 0.0;
    double big_count = 0.0;
    for (const float v : small.values()) small_count += v > 0.0f;
    for (const float v : big.values()) big_count += v > 0.0f;
    EXPECT_NEAR(big_count, 4.0 * small_count, 1e-3);
}

TEST(Draw, TextRejectsBadArgs)
{
    Imagef a(8, 8);
    EXPECT_THROW(draw_text(a, 0, 0, nullptr, 1.0f), Contract_violation);
    EXPECT_THROW(draw_text(a, 0, 0, "X", 1.0f, 0), Contract_violation);
}

} // namespace
