#include "imgproc/filter.hpp"

#include "imgproc/draw.hpp"
#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace {

using namespace inframe::img;
using inframe::util::Contract_violation;
using inframe::util::Prng;

TEST(BoxBlur, RadiusZeroIsIdentity)
{
    Imagef a(4, 4);
    Prng prng(1);
    for (auto& v : a.values()) v = static_cast<float>(prng.next_double(0, 255));
    const Imagef out = box_blur(a, 0);
    for (std::size_t i = 0; i < a.values().size(); ++i) {
        EXPECT_FLOAT_EQ(out.values()[i], a.values()[i]);
    }
}

TEST(BoxBlur, ConstantImageIsInvariant)
{
    const Imagef a(16, 12, 1, 42.0f);
    const Imagef out = box_blur(a, 3);
    for (const float v : out.values()) EXPECT_NEAR(v, 42.0f, 1e-4f);
}

TEST(BoxBlur, PreservesMeanApproximately)
{
    Prng prng(2);
    Imagef a(32, 32);
    for (auto& v : a.values()) v = static_cast<float>(prng.next_double(0, 255));
    const Imagef out = box_blur(a, 2);
    EXPECT_NEAR(mean(out), mean(a), 2.0);
}

TEST(BoxBlur, FlattensCheckerboardCompletely)
{
    // A 1-pixel checkerboard averaged over any odd window with equal counts
    // of both phases lands on the midpoint. Radius 1 (3x3 window) leaves a
    // small bias, but the interior is near the mean.
    const Imagef board = checkerboard(32, 32, 1, 0.0f, 100.0f);
    const Imagef out = box_blur(board, 2); // 5x5 window: 13 vs 12 cells
    const double interior = mean_region(out, 8, 8, 16, 16);
    EXPECT_NEAR(interior, 50.0, 3.0);
}

TEST(BoxBlur, MatchesBruteForceInsideImage)
{
    Prng prng(3);
    Imagef a(9, 7);
    for (auto& v : a.values()) v = static_cast<float>(prng.next_double(0, 255));
    const int radius = 1;
    const Imagef fast = box_blur(a, radius);
    for (int y = radius; y < a.height() - radius; ++y) {
        for (int x = radius; x < a.width() - radius; ++x) {
            double sum = 0.0;
            for (int dy = -radius; dy <= radius; ++dy) {
                for (int dx = -radius; dx <= radius; ++dx) sum += a(x + dx, y + dy);
            }
            EXPECT_NEAR(fast(x, y), sum / 9.0, 1e-3);
        }
    }
}

TEST(BoxBlur, AnisotropicRadii)
{
    // Horizontal-only blur must not mix rows.
    Imagef a(8, 2, 1, 0.0f);
    for (int x = 0; x < 8; ++x) a(x, 1) = 80.0f;
    const Imagef out = box_blur(a, 2, 0);
    for (int x = 0; x < 8; ++x) {
        EXPECT_NEAR(out(x, 0), 0.0f, 1e-4f);
        EXPECT_NEAR(out(x, 1), 80.0f, 1e-4f);
    }
}

TEST(BoxBlur, NegativeRadiusThrows)
{
    const Imagef a(4, 4);
    EXPECT_THROW(box_blur(a, -1), Contract_violation);
}

TEST(GaussianKernel, NormalizedAndSymmetric)
{
    const auto kernel = gaussian_kernel(1.5);
    EXPECT_EQ(kernel.size() % 2, 1u);
    const double sum = std::accumulate(kernel.begin(), kernel.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-5);
    for (std::size_t i = 0; i < kernel.size() / 2; ++i) {
        EXPECT_FLOAT_EQ(kernel[i], kernel[kernel.size() - 1 - i]);
    }
    EXPECT_THROW(gaussian_kernel(0.0), Contract_violation);
}

TEST(GaussianBlur, SigmaZeroIsIdentity)
{
    Imagef a(4, 4, 1, 5.0f);
    a(1, 1) = 50.0f;
    const Imagef out = gaussian_blur(a, 0.0);
    EXPECT_FLOAT_EQ(out(1, 1), 50.0f);
}

TEST(GaussianBlur, SpreadsAnImpulse)
{
    Imagef a(11, 11, 1, 0.0f);
    a(5, 5) = 100.0f;
    const Imagef out = gaussian_blur(a, 1.0);
    EXPECT_LT(out(5, 5), 100.0f);
    EXPECT_GT(out(5, 5), out(4, 5) - 1e-3f);
    EXPECT_GT(out(4, 5), 0.0f);
    // Energy conservation (clamp border far away from impulse).
    EXPECT_NEAR(mean(out) * 121.0, 100.0, 0.5);
}

TEST(GaussianBlur, ReducesCheckerboardContrastMoreThanGradient)
{
    const Imagef board = checkerboard(32, 32, 1, 0.0f, 100.0f);
    const Imagef ramp = horizontal_gradient(32, 32, 0.0f, 100.0f);
    const Imagef board_blur = gaussian_blur(board, 1.2);
    const Imagef ramp_blur = gaussian_blur(ramp, 1.2);
    const double board_residual = mean(abs_diff(board, board_blur));
    const double ramp_residual = mean(abs_diff(ramp, ramp_blur));
    // This asymmetry is exactly what the InFrame decoder relies on.
    EXPECT_GT(board_residual, 10.0 * ramp_residual);
}

TEST(SeparableConvolve, EvenKernelRejected)
{
    const Imagef a(4, 4);
    const std::vector<float> kernel = {0.5f, 0.5f};
    EXPECT_THROW(separable_convolve(a, kernel), Contract_violation);
}

TEST(SeparableConvolve, IdentityKernel)
{
    Prng prng(4);
    Imagef a(6, 5);
    for (auto& v : a.values()) v = static_cast<float>(prng.next_double(0, 255));
    const std::vector<float> kernel = {0.0f, 1.0f, 0.0f};
    const Imagef out = separable_convolve(a, kernel);
    for (std::size_t i = 0; i < a.values().size(); ++i) {
        EXPECT_NEAR(out.values()[i], a.values()[i], 1e-4f);
    }
}

TEST(LaplacianAbs, FlatRegionsAreZero)
{
    const Imagef a(8, 8, 1, 33.0f);
    const Imagef out = laplacian_abs(a);
    for (const float v : out.values()) EXPECT_NEAR(v, 0.0f, 1e-4f);
}

TEST(LaplacianAbs, RespondsToEdges)
{
    Imagef a(8, 8, 1, 0.0f);
    fill_rect(a, 4, 0, 4, 8, 100.0f);
    const Imagef out = laplacian_abs(a);
    EXPECT_GT(out(4, 4), 50.0f);
    EXPECT_NEAR(out(1, 4), 0.0f, 1e-4f);
}

} // namespace
