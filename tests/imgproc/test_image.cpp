#include "imgproc/image.hpp"

#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::img;
using inframe::util::Contract_violation;

TEST(Image, ConstructionAndFill)
{
    Imagef image(4, 3, 1, 7.0f);
    EXPECT_EQ(image.width(), 4);
    EXPECT_EQ(image.height(), 3);
    EXPECT_EQ(image.channels(), 1);
    EXPECT_EQ(image.pixel_count(), 12u);
    for (const float v : image.values()) EXPECT_EQ(v, 7.0f);
}

TEST(Image, InvalidConstruction)
{
    EXPECT_THROW(Imagef(0, 3), Contract_violation);
    EXPECT_THROW(Imagef(3, -1), Contract_violation);
    EXPECT_THROW(Imagef(3, 3, 2), Contract_violation);
}

TEST(Image, AtBoundsChecking)
{
    Imagef image(2, 2);
    EXPECT_NO_THROW(image.at(1, 1));
    EXPECT_THROW(image.at(2, 0), Contract_violation);
    EXPECT_THROW(image.at(0, 2), Contract_violation);
    EXPECT_THROW(image.at(-1, 0), Contract_violation);
    EXPECT_THROW(image.at(0, 0, 1), Contract_violation);
}

TEST(Image, InterleavedChannelLayout)
{
    Imagef image(2, 1, 3);
    image(0, 0, 0) = 1.0f;
    image(0, 0, 1) = 2.0f;
    image(0, 0, 2) = 3.0f;
    image(1, 0, 0) = 4.0f;
    const auto values = image.values();
    EXPECT_EQ(values[0], 1.0f);
    EXPECT_EQ(values[1], 2.0f);
    EXPECT_EQ(values[2], 3.0f);
    EXPECT_EQ(values[3], 4.0f);
}

TEST(Image, ClampedSampling)
{
    Imagef image(2, 2);
    image(0, 0) = 1.0f;
    image(1, 0) = 2.0f;
    image(0, 1) = 3.0f;
    image(1, 1) = 4.0f;
    EXPECT_EQ(image.at_clamped(-5, -5), 1.0f);
    EXPECT_EQ(image.at_clamped(9, 0), 2.0f);
    EXPECT_EQ(image.at_clamped(0, 9), 3.0f);
    EXPECT_EQ(image.at_clamped(9, 9), 4.0f);
}

TEST(Image, RowSpanWritesThrough)
{
    Imagef image(3, 2);
    auto row = image.row(1);
    row[0] = 5.0f;
    EXPECT_EQ(image(0, 1), 5.0f);
    EXPECT_THROW(image.row(2), Contract_violation);
}

TEST(Image, CropCopiesRegion)
{
    Imagef image(4, 4);
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) image(x, y) = static_cast<float>(y * 4 + x);
    }
    const Imagef crop = image.crop(1, 2, 2, 2);
    EXPECT_EQ(crop.width(), 2);
    EXPECT_EQ(crop.height(), 2);
    EXPECT_EQ(crop(0, 0), 9.0f);
    EXPECT_EQ(crop(1, 1), 14.0f);
}

TEST(Image, CropValidatesBounds)
{
    Imagef image(4, 4);
    EXPECT_THROW(image.crop(3, 3, 2, 2), Contract_violation);
    EXPECT_THROW(image.crop(0, 0, 0, 1), Contract_violation);
}

TEST(Image, TransformAppliesEverywhere)
{
    Imagef image(2, 2, 1, 1.0f);
    image.transform([](float v) { return v * 3.0f; });
    for (const float v : image.values()) EXPECT_EQ(v, 3.0f);
}

TEST(Image, U8FloatRoundTrip)
{
    Image8 original(3, 2, 1);
    std::uint8_t next = 0;
    for (auto& v : original.values()) v = next += 40;
    const Imagef wide = to_float(original);
    const Image8 back = to_u8(wide);
    EXPECT_EQ(back.values().size(), original.values().size());
    for (std::size_t i = 0; i < back.values().size(); ++i) {
        EXPECT_EQ(back.values()[i], original.values()[i]);
    }
}

TEST(Image, ToU8ClampsAndRounds)
{
    Imagef image(3, 1);
    image(0, 0) = -10.0f;
    image(1, 0) = 300.0f;
    image(2, 0) = 127.6f;
    const Image8 quantized = to_u8(image);
    EXPECT_EQ(quantized(0, 0), 0);
    EXPECT_EQ(quantized(1, 0), 255);
    EXPECT_EQ(quantized(2, 0), 128);
}

TEST(Image, ToGrayUsesRec601Weights)
{
    Imagef rgb(1, 1, 3);
    rgb(0, 0, 0) = 255.0f;
    rgb(0, 0, 1) = 0.0f;
    rgb(0, 0, 2) = 0.0f;
    const Imagef gray = to_gray(rgb);
    EXPECT_EQ(gray.channels(), 1);
    EXPECT_NEAR(gray(0, 0), 0.299f * 255.0f, 1e-3f);
}

TEST(Image, ToGrayIdentityForGrayscale)
{
    Imagef gray(2, 2, 1, 9.0f);
    const Imagef out = to_gray(gray);
    EXPECT_TRUE(out.same_shape(gray));
    EXPECT_EQ(out(1, 1), 9.0f);
}

} // namespace
