#include "imgproc/image_ops.hpp"

#include "util/contract.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::img;
using inframe::util::Contract_violation;

Imagef make_ramp(int w, int h)
{
    Imagef image(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) image(x, y) = static_cast<float>(y * w + x);
    }
    return image;
}

TEST(ImageOps, AddSubtractInverse)
{
    const Imagef a = make_ramp(5, 4);
    Imagef b(5, 4, 1, 3.0f);
    const Imagef sum = add(a, b);
    const Imagef restored = subtract(sum, b);
    for (std::size_t i = 0; i < a.values().size(); ++i) {
        EXPECT_FLOAT_EQ(restored.values()[i], a.values()[i]);
    }
}

TEST(ImageOps, ShapeMismatchThrows)
{
    const Imagef a(2, 2);
    const Imagef b(3, 2);
    EXPECT_THROW(add(a, b), Contract_violation);
    EXPECT_THROW(subtract(a, b), Contract_violation);
    EXPECT_THROW(abs_diff(a, b), Contract_violation);
}

TEST(ImageOps, AbsDiffIsSymmetric)
{
    const Imagef a = make_ramp(4, 4);
    Imagef b = make_ramp(4, 4);
    b.transform([](float v) { return v * 2.0f; });
    const Imagef d1 = abs_diff(a, b);
    const Imagef d2 = abs_diff(b, a);
    for (std::size_t i = 0; i < d1.values().size(); ++i) {
        EXPECT_FLOAT_EQ(d1.values()[i], d2.values()[i]);
        EXPECT_GE(d1.values()[i], 0.0f);
    }
}

TEST(ImageOps, AffineScaleOffset)
{
    Imagef a(2, 2, 1, 10.0f);
    const Imagef out = affine(a, 2.0f, 5.0f);
    for (const float v : out.values()) EXPECT_FLOAT_EQ(v, 25.0f);
}

TEST(ImageOps, ClampBounds)
{
    Imagef a(3, 1);
    a(0, 0) = -4.0f;
    a(1, 0) = 100.0f;
    a(2, 0) = 400.0f;
    clamp(a, 0.0f, 255.0f);
    EXPECT_EQ(a(0, 0), 0.0f);
    EXPECT_EQ(a(1, 0), 100.0f);
    EXPECT_EQ(a(2, 0), 255.0f);
    EXPECT_THROW(clamp(a, 1.0f, 0.0f), Contract_violation);
}

TEST(ImageOps, AccumulateWeighted)
{
    Imagef a(2, 2, 1, 1.0f);
    const Imagef b(2, 2, 1, 4.0f);
    accumulate(a, b, 0.5f);
    for (const float v : a.values()) EXPECT_FLOAT_EQ(v, 3.0f);
}

TEST(ImageOps, MeanOfRamp)
{
    const Imagef a = make_ramp(3, 3); // values 0..8
    EXPECT_DOUBLE_EQ(mean(a), 4.0);
}

TEST(ImageOps, MeanRegion)
{
    const Imagef a = make_ramp(4, 4);
    // Region covering values 5, 6, 9, 10.
    EXPECT_DOUBLE_EQ(mean_region(a, 1, 1, 2, 2), 7.5);
    EXPECT_THROW(mean_region(a, 3, 3, 2, 2), Contract_violation);
}

TEST(ImageOps, MeanAbsRegion)
{
    Imagef a(2, 2);
    a(0, 0) = -2.0f;
    a(1, 0) = 2.0f;
    a(0, 1) = -4.0f;
    a(1, 1) = 4.0f;
    EXPECT_DOUBLE_EQ(mean_abs_region(a, 0, 0, 2, 2), 3.0);
}

TEST(ImageOps, MinMax)
{
    Imagef a = make_ramp(4, 2);
    a(2, 1) = -9.0f;
    const auto [lo, hi] = min_max(a);
    EXPECT_EQ(lo, -9.0f);
    EXPECT_EQ(hi, 7.0f);
}

TEST(ImageOps, NormalizeTo8Bit)
{
    Imagef a(2, 1);
    a(0, 0) = -1.0f;
    a(1, 0) = 1.0f;
    const Imagef out = normalize_to_8bit(a, -1.0f, 1.0f);
    EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(out(1, 0), 255.0f);
    EXPECT_THROW(normalize_to_8bit(a, 1.0f, 1.0f), Contract_violation);
}

TEST(ImageOps, SaturatingAddClipsAt255)
{
    Image8 a(3, 1);
    Image8 b(3, 1);
    a(0, 0) = 200;
    b(0, 0) = 100; // would wrap to 44
    a(1, 0) = 255;
    b(1, 0) = 255;
    a(2, 0) = 10;
    b(2, 0) = 20;
    const Image8 sum = add_saturate(a, b);
    EXPECT_EQ(sum(0, 0), 255);
    EXPECT_EQ(sum(1, 0), 255);
    EXPECT_EQ(sum(2, 0), 30);
}

TEST(ImageOps, SaturatingSubtractClipsAtZero)
{
    Image8 a(3, 1);
    Image8 b(3, 1);
    a(0, 0) = 100;
    b(0, 0) = 200; // would wrap to 156
    a(1, 0) = 0;
    b(1, 0) = 255;
    a(2, 0) = 20;
    b(2, 0) = 5;
    const Image8 diff = subtract_saturate(a, b);
    EXPECT_EQ(diff(0, 0), 0);
    EXPECT_EQ(diff(1, 0), 0);
    EXPECT_EQ(diff(2, 0), 15);
}

TEST(ImageOps, AbsDiffU8IsSymmetric)
{
    Image8 a(2, 1);
    Image8 b(2, 1);
    a(0, 0) = 255;
    b(0, 0) = 0;
    a(1, 0) = 30;
    b(1, 0) = 50;
    const Image8 d1 = abs_diff(a, b);
    const Image8 d2 = abs_diff(b, a);
    EXPECT_EQ(d1(0, 0), 255);
    EXPECT_EQ(d1(1, 0), 20);
    EXPECT_EQ(d2(0, 0), 255);
    EXPECT_EQ(d2(1, 0), 20);
}

TEST(ImageOps, SaturatingOpsRejectShapeMismatch)
{
    const Image8 a(4, 4);
    const Image8 b(4, 5);
    EXPECT_THROW(add_saturate(a, b), Contract_violation);
    EXPECT_THROW(subtract_saturate(a, b), Contract_violation);
    EXPECT_THROW(abs_diff(a, b), Contract_violation);
}

} // namespace
