#include "imgproc/io.hpp"

#include "imgproc/image_ops.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace {

using namespace inframe::img;
using inframe::util::Prng;

class IoTest : public ::testing::Test {
protected:
    std::string path(const std::string& name)
    {
        const auto dir = std::filesystem::temp_directory_path() / "inframe_io_test";
        std::filesystem::create_directories(dir);
        const auto full = dir / name;
        created_.push_back(full);
        return full.string();
    }

    void TearDown() override
    {
        for (const auto& p : created_) std::filesystem::remove(p);
    }

    std::vector<std::filesystem::path> created_;
};

TEST_F(IoTest, PgmRoundTrip)
{
    Prng prng(21);
    Image8 original(33, 17, 1);
    for (auto& v : original.values()) v = static_cast<std::uint8_t>(prng.next_below(256));
    const auto file = path("gray.pgm");
    write_pnm(original, file);
    const Image8 loaded = read_pnm(file);
    ASSERT_EQ(loaded.width(), original.width());
    ASSERT_EQ(loaded.height(), original.height());
    ASSERT_EQ(loaded.channels(), 1);
    for (std::size_t i = 0; i < original.values().size(); ++i) {
        EXPECT_EQ(loaded.values()[i], original.values()[i]);
    }
}

TEST_F(IoTest, PpmRoundTrip)
{
    Prng prng(22);
    Image8 original(8, 6, 3);
    for (auto& v : original.values()) v = static_cast<std::uint8_t>(prng.next_below(256));
    const auto file = path("rgb.ppm");
    write_pnm(original, file);
    const Image8 loaded = read_pnm(file);
    ASSERT_EQ(loaded.channels(), 3);
    for (std::size_t i = 0; i < original.values().size(); ++i) {
        EXPECT_EQ(loaded.values()[i], original.values()[i]);
    }
}

TEST_F(IoTest, FloatWriteQuantizes)
{
    Imagef image(2, 1);
    image(0, 0) = 300.0f;
    image(1, 0) = -5.0f;
    const auto file = path("clamp.pgm");
    write_pnm(image, file);
    const Image8 loaded = read_pnm(file);
    EXPECT_EQ(loaded(0, 0), 255);
    EXPECT_EQ(loaded(1, 0), 0);
}

TEST_F(IoTest, CommentsInHeaderAreSkipped)
{
    const auto file = path("comment.pgm");
    {
        std::ofstream out(file, std::ios::binary);
        out << "P5\n# a comment line\n2 1\n# another\n255\n";
        out.put(10);
        out.put(200);
    }
    const Image8 loaded = read_pnm(file);
    EXPECT_EQ(loaded(0, 0), 10);
    EXPECT_EQ(loaded(1, 0), 200);
}

TEST_F(IoTest, MissingFileThrows)
{
    EXPECT_THROW(read_pnm("/nonexistent/definitely/missing.pgm"), std::runtime_error);
}

TEST_F(IoTest, BadMagicThrows)
{
    const auto file = path("bad_magic.pgm");
    {
        std::ofstream out(file, std::ios::binary);
        out << "P3\n2 1\n255\n1 2 3 4 5 6\n";
    }
    EXPECT_THROW(read_pnm(file), std::runtime_error);
}

TEST_F(IoTest, TruncatedDataThrows)
{
    const auto file = path("truncated.pgm");
    {
        std::ofstream out(file, std::ios::binary);
        out << "P5\n4 4\n255\n";
        out.put(1); // only 1 of 16 bytes
    }
    EXPECT_THROW(read_pnm(file), std::runtime_error);
}

TEST_F(IoTest, BadDimensionsThrow)
{
    const auto file = path("bad_dims.pgm");
    {
        std::ofstream out(file, std::ios::binary);
        out << "P5\n0 4\n255\n";
    }
    EXPECT_THROW(read_pnm(file), std::runtime_error);
}

} // namespace
