#include "imgproc/metrics.hpp"

#include "imgproc/draw.hpp"
#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace inframe::img;
using inframe::util::Contract_violation;
using inframe::util::Prng;

TEST(Metrics, MaeOfIdenticalImagesIsZero)
{
    const Imagef a(8, 8, 1, 20.0f);
    EXPECT_DOUBLE_EQ(mae(a, a), 0.0);
}

TEST(Metrics, MaeOfConstantOffset)
{
    const Imagef a(8, 8, 1, 20.0f);
    const Imagef b(8, 8, 1, 25.0f);
    EXPECT_DOUBLE_EQ(mae(a, b), 5.0);
}

TEST(Metrics, MseOfConstantOffset)
{
    const Imagef a(8, 8, 1, 20.0f);
    const Imagef b(8, 8, 1, 26.0f);
    EXPECT_DOUBLE_EQ(mse(a, b), 36.0);
}

TEST(Metrics, ShapeMismatchThrows)
{
    const Imagef a(8, 8);
    const Imagef b(9, 8);
    EXPECT_THROW(mae(a, b), Contract_violation);
    EXPECT_THROW(mse(a, b), Contract_violation);
}

TEST(Metrics, PsnrIdenticalIsInfinite)
{
    const Imagef a(8, 8, 1, 100.0f);
    EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(Metrics, PsnrKnownValue)
{
    const Imagef a(8, 8, 1, 0.0f);
    const Imagef b(8, 8, 1, 255.0f);
    // MSE = 255^2 -> PSNR = 0 dB.
    EXPECT_NEAR(psnr(a, b), 0.0, 1e-9);
}

TEST(Metrics, PsnrOrdersDegradations)
{
    Prng prng(31);
    Imagef base(32, 32);
    for (auto& v : base.values()) v = static_cast<float>(prng.next_double(0, 255));
    Imagef light = base;
    Imagef heavy = base;
    light.transform([&](float v) { return v + 2.0f; });
    heavy.transform([&](float v) { return v + 20.0f; });
    EXPECT_GT(psnr(base, light), psnr(base, heavy));
}

TEST(Metrics, SsimIdenticalIsOne)
{
    Prng prng(32);
    Imagef a(32, 32);
    for (auto& v : a.values()) v = static_cast<float>(prng.next_double(0, 255));
    EXPECT_NEAR(ssim(a, a), 1.0, 1e-9);
}

TEST(Metrics, SsimDropsWithNoise)
{
    Prng prng(33);
    Imagef a(64, 64);
    for (auto& v : a.values()) v = static_cast<float>(prng.next_double(64, 192));
    Imagef noisy = a;
    for (auto& v : noisy.values()) v += static_cast<float>(prng.next_gaussian(0.0, 25.0));
    const double score = ssim(a, noisy);
    EXPECT_LT(score, 0.95);
    EXPECT_GT(score, 0.0);
}

TEST(Metrics, SsimDetectsStructuralChange)
{
    const Imagef board = checkerboard(64, 64, 4, 50.0f, 200.0f);
    const Imagef flat(64, 64, 1, 125.0f); // same mean, no structure
    EXPECT_LT(ssim(board, flat), 0.3);
}

TEST(Metrics, SsimTooSmallImageThrows)
{
    const Imagef a(4, 4, 1, 10.0f);
    EXPECT_THROW(ssim(a, a), Contract_violation);
}

TEST(Metrics, SsimAcceptsRgb)
{
    Imagef rgb(16, 16, 3, 100.0f);
    EXPECT_NEAR(ssim(rgb, rgb), 1.0, 1e-9);
}

TEST(Metrics, ResidualEnergyExactSmallCase)
{
    Image8 a(3, 1);
    Image8 b(3, 1);
    a(0, 0) = 10;
    b(0, 0) = 13; // 3^2 = 9
    a(1, 0) = 255;
    b(1, 0) = 250; // 5^2 = 25
    a(2, 0) = 7;
    b(2, 0) = 7; // 0
    EXPECT_EQ(residual_energy(a, b), 34);
    EXPECT_EQ(residual_energy(b, a), 34);
    EXPECT_EQ(residual_energy(a, a), 0);
}

TEST(Metrics, ResidualEnergyWorstCaseExceedsInt32)
{
    // Regression pin for the accumulator width: a 256x256 frame where
    // every pixel differs by the full 255 sums to 256*256*255^2 =
    // 4,261,478,400 — past INT32_MAX (and past UINT32_MAX once the frame
    // edge exceeds 256). A 32-bit accumulator would wrap; the int64 result
    // must be exact.
    const Image8 black(256, 256, 1, 0);
    const Image8 white(256, 256, 1, 255);
    const std::int64_t expected = 256LL * 256LL * 255LL * 255LL;
    EXPECT_EQ(expected, 4261478400LL);
    EXPECT_GT(expected, static_cast<std::int64_t>(INT32_MAX));
    EXPECT_EQ(residual_energy(black, white), expected);
}

TEST(Metrics, ResidualEnergyRegion)
{
    Image8 a(8, 8, 1, 0);
    Image8 b(8, 8, 1, 0);
    // Differences only inside the region [2,6) x [3,5): 8 pixels of 255 —
    // and one poison pixel outside that must not be counted.
    for (int y = 3; y < 5; ++y) {
        for (int x = 2; x < 6; ++x) b(x, y) = 255;
    }
    b(0, 0) = 255;
    EXPECT_EQ(residual_energy_region(a, b, 2, 3, 4, 2), 8LL * 255 * 255);
    EXPECT_EQ(residual_energy_region(a, b, 1, 1, 2, 2), 0);
    EXPECT_THROW(residual_energy_region(a, b, 5, 5, 4, 4), Contract_violation);
}

} // namespace
