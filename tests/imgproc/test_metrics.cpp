#include "imgproc/metrics.hpp"

#include "imgproc/draw.hpp"
#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace inframe::img;
using inframe::util::Contract_violation;
using inframe::util::Prng;

TEST(Metrics, MaeOfIdenticalImagesIsZero)
{
    const Imagef a(8, 8, 1, 20.0f);
    EXPECT_DOUBLE_EQ(mae(a, a), 0.0);
}

TEST(Metrics, MaeOfConstantOffset)
{
    const Imagef a(8, 8, 1, 20.0f);
    const Imagef b(8, 8, 1, 25.0f);
    EXPECT_DOUBLE_EQ(mae(a, b), 5.0);
}

TEST(Metrics, MseOfConstantOffset)
{
    const Imagef a(8, 8, 1, 20.0f);
    const Imagef b(8, 8, 1, 26.0f);
    EXPECT_DOUBLE_EQ(mse(a, b), 36.0);
}

TEST(Metrics, ShapeMismatchThrows)
{
    const Imagef a(8, 8);
    const Imagef b(9, 8);
    EXPECT_THROW(mae(a, b), Contract_violation);
    EXPECT_THROW(mse(a, b), Contract_violation);
}

TEST(Metrics, PsnrIdenticalIsInfinite)
{
    const Imagef a(8, 8, 1, 100.0f);
    EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(Metrics, PsnrKnownValue)
{
    const Imagef a(8, 8, 1, 0.0f);
    const Imagef b(8, 8, 1, 255.0f);
    // MSE = 255^2 -> PSNR = 0 dB.
    EXPECT_NEAR(psnr(a, b), 0.0, 1e-9);
}

TEST(Metrics, PsnrOrdersDegradations)
{
    Prng prng(31);
    Imagef base(32, 32);
    for (auto& v : base.values()) v = static_cast<float>(prng.next_double(0, 255));
    Imagef light = base;
    Imagef heavy = base;
    light.transform([&](float v) { return v + 2.0f; });
    heavy.transform([&](float v) { return v + 20.0f; });
    EXPECT_GT(psnr(base, light), psnr(base, heavy));
}

TEST(Metrics, SsimIdenticalIsOne)
{
    Prng prng(32);
    Imagef a(32, 32);
    for (auto& v : a.values()) v = static_cast<float>(prng.next_double(0, 255));
    EXPECT_NEAR(ssim(a, a), 1.0, 1e-9);
}

TEST(Metrics, SsimDropsWithNoise)
{
    Prng prng(33);
    Imagef a(64, 64);
    for (auto& v : a.values()) v = static_cast<float>(prng.next_double(64, 192));
    Imagef noisy = a;
    for (auto& v : noisy.values()) v += static_cast<float>(prng.next_gaussian(0.0, 25.0));
    const double score = ssim(a, noisy);
    EXPECT_LT(score, 0.95);
    EXPECT_GT(score, 0.0);
}

TEST(Metrics, SsimDetectsStructuralChange)
{
    const Imagef board = checkerboard(64, 64, 4, 50.0f, 200.0f);
    const Imagef flat(64, 64, 1, 125.0f); // same mean, no structure
    EXPECT_LT(ssim(board, flat), 0.3);
}

TEST(Metrics, SsimTooSmallImageThrows)
{
    const Imagef a(4, 4, 1, 10.0f);
    EXPECT_THROW(ssim(a, a), Contract_violation);
}

TEST(Metrics, SsimAcceptsRgb)
{
    Imagef rgb(16, 16, 3, 100.0f);
    EXPECT_NEAR(ssim(rgb, rgb), 1.0, 1e-9);
}

} // namespace
