#include "imgproc/pool.hpp"

#include <gtest/gtest.h>

namespace {

using inframe::img::Frame_pool;
using inframe::img::Imagef;

TEST(FramePool, RecycledStorageIsReused)
{
    auto& pool = Frame_pool::instance();
    pool.clear();
    const auto reuses_before = pool.reuse_count();

    Imagef a = pool.acquire(64, 32, 3);
    const float* storage = a.values().data();
    pool.recycle(std::move(a));
    EXPECT_EQ(pool.pooled(), 1u);

    Imagef b = pool.acquire(64, 32, 3);
    EXPECT_EQ(b.values().data(), storage);
    EXPECT_EQ(pool.pooled(), 0u);
    EXPECT_EQ(pool.reuse_count(), reuses_before + 1);
    pool.clear();
}

TEST(FramePool, AcquireWithFillInitializes)
{
    auto& pool = Frame_pool::instance();
    pool.clear();
    // Park a dirty buffer so the fill path exercises reuse.
    Imagef dirty = pool.acquire(8, 8, 1);
    for (auto& v : dirty.values()) v = 99.0f;
    pool.recycle(std::move(dirty));

    const Imagef filled = pool.acquire(8, 8, 1, 0.0f);
    for (const float v : filled.values()) EXPECT_EQ(v, 0.0f);
    pool.clear();
}

TEST(FramePool, SmallerFrameFitsInLargerBuffer)
{
    auto& pool = Frame_pool::instance();
    pool.clear();
    Imagef big = pool.acquire(100, 100, 3);
    const float* storage = big.values().data();
    pool.recycle(std::move(big));
    const auto reuses_before = pool.reuse_count();

    Imagef small = pool.acquire(10, 10, 1);
    EXPECT_EQ(small.width(), 10);
    EXPECT_EQ(small.height(), 10);
    EXPECT_EQ(small.channels(), 1);
    EXPECT_EQ(small.values().size(), 100u);
    EXPECT_EQ(small.values().data(), storage); // storage came from the pool
    EXPECT_EQ(pool.reuse_count(), reuses_before + 1);
    EXPECT_EQ(pool.pooled(), 0u);
    pool.clear();
}

TEST(FramePool, RecyclingEmptyFrameIsNoOp)
{
    auto& pool = Frame_pool::instance();
    pool.clear();
    pool.recycle(Imagef{});
    Imagef moved_from = pool.acquire(4, 4, 1);
    [[maybe_unused]] const Imagef taken = std::move(moved_from);
    pool.recycle(std::move(moved_from)); // NOLINT: deliberate use-after-move
    EXPECT_EQ(pool.pooled(), 0u);
    pool.clear();
}

TEST(FramePool, CapIsEnforced)
{
    auto& pool = Frame_pool::instance();
    pool.clear();
    // Fresh frames (not drawn from the pool) so the freelist actually grows.
    for (std::size_t i = 0; i < Frame_pool::max_pooled + 5; ++i) {
        pool.recycle(Imagef(4, 4, 1));
    }
    EXPECT_LE(pool.pooled(), Frame_pool::max_pooled);
    pool.clear();
}

TEST(FramePool, TakeStorageRoundTrip)
{
    Imagef img(6, 5, 3);
    img(3, 2, 1) = 7.5f;
    auto storage = img.take_storage();
    EXPECT_EQ(img.width(), 0);
    EXPECT_EQ(storage.size(), 90u);
    const Imagef rebuilt(6, 5, 3, std::move(storage));
    EXPECT_EQ(rebuilt.values().size(), 90u);
}

} // namespace
