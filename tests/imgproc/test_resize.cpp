#include "imgproc/resize.hpp"

#include "imgproc/draw.hpp"
#include "imgproc/image_ops.hpp"
#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::img;
using inframe::util::Contract_violation;
using inframe::util::Prng;

TEST(ResizeBilinear, IdentitySize)
{
    Prng prng(5);
    Imagef a(7, 5);
    for (auto& v : a.values()) v = static_cast<float>(prng.next_double(0, 255));
    const Imagef out = resize_bilinear(a, 7, 5);
    for (std::size_t i = 0; i < a.values().size(); ++i) {
        EXPECT_NEAR(out.values()[i], a.values()[i], 1e-3f);
    }
}

TEST(ResizeBilinear, ConstantStaysConstant)
{
    const Imagef a(16, 16, 1, 88.0f);
    const Imagef out = resize_bilinear(a, 9, 23);
    for (const float v : out.values()) EXPECT_NEAR(v, 88.0f, 1e-3f);
}

TEST(ResizeBilinear, GradientStaysMonotonic)
{
    const Imagef ramp = horizontal_gradient(64, 4, 0.0f, 255.0f);
    const Imagef out = resize_bilinear(ramp, 31, 4);
    for (int x = 1; x < out.width(); ++x) EXPECT_GE(out(x, 1), out(x - 1, 1));
}

TEST(ResizeBilinear, RejectsEmptyOutput)
{
    const Imagef a(4, 4);
    EXPECT_THROW(resize_bilinear(a, 0, 4), Contract_violation);
}

TEST(ResizeArea, DownscalePreservesMean)
{
    Prng prng(6);
    Imagef a(64, 48);
    for (auto& v : a.values()) v = static_cast<float>(prng.next_double(0, 255));
    const Imagef out = resize_area(a, 21, 17);
    EXPECT_NEAR(mean(out), mean(a), 1.0);
}

TEST(ResizeArea, ExactFactorAveragesBlocks)
{
    Imagef a(4, 2);
    a(0, 0) = 0.0f;
    a(1, 0) = 100.0f;
    a(2, 0) = 40.0f;
    a(3, 0) = 60.0f;
    a(0, 1) = 100.0f;
    a(1, 1) = 0.0f;
    a(2, 1) = 60.0f;
    a(3, 1) = 40.0f;
    const Imagef out = resize_area(a, 2, 1);
    EXPECT_NEAR(out(0, 0), 50.0f, 1e-3f);
    EXPECT_NEAR(out(1, 0), 50.0f, 1e-3f);
}

TEST(ResizeArea, NonIntegerFactorWeightsOverlap)
{
    // 3 -> 2: each output pixel covers 1.5 input pixels.
    Imagef a(3, 1);
    a(0, 0) = 0.0f;
    a(1, 0) = 90.0f;
    a(2, 0) = 30.0f;
    const Imagef out = resize_area(a, 2, 1);
    EXPECT_NEAR(out(0, 0), (0.0 * 1.0 + 90.0 * 0.5) / 1.5, 1e-3);
    EXPECT_NEAR(out(1, 0), (90.0 * 0.5 + 30.0 * 1.0) / 1.5, 1e-3);
}

TEST(SampleBilinear, InterpolatesBetweenPixels)
{
    Imagef a(2, 1);
    a(0, 0) = 10.0f;
    a(1, 0) = 20.0f;
    EXPECT_NEAR(sample_bilinear(a, 0.5f, 0.0f), 15.0f, 1e-4f);
    EXPECT_NEAR(sample_bilinear(a, 0.25f, 0.0f), 12.5f, 1e-4f);
}

TEST(SampleBilinear, ClampsOutside)
{
    Imagef a(2, 2);
    a(0, 0) = 1.0f;
    a(1, 1) = 9.0f;
    EXPECT_NEAR(sample_bilinear(a, -3.0f, -3.0f), 1.0f, 1e-4f);
    EXPECT_NEAR(sample_bilinear(a, 10.0f, 10.0f), 9.0f, 1e-4f);
}

TEST(Translate, IntegerShiftMovesContent)
{
    Imagef a(5, 5, 1, 0.0f);
    a(1, 1) = 77.0f;
    const Imagef out = translate(a, 2.0f, 1.0f);
    EXPECT_NEAR(out(3, 2), 77.0f, 1e-3f);
    EXPECT_NEAR(out(1, 1), 0.0f, 1e-3f);
}

TEST(Translate, SubPixelShiftSplitsEnergy)
{
    Imagef a(4, 1, 1, 0.0f);
    a(1, 0) = 100.0f;
    const Imagef out = translate(a, 0.5f, 0.0f);
    EXPECT_NEAR(out(1, 0), 50.0f, 1e-3f);
    EXPECT_NEAR(out(2, 0), 50.0f, 1e-3f);
}

TEST(UpscaleNearest, ReplicatesPixels)
{
    Imagef a(2, 1);
    a(0, 0) = 3.0f;
    a(1, 0) = 8.0f;
    const Imagef out = upscale_nearest(a, 3);
    EXPECT_EQ(out.width(), 6);
    EXPECT_EQ(out.height(), 3);
    EXPECT_EQ(out(0, 0), 3.0f);
    EXPECT_EQ(out(2, 2), 3.0f);
    EXPECT_EQ(out(3, 0), 8.0f);
    EXPECT_EQ(out(5, 2), 8.0f);
    EXPECT_THROW(upscale_nearest(a, 0), Contract_violation);
}

} // namespace
