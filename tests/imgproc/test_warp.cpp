#include "imgproc/warp.hpp"

#include "imgproc/draw.hpp"
#include "imgproc/image_ops.hpp"
#include "imgproc/metrics.hpp"
#include "util/contract.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::img;
using inframe::util::Contract_violation;

TEST(Homography, IdentityMapsPointsToThemselves)
{
    const Homography h;
    double x = 0.0;
    double y = 0.0;
    h.apply(13.5, -2.25, x, y);
    EXPECT_DOUBLE_EQ(x, 13.5);
    EXPECT_DOUBLE_EQ(y, -2.25);
}

TEST(Homography, TranslationAndScale)
{
    double x = 0.0;
    double y = 0.0;
    Homography::translation(3.0, -1.0).apply(1.0, 1.0, x, y);
    EXPECT_DOUBLE_EQ(x, 4.0);
    EXPECT_DOUBLE_EQ(y, 0.0);
    Homography::scale(2.0, 0.5).apply(4.0, 8.0, x, y);
    EXPECT_DOUBLE_EQ(x, 8.0);
    EXPECT_DOUBLE_EQ(y, 4.0);
    EXPECT_THROW(Homography::scale(0.0, 1.0), Contract_violation);
}

TEST(Homography, UnitSquareToQuadHitsTheCorners)
{
    const std::array<double, 8> quad = {10.0, 5.0, 90.0, 12.0, 80.0, 70.0, 5.0, 60.0};
    const auto h = Homography::unit_square_to_quad(quad);
    const double us[4][2] = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
    for (int i = 0; i < 4; ++i) {
        double x = 0.0;
        double y = 0.0;
        h.apply(us[i][0], us[i][1], x, y);
        EXPECT_NEAR(x, quad[static_cast<std::size_t>(2 * i)], 1e-9) << "corner " << i;
        EXPECT_NEAR(y, quad[static_cast<std::size_t>(2 * i + 1)], 1e-9) << "corner " << i;
    }
}

TEST(Homography, RectToQuadHitsTheCorners)
{
    const std::array<double, 8> quad = {2.0, 3.0, 61.0, 1.0, 63.0, 34.0, 0.0, 31.0};
    const auto h = Homography::rect_to_quad(64.0, 32.0, quad);
    double x = 0.0;
    double y = 0.0;
    h.apply(64.0, 32.0, x, y);
    EXPECT_NEAR(x, 63.0, 1e-9);
    EXPECT_NEAR(y, 34.0, 1e-9);
    h.apply(0.0, 32.0, x, y);
    EXPECT_NEAR(x, 0.0, 1e-9);
    EXPECT_NEAR(y, 31.0, 1e-9);
}

TEST(Homography, InverseRoundTrip)
{
    const std::array<double, 8> quad = {5.0, 2.0, 100.0, 8.0, 95.0, 55.0, 2.0, 50.0};
    const auto h = Homography::unit_square_to_quad(quad);
    const auto inv = h.inverse();
    for (double u = 0.1; u < 1.0; u += 0.27) {
        for (double v = 0.1; v < 1.0; v += 0.31) {
            double x = 0.0;
            double y = 0.0;
            h.apply(u, v, x, y);
            double back_u = 0.0;
            double back_v = 0.0;
            inv.apply(x, y, back_u, back_v);
            EXPECT_NEAR(back_u, u, 1e-9);
            EXPECT_NEAR(back_v, v, 1e-9);
        }
    }
}

TEST(Homography, CompositionAppliesRightToLeft)
{
    const auto t = Homography::translation(5.0, 0.0);
    const auto s = Homography::scale(2.0, 2.0);
    double x = 0.0;
    double y = 0.0;
    (t * s).apply(1.0, 1.0, x, y); // scale first, then translate
    EXPECT_DOUBLE_EQ(x, 7.0);
    EXPECT_DOUBLE_EQ(y, 2.0);
}

TEST(Homography, CollinearQuadRejected)
{
    const std::array<double, 8> degenerate = {0, 0, 1, 1, 2, 2, 3, 3};
    EXPECT_THROW(Homography::unit_square_to_quad(degenerate), Contract_violation);
}

TEST(WarpPerspective, IdentityIsACopy)
{
    const Imagef board = checkerboard(32, 24, 4, 10.0f, 200.0f);
    const Imagef out = warp_perspective(board, Homography::identity(), 32, 24);
    // Bilinear sampling at exact integer coordinates reproduces values.
    EXPECT_LT(mae(out, board), 1e-4);
}

TEST(WarpPerspective, TranslationShiftsContent)
{
    Imagef image(16, 16, 1, 0.0f);
    fill_rect(image, 4, 4, 2, 2, 100.0f);
    // dst_to_src: destination (x, y) samples source at (x - 3, y).
    const Imagef out =
        warp_perspective(image, Homography::translation(-3.0, 0.0), 16, 16);
    EXPECT_NEAR(out(7, 4), 100.0f, 1e-3f);
    EXPECT_NEAR(out(4, 4), 0.0f, 1e-3f);
}

TEST(WarpPerspective, KeystoneRoundTripPreservesContent)
{
    // Warp a test card through a mild keystone and back: interior content
    // must survive (two bilinear resamplings cost a little contrast).
    const Imagef card = checkerboard(96, 54, 6, 40.0f, 210.0f);
    const std::array<double, 8> quad = {6.0, 2.0, 90.0, 4.0, 94.0, 52.0, 2.0, 50.0};
    const auto screen_to_quad = Homography::rect_to_quad(96.0, 54.0, quad);
    const Imagef warped = warp_perspective(card, screen_to_quad.inverse(), 96, 54);
    const Imagef restored = warp_perspective(warped, screen_to_quad, 96, 54);
    const auto center_original = card.crop(24, 14, 48, 26);
    const auto center_restored = restored.crop(24, 14, 48, 26);
    EXPECT_GT(psnr(center_original, center_restored), 18.0);
}

TEST(WarpPerspective, OutputSizeValidation)
{
    const Imagef image(8, 8);
    EXPECT_THROW(warp_perspective(image, Homography::identity(), 0, 8), Contract_violation);
}

} // namespace
